# Developer entry points. Everything runs from the repo root with the
# sources on PYTHONPATH (no install step needed).

PY ?= python
export PYTHONPATH := src

.PHONY: test lint perf-gate update-baseline bench serve-bench

test:
	$(PY) -m pytest -x -q

lint:
	ruff check .

# What the CI perf job runs: collect BENCH_pr.json and gate it against
# the committed baseline.
perf-gate:
	$(PY) benchmarks/perf_gate.py --quick --out BENCH_pr.json \
		--check benchmarks/results/baseline.json

# Refresh the committed perf baseline. The baseline is machine-specific:
# regenerate it (on the hardware CI uses) whenever the benchmark workload
# changes, CI moves to different hardware, or an intentional perf change
# lands — then commit benchmarks/results/baseline.json. See DESIGN.md §8.
update-baseline:
	$(PY) benchmarks/perf_gate.py --quick --update-baseline

bench:
	$(PY) benchmarks/bench_backend_scaling.py --quick
	$(PY) benchmarks/bench_void_scaling.py --quick
	$(PY) benchmarks/bench_tracking.py --quick
	$(PY) benchmarks/bench_balance.py --quick
	$(PY) benchmarks/bench_serve.py --quick
	$(PY) benchmarks/bench_trace_overhead.py --quick

# Serving-path benchmark alone: cold/warm query latency + throughput of
# an in-process repro-serve instance (see DESIGN.md §13).
serve-bench:
	$(PY) benchmarks/bench_serve.py --quick
