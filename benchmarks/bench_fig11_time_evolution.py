"""Figure 11 — Evolving cells and density-contrast distributions.

Paper: tessellations at time steps 11, 21, 31 of the 32^3 run; histograms
of cell density contrast delta = (d - mean)/mean with ranges expanding
from [-0.77, 0.59] to [-0.72, 15], skewness 1.6 -> 2 -> 4.5 and kurtosis
4.1 -> 5.5 -> 23: the early field is near-Gaussian and both moments grow
as structure forms.

Expected shape here: the delta range expands monotonically, skewness and
kurtosis increase monotonically from a near-Gaussian start.
"""


from repro.analysis import density_contrast, histogram
from conftest import write_report

PAPER = {11: (1.6, 4.1), 21: (2.0, 5.5), 31: (4.5, 23.0)}


def test_fig11_density_contrast_evolution(benchmark, evolved_snapshot_32):
    cfg, tessellations = evolved_snapshot_32

    def compute():
        rows = []
        for step in (11, 21, 31):
            tess = tessellations[step]
            delta = density_contrast(tess.volumes())
            h = histogram(delta, bins=100)
            rows.append((step, delta.min(), delta.max(), h.skewness, h.kurtosis))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [
        "FIGURE 11 — CELL DENSITY-CONTRAST EVOLUTION (32^3 run)",
        "",
        f"{'step':>5} {'a':>6} {'delta range':>22} {'skew':>7} {'kurt':>8} "
        f"{'paper skew':>11} {'paper kurt':>11}",
    ]
    for step, dmin, dmax, skew, kurt in rows:
        a = cfg.a_init + step * (cfg.a_final - cfg.a_init) / cfg.nsteps
        ps, pk = PAPER[step]
        lines.append(
            f"{step:5d} {a:6.3f} [{dmin:8.2f}, {dmax:9.2f}] "
            f"{skew:7.2f} {kurt:8.2f} {ps:11.1f} {pk:11.1f}"
        )
    lines += [
        "",
        "paper shape: range of delta expands; skewness and kurtosis grow",
        "monotonically from a near-Gaussian start as halos collapse.",
    ]
    write_report("fig11_time_evolution", lines)

    skews = [r[3] for r in rows]
    kurts = [r[4] for r in rows]
    dmaxs = [r[2] for r in rows]
    assert skews == sorted(skews)
    assert kurts == sorted(kurts)
    assert dmaxs == sorted(dmaxs)
    assert skews[0] > 0  # already right-skewed, like the paper's t=11
    assert kurts[-1] > 2 * kurts[0]  # strong late-time growth
