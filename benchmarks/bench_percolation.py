"""§III-D application — percolation of the void network.

The paper lists percolation studies among the uses of its component and
Minkowski machinery (citing Shandarin's excursion-set analysis of void
shapes [22]).  This bench traces the percolation curve of the evolved
snapshot's void network — largest-component fraction vs volume threshold —
and locates the fragmentation transition.
"""

import numpy as np

from repro.analysis.percolation import percolation_curve, percolation_threshold
from conftest import write_report


def test_percolation_of_void_network(benchmark, evolved_snapshot_32):
    cfg, tessellations = evolved_snapshot_32
    tess = tessellations[100]
    vmax = float(tess.volumes().max())

    def compute():
        fractions = np.linspace(0.0, 0.5, 11)
        curve = percolation_curve(tess, fractions * vmax)
        threshold = percolation_threshold(tess)
        return curve, threshold

    curve, threshold = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [
        "PERCOLATION OF THE VOID NETWORK (32^3 evolved snapshot, §III-D)",
        f"max cell volume: {vmax:.2f} (Mpc/h)^3",
        "",
        f"{'vmin/vmax':>10} {'kept':>7} {'components':>11} {'largest frac':>13}",
    ]
    for p in curve:
        lines.append(
            f"{p.vmin / vmax:10.2f} {p.kept_cells:7d} {p.num_components:11d} "
            f"{p.largest_fraction:13.3f}"
        )
    lines += [
        "",
        f"percolation transition at vmin = {threshold:.2f} "
        f"({threshold / vmax:.0%} of the max cell volume)",
        "below it one void spans the kept network; above it the network",
        "fragments into the distinct voids of Figure 9.",
    ]
    write_report("percolation", lines)

    # The network starts percolating and ends fragmented.
    assert curve[0].percolates
    assert not curve[-1].percolates
    assert 0.0 < threshold < vmax