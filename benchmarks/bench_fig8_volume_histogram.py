"""Figure 8 — Histogram of cell volume at t = 99 (end of the run).

Paper: 32^3 particles, 100 time steps; 100 bins over [0.02, 2] (Mpc/h)^3;
the distribution is heavily skewed toward zero (skewness 8.9, kurtosis 85)
with 75% of the cells in the smallest 10% of the volume range.

Same configuration here.  Expected shape: strong right skew (skewness >>
1, kurtosis >> 3), peak in the lowest bins, and a dominant fraction of
cells in the smallest tenth of the volume range.
"""

import numpy as np

from repro.analysis import histogram, volume_range_concentration
from conftest import write_report


def test_fig8_cell_volume_histogram(benchmark, evolved_snapshot_32):
    cfg, tessellations = evolved_snapshot_32
    tess = tessellations[100]

    def compute():
        vols = tess.volumes()
        h = histogram(vols, bins=100, value_range=(0.02, 2.0))
        frac = volume_range_concentration(vols, 0.1)
        return vols, h, frac

    vols, h, frac = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [
        "FIGURE 8 — CELL VOLUME HISTOGRAM AT t=99 (32^3, 100 steps)",
        f"cells: {len(vols)}   bins: 100   display range: [0.02, 2.0] (Mpc/h)^3",
        f"skewness: {h.skewness:.1f}   (paper: 8.9)",
        f"kurtosis: {h.kurtosis:.1f}   (paper: 85)",
        f"smallest-10%-of-range fraction: {100 * frac:.0f}%   (paper: 75%)",
        "",
        "bin series (center, count) — every 5th bin:",
    ]
    for center, count in h.rows()[::5]:
        bar = "#" * int(50 * count / max(int(h.counts.max()), 1))
        lines.append(f"  {center:6.3f} {count:7d} {bar}")
    write_report("fig8_volume_histogram", lines)

    # Shape assertions mirroring the paper's observations.  PM-only
    # forces produce a softer tail than the paper's tree-augmented runs,
    # so the thresholds are qualitative (skewed, peaked, concentrated).
    assert h.skewness > 1.5  # heavy right skew
    assert h.kurtosis > 8.0
    assert frac > 0.5  # most cells in the smallest tenth of the range
    # The distribution peaks in the lowest fifth of the displayed range.
    assert int(np.argmax(h.counts)) < 20
