"""Ablation — ghost size vs exchange cost vs accuracy (paper §IV-A).

The paper: "we are investigating the tradeoff between ghost zone size,
neighborhood exchange time, and accuracy.  For example, it may be desirable
to exchange fewer particles with a smaller ghost zone if the reduction in
accuracy is insignificant."  This bench quantifies exactly that tradeoff:
for each ghost size, the number of exchanged particles, the exchange and
compute CPU time, and the accuracy against a serial reference.
"""

import numpy as np

from repro.core import match_tessellations, tessellate
from repro.diy.bounds import Bounds
from conftest import write_report

GHOSTS = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0)
NBLOCKS = 8


def test_ablation_ghost_tradeoff(benchmark):
    rng = np.random.default_rng(5)
    box = 16.0
    pts = rng.uniform(0, box, size=(4096, 3))
    domain = Bounds.cube(box)

    def sweep():
        serial = tessellate(pts, domain, nblocks=1, ghost=5.0)
        rows = []
        for ghost in GHOSTS:
            par = tessellate(pts, domain, nblocks=NBLOCKS, ghost=ghost)
            m = match_tessellations(par, serial)
            rows.append(
                (
                    ghost,
                    m.accuracy_percent,
                    par.timings.exchange_cpu,
                    par.timings.compute_cpu,
                    par.num_cells,
                )
            )
        return serial, rows

    serial, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "ABLATION — GHOST SIZE vs EXCHANGE COST vs ACCURACY (paper §IV-A)",
        f"4096 Poisson points, box {16.0}, {NBLOCKS} blocks; serial reference "
        f"{serial.num_cells} cells",
        "",
        f"{'ghost':>6} {'accuracy %':>11} {'exchange_s':>11} {'compute_s':>10} {'cells':>7}",
    ]
    for ghost, acc, exch, comp, cells in rows:
        lines.append(f"{ghost:6.1f} {acc:11.2f} {exch:11.4f} {comp:10.3f} {cells:7d}")
    lines += [
        "",
        "tradeoff: accuracy saturates at 100% while exchange and compute",
        "cost keep growing with the ghost volume — the paper's motivation",
        "for choosing the smallest sufficient ghost.",
    ]
    write_report("ablation_ghost_tradeoff", lines)

    accs = [r[1] for r in rows]
    comps = [r[3] for r in rows]
    assert accs == sorted(accs)  # accuracy monotone in ghost
    assert accs[-1] == 100.0
    # Compute cost grows with ghost volume (more local points per block).
    assert comps[-1] > comps[0]
