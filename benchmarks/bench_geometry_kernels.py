"""Geometry-engine kernels: Delaunay-direct vs scipy-Voronoi flat engine.

PR 7 replaced the flat engine's ``scipy.spatial.Voronoi`` call with a
Delaunay-direct construction (:class:`~repro.geometry.voronoi_delaunay.
DelaunayVoronoi`): circumcenters, ridge rings, areas and volumes are all
derived from one ``scipy.spatial.Delaunay`` plus batched NumPy / native C
kernels, skipping qhull's ``v`` mode entirely.  This bench times both
engines on the Table II-style uniform workload (same points, same box)
and reports the ratio; the perf gate encodes the acceptance bar as the
absolute limit ``geom.delaunay_over_flat <= 0.4`` (>= 2.5x speedup).

The timing only counts if the engines agree, so each run also asserts
parity: identical complete masks, identical adjacency edge sets, and
volumes/areas matching to 1e-9 relative on complete cells.

Run directly (``python benchmarks/bench_geometry_kernels.py [--quick]``)
or via pytest / the perf gate.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import write_report  # noqa: E402

from repro import _native
from repro.diy.bounds import Bounds
from repro.geometry.voronoi_delaunay import DelaunayVoronoi
from repro.geometry.voronoi_flat import FlatVoronoi


def _time(fn, repeats: int) -> tuple[float, object]:
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _edge_set(engine) -> set[tuple[int, int]]:
    s = np.sort(engine.ridge_sites, axis=1)
    return set(map(tuple, s.tolist()))


def _assert_parity(dv: DelaunayVoronoi, fv: FlatVoronoi) -> None:
    assert np.array_equal(dv.complete, fv.complete), "complete masks differ"
    assert _edge_set(dv) == _edge_set(fv), "adjacency edge sets differ"
    done = dv.complete
    np.testing.assert_allclose(
        dv.volumes[done], fv.volumes[done], rtol=1e-9
    )
    np.testing.assert_allclose(dv.areas[done], fv.areas[done], rtol=1e-9)


def run_bench(quick: bool = True) -> tuple[list[str], dict]:
    """Time both flat engines on the same block; return (lines, metrics)."""
    np_side = 16 if quick else 24
    repeats = 3 if quick else 2
    n = np_side**3
    box = float(np_side)
    rng = np.random.default_rng(7)
    pts = rng.uniform(0.0, box, size=(n, 3))
    bounds = Bounds.cube(box)

    flat_s, fv = _time(lambda: FlatVoronoi(pts, bounds), repeats)
    delaunay_s, dv = _time(lambda: DelaunayVoronoi(pts, bounds), repeats)
    _assert_parity(dv, fv)

    ratio = delaunay_s / flat_s if flat_s > 0 else np.inf
    speedup = flat_s / delaunay_s if delaunay_s > 0 else np.inf
    native = _native.available()
    lines = [
        f"geometry kernels: {n} sites ({np_side}^3), "
        f"{dv.num_ridges} finite ridges, best of {repeats}, "
        f"native={'yes' if native else 'no (' + str(_native.build_error()) + ')'}",
        f"  scipy-Voronoi flat engine  {flat_s:8.4f} s",
        f"  Delaunay-direct engine     {delaunay_s:8.4f} s",
        f"  ratio (delaunay/flat)      {ratio:8.4f}   ({speedup:.1f}x speedup)",
    ]
    data = {
        "np_side": np_side,
        "num_ridges": dv.num_ridges,
        "native": native,
        "flat_s": flat_s,
        "delaunay_s": delaunay_s,
        "delaunay_over_flat": ratio,
    }
    return lines, data


def test_geometry_kernels_quick():
    """Pytest entry point: quick mode, persisted like the other benches."""
    lines, data = run_bench(quick=True)
    write_report("geometry_kernels", lines)
    assert data["delaunay_over_flat"] <= 0.6  # perf gate holds the 0.4 bar


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--quick", action="store_true",
                   help="16^3 sites instead of the acceptance-scale 24^3")
    args = p.parse_args(argv)
    lines, _ = run_bench(quick=args.quick)
    write_report("geometry_kernels", lines)
    return 0


if __name__ == "__main__":
    sys.exit(main())
