"""Communication layer — linear vs. tree collectives, dense vs. sparse exchange.

Not a paper figure: this bench validates the scalability claims of the
rebuilt ``repro.diy.comm`` layer (paper §III-C runs the same patterns
through DIY/MPI at up to 128K cores).  Two tables:

* **Collectives** — per-rank message counts and wall time for bcast and
  allreduce, linear (root-funneled, O(P) at the root) against tree
  (binomial / recursive doubling, O(log P) everywhere), measured with the
  communicator's own CommStats counters.
* **Neighbor exchange** — dense alltoall (O(P) messages per rank) against
  the sparse path (messages only to ranks with queued payloads plus an
  O(log P) header round) on a face-neighbor pattern over a periodic 4x4x4
  decomposition.
"""

import math
import time

import numpy as np

from repro.diy.bounds import Bounds
from repro.diy.comm import run_parallel
from repro.diy.decomposition import Decomposition
from repro.diy.exchange import NeighborExchanger
from conftest import write_report

RANK_COUNTS = (2, 4, 8, 16, 32)
REPS = 25


def _collective_worker(comm):
    payload = np.arange(256, dtype=np.float64)
    out = {}
    for name, tree_fn, lin_fn in (
        (
            "bcast",
            lambda: comm.bcast(payload if comm.rank == 0 else None, root=0),
            lambda: comm.linear_bcast(payload if comm.rank == 0 else None, root=0),
        ),
        (
            "allreduce",
            lambda: comm.allreduce(payload),
            lambda: comm.linear_allreduce(payload),
        ),
    ):
        for algo, fn in (("tree", tree_fn), ("linear", lin_fn)):
            comm.barrier()
            before = comm.stats.snapshot()
            t0 = time.perf_counter()
            for _ in range(REPS):
                fn()
            elapsed = time.perf_counter() - t0
            delta = comm.stats.since(before)
            out[(name, algo)] = (delta.msgs_sent / REPS, elapsed / REPS)
    return out


def _exchange_worker(comm, decomp, dense):
    ex = NeighborExchanger(decomp, comm)
    gid = comm.rank
    payload = np.arange(64, dtype=np.float64)
    face_links = [
        l for l in decomp.block(gid).links if np.abs(l.direction).sum() == 1
    ]
    comm.barrier()
    before = comm.stats.snapshot()
    t0 = time.perf_counter()
    for _ in range(REPS):
        for link in face_links:
            ex.enqueue(gid, link, (gid, payload))
        inbox = ex.exchange(dense=dense)
        assert len(inbox[gid]) == len(face_links)
    elapsed = time.perf_counter() - t0
    delta = comm.stats.since(before)
    return delta.msgs_sent / REPS, elapsed / REPS


def test_bench_comm_collectives():
    lines = [
        "Collective algorithms: per-rank message counts and time per call",
        "(max over ranks; msgs/rank shows O(P) linear vs O(log P) tree)",
        "",
        f"{'P':>4} {'op':<10} {'linear msgs':>12} {'tree msgs':>10} "
        f"{'ceil(log2 P)':>13} {'linear ms':>10} {'tree ms':>9}",
    ]
    for nranks in RANK_COUNTS:
        per_rank = run_parallel(nranks, _collective_worker)
        for op in ("bcast", "allreduce"):
            lin_msgs = max(r[(op, "linear")][0] for r in per_rank)
            tree_msgs = max(r[(op, "tree")][0] for r in per_rank)
            lin_ms = max(r[(op, "linear")][1] for r in per_rank) * 1e3
            tree_ms = max(r[(op, "tree")][1] for r in per_rank) * 1e3
            lines.append(
                f"{nranks:>4} {op:<10} {lin_msgs:>12.1f} {tree_msgs:>10.1f} "
                f"{math.ceil(math.log2(nranks)):>13d} {lin_ms:>10.3f} {tree_ms:>9.3f}"
            )
            # The headline acceptance: busiest-rank traffic collapses from
            # O(P) to O(log P).
            assert lin_msgs >= nranks - 1
            assert tree_msgs <= 2 * math.ceil(math.log2(nranks)) + 1

    nranks = 64
    decomp = Decomposition(Bounds.cube(8.0), (4, 4, 4), periodic=True)
    lines += [
        "",
        f"Neighbor exchange, periodic 4x4x4 ({nranks} ranks), "
        "6 face neighbors per block:",
        f"{'path':<8} {'msgs/rank/round':>16} {'ms/round (max)':>15}",
    ]
    results = {}
    for label, dense in (("dense", True), ("sparse", False)):
        per_rank = run_parallel(nranks, _exchange_worker, decomp, dense)
        msgs = max(m for m, _ in per_rank)
        ms = max(t for _, t in per_rank) * 1e3
        results[label] = msgs
        lines.append(f"{label:<8} {msgs:>16.1f} {ms:>15.3f}")
    assert results["dense"] == nranks - 1
    # 6 payload sends + one recursive-doubling header allreduce.
    assert results["sparse"] < results["dense"] / 2

    write_report("comm_collectives", lines)
