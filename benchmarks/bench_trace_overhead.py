"""Trace overhead — cost of the observability subsystem on a real run.

The tracing contract (repro.observe) is "near-zero when disabled, cheap
when enabled": hot paths guard on a module-level flag, so a production run
that never passes ``--trace`` pays one attribute load + branch per
potential span.  This bench quantifies both sides:

* **disabled span call** — nanoseconds per ``trace.span(...)`` call with
  tracing off (the cost every untraced run pays at each instrumented
  site);
* **enabled vs disabled run** — best-of-N wall-clock of the acceptance
  workload (2 ranks, 16^3 particles, a few steps with an in situ
  tessellation) with tracing off and on.  The overhead percentage is the
  number gated in CI: the perf gate fails if it exceeds 5%.

Run directly (``python benchmarks/bench_trace_overhead.py [--quick]``) or
via pytest (quick mode).  Results land in
``benchmarks/results/trace_overhead.txt``; the machine-readable form is
consumed by :mod:`benchmarks.perf_gate`.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import write_report  # noqa: E402

NRANKS = 2
NP_SIDE = 16


def _timed_run(nsteps: int) -> float:
    """Wall-clock of one acceptance-shaped run (sim + in situ tessellation)."""
    from repro.hacc import SimulationConfig
    from repro.insitu import run_simulation_with_tools

    cfg = SimulationConfig(np_side=NP_SIDE, nsteps=nsteps, seed=5)
    spec = {"tools": [
        {"tool": "tessellation", "every": nsteps, "params": {"ghost": 2.0}},
    ]}
    t0 = time.perf_counter()
    run_simulation_with_tools(cfg, spec, nranks=NRANKS)
    return time.perf_counter() - t0


def _disabled_span_ns(calls: int = 200_000) -> float:
    """Nanoseconds per ``trace.span`` call with tracing disabled."""
    from repro.observe import trace

    assert not trace.enabled()
    span = trace.span  # the attribute load callers pay
    t0 = time.perf_counter()
    for _ in range(calls):
        with span("bench", rank=0):
            pass
    elapsed = time.perf_counter() - t0
    return elapsed / calls * 1e9


def run_bench(quick: bool = False) -> tuple[list[str], dict]:
    """Measure overhead; returns ``(report_lines, data)``.

    ``data`` carries ``overhead_pct`` (enabled vs disabled wall), the
    best-of-N wall seconds for both modes, the disabled per-call cost in
    nanoseconds, and the events recorded on the enabled run.
    """
    from repro import observe

    nsteps = 4 if quick else 10
    repeats = 3

    observe.disable()
    ns_per_call = _disabled_span_ns(50_000 if quick else 200_000)

    _timed_run(nsteps)  # warm-up: imports, qhull, allocator
    wall_off = min(_timed_run(nsteps) for _ in range(repeats))

    observe.enable()
    observe.reset_all()
    wall_on = min(_timed_run(nsteps) for _ in range(repeats))
    nevents = observe.num_events()
    dropped = observe.dropped_events()
    observe.disable()
    observe.reset_all()

    overhead_pct = (wall_on - wall_off) / wall_off * 100.0

    lines = [
        "Trace overhead: repro.observe enabled vs disabled",
        f"workload: {NP_SIDE}^3 particles, {nsteps} steps, {NRANKS} ranks, "
        f"one in situ tessellation (best of {repeats})",
        "",
        f"disabled span call:    {ns_per_call:8.0f} ns "
        f"(flag check + no-op context manager)",
        f"wall, tracing off:     {wall_off:8.3f} s",
        f"wall, tracing on:      {wall_on:8.3f} s   "
        f"({nevents} spans recorded, {dropped} dropped)",
        f"overhead:              {overhead_pct:+8.2f} %   (CI gate: < 5%)",
    ]
    data = {
        "workload": {
            "np_side": NP_SIDE, "nsteps": nsteps,
            "nranks": NRANKS, "repeats": repeats,
        },
        "disabled_span_ns": ns_per_call,
        "wall_off_s": wall_off,
        "wall_on_s": wall_on,
        "overhead_pct": overhead_pct,
        "events_recorded": nevents,
        "events_dropped": dropped,
    }
    return lines, data


def test_trace_overhead_quick():
    """Pytest entry point: the quick bench, persisted like the other benches."""
    lines, data = run_bench(quick=True)
    write_report("trace_overhead", lines)
    assert data["events_recorded"] > 0
    assert data["events_dropped"] == 0


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--quick", action="store_true",
                   help="fewer steps and span calls — CI smoke mode")
    args = p.parse_args(argv)
    lines, _ = run_bench(quick=args.quick)
    write_report("trace_overhead", lines)
    return 0


if __name__ == "__main__":
    sys.exit(main())
