"""Figure 9 — Progressive volume thresholds reveal connected voids.

Paper: culling cells below minimum-volume thresholds of 0.0 / 0.5 / 0.75 /
1.0 (Mpc/h)^3 — i.e. 0%, 25%, 37%, 50% of their maximum cell volume
(~2.005) — on the 32^3 snapshot reveals a small number (~7-10) of distinct
connected components, the voids.

Absolute volumes depend on the force solver's small-scale power, so the
thresholds here are expressed as the same *fractions of the maximum cell
volume*.  Expected shape: the kept-cell count falls as the threshold
rises; at zero threshold everything percolates into one component; at the
paper's threshold fractions the void population resolves into a handful
to a few dozen distinct components.
"""

import numpy as np

from repro.analysis import connected_components
from conftest import write_report

THRESHOLD_FRACTIONS = (0.0, 0.25, 0.37, 0.5)


def test_fig9_progressive_thresholds(benchmark, evolved_snapshot_32):
    cfg, tessellations = evolved_snapshot_32
    tess = tessellations[100]
    vmax = float(tess.volumes().max())

    def sweep():
        out = []
        for frac in THRESHOLD_FRACTIONS:
            vmin = frac * vmax
            lab = connected_components(tess, vmin=vmin)
            sizes = (
                np.sort(lab.sizes())[::-1]
                if lab.num_components
                else np.empty(0, int)
            )
            out.append((frac, vmin, len(lab.site_ids), lab.num_components, sizes[:8]))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "FIGURE 9 — PROGRESSIVE VOLUME THRESHOLDS (32^3, 100 steps)",
        f"total cells: {tess.num_cells}   max cell volume: {vmax:.2f} (Mpc/h)^3",
        "(paper thresholds 0.0/0.5/0.75/1.0 with max ~2.005 = the same",
        " fractions of the maximum: 0%/25%/37%/50%)",
        "",
        f"{'frac':>5} {'vmin':>8} {'kept':>7} {'components':>11}  largest sizes",
    ]
    for frac, vmin, kept, ncomp, top in rows:
        lines.append(
            f"{frac:5.2f} {vmin:8.2f} {kept:7d} {ncomp:11d}  {top.tolist()}"
        )
    lines += [
        "",
        "paper shape: kept cells decrease with the threshold; the voids",
        "resolve into a small population of distinct components (paper: ~7-10).",
    ]
    write_report("fig9_threshold_components", lines)

    kept_counts = [kept for _, _, kept, _, _ in rows]
    assert kept_counts == sorted(kept_counts, reverse=True)
    assert rows[0][3] == 1  # no threshold -> one percolating component
    # At the paper's threshold fractions, several distinct voids appear.
    assert all(ncomp > 1 for _, _, _, ncomp, _ in rows[1:])
    assert 5 <= max(ncomp for _, _, _, ncomp, _ in rows[1:]) <= 200
