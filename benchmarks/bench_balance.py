"""Dynamic load balancing — clustered-IC imbalance and critical-path wall.

The regular decomposition assigns equal-volume blocks, so a clustered
late-time snapshot (most particles in a handful of clumps crowded into one
octant) loads one block with several times its fair share and the
strong-scaling wins of the parallel tessellation evaporate: the critical
path is the most loaded rank.  This bench builds exactly that adversarial
cloud (:func:`repro.balance.clustered_points`, one cluster straddling the
periodic seam), measures the static max/mean particle imbalance (>= 2.0 by
construction), rebalances with the SFC repartitioner, and times the
4-rank process-backend distributed tessellation both ways.

Metrics fed to the perf gate (:mod:`benchmarks.perf_gate`):

* ``balance.post_imbalance`` — max/mean after rebalancing; absolute limit
  1.25 (the PR 8 acceptance bar).
* ``balance.r4_balanced_over_static`` — balanced / static critical-path
  wall at 4 process ranks; absolute limit 1.0 (rebalancing must win).
* ``balance.static_imbalance_neg`` — *negated* static imbalance with an
  absolute limit of -2.0, so the gate also fails if the workload stops
  being imbalanced enough to prove anything (a max-cap on the negation is
  a min-bar on the value).

Timing follows the backend-scaling bench: one untimed warmup leases the
persistent rank pool, then best-of-N; ``crit_wall_s`` is max per-rank
thread-CPU plus unattributed runtime overhead — the honest metric on a
shared/CI box.  Results land in ``benchmarks/results/balance.txt``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import write_report  # noqa: E402

NRANKS = 4
BOX = 16.0
GRID = 16


def _tess_worker(comm, decomp, pts, pid, ghost):
    """One rank: distributed tessellation + void finding (the in situ shape)."""
    from repro.analysis.voids import find_voids_distributed
    from repro.core.tessellate import tessellate_distributed

    cpu0 = time.thread_time()
    mine = decomp.locate(pts) == comm.rank
    block, _, _ = tessellate_distributed(
        comm, decomp, pts[mine], pid[mine], ghost=ghost
    )
    catalog = find_voids_distributed(comm, block)
    cpu_s = time.thread_time() - cpu0
    ncells = comm.allreduce(block.num_cells)
    return ncells, int(mine.sum()), cpu_s, catalog.num_voids


def _one_attempt(nranks, decomp, pts, pid, ghost):
    from repro.diy.comm import run_parallel

    t0 = time.perf_counter()
    results = run_parallel(nranks, _tess_worker, decomp, pts, pid, ghost,
                           backend="process")
    elapsed = time.perf_counter() - t0
    rank_cpu = [r[2] for r in results]
    crit = max(rank_cpu) + max(elapsed - sum(rank_cpu), 0.0)
    return elapsed, crit, max(rank_cpu), results


def _timed_pair(nranks, decomps, pts, pid, ghost, repeats):
    """Warmup + interleaved best-of-N over both layouts.

    Attempts alternate static/balanced so slow drift in background load
    (this bench runs after several others in the perf gate) penalizes
    both layouts equally instead of whichever happens to run second.
    The critical-path wall is computed *per attempt* and the minimum
    kept: a contention spike inflates both that attempt's wall and its
    per-rank CPU, so picking rank CPUs from the best-*wall* attempt
    would still let one noisy run through, while the attempt-wise min
    filters it.
    """
    from repro.diy.comm import run_parallel

    out = []
    for decomp in decomps:  # warmup: pool fork + imports + first touch
        run_parallel(nranks, _tess_worker, decomp, pts, pid, ghost,
                     backend="process")
        out.append({"wall_s": float("inf"), "crit_wall_s": float("inf"),
                    "cpu_max_s": float("inf")})
    for _ in range(repeats):
        for decomp, acc in zip(decomps, out):
            wall, crit, cpu, results = _one_attempt(
                nranks, decomp, pts, pid, ghost
            )
            acc["wall_s"] = min(acc["wall_s"], wall)
            acc["crit_wall_s"] = min(acc["crit_wall_s"], crit)
            acc["cpu_max_s"] = min(acc["cpu_max_s"], cpu)
            # deterministic outputs: any attempt will do
            acc["cells"] = results[0][0]
            acc["counts"] = [r[1] for r in results]
            acc["voids"] = results[0][3]
    return out


def run_bench(quick: bool = False) -> tuple[list[str], dict]:
    """Run the bench; returns ``(report_lines, data)`` for the perf gate."""
    import numpy as np

    from repro.balance import (
        clustered_points,
        compute_cell_counts,
        load_imbalance,
        rebalance_decomposition,
    )
    from repro.diy.bounds import Bounds
    from repro.diy.decomposition import Decomposition

    n = 12000 if quick else 24000
    repeats = 4
    domain = Bounds.cube(BOX)
    # Broad clumps (sigma = 0.12 box) over a 25% uniform background: the
    # hot static block still holds ~60% of the particles (max/mean >= 2.3),
    # but the ghost shell a block imports where an SFC cut crosses a clump
    # stays a thin slab instead of swallowing the whole cluster — with the
    # needle-thin default clumps the certifying ghost radius (set by the
    # sparse background's cell size) exceeds the clump width and every
    # boundary rank re-triangulates its neighbors' clusters, which buries
    # the balance win under duplicated Delaunay work.  Seed 14 places the
    # off-seam clumps deepest in one block.
    pts = clustered_points(
        n, BOX, seed=14, width_fraction=0.12, background_fraction=0.25
    )
    pid = np.arange(n, dtype=np.int64)
    # Smallest radius that certifies every cell for both layouts: parity
    # below demands the full 100%-complete tessellation on each.
    ghost = 2.5 * (domain.volume / n) ** (1.0 / 3.0)

    static = Decomposition.regular(domain, NRANKS, periodic=True)
    static_counts = np.bincount(static.locate(pts), minlength=NRANKS)
    static_imb = load_imbalance(static_counts)["max_over_mean"]

    hist = compute_cell_counts(pts, domain, GRID)
    balanced = rebalance_decomposition(domain, hist, NRANKS, periodic=True)
    post_counts = np.bincount(balanced.locate(pts), minlength=NRANKS)
    post_imb = load_imbalance(post_counts)["max_over_mean"]

    s, b = _timed_pair(NRANKS, (static, balanced), pts, pid, ghost, repeats)
    ratio = b["crit_wall_s"] / s["crit_wall_s"]

    lines = [
        "Dynamic load balancing: clustered IC, static vs SFC-rebalanced",
        f"workload: {n} particles, 5 clumps + 25% background, box {BOX}, "
        f"{NRANKS} process ranks, ghost {ghost:.2f}, coarse grid {GRID}^3",
        "",
        f"{'decomposition':>13} {'imbalance':>9} {'wall_s':>8} "
        f"{'crit_s':>8} {'cells':>6}  per-rank counts",
        f"{'static':>13} {static_imb:>9.3f} {s['wall_s']:>8.3f} "
        f"{s['crit_wall_s']:>8.3f} {s['cells']:>6}  {s['counts']}",
        f"{'balanced':>13} {post_imb:>9.3f} {b['wall_s']:>8.3f} "
        f"{b['crit_wall_s']:>8.3f} {b['cells']:>6}  {b['counts']}",
        "",
        f"max/mean imbalance {static_imb:.3f} -> {post_imb:.3f} "
        f"(gate: post <= 1.25, static >= 2.0)",
        f"crit-wall balanced/static = {ratio:.3f} "
        f"({'wins' if ratio < 1.0 else 'LOSES'}; gate: < 1.0)",
    ]
    parity = s["cells"] == n and b["cells"] == n and s["voids"] == b["voids"]
    if not parity:
        lines.append(
            f"WARNING: parity broken — cells static {s['cells']} / "
            f"balanced {b['cells']} (expected {n}), voids "
            f"{s['voids']} vs {b['voids']}"
        )
    data = {
        "n": n,
        "static_imbalance": static_imb,
        "post_imbalance": post_imb,
        "static_crit_s": s["crit_wall_s"],
        "balanced_crit_s": b["crit_wall_s"],
        "balanced_over_static": ratio,
        "cells_match": parity,
    }
    return lines, data


def test_balance_bench_quick():
    """Pytest entry point: quick mode, persisted like the other benches."""
    lines, data = run_bench(quick=True)
    write_report("balance", lines)
    assert data["cells_match"]
    assert data["static_imbalance"] >= 2.0
    assert data["post_imbalance"] <= 1.25


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--quick", action="store_true",
                   help="12000-particle cloud — CI smoke mode")
    args = p.parse_args(argv)
    lines, _ = run_bench(quick=args.quick)
    write_report("balance", lines)
    return 0


if __name__ == "__main__":
    sys.exit(main())
