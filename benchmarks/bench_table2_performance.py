"""Table II — Performance of one in situ tessellation after a simulation.

Paper: particle counts 128^3-1024^3 on 128-16384 BG/P nodes; columns are
total time = simulation + tessellation, with the tessellation itemized
into particle exchange / Voronoi computation / output, plus the output
file size (with the smallest-volume cells culled).  Key shapes: the
tessellation is a small fraction of the total; exchange time is
negligible; the serial Voronoi computation dominates tess time; output
size grows linearly with particle count.

Here: 12^3-20^3 particles on 1-8 rank-threads.  Per-rank times are
thread-CPU seconds (the faithful stand-in for per-node time on a real
distributed machine — wall-clock in one GIL-bound process is not).
"""


from repro.core.tessellate import tessellate_distributed
from repro.diy.comm import run_parallel
from repro.hacc import HACCSimulation, SimulationConfig
from conftest import write_report

# (np_side, nsteps) — steps shrink as size grows, like the paper's 100/50/25.
SIZES = ((12, 40), (16, 20), (20, 10))
RANK_COUNTS = (1, 2, 4, 8)


def run_configuration(np_side: int, nsteps: int, nranks: int, out_path: str):
    cfg = SimulationConfig(np_side=np_side, nsteps=nsteps, seed=3)
    # Culling threshold 'from experience' (paper: smallest 10% of the
    # volume range): half the mean cell volume removes the dense majority.
    vmin = 0.5 * cfg.domain().volume / cfg.num_particles

    def worker(comm):
        import time

        sim = HACCSimulation(cfg, comm=comm)
        c0 = time.thread_time()
        sim.run()
        sim_cpu = time.thread_time() - c0
        block, timings, nbytes = tessellate_distributed(
            comm,
            sim.decomposition,
            sim.positions_mpc(),
            sim.local.ids,
            ghost=4.0,
            vmin=vmin,
            output_path=out_path,
        )
        return sim_cpu, timings, nbytes, block.num_cells

    results = run_parallel(nranks, worker)
    sim_cpu = max(r[0] for r in results)
    timings = results[0][1]
    for r in results[1:]:
        timings = timings.max_with(r[1])
    nbytes = results[0][2]
    ncells = sum(r[3] for r in results)
    return sim_cpu, timings, nbytes, ncells


def test_table2_performance(benchmark, tmp_path):
    def sweep():
        rows = []
        for np_side, nsteps in SIZES:
            for nranks in RANK_COUNTS:
                out = str(tmp_path / f"t{np_side}_{nranks}.tess")
                sim_cpu, t, nbytes, ncells = run_configuration(
                    np_side, nsteps, nranks, out
                )
                rows.append(
                    dict(
                        particles=np_side**3,
                        steps=nsteps,
                        ranks=nranks,
                        sim_s=sim_cpu,
                        tess_s=t.total_cpu,
                        exch_s=t.exchange_cpu,
                        voro_s=t.compute_cpu,
                        out_s=t.output_cpu,
                        total_s=sim_cpu + t.total_cpu,
                        bytes=nbytes,
                        cells=ncells,
                    )
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "TABLE II — PERFORMANCE DATA (per-rank thread-CPU seconds)",
        "",
        f"{'particles':>10} {'steps':>6} {'ranks':>6} {'total':>8} {'sim':>8} "
        f"{'tess':>7} {'exch':>6} {'voro':>7} {'out':>6} {'size MB':>8} {'cells':>7}",
    ]
    for r in rows:
        lines.append(
            f"{r['particles']:10d} {r['steps']:6d} {r['ranks']:6d} "
            f"{r['total_s']:8.2f} {r['sim_s']:8.2f} {r['tess_s']:7.2f} "
            f"{r['exch_s']:6.3f} {r['voro_s']:7.2f} {r['out_s']:6.3f} "
            f"{r['bytes'] / 1e6:8.2f} {r['cells']:7d}"
        )
    tess_frac = [r["tess_s"] / r["total_s"] for r in rows]
    lines += [
        "",
        f"tess fraction of total: {min(tess_frac):.1%} .. {max(tess_frac):.1%} "
        "(paper: 1-10%)",
        "NOTE: the sim/tess cost ratio inverts on this substrate — the",
        "NumPy PM simulation is vectorized C while Voronoi assembly is",
        "Python-heavy, and the paper ran 25-100 full-force steps per",
        "tessellation.  The reproduced shapes are the *within-tess*",
        "breakdown: exchange negligible, serial Voronoi computation",
        "dominant, output minor but growing, size linear in particles.",
    ]
    write_report("table2_performance", lines)

    # Paper shape assertions.
    for r in rows:
        assert r["exch_s"] < 0.25 * max(r["voro_s"], 1e-9)  # exchange negligible
        assert r["voro_s"] >= max(r["out_s"], r["exch_s"])  # compute dominates
    # Output size grows with particle count (same rank count).
    for nranks in RANK_COUNTS:
        sizes = [r["bytes"] for r in rows if r["ranks"] == nranks]
        assert sizes == sorted(sizes)
    # Voronoi compute per rank shrinks as ranks grow (strong scaling).
    for np_side, _ in SIZES:
        voro = [r["voro_s"] for r in rows if r["particles"] == np_side**3]
        assert voro[0] > voro[-1]
