"""Paper §III-C2 — Data-model statistics and output sizes.

Paper numbers for evolved HACC snapshots: ~15 faces per cell, ~5 vertices
per face, ~35 vertex references per cell, each vertex shared by ~5 cells;
a full tessellation costs ~450 bytes/particle and a volume-culled one
~100 bytes/particle (vs 40 B/particle for a raw HACC checkpoint); ~7% of
the bytes are floating-point geometry and ~93% mesh connectivity.

This repo stores float64 geometry and int32/int64 connectivity (the paper
used 32-bit floats), so absolute bytes/particle run higher; the structural
ratios — faces/cell, vertices/face, culled-vs-full reduction, geometry
fraction — are the reproduced quantities.
"""

import numpy as np

from repro.core import tessellate
from repro.analysis import volume_range_concentration
from repro.hacc.checkpoint import BYTES_PER_PARTICLE
from conftest import write_report


def test_datamodel_statistics(benchmark, evolved_snapshot_32, tmp_path):
    cfg, tessellations = evolved_snapshot_32
    tess = tessellations[100]
    vols = tess.volumes()
    vmin_10pct = float(vols.min() + 0.1 * (vols.max() - vols.min()))

    def compute():
        full_bytes = tess.write(str(tmp_path / "full.tess"))
        # Re-tessellate with the 10%-of-range cull (the paper's usual mode).
        pts = np.concatenate([b.sites for b in tess.blocks])
        ids = np.concatenate([b.site_ids for b in tess.blocks])
        culled = tessellate(
            pts,
            cfg.domain(),
            nblocks=4,
            ghost=4.0,
            ids=ids,
            periodic=False,
            vmin=vmin_10pct,
        )
        culled_bytes = culled.write(str(tmp_path / "culled.tess"))
        return full_bytes, culled, culled_bytes

    full_bytes, culled, culled_bytes = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    n_particles = cfg.num_particles
    faces_per_cell = np.mean([b.faces_per_cell() for b in tess.blocks])
    verts_per_face = np.mean([b.vertices_per_face() for b in tess.blocks])
    sharing = np.mean([b.vertex_sharing() for b in tess.blocks])
    refs_per_cell = faces_per_cell * verts_per_face
    geom_frac = np.mean(
        [b.size_report().geometry_fraction for b in tess.blocks]
    )

    lines = [
        "DATA MODEL — PAPER §III-C2 STATISTICS (32^3 evolved snapshot)",
        "",
        f"{'quantity':<38} {'here':>10} {'paper':>8}",
        f"{'faces per cell':<38} {faces_per_cell:>10.2f} {'~15':>8}",
        f"{'vertices per face':<38} {verts_per_face:>10.2f} {'~5':>8}",
        f"{'vertex refs per cell':<38} {refs_per_cell:>10.1f} {'~75':>8}",
        f"{'faces sharing each pooled vertex':<38} {sharing:>10.2f} {'':>8}",
        f"{'geometry fraction of bytes':<38} {geom_frac:>10.1%} {'~7%':>8}",
        f"{'full output B/particle':<38} {full_bytes / n_particles:>10.0f} {'~450':>8}",
        f"{'culled output B/particle':<38} {culled_bytes / n_particles:>10.0f} {'~100':>8}",
        f"{'culled cells kept':<38} {culled.num_cells / n_particles:>10.1%} {'':>8}",
        f"{'HACC checkpoint B/particle':<38} {BYTES_PER_PARTICLE:>10d} {'40':>8}",
        "",
        "(float64 geometry here vs the paper's float32; ratios are the",
        " reproduced shapes, absolute bytes run ~2x higher)",
    ]
    write_report("datamodel_sizes", lines)

    assert 13.0 < faces_per_cell < 18.0
    assert 4.0 < verts_per_face < 6.5
    assert geom_frac < 0.5  # connectivity dominates, as in the paper
    assert culled_bytes < 0.5 * full_bytes  # culling slashes output size
    # Most cells are in the smallest tenth of the range, so the cull is big.
    assert volume_range_concentration(vols, 0.1) > 0.5
