"""Ablation — compact connectivity encoding (paper §III-C2 investigation).

The paper notes 93% of tess output is mesh connectivity and cites Muigg et
al.'s efficient polyhedral-grid structure as future work.  This bench
measures the repo's compact encoding (float32 geometry + zig-zag/varint
delta connectivity) against the standard array encoding on an evolved
snapshot, alongside the paper's byte budgets.
"""

import numpy as np

from repro.core.compact import compact_decode, compact_encode
from repro.diy.mpi_io import pack_arrays
from conftest import write_report


def test_ablation_compact_encoding(benchmark, evolved_snapshot_32):
    cfg, tessellations = evolved_snapshot_32
    tess = tessellations[100]

    def encode_all():
        std_total, cmp_total = 0, 0
        for block in tess.blocks:
            std_total += len(pack_arrays(block.to_arrays()))
            cmp_total += len(compact_encode(block))
        return std_total, cmp_total

    std_total, cmp_total = benchmark.pedantic(encode_all, rounds=1, iterations=1)

    n = cfg.num_particles
    lines = [
        "ABLATION — COMPACT ENCODING (paper §III-C2 future work)",
        f"32^3 evolved snapshot, {tess.num_cells} cells",
        "",
        f"{'encoding':<22} {'bytes':>12} {'B/particle':>11} {'vs standard':>12}",
        f"{'standard (float64)':<22} {std_total:>12d} {std_total / n:>11.0f} {'100%':>12}",
        f"{'compact (f32+varint)':<22} {cmp_total:>12d} {cmp_total / n:>11.0f} "
        f"{100 * cmp_total / std_total:>11.0f}%",
        "",
        "paper full-output budget: ~450 B/particle (float32 arrays)",
        "compact decode is exact on connectivity, float32 on geometry;",
        "round-trip is covered by tests/test_core_compact.py.",
    ]
    write_report("ablation_compact", lines)

    assert cmp_total < 0.55 * std_total
    # Spot-check a lossless round trip on one block.
    b = tess.blocks[0]
    d = compact_decode(compact_encode(b))
    np.testing.assert_array_equal(d.face_vertices, b.face_vertices)
    np.testing.assert_array_equal(d.face_neighbors, b.face_neighbors)
