"""Feature-tree tracking: flat overlap kernel vs the per-cell dict oracle.

PR 10 rewrote the temporal overlap computation as a flat-array kernel
(one ``index_in_sorted`` join of the two labelings' site ids plus an
``np.add.at`` pair count) and kept the per-cell dict implementation as
the parity oracle.  This bench pushes a synthetic multi-step labeling
sequence — large component populations with churn (drift, merges,
births) between steps — through :func:`repro.analysis.tracking.track_components`
with each kernel and reports the speedup.  The two trees must be
identical before the timing counts.  The perf gate encodes the bar as
the absolute limit ``tracking.flat_over_dict <= 0.25``.

It also re-asserts the distributed contract cheaply: a 2-rank
``track_components_distributed`` run over a round-robin split of the
same labelings must reproduce the serial tree bit-identically.

Run directly (``python benchmarks/bench_tracking.py [--quick]``) or via
pytest / the perf gate.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import write_report  # noqa: E402

from repro.analysis.components import ComponentLabeling
from repro.analysis.tracking import (
    local_labeling,
    track_components,
    track_components_distributed,
)
from repro.diy.comm import run_parallel


def _labeling_sequence(
    n_ids: int, n_comp: int, n_steps: int, seed: int
) -> dict[int, ComponentLabeling]:
    """Synthetic step sequence with realistic churn.

    Every step keeps a large overlapping core (so most transitions are
    continuations), drops a slab of ids (deaths/shrinkage), adds a fresh
    slab (births), and re-draws ~10% of memberships (merge/split noise).
    Labels are canonicalized by smallest member id, matching the
    production labelings.
    """
    rng = np.random.default_rng(seed)
    comp = rng.integers(0, n_comp, size=n_ids)
    steps: dict[int, ComponentLabeling] = {}
    for s in range(n_steps):
        churn = rng.random(n_ids) < 0.03
        comp = np.where(churn, rng.integers(0, n_comp, size=n_ids), comp)
        present = rng.random(n_ids) < 0.8
        sids = np.flatnonzero(present).astype(np.int64)
        raw = comp[present]
        # canonical labels: number components by smallest member id
        uniq, inverse = np.unique(raw, return_inverse=True)
        first_sid = np.full(len(uniq), np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(first_sid, inverse, sids)
        order = np.argsort(first_sid, kind="stable")
        rank_of = np.empty(len(uniq), dtype=np.int64)
        rank_of[order] = np.arange(len(uniq))
        steps[s] = ComponentLabeling(site_ids=sids, labels=rank_of[inverse])
    return steps


def _distributed_worker(comm, labelings):
    locals_ = {
        step: local_labeling(
            lab, lab.site_ids[lab.site_ids % comm.size == comm.rank]
        )
        for step, lab in labelings.items()
    }
    return track_components_distributed(comm, locals_)


def _time(fn, repeats: int) -> tuple[float, object]:
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_bench(quick: bool = True) -> tuple[list[str], dict]:
    """Time dict vs flat tracking kernels; return (report lines, metrics)."""
    n_ids = 40_000 if quick else 160_000
    n_comp = 200 if quick else 500
    n_steps = 6 if quick else 10
    repeats = 3 if quick else 2
    labelings = _labeling_sequence(n_ids, n_comp, n_steps, seed=42)

    # min_overlap suppresses single-cell churn links, the production
    # setting for noisy labelings; it also keeps the timing dominated by
    # the overlap join rather than Python event construction.
    min_overlap = 4
    dict_s, dict_tree = _time(
        lambda: track_components(
            labelings, min_overlap=min_overlap, kernel="dict"
        ),
        repeats,
    )
    flat_s, flat_tree = _time(
        lambda: track_components(
            labelings, min_overlap=min_overlap, kernel="flat"
        ),
        repeats,
    )

    # The speedup only counts if both kernels produce the same tree.
    assert flat_tree == dict_tree, "flat and dict feature trees diverged"

    # Distributed contract: a 2-rank round-robin split must reproduce the
    # serial tree bit-identically (small sequence; parity, not timing).
    small = _labeling_sequence(4_000, 50, 4, seed=7)
    serial = track_components(small)
    trees = run_parallel(2, _distributed_worker, small, backend="thread")
    assert all(t == serial for t in trees), "distributed tree diverged"

    speedup = dict_s / flat_s if flat_s > 0 else np.inf
    counts = flat_tree.counts()
    events = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    lines = [
        f"tracking kernels: {n_ids} sites, ~{n_comp} components, "
        f"{n_steps} steps, best of {repeats}",
        f"  dict/per-cell kernel {dict_s:8.4f} s",
        f"  flat-array kernel    {flat_s:8.4f} s",
        f"  speedup              {speedup:8.1f}x "
        f"({len(flat_tree.tracks)} tracks; {events})",
        "  distributed 2-rank tree == serial tree: ok",
    ]
    data = {
        "n_ids": n_ids,
        "n_comp": n_comp,
        "n_steps": n_steps,
        "num_tracks": len(flat_tree.tracks),
        "dict_s": dict_s,
        "flat_s": flat_s,
        "speedup": speedup,
    }
    return lines, data


def test_tracking_quick():
    """Pytest entry point: quick mode, persisted like the other benches."""
    lines, data = run_bench(quick=True)
    write_report("tracking", lines)
    assert data["speedup"] >= 4.0


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--quick", action="store_true",
                   help="40k sites instead of the acceptance-scale 160k")
    args = p.parse_args(argv)
    lines, _ = run_bench(quick=args.quick)
    write_report("tracking", lines)
    return 0


if __name__ == "__main__":
    sys.exit(main())
