"""Figure 10 — Strong and weak scaling of the tessellation (incl. I/O).

Paper: log-log curves of total tessellation time against process count for
four problem sizes (strong scaling, 30-41% efficiency at 8-128x) and of
per-particle time for fixed particles-per-process (weak scaling, 86%
efficiency).

Here: rank-thread CPU time against 1-8 ranks.  Expected shape: strong-
scaling curves slope downward with efficiency well below 100% (ghost-zone
overhead grows with block count) but far above zero; weak-scaling
per-particle time stays roughly flat (high efficiency).
"""

import numpy as np

from repro.core import tessellate
from repro.diy.bounds import Bounds
from conftest import write_report

STRONG_SIZES = (1728, 4096, 8000)  # 12^3, 16^3, 20^3
RANK_COUNTS = (1, 2, 4, 8)
WEAK_PER_RANK = 1728


def _points(n: int, box: float, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0, box, size=(n, 3))


def _tess_time(points: np.ndarray, box: float, nranks: int, out_path: str) -> float:
    tess = tessellate(
        points,
        Bounds.cube(box),
        nblocks=nranks,
        ghost=4.0,
        output_path=out_path,
    )
    return tess.timings.total_cpu


def test_fig10_strong_and_weak_scaling(benchmark, tmp_path):
    def sweep():
        strong = {}
        for n in STRONG_SIZES:
            box = float(round(n ** (1 / 3)))
            pts = _points(n, box, seed=n)
            strong[n] = [
                _tess_time(pts, box, r, str(tmp_path / f"s{n}_{r}.tess"))
                for r in RANK_COUNTS
            ]
        weak = []
        for r in RANK_COUNTS:
            n = WEAK_PER_RANK * r
            box = float(n ** (1 / 3))
            pts = _points(n, box, seed=n)
            weak.append(
                _tess_time(pts, box, r, str(tmp_path / f"w{r}.tess"))
            )
        return strong, weak

    strong, weak = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "FIGURE 10 — TESSELLATION SCALING (thread-CPU time incl. output)",
        "",
        "STRONG SCALING (seconds):",
        f"{'particles':>10} " + " ".join(f"{r:>8d}" for r in RANK_COUNTS),
    ]
    for n in STRONG_SIZES:
        lines.append(f"{n:10d} " + " ".join(f"{t:8.3f}" for t in strong[n]))
    strong_eff = {
        n: strong[n][0] / (RANK_COUNTS[-1] * strong[n][-1]) for n in STRONG_SIZES
    }
    lines += [
        "strong-scaling efficiency at 8 ranks: "
        + ", ".join(f"{n}: {e:.0%}" for n, e in strong_eff.items())
        + "   (paper: 30-41%)",
        "",
        "WEAK SCALING (1728 particles/rank; microseconds per particle):",
        f"{'ranks':>6} {'seconds':>9} {'us/particle':>12}",
    ]
    for r, t in zip(RANK_COUNTS, weak):
        lines.append(f"{r:6d} {t:9.3f} {1e6 * t / (WEAK_PER_RANK * r) * r:12.2f}")
    weak_eff = weak[0] / weak[-1]
    lines += [
        f"weak-scaling efficiency at 8 ranks: {weak_eff:.0%}   (paper: 86%)",
    ]
    write_report("fig10_scaling", lines)

    # Shape assertions.
    for n in STRONG_SIZES:
        # Monotone speedup with rank count.
        assert strong[n][0] > strong[n][-1]
        # Efficiency imperfect (ghost overhead) but meaningful.
        assert 0.15 < strong_eff[n] <= 1.05
    # Weak scaling: per-rank time roughly flat (within 2.5x of 1-rank).
    assert weak_eff > 0.4
