"""Shared fixtures and reporting helpers for the paper-reproduction benches.

Each benchmark regenerates one table or figure of the paper's evaluation
(Section IV).  Results are printed and also written to
``benchmarks/results/<name>.txt`` so the rows survive pytest's capture.

The evolved 32^3 snapshot (100 steps, the paper's small-scale test) is
simulated once per session and shared by the Figure 8/9/11 and data-model
benches.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def write_report(name: str, lines: list[str]) -> None:
    """Print a bench report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


@pytest.fixture(scope="session")
def evolved_snapshot_32():
    """32^3 particles evolved 100 steps, tessellated at selected steps.

    Returns (config, tessellations) with Tessellation objects at steps 11,
    21, 31 (Figure 11) and 100 (Figures 8/9, data model).  Configuration
    notes:

    * the force mesh equals the particle grid (the paper's ng = np), no
      CIC deconvolution — PM-only forces are softer than HACC's tree-
      augmented solver, so distribution moments run below the paper's
      while every shape (skew direction, concentration, monotone growth)
      reproduces;
    * tessellations are non-periodic: the paper's serial reference keeps
      210181 of 262144 cells (~80%), i.e. domain-boundary cells were
      deleted rather than completed across the periodic seam.
    """
    from repro.core import tessellate
    from repro.hacc import HACCSimulation, SimulationConfig

    cfg = SimulationConfig(np_side=32, nsteps=100, seed=1)
    snaps: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def capture(sim, step, a):
        snaps[step] = (sim.positions_mpc().copy(), sim.local.ids.copy())

    sim = HACCSimulation(cfg)
    sim.run(hooks={s: [capture] for s in (11, 21, 31, 100)})

    tessellations = {
        step: tessellate(
            pos, cfg.domain(), nblocks=4, ghost=4.0, ids=ids, periodic=False
        )
        for step, (pos, ids) in snaps.items()
    }
    return cfg, tessellations


@pytest.fixture(scope="session")
def evolved_snapshot_16():
    """16^3 particles evolved 100 steps (Table I scale stand-in)."""
    from repro.hacc import SimulationConfig, run_simulation

    cfg = SimulationConfig(np_side=16, nsteps=100, seed=2)
    final = run_simulation(cfg, nranks=2)
    positions = final.positions * cfg.cell_size  # grid units -> Mpc/h
    return cfg, positions, final.ids
