"""Void-finder scaling: flat-array kernels vs the per-cell dict path.

PR 5 rewrote the threshold + connected-components + volume-accumulation
pipeline as flat-array kernels (``ArrayUnionFind`` bulk unions over packed
edge arrays, CSR adjacency masking, ``searchsorted`` + ``np.add.at``
volume sums).  This bench times the retained dict/per-cell oracle
(``connected_components_dict`` plus a Python-loop catalog build, the
pre-PR-5 shape of the code) against the production flat path
(``connected_components`` + ``find_voids``) on the same tessellation and
reports the speedup.  The acceptance bar is >= 5x at 32^3 sites; the perf
gate encodes it as the absolute limit ``voids.flat_over_dict <= 0.2``.

Run directly (``python benchmarks/bench_void_scaling.py [--quick]``) or
via pytest / the perf gate.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import write_report  # noqa: E402

from repro.analysis.components import connected_components_dict
from repro.analysis.voids import (
    Void,
    VoidCatalog,
    find_voids,
    volume_threshold_for_fraction,
)
from repro.core import tessellate
from repro.diy.bounds import Bounds


def _dict_find_voids(tess, vmin: float) -> VoidCatalog:
    """The pre-flat void build: dict union-find + per-cell Python loops."""
    labeling = connected_components_dict(tess, vmin=vmin)
    label_of = labeling.label_of()
    volumes: dict[int, float] = {}
    members: dict[int, list[int]] = {}
    for block in tess.blocks:
        for sid, vol in zip(
            block.site_ids.tolist(), block.volumes.tolist()
        ):
            label = label_of.get(int(sid))
            if label is None:
                continue
            volumes[label] = volumes.get(label, 0.0) + vol
            members.setdefault(label, []).append(int(sid))
    catalog = VoidCatalog(vmin=float(vmin))
    for label, sids in members.items():
        catalog.voids.append(
            Void(
                label=label,
                site_ids=np.array(sorted(sids), dtype=np.int64),
                volume=volumes[label],
            )
        )
    catalog.voids.sort(key=lambda v: v.volume, reverse=True)
    return catalog


def _time(fn, repeats: int) -> tuple[float, object]:
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_bench(quick: bool = True) -> tuple[list[str], dict]:
    """Time dict vs flat void finding; return (report lines, metrics)."""
    np_side = 16 if quick else 32
    repeats = 3 if quick else 2
    n = np_side**3
    box = float(np_side)
    rng = np.random.default_rng(42)
    pts = rng.uniform(0.0, box, size=(n, 3))

    t0 = time.perf_counter()
    tess = tessellate(pts, Bounds.cube(box), nblocks=4, ghost=None)
    tess_s = time.perf_counter() - t0
    vmin = volume_threshold_for_fraction(tess, 0.1)

    dict_s, dict_catalog = _time(lambda: _dict_find_voids(tess, vmin), repeats)
    flat_s, flat_catalog = _time(lambda: find_voids(tess, vmin=vmin), repeats)

    # The speedup only counts if both paths agree.
    assert flat_catalog.num_voids == dict_catalog.num_voids
    got = sorted(tuple(v.site_ids) for v in flat_catalog.voids)
    want = sorted(tuple(v.site_ids) for v in dict_catalog.voids)
    assert got == want, "flat and dict catalogs diverged"

    speedup = dict_s / flat_s if flat_s > 0 else np.inf
    lines = [
        f"void-finder scaling: {n} sites ({np_side}^3), "
        f"{tess.num_cells} cells, best of {repeats}",
        f"  tessellation:      {tess_s:8.3f} s (untimed setup)",
        f"  dict/per-cell path {dict_s:8.4f} s",
        f"  flat-array path    {flat_s:8.4f} s",
        f"  speedup            {speedup:8.1f}x "
        f"({flat_catalog.num_voids} voids at vmin={vmin:.4g})",
    ]
    data = {
        "np_side": np_side,
        "num_cells": tess.num_cells,
        "num_voids": flat_catalog.num_voids,
        "dict_s": dict_s,
        "flat_s": flat_s,
        "speedup": speedup,
    }
    return lines, data


def test_void_scaling_quick():
    """Pytest entry point: quick mode, persisted like the other benches."""
    lines, data = run_bench(quick=True)
    write_report("void_scaling", lines)
    assert data["speedup"] >= 5.0


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--quick", action="store_true",
                   help="16^3 sites instead of the acceptance-scale 32^3")
    args = p.parse_args(argv)
    lines, _ = run_bench(quick=args.quick)
    write_report("void_scaling", lines)
    return 0


if __name__ == "__main__":
    sys.exit(main())
