"""Table I — Parallel accuracy vs ghost-zone size and block count.

Paper: 64^3 particles, 100 HACC steps; ghost sizes 0-4 (units of the
initial 1 Mpc/h spacing) x 2/4/8 blocks, compared against a serial
tessellation of the same particles.  Accuracy decreases with block count
at small ghost sizes (more block boundaries, more broken cells) and
reaches 100% once the ghost zone is sufficient (ghost = 4).

Here: 16^3 particles, 100 steps — the same physics and spacing with the
particle count scaled to this substrate.  The expected *shape*: monotone
accuracy in ghost size per block count, decreasing accuracy in block count
at ghost 0, and 100% rows at ghost >= 4.
"""


from repro.core import match_tessellations, tessellate
from conftest import write_report

GHOST_SIZES = (0.0, 1.0, 2.0, 3.0, 4.0)
BLOCK_COUNTS = (2, 4, 8)


def run_accuracy_table(cfg, positions, ids):
    domain = cfg.domain()
    serial = tessellate(positions, domain, nblocks=1, ghost=4.0, ids=ids)
    rows = []
    for ghost in GHOST_SIZES:
        for nblocks in BLOCK_COUNTS:
            par = tessellate(positions, domain, nblocks=nblocks, ghost=ghost, ids=ids)
            m = match_tessellations(par, serial)
            rows.append((ghost, nblocks, m))
    return serial, rows


def test_table1_parallel_accuracy(benchmark, evolved_snapshot_16):
    cfg, positions, ids = evolved_snapshot_16

    serial, rows = benchmark.pedantic(
        run_accuracy_table, args=(cfg, positions, ids), rounds=1, iterations=1
    )

    lines = [
        "TABLE I — PARALLEL ACCURACY (paper: 64^3, here: 16^3, 100 steps)",
        f"serial reference cells: {serial.num_cells}",
        "",
        f"{'ghost':>6} {'blocks':>7} {'cells':>7} {'matching':>9} {'accuracy %':>11}",
    ]
    by_ghost = {}
    for ghost, nblocks, m in rows:
        lines.append(
            f"{ghost:6.1f} {nblocks:7d} {m.cells_parallel:7d} "
            f"{m.cells_matching:9d} {m.accuracy_percent:11.2f}"
        )
        by_ghost.setdefault(ghost, []).append(m.accuracy_percent)
    lines += [
        "",
        "paper shape checks:",
        f"  ghost=0, more blocks -> lower accuracy: "
        f"{by_ghost[0.0]} {'OK' if by_ghost[0.0][0] >= by_ghost[0.0][-1] else 'FAIL'}",
        f"  ghost=4 -> 100%: {by_ghost[4.0]} "
        f"{'OK' if min(by_ghost[4.0]) >= 99.99 else 'FAIL'}",
    ]
    write_report("table1_accuracy", lines)

    # Assertions on the paper's qualitative structure.
    assert by_ghost[0.0][0] >= by_ghost[0.0][-1]  # 2 blocks beats 8 at ghost 0
    for ghost_accs in zip(*(by_ghost[g] for g in GHOST_SIZES)):
        assert list(ghost_accs) == sorted(ghost_accs)  # monotone in ghost
    assert min(by_ghost[4.0]) >= 99.99
    assert max(by_ghost[0.0]) < 100.0
