"""Figures 1 and 7 (qualitative) — rendered views of the tessellation.

The paper's Figure 1 shows the Voronoi tessellation revealing low-density
voids amid high-density halo clusters; Figure 7 shows the plugin's
thresholded, component-labeled view.  These are qualitative images, not
measured results; this bench exercises the same pipeline and writes its
stand-ins: a log-density slice (Figure 1) and a component-label slice of
the thresholded cells (Figure 7), as PGM images plus an ASCII thumbnail
in the report.
"""


from repro.analysis import connected_components
from repro.analysis.render import ascii_render, slice_field, write_pgm
from conftest import RESULTS_DIR, write_report


def test_fig1_fig7_rendered_slices(benchmark, evolved_snapshot_32):
    cfg, tessellations = evolved_snapshot_32
    tess = tessellations[100]

    def render():
        density = slice_field(tess, axis=2, resolution=96, value="density")
        vmin = 0.25 * float(tess.volumes().max())
        labeling = connected_components(tess, vmin=vmin)
        components = slice_field(
            tess, axis=2, resolution=96, value="component", labeling=labeling
        )
        return density, components, labeling

    density, components, labeling = benchmark.pedantic(
        render, rounds=1, iterations=1
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    write_pgm(str(RESULTS_DIR / "fig1_density_slice.pgm"), density)
    write_pgm(
        str(RESULTS_DIR / "fig7_component_slice.pgm"),
        components + 2.0,  # shift -1 background to positive for the image
        log_scale=False,
    )

    thumb = ascii_render(density[::2, ::2])
    lines = [
        "FIGURES 1 & 7 (QUALITATIVE) — RENDERED SLICES",
        "fig1_density_slice.pgm: log cell density through the box midplane",
        "fig7_component_slice.pgm: thresholded component labels (Fig 7 view)",
        f"void components at the 25%-of-max threshold: {labeling.num_components}",
        "",
        "ASCII thumbnail of the density slice (dense glyph = halo, space = void):",
        thumb,
    ]
    write_report("fig1_fig7_render", lines)

    # Sanity: the slice spans a wide dynamic range (voids amid halos).
    assert density.max() / density.min() > 50
    assert (components >= 0).any() and (components == -1).any()
