"""Backend scaling — wall-clock speedup of thread vs process execution.

Extends the Table II / Figure 10 story with a *true-parallelism* column:
the thread backend shares one GIL, so its wall-clock barely improves with
rank count no matter how many cores exist; the process backend runs one OS
process per rank and scales with the hardware (speedup saturates at the
machine's core count — on a single-core container both backends are flat
and the process column mainly shows transport overhead is small).

The workload is the paper's small-scale Table II configuration: a 20^3 =
8000-particle snapshot evolved 10 steps, then one distributed tessellation
(ghost exchange + Voronoi + block gather, the in situ tool's traffic
pattern).  Per-rank CommStats bytes are reported so the run confirms the
shared-memory transport is actually exercised on the process backend.

Two timings are recorded per (backend, ranks) point:

* **wall_s** — elapsed wall-clock around the whole parallel region,
  best-of-N after one untimed warmup run (the warmup pays the persistent
  rank pool's one-time fork + import cost, so the timed repeats measure
  warm pool leases — the steady state of an in situ run that enters the
  region every analysis step).  On a box with fewer cores than ranks the
  OS time-slices the rank processes, so elapsed wall *cannot* shrink with
  rank count no matter how good the runtime is.
* **crit_wall_s** — the critical-path wall: ``max over ranks of per-rank
  thread-CPU + (wall − Σ per-rank CPU, floored at 0)``.  The first term
  is the slowest rank's own work (what a machine with ≥ ranks cores would
  wait for); the second is runtime overhead not attributed to any rank
  (fork, pickling, pipe traffic, scheduling).  This is the honest scaling
  metric on a shared/CI box and what the perf gate's
  ``scaling.process.r4_over_r1 < 1`` entry enforces.

Run directly (``python benchmarks/bench_backend_scaling.py [--quick]``) or
via pytest (quick mode).  Results land in
``benchmarks/results/backend_scaling.txt`` only.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import write_report  # noqa: E402

RANK_COUNTS = (1, 2, 4, 8)
RANK_COUNTS_QUICK = (1, 2, 4)


def _snapshot(np_side: int, nsteps: int):
    """Evolve the Table II configuration once; returns (cfg, positions, ids)."""
    from repro.hacc import HACCSimulation, SimulationConfig

    cfg = SimulationConfig(np_side=np_side, nsteps=nsteps, seed=3)
    sim = HACCSimulation(cfg)
    sim.run()
    return cfg, sim.positions_mpc(), sim.local.ids.copy()


def _tess_worker(comm, decomp, pts, pid, ghost, vmin):
    """One rank of the benchmark region: tessellate + gather (in situ shape)."""
    from repro.core.tessellate import tessellate_distributed

    cpu0 = time.thread_time()
    mine = decomp.locate(pts) == comm.rank
    block, timings, _ = tessellate_distributed(
        comm, decomp, pts[mine], pid[mine], ghost=ghost, vmin=vmin
    )
    # Gather blocks to root exactly as the in situ tessellation tool does —
    # this is the large-array traffic the zero-copy transport exists for.
    gathered = comm.gather(block, root=0)
    ncells = sum(b.num_cells for b in gathered) if comm.rank == 0 else -1
    cpu_s = time.thread_time() - cpu0
    return ncells, comm.stats.as_dict(), timings.as_row_extended(), cpu_s


def run_sweep(quick: bool = False) -> tuple[list[str], dict]:
    """Run the sweep; returns ``(report_lines, data)``.

    ``data`` is the machine-readable form consumed by the perf gate
    (:mod:`benchmarks.perf_gate`): one entry per (backend, ranks) run with
    the best-of-N wall seconds, per-phase max-over-ranks seconds (the
    paper's critical-path convention), and bytes moved.
    """
    from repro.diy.comm import run_parallel
    from repro.diy.decomposition import Decomposition

    np_side, nsteps = (12, 10) if quick else (20, 10)
    rank_counts = RANK_COUNTS_QUICK if quick else RANK_COUNTS
    cfg, pts, pid = _snapshot(np_side, nsteps)
    vmin = 0.5 * cfg.domain().volume / cfg.num_particles
    ghost = 4.0
    cores = os.cpu_count() or 1

    lines = [
        "Backend scaling: critical-path speedup (thread vs process)",
        f"workload: {np_side}^3 = {np_side**3} particles (Table II config), "
        f"{nsteps} steps evolved, one distributed tessellation + block gather",
        f"machine: {cores} core(s) visible — elapsed wall saturates at "
        f"min(ranks, cores); crit_s is the >=ranks-cores critical path "
        f"(max per-rank CPU + unattributed runtime overhead)",
        "timing: one untimed warmup leases/forks the rank pool, then "
        "best-of-N over warm runs",
        "",
        f"{'backend':>8} {'ranks':>5} {'wall_s':>8} {'crit_s':>8} "
        f"{'speedup':>8} {'cells':>6} {'max_bytes_sent':>14} "
        f"{'max_shm_bytes':>13}",
    ]
    repeats = 2 if quick else 3
    largest_stats: dict[str, list[dict]] = {}
    runs: list[dict] = []
    for backend in ("thread", "process"):
        base = None
        for nranks in rank_counts:
            decomp = Decomposition.regular(cfg.domain(), nranks, periodic=True)
            # Warmup (untimed): first entry pays the pool's fork + child
            # import cost on the process backend; its wall is kept as the
            # cold-start figure.
            t0 = time.perf_counter()
            results = run_parallel(
                nranks, _tess_worker, decomp, pts, pid, ghost, vmin,
                backend=backend,
            )
            cold_wall = time.perf_counter() - t0
            wall = float("inf")
            for _ in range(repeats):  # best-of-N: shields against CI noise
                t0 = time.perf_counter()
                attempt = run_parallel(
                    nranks, _tess_worker, decomp, pts, pid, ghost, vmin,
                    backend=backend,
                )
                elapsed = time.perf_counter() - t0
                if elapsed < wall:
                    wall, results = elapsed, attempt
            ncells = results[0][0]
            stats = [r[1] for r in results]
            rows = [r[2] for r in results]
            rank_cpu = [r[3] for r in results]
            # Critical-path wall for the best run: the slowest rank's own
            # CPU plus whatever the elapsed wall spent outside any rank
            # (pickling, pipes, scheduling).  Equals wall on 1 rank.
            crit = max(rank_cpu) + max(wall - sum(rank_cpu), 0.0)
            base = crit if base is None else base
            if nranks == rank_counts[-1]:
                largest_stats[backend] = stats
            runs.append({
                "backend": backend,
                "ranks": nranks,
                "wall_s": wall,
                "cold_wall_s": cold_wall,
                "crit_wall_s": crit,
                "cpu_max_s": max(rank_cpu),
                "cells": ncells,
                "bytes_sent": max(s["bytes_sent"] for s in stats),
                "shm_bytes_sent": max(s["shm_bytes_sent"] for s in stats),
                # per-phase max over ranks: the critical-path seconds the
                # paper's Table II reports
                "phase_max_s": {
                    phase: max(r[f"{phase}_s"] for r in rows)
                    for phase in ("exchange", "compute", "output")
                },
            })
            lines.append(
                f"{backend:>8} {nranks:>5} {wall:>8.3f} {crit:>8.3f} "
                f"{base / crit:>7.2f}x {ncells:>6} "
                f"{max(s['bytes_sent'] for s in stats):>14} "
                f"{max(s['shm_bytes_sent'] for s in stats):>13}"
            )
        lines.append("")

    lines.append("per-rank CommStats bytes, largest run of each backend:")
    for backend, stats in largest_stats.items():
        for rank, s in enumerate(stats):
            lines.append(
                f"  {backend} rank {rank}: sent {s['bytes_sent']:>9} B "
                f"recv {s['bytes_recv']:>9} B shm {s['shm_bytes_sent']:>9} B "
                f"msgs {s['msgs_sent']:>3} collectives "
                f"{sum(s['collective_calls'].values()):>3}"
            )
    shm_total = sum(s["shm_bytes_sent"] for s in largest_stats["process"])
    lines.append("")
    lines.append(
        f"shared-memory transport exercised: {shm_total} bytes via shm "
        f"segments at {rank_counts[-1]} process ranks"
    )

    # The strong-scaling headline the perf gate enforces: 4 ranks must beat
    # 1 rank on the critical path (scaling.process.r4_over_r1 < 1).
    def _crit(backend: str, ranks: int) -> float:
        return next(
            r["crit_wall_s"] for r in runs
            if r["backend"] == backend and r["ranks"] == ranks
        )

    r4_over_r1 = {
        backend: _crit(backend, 4) / _crit(backend, 1)
        for backend in ("thread", "process")
    }
    lines.append("")
    for backend, ratio in r4_over_r1.items():
        lines.append(
            f"{backend} crit-wall r4/r1 = {ratio:.3f} "
            f"({'scales' if ratio < 1.0 else 'inverted'})"
        )

    from repro.diy.process_backend import pool_counters

    pool = dict(pool_counters)
    lines.append("")
    lines.append(
        "rank pool: forks {forks}  leased {runs_leased}  reused "
        "{runs_reused}  fallback {fallback_runs}  invalidations "
        "{invalidations}".format(**pool)
    )
    data = {
        "workload": {
            "np_side": np_side,
            "nsteps": nsteps,
            "rank_counts": list(rank_counts),
            "repeats": repeats,
        },
        "runs": runs,
        "r4_over_r1": r4_over_r1,
        "pool": pool,
    }
    return lines, data


def test_backend_scaling_quick():
    """Pytest entry point: the quick sweep, persisted like the other benches."""
    lines, _ = run_sweep(quick=True)
    write_report("backend_scaling", lines)


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--quick",
        action="store_true",
        help="small snapshot (12^3) and rank counts 1/2/4 — CI smoke mode",
    )
    args = p.parse_args(argv)
    lines, _ = run_sweep(quick=args.quick)
    write_report("backend_scaling", lines)
    return 0


if __name__ == "__main__":
    sys.exit(main())
