"""Serving-path benchmark — query latency and throughput, cold and warm.

Builds a fixture catalog (clustered points so every query op returns real
features), hosts :class:`repro.serve.TessServer` on an ephemeral port in a
background thread, and drives the load-generator client against it twice
with the standard query mix (voids, region voids, components, halos,
profiles, Minkowski):

* **cold** — first pass after startup: every block load is a cache miss
  (coalesced across the concurrent requests), so this measures the mmap +
  CRC + decode read path under concurrency;
* **warm** — second pass: the cache holds every block and latency is pure
  queueing + kernel time.

Metrics fed to the perf gate (:mod:`benchmarks.perf_gate`):

* ``serve.warm_p99_ms`` — warm-cache client-side p99; absolute limit.
* ``serve.cold_p99_ms`` — cold-cache p99; absolute limit (generous:
  includes the one-time block faults).
* ``serve.qps_neg`` — *negated* warm sustained throughput with a negative
  absolute limit, so the gate's max-cap becomes a min-bar on QPS.
* ``serve.errors`` — failed requests across both passes; absolute limit 0
  (503 busy responses are retried by the client and do not count).

Latency distributions on shared CI runners are noisy; the p50 metrics are
relative-gated with wide thresholds while the absolute bars above carry
the contract.  Results land in ``benchmarks/results/serve.txt``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import tempfile
import threading

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import write_report  # noqa: E402

BOX = 16.0
NBLOCKS = 4
NSTEPS = 2
CONCURRENCY = 16


class _ServerThread:
    """Host a TessServer's event loop in a daemon thread."""

    def __init__(self, store, config):
        self._store = store
        self._config = config
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._failure = None
        self.server = None
        self.port = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        try:
            asyncio.run(self._main())
        except Exception as exc:  # surface startup failures to start()
            self._failure = exc
            self._ready.set()

    async def _main(self):
        from repro.serve import TessServer

        self.server = TessServer(self._store, self._config)
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.port = self.server.port
        self._ready.set()
        await self._stop.wait()
        await self.server.close()

    def start(self) -> int:
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("server thread never became ready")
        if self._failure is not None:
            raise self._failure
        return self.port

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)


def _build_catalog(root: str, npoints: int, seed: int = 0):
    import numpy as np

    from repro.core import tessellate
    from repro.diy.bounds import Bounds
    from repro.serve import CatalogStore
    from repro.serve.cli import _clustered_points

    store = CatalogStore(root)
    rng = np.random.default_rng(seed)
    domain = Bounds.cube(BOX)
    for step in range(NSTEPS):
        points = _clustered_points(rng, npoints, BOX)
        store.publish(step, tessellate(points, domain, nblocks=NBLOCKS))
    return store


def run_bench(quick: bool = False) -> tuple[list[str], dict]:
    """Run the bench; returns ``(report_lines, data)`` for the perf gate."""
    from repro.serve import ServeConfig, default_query_mix, run_load

    npoints = 1500 if quick else 4000
    mix_len = 6 * NSTEPS
    cold_requests = 4 * mix_len
    warm_requests = 8 * mix_len

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as root:
        store = _build_catalog(root, npoints)
        steps = store.steps()
        host = _ServerThread(store, ServeConfig(port=0, workers=4))
        port = host.start()
        queries = default_query_mix(BOX, steps)
        try:
            cold = asyncio.run(
                run_load("127.0.0.1", port, queries,
                         requests=cold_requests, concurrency=CONCURRENCY)
            )
            warm = asyncio.run(
                run_load("127.0.0.1", port, queries,
                         requests=warm_requests, concurrency=CONCURRENCY)
            )
            cache = host.server.cache.stats.as_dict()
        finally:
            host.stop()

    errors = len(cold.errors) + len(warm.errors)
    lines = [
        "Tessellation service: cold/warm query latency and throughput",
        f"workload: {npoints} points x {NSTEPS} snapshot(s) x {NBLOCKS} "
        f"blocks, box {BOX}, concurrency {CONCURRENCY}",
        "",
        f"{'pass':>6} {'requests':>8} {'errors':>6} {'retries':>7} "
        f"{'qps':>7} {'p50_ms':>8} {'p90_ms':>8} {'p99_ms':>8}",
    ]
    for name, rep in (("cold", cold), ("warm", warm)):
        lines.append(
            f"{name:>6} {rep.requests:>8} {len(rep.errors):>6} "
            f"{rep.retries:>7} {rep.qps:>7.1f} {rep.percentile(50):>8.1f} "
            f"{rep.percentile(90):>8.1f} {rep.percentile(99):>8.1f}"
        )
    lines += [
        "",
        f"cache: {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['loads']} loads, {cache['coalesced']} coalesced, "
        f"{cache['evictions']} evictions)",
    ]
    data = {
        "npoints": npoints,
        "cold_qps": cold.qps,
        "cold_p50_ms": cold.percentile(50),
        "cold_p99_ms": cold.percentile(99),
        "warm_qps": warm.qps,
        "warm_p50_ms": warm.percentile(50),
        "warm_p99_ms": warm.percentile(99),
        "errors": float(errors),
        "retries": cold.retries + warm.retries,
        "cache_hits": cache["hits"],
        "cache_loads": cache["loads"],
    }
    return lines, data


def test_serve_bench_quick():
    """Pytest entry point: quick mode, persisted like the other benches."""
    lines, data = run_bench(quick=True)
    write_report("serve", lines)
    assert data["errors"] == 0
    # warm pass must hit the cache: every block was loaded during cold
    assert data["cache_hits"] > data["cache_loads"]


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--quick", action="store_true",
                   help="1500-point snapshots — CI smoke mode")
    args = p.parse_args(argv)
    lines, _ = run_bench(quick=args.quick)
    write_report("serve", lines)
    return 0


if __name__ == "__main__":
    sys.exit(main())
