"""Ablation — local-computation backends (paper §III method choice).

The paper picked Qhull for the local Voronoi computation over alternatives
(CGAL's Delaunay-first route, Voro++'s cell-by-cell clipping) citing
performance and robustness.  This repo implements both strategies, so the
choice can be measured: the vectorized Qhull path vs the Voro++-style
clipping backend, at identical output (the suites assert cell-for-cell
agreement; this bench reports the cost ratio and the per-cell times).
"""

import numpy as np

from repro.core import match_tessellations, tessellate
from repro.diy.bounds import Bounds
from conftest import write_report

SIZES = (512, 1024, 2048)


def test_ablation_backend_comparison(benchmark):
    rng = np.random.default_rng(9)

    def sweep():
        rows = []
        for n in SIZES:
            box = float(round(n ** (1 / 3)))
            pts = rng.uniform(0, box, size=(n, 3))
            domain = Bounds.cube(box)
            fast = tessellate(pts, domain, nblocks=4, ghost=3.5, backend="qhull")
            clip = tessellate(pts, domain, nblocks=4, ghost=3.5, backend="clip")
            m = match_tessellations(fast, clip)
            rows.append(
                (
                    n,
                    fast.timings.compute_cpu,
                    clip.timings.compute_cpu,
                    m.accuracy_percent,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "ABLATION — LOCAL VORONOI BACKENDS (qhull-vectorized vs clipping)",
        "",
        f"{'points':>8} {'qhull_s':>9} {'clip_s':>9} {'speedup':>8} "
        f"{'us/cell qh':>11} {'us/cell clip':>13} {'agreement %':>12}",
    ]
    for n, tq, tc, acc in rows:
        lines.append(
            f"{n:8d} {tq:9.3f} {tc:9.2f} {tc / tq:8.1f}x "
            f"{1e6 * tq / n:11.1f} {1e6 * tc / n:13.0f} {acc:12.2f}"
        )
    lines += [
        "",
        "both backends produce identical complete cells; the vectorized",
        "Qhull path is the production default (the paper's choice, for the",
        "same reason: mature hull code beats per-cell plane clipping).",
    ]
    write_report("ablation_backends", lines)

    for n, tq, tc, acc in rows:
        assert acc == 100.0  # identical output
        assert tc > 2.0 * tq  # qhull path substantially faster
