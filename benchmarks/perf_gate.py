"""CI perf-regression gate over the tracked benchmark metrics.

Collects the machine-readable outputs of the backend-scaling sweep
(:mod:`benchmarks.bench_backend_scaling`), the void-finder kernel bench
(:mod:`benchmarks.bench_void_scaling`), the geometry-engine bench
(:mod:`benchmarks.bench_geometry_kernels`), the load-balance bench
(:mod:`benchmarks.bench_balance`), the serving-path bench
(:mod:`benchmarks.bench_serve`), and the trace-overhead bench
(:mod:`benchmarks.bench_trace_overhead`) plus the process peak RSS into a
flat ``{metric: value}`` dict, writes it to ``BENCH_pr.json``, and — with
``--check`` — compares it against the committed baseline
(``benchmarks/results/baseline.json``):

* **relative gate** — a tracked metric regressing more than 25% (default;
  per-metric override via the baseline's ``"thresholds"``) over its
  baseline value fails the gate.  Tiny baselines sit below a per-unit
  noise floor and are skipped — sub-millisecond phases flap wildly on
  shared CI runners.
* **absolute limits** — the baseline's ``"limits"`` map caps metrics
  outright regardless of history; the tracing contract's "<5% overhead
  when enabled" lives here.

The baseline is **machine-specific** (absolute seconds on a laptop and a
CI runner differ wildly).  Refresh it with ``make update-baseline``
whenever the benchmark workload changes or CI moves to different
hardware; see DESIGN.md section 8.

Usage::

    python benchmarks/perf_gate.py --quick --out BENCH_pr.json \
        --check benchmarks/results/baseline.json
    python benchmarks/perf_gate.py --quick --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "baseline.json"
)

DEFAULT_THRESHOLD = 0.25
#: absolute caps applied on every check, independent of baseline history
DEFAULT_LIMITS = {
    "trace.overhead_pct": 5.0,
    # flat void kernels must stay >= 5x faster than the dict/per-cell
    # oracle (PR 5 acceptance bar): flat_s / dict_s <= 0.2
    "voids.flat_over_dict": 0.2,
    # strong scaling must not invert: 4 process ranks must beat 1 on the
    # critical-path wall (max per-rank CPU + runtime overhead) — the
    # persistent rank pool + two-level collectives keep overhead below the
    # per-rank work saved by splitting the domain
    "scaling.process.r4_over_r1": 1.0,
    # the Delaunay-direct flat engine must stay >= 2.5x faster than the
    # scipy.spatial.Voronoi flat engine (PR 7 acceptance bar):
    # delaunay_s / flat_s <= 0.4
    "geom.delaunay_over_flat": 0.4,
    # dynamic load balancing (PR 8 acceptance bars): on the clustered IC
    # the SFC re-split must bring max/mean particle imbalance under 1.25,
    # starting from a static layout at >= 2.0 (the negated metric turns
    # the gate's max-cap into a min-bar on the static imbalance), and the
    # 4-rank balanced critical-path wall must beat the static one
    "balance.post_imbalance": 1.25,
    "balance.static_imbalance_neg": -2.0,
    "balance.r4_balanced_over_static": 1.0,
    # tessellation service (PR 9 acceptance bars): client-side p99 latency
    # under concurrent load must stay bounded cold (first touch faults every
    # block through mmap+CRC+decode) and warm (pure queueing + kernel time),
    # the negated warm throughput turns the max-cap into a min-QPS bar, and
    # no request may fail (503 shedding is retried, not an error)
    "serve.cold_p99_ms": 8000.0,
    "serve.warm_p99_ms": 5000.0,
    "serve.qps_neg": -5.0,
    "serve.errors": 0.0,
    # temporal tracking (PR 10 acceptance bar): the flat overlap kernel
    # must stay >= 4x faster than the per-cell dict oracle on the synthetic
    # multi-step labeling sequence: flat_s / dict_s <= 0.25
    "tracking.flat_over_dict": 0.25,
}
#: per-metric relative thresholds seeded into a fresh baseline — these
#: metrics jitter well beyond 25% between identical runs on a shared box
BASELINE_THRESHOLDS = {
    "trace.disabled_span_ns": 1.0,
    "balance.r4_static_crit_s": 0.5,
    "balance.r4_balanced_crit_s": 0.5,
    "mem.peak_rss_bytes": 0.5,
    "voids.dict_s": 0.5,
    "voids.flat_s": 0.5,
    "tracking.dict_s": 0.5,
    "tracking.flat_s": 0.5,
    "geom.flat_s": 0.5,
    "geom.delaunay_s": 0.5,
    # client-side latency quantiles on a loaded shared runner jitter far
    # beyond the default; the absolute serve.* limits carry the contract
    "serve.cold_p50_ms": 2.0,
    "serve.warm_p50_ms": 2.0,
}
#: baselines smaller than the floor for their unit are too noisy to gate
NOISE_FLOORS = (
    ("_ns", 100.0),
    ("_pct", 1.0),
    ("_ms", 5.0),
    ("_s", 0.02),
    ("bytes", 4096.0),
)


def _noise_floor(metric: str) -> float:
    for suffix, floor in NOISE_FLOORS:
        if metric.endswith(suffix) or suffix in metric.rsplit(".", 1)[-1]:
            return floor
    return 0.0


def collect(quick: bool = True) -> dict[str, float]:
    """Run the tracked benches; return the flat metrics dict."""
    from bench_backend_scaling import run_sweep
    from bench_balance import run_bench as run_balance_bench
    from bench_geometry_kernels import run_bench as run_geom_bench
    from bench_serve import run_bench as run_serve_bench
    from bench_trace_overhead import run_bench
    from bench_tracking import run_bench as run_tracking_bench
    from bench_void_scaling import run_bench as run_void_bench

    from repro.observe import peak_rss_bytes

    metrics: dict[str, float] = {}

    _, scaling = run_sweep(quick=quick)
    for run in scaling["runs"]:
        key = f"scaling.{run['backend']}.r{run['ranks']}"
        metrics[f"{key}.wall_s"] = run["wall_s"]
        metrics[f"{key}.crit_wall_s"] = run["crit_wall_s"]
        metrics[f"{key}.bytes_sent"] = float(run["bytes_sent"])
        for phase, seconds in run["phase_max_s"].items():
            metrics[f"{key}.{phase}_max_s"] = seconds
    metrics["scaling.process.shm_bytes_sent"] = float(
        max(r["shm_bytes_sent"] for r in scaling["runs"]
            if r["backend"] == "process")
    )
    # strong-scaling headline (absolute-capped below 1.0 in DEFAULT_LIMITS)
    metrics["scaling.process.r4_over_r1"] = scaling["r4_over_r1"]["process"]

    _, voids = run_void_bench(quick=quick)
    metrics["voids.dict_s"] = voids["dict_s"]
    metrics["voids.flat_s"] = voids["flat_s"]
    metrics["voids.flat_over_dict"] = voids["flat_s"] / voids["dict_s"]

    _, tracking = run_tracking_bench(quick=quick)
    metrics["tracking.dict_s"] = tracking["dict_s"]
    metrics["tracking.flat_s"] = tracking["flat_s"]
    metrics["tracking.flat_over_dict"] = (
        tracking["flat_s"] / tracking["dict_s"]
    )

    _, geom = run_geom_bench(quick=quick)
    metrics["geom.flat_s"] = geom["flat_s"]
    metrics["geom.delaunay_s"] = geom["delaunay_s"]
    metrics["geom.delaunay_over_flat"] = geom["delaunay_over_flat"]

    _, balance = run_balance_bench(quick=quick)
    metrics["balance.static_imbalance_neg"] = -balance["static_imbalance"]
    metrics["balance.post_imbalance"] = balance["post_imbalance"]
    metrics["balance.r4_static_crit_s"] = balance["static_crit_s"]
    metrics["balance.r4_balanced_crit_s"] = balance["balanced_crit_s"]
    metrics["balance.r4_balanced_over_static"] = balance["balanced_over_static"]

    _, serve = run_serve_bench(quick=quick)
    metrics["serve.cold_p50_ms"] = serve["cold_p50_ms"]
    metrics["serve.cold_p99_ms"] = serve["cold_p99_ms"]
    metrics["serve.warm_p50_ms"] = serve["warm_p50_ms"]
    metrics["serve.warm_p99_ms"] = serve["warm_p99_ms"]
    metrics["serve.qps_neg"] = -serve["warm_qps"]
    metrics["serve.errors"] = serve["errors"]

    _, overhead = run_bench(quick=quick)
    metrics["trace.overhead_pct"] = overhead["overhead_pct"]
    metrics["trace.disabled_span_ns"] = overhead["disabled_span_ns"]
    metrics["trace.wall_off_s"] = overhead["wall_off_s"]
    metrics["trace.wall_on_s"] = overhead["wall_on_s"]

    metrics["mem.peak_rss_bytes"] = float(peak_rss_bytes())
    return metrics


def check(
    metrics: dict[str, float], baseline: dict
) -> tuple[list[str], list[str]]:
    """Gate ``metrics`` against ``baseline``; returns (failures, notes)."""
    base_metrics = baseline.get("metrics", {})
    thresholds = baseline.get("thresholds", {})
    limits = {**DEFAULT_LIMITS, **baseline.get("limits", {})}
    failures: list[str] = []
    notes: list[str] = []

    for metric, limit in limits.items():
        value = metrics.get(metric)
        if value is None:
            continue
        if value > limit:
            failures.append(
                f"{metric} = {value:.4g} exceeds absolute limit {limit:.4g}"
            )
        else:
            notes.append(f"{metric} = {value:.4g} within limit {limit:.4g}")

    for metric, base in base_metrics.items():
        value = metrics.get(metric)
        if value is None:
            notes.append(f"{metric}: missing from this run (skipped)")
            continue
        if metric in limits:
            continue  # absolute-capped metrics are not relative-gated
        floor = _noise_floor(metric)
        if abs(base) < floor:
            notes.append(
                f"{metric}: baseline {base:.4g} below noise floor "
                f"{floor:.4g} (skipped)"
            )
            continue
        threshold = thresholds.get(metric, DEFAULT_THRESHOLD)
        ratio = (value - base) / abs(base)
        if ratio > threshold:
            failures.append(
                f"{metric} = {value:.4g} regressed {ratio * 100:+.1f}% over "
                f"baseline {base:.4g} (threshold {threshold * 100:.0f}%)"
            )
        else:
            notes.append(
                f"{metric} = {value:.4g} vs baseline {base:.4g} "
                f"({ratio * 100:+.1f}%)"
            )
    return failures, notes


def summary_table(
    metrics: dict[str, float], baseline: dict
) -> list[tuple[str, str, str, str, str]]:
    """Per-key ``(metric, old, new, ratio, flag)`` rows for the run summary.

    Covers the union of baseline and current metrics so both vanished and
    newly added keys are visible.  ``ratio`` is new/old (blank when either
    side is missing or the baseline is ~0); ``flag`` marks absolute-capped
    metrics and missing sides.
    """
    base_metrics = baseline.get("metrics", {})
    limits = {**DEFAULT_LIMITS, **baseline.get("limits", {})}
    rows: list[tuple[str, str, str, str, str]] = []
    for metric in sorted(set(base_metrics) | set(metrics)):
        old = base_metrics.get(metric)
        new = metrics.get(metric)
        old_s = f"{old:.4g}" if old is not None else "-"
        new_s = f"{new:.4g}" if new is not None else "-"
        if old is None:
            ratio_s, flag = "", "new"
        elif new is None:
            ratio_s, flag = "", "gone"
        elif abs(old) < 1e-12:
            ratio_s, flag = "", ""
        else:
            ratio_s = f"{new / old:.3f}"
            flag = f"limit {limits[metric]:.4g}" if metric in limits else ""
        rows.append((metric, old_s, new_s, ratio_s, flag))
    return rows


def print_summary(rows, failures: list[str]) -> None:
    """Render the old/new/ratio table to the log and, when running under
    GitHub Actions, as a markdown table in ``$GITHUB_STEP_SUMMARY``."""
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(("metric", "old", "new", "ratio", ""))
    ]
    print("\nperf summary (old = baseline, new = this run):")
    for row in rows:
        print(
            f"  {row[0]:<{widths[0]}}  {row[1]:>{widths[1]}}  "
            f"{row[2]:>{widths[2]}}  {row[3]:>{widths[3]}}  {row[4]}"
        )
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if not step_summary:
        return
    md = ["## Perf gate", "", "| metric | old | new | ratio | |",
          "| --- | ---: | ---: | ---: | --- |"]
    md += [f"| `{m}` | {o} | {n} | {r} | {f} |" for m, o, n, r, f in rows]
    if failures:
        md += ["", f"**FAILED** — {len(failures)} regression(s):", ""]
        md += [f"- {failure}" for failure in failures]
    else:
        md += ["", "Gate passed."]
    with open(step_summary, "a") as f:
        f.write("\n".join(md) + "\n")


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--quick", action="store_true",
                   help="quick benchmark mode (what CI runs)")
    p.add_argument("--out", default="BENCH_pr.json", metavar="FILE",
                   help="where to write this run's metrics (default: "
                        "BENCH_pr.json)")
    p.add_argument("--check", default=None, metavar="BASELINE",
                   help="gate against a committed baseline JSON; exit 1 on "
                        "any regression beyond its thresholds")
    p.add_argument("--update-baseline", action="store_true",
                   help=f"write the collected metrics to {BASELINE_PATH} "
                        "(run on the machine CI uses; see DESIGN.md §8)")
    args = p.parse_args(argv)

    metrics = collect(quick=args.quick)
    payload = {"quick": args.quick, "metrics": metrics}
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"wrote {args.out} ({len(metrics)} metrics)")

    if args.update_baseline:
        baseline = {
            "quick": args.quick,
            "metrics": metrics,
            "thresholds": dict(BASELINE_THRESHOLDS),
            "limits": DEFAULT_LIMITS,
        }
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        with open(BASELINE_PATH, "w") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
        print(f"updated baseline {BASELINE_PATH}")

    if args.check is not None:
        with open(args.check) as f:
            baseline = json.load(f)
        if baseline.get("quick") != args.quick:
            print(
                "warning: baseline quick mode "
                f"({baseline.get('quick')}) differs from this run "
                f"({args.quick}); comparison may be meaningless",
                file=sys.stderr,
            )
        failures, notes = check(metrics, baseline)
        for note in notes:
            print(f"  ok: {note}")
        print_summary(summary_table(metrics, baseline), failures)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            print(
                f"\nperf gate FAILED ({len(failures)} regression(s)). "
                "If intentional, refresh the baseline with "
                "'make update-baseline' and commit it.",
                file=sys.stderr,
            )
            return 1
        print(f"perf gate passed ({len(notes)} metrics checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
