"""Geometric predicates and tolerance policy.

All tolerance decisions in the geometry subpackage go through this module so
the rest of the code never hardcodes epsilons.  Tolerances are *relative*:
they scale with the extent of the object being tested, which keeps the
kernels stable whether a simulation box is 1 or 10^4 Mpc/h across.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_REL_EPS",
    "scale_eps",
    "orient3d",
    "classify_against_plane",
    "ON",
    "INSIDE",
    "OUTSIDE",
]

#: Relative tolerance used to decide "on plane" vs "off plane".
DEFAULT_REL_EPS = 1e-9

# Vertex classification codes w.r.t. an oriented plane.
INSIDE = -1  # strictly on the kept side (n.x < d)
ON = 0  # within tolerance of the plane
OUTSIDE = 1  # strictly on the discarded side (n.x > d)


def scale_eps(scale: float, rel_eps: float = DEFAULT_REL_EPS) -> float:
    """Absolute tolerance for an object of characteristic size ``scale``."""
    return max(abs(scale), 1.0) * rel_eps


def orient3d(a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray) -> float:
    """Signed volume (times 6) of tetrahedron ``abcd``.

    Positive when ``d`` is on the side of plane ``abc`` that makes ``abcd``
    positively oriented (right-hand rule over ``(b-a, c-a)``).  This is the
    floating-point version of Shewchuk's predicate; callers must compare it
    against a tolerance from :func:`scale_eps`, never against exact zero.
    """
    ad = np.asarray(a, dtype=float) - np.asarray(d, dtype=float)
    bd = np.asarray(b, dtype=float) - np.asarray(d, dtype=float)
    cd = np.asarray(c, dtype=float) - np.asarray(d, dtype=float)
    return float(np.dot(ad, np.cross(bd, cd)))


def classify_against_plane(
    points: np.ndarray, normal: np.ndarray, offset: float, eps: float
) -> np.ndarray:
    """Classify points against the oriented plane ``normal . x = offset``.

    Returns an int array with values :data:`INSIDE` (kept side,
    ``normal . x < offset - eps``), :data:`ON` (within ``eps``), or
    :data:`OUTSIDE`.
    """
    d = np.asarray(points, dtype=float) @ np.asarray(normal, dtype=float) - offset
    out = np.zeros(len(d), dtype=np.int8)
    out[d < -eps] = INSIDE
    out[d > eps] = OUTSIDE
    return out
