"""Delaunay tetrahedralization and Voronoi-Delaunay duality helpers.

The paper notes (§II-B) that the Delaunay tessellation is simply the dual of
the Voronoi diagram: Delaunay cells have input points at their vertices,
Voronoi cells contain them in their interiors, and each Voronoi vertex is
the circumcenter of a Delaunay tetrahedron.  This module exposes that dual
view — used by the DTFE-style density estimators in
:mod:`repro.analysis.statistics` and by cross-validation tests of the
Voronoi backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DelaunayMesh", "delaunay", "circumcenters", "circumradii"]


@dataclass(frozen=True)
class DelaunayMesh:
    """A Delaunay tetrahedralization.

    Attributes
    ----------
    points:
        The generating points.
    tetrahedra:
        ``(m, 4)`` indices into ``points``.
    neighbors:
        ``(m, 4)`` indices of the tetrahedron opposite each vertex, or -1 on
        the convex-hull boundary (scipy convention).
    """

    points: np.ndarray
    tetrahedra: np.ndarray
    neighbors: np.ndarray

    @property
    def num_tetrahedra(self) -> int:
        return len(self.tetrahedra)

    def volumes(self) -> np.ndarray:
        """Signed-made-positive volume of every tetrahedron."""
        p = self.points
        a = p[self.tetrahedra[:, 0]]
        b = p[self.tetrahedra[:, 1]]
        c = p[self.tetrahedra[:, 2]]
        d = p[self.tetrahedra[:, 3]]
        return np.abs(np.einsum("ij,ij->i", np.cross(b - a, c - a), d - a)) / 6.0

    def vertex_star_volumes(self) -> np.ndarray:
        """Per-point sum of adjacent tetrahedron volumes (contiguous hull).

        This is the denominator of the Delaunay Tessellation Field Estimator
        (DTFE, Schaap 2007): the density estimate at a point is
        ``4 / (star volume)`` in 3D.
        """
        vols = self.volumes()
        out = np.zeros(len(self.points))
        for k in range(4):
            np.add.at(out, self.tetrahedra[:, k], vols)
        return out


def delaunay(points: np.ndarray) -> DelaunayMesh:
    """Delaunay tetrahedralization of 3D points (Qhull via scipy)."""
    from scipy.spatial import Delaunay

    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {pts.shape}")
    tri = Delaunay(pts)
    return DelaunayMesh(
        points=pts,
        tetrahedra=tri.simplices.astype(np.int64),
        neighbors=tri.neighbors.astype(np.int64),
    )


def circumcenters(mesh: DelaunayMesh) -> np.ndarray:
    """Circumcenter of every tetrahedron — the dual Voronoi vertices.

    Solves, per tetrahedron, the linear system equating distances from the
    center to all four vertices.  Vectorized over all tetrahedra.
    """
    p = mesh.points
    a = p[mesh.tetrahedra[:, 0]]
    rows = [p[mesh.tetrahedra[:, k]] - a for k in (1, 2, 3)]
    A = np.stack(rows, axis=1)  # (m, 3, 3)
    rhs = 0.5 * np.stack(
        [np.einsum("ij,ij->i", r, r) for r in rows], axis=1
    )  # (m, 3)
    centers = np.linalg.solve(A, rhs[..., None])[..., 0]
    return centers + a


def circumradii(mesh: DelaunayMesh) -> np.ndarray:
    """Circumradius of every tetrahedron."""
    c = circumcenters(mesh)
    a = mesh.points[mesh.tetrahedra[:, 0]]
    d = c - a
    return np.sqrt(np.einsum("ij,ij->i", d, d))
