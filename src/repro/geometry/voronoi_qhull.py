"""Qhull-based Voronoi construction via :class:`scipy.spatial.Voronoi`.

The paper's local computation uses the Qhull library directly; SciPy wraps
the same code, so this backend is the closest functional equivalent.  The
adapter converts Qhull's global diagram (vertices, ridges, regions) into the
per-cell :class:`~repro.geometry.voronoi_cells.VoronoiCellGeometry` objects
that the rest of the pipeline consumes, tagging each face with the
neighboring site index from the ridge's point pair.

Completeness here means: the region is bounded (no ``-1`` vertex — Qhull's
marker for a ray to infinity) *and* every cell vertex lies inside the
container box.  The second condition mirrors the paper's incomplete-cell
deletion: a bounded cell whose vertices spill past the ghost region could
still be altered by unseen particles, so it cannot be certified.
"""

from __future__ import annotations

import numpy as np

from ..diy.bounds import Bounds
from .polyhedron import ConvexPolyhedron
from .voronoi_cells import VoronoiCellGeometry

__all__ = ["voronoi_cells_qhull"]


def voronoi_cells_qhull(
    points: np.ndarray,
    box: Bounds,
    sites: np.ndarray | None = None,
) -> list[VoronoiCellGeometry]:
    """Compute Voronoi cells with the Qhull backend.

    Same contract as :func:`repro.geometry.voronoi_cells.voronoi_cells_clip`
    except incomplete cells carry ``polyhedron=None`` (Qhull leaves them
    unbounded, so there is no closed geometry to report).
    """
    from scipy.spatial import QhullError, Voronoi

    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {pts.shape}")
    n = len(pts)
    site_idx = np.arange(n) if sites is None else np.asarray(sites, dtype=np.int64)
    if n < 5:
        # Qhull needs a full-dimensional Delaunay; with too few sites every
        # cell is unbounded anyway.
        return [
            VoronoiCellGeometry(site=int(s), polyhedron=None, complete=False)
            for s in site_idx
        ]

    try:
        vor = Voronoi(pts)
    except QhullError:
        try:
            vor = Voronoi(pts, qhull_options="Qbb Qc Qz QJ")  # joggle
        except QhullError:
            return [
                VoronoiCellGeometry(site=int(s), polyhedron=None, complete=False)
                for s in site_idx
            ]

    # Group ridges by the cell on each side: cell -> [(other_site, ridge_vertices)].
    # Ridges touching Qhull's synthetic Qz point (index >= n, possible on
    # degenerate inputs) mark their real cell unbounded.
    cell_ridges: dict[int, list[tuple[int, list[int]]]] = {}
    synthetic_touch: set[int] = set()
    for (p, q), rv in zip(vor.ridge_points, vor.ridge_vertices):
        p, q = int(p), int(q)
        if p >= n or q >= n:
            if p < n:
                synthetic_touch.add(p)
            if q < n:
                synthetic_touch.add(q)
            continue
        cell_ridges.setdefault(p, []).append((q, rv))
        cell_ridges.setdefault(q, []).append((p, rv))

    lo, hi = box.as_arrays()

    out: list[VoronoiCellGeometry] = []
    for s in site_idx:
        s = int(s)
        region = vor.regions[vor.point_region[s]]
        ridges = cell_ridges.get(s, [])
        if not region or -1 in region or not ridges or s in synthetic_touch:
            out.append(VoronoiCellGeometry(site=s, polyhedron=None, complete=False))
            continue
        if any(-1 in rv for _, rv in ridges):
            out.append(VoronoiCellGeometry(site=s, polyhedron=None, complete=False))
            continue

        poly = _polyhedron_from_ridges(vor.vertices, ridges, pts[s], pts)
        if poly is None:
            out.append(VoronoiCellGeometry(site=s, polyhedron=None, complete=False))
            continue
        inside = np.all(poly.vertices >= lo) and np.all(poly.vertices <= hi)
        out.append(
            VoronoiCellGeometry(site=s, polyhedron=poly, complete=bool(inside))
        )
    return out


def _polyhedron_from_ridges(
    vor_vertices: np.ndarray,
    ridges: list[tuple[int, list[int]]],
    site: np.ndarray,
    pts: np.ndarray,
) -> ConvexPolyhedron | None:
    """Assemble a closed polyhedron from a bounded cell's ridges.

    Each ridge polygon's vertices are re-ordered by angle around the
    site-to-neighbor axis; Qhull emits them in facet order already, but the
    contract is undocumented, so we do not rely on it.
    """
    used = sorted({int(v) for _, rv in ridges for v in rv})
    if len(used) < 4:
        return None
    remap = {v: i for i, v in enumerate(used)}
    vertices = vor_vertices[used]

    faces: list[np.ndarray] = []
    face_ids: list[int] = []
    for other, rv in ridges:
        if len(rv) < 3:
            continue
        axis = pts[other] - site
        norm = np.linalg.norm(axis)
        if norm == 0.0:
            return None
        axis = axis / norm
        ring = np.asarray([remap[int(v)] for v in rv], dtype=np.int64)
        ring_pts = vertices[ring]
        center = ring_pts.mean(axis=0)
        # In-plane basis perpendicular to the site-neighbor axis.
        a = np.array([1.0, 0.0, 0.0])
        if abs(float(a @ axis)) > 0.9:
            a = np.array([0.0, 1.0, 0.0])
        u = np.cross(axis, a)
        u /= np.linalg.norm(u)
        w = np.cross(axis, u)
        rel = ring_pts - center
        order = np.argsort(np.arctan2(rel @ w, rel @ u))
        faces.append(ring[order])
        face_ids.append(int(other))

    if len(faces) < 4:
        return None
    return ConvexPolyhedron(
        vertices=vertices,
        faces=faces,
        face_ids=np.asarray(face_ids, dtype=np.int64),
    )
