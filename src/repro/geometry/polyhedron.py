"""Convex polyhedra with halfspace clipping.

:class:`ConvexPolyhedron` is the workhorse of the native Voronoi backend
(:mod:`repro.geometry.voronoi_cells`): a Voronoi cell starts as the block's
ghost-extended bounding box and is cut down by one bisector halfspace per
relevant neighbor, Voro++-style.  Each face remembers the *generator id* of
the halfspace that produced it — a neighboring site index for bisector
faces, or a negative wall code for the initial box faces — which later
drives both completeness detection (a cell with any wall face may be
unbounded in truth) and cell adjacency for connected-component labeling.

Geometric robustness comes from tolerant vertex classification (see
:mod:`repro.geometry.predicates`) and from recomputing derived quantities
(volume, area) in an orientation-free way: face normals are re-oriented
against the centroid rather than trusting stored winding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..diy.bounds import Bounds
from .predicates import DEFAULT_REL_EPS, INSIDE, ON, OUTSIDE, scale_eps

__all__ = ["ConvexPolyhedron", "WALL_IDS"]

#: Generator ids of the six initial box walls (-1 .. -6):
#: (-x, +x, -y, +y, -z, +z).
WALL_IDS = (-1, -2, -3, -4, -5, -6)


@dataclass
class ConvexPolyhedron:
    """A closed convex polyhedron as vertices plus face cycles.

    Attributes
    ----------
    vertices:
        Float array of shape ``(nv, 3)``.
    faces:
        One integer index array per face, each an ordered cycle into
        ``vertices``.  Winding is not guaranteed consistent; all metric
        queries re-orient internally.
    face_ids:
        One generator id per face: the neighbor-site index whose bisector
        carved the face, or a negative wall code from :data:`WALL_IDS`.
    """

    vertices: np.ndarray
    faces: list[np.ndarray]
    face_ids: np.ndarray

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bounds(cls, bounds: Bounds) -> "ConvexPolyhedron":
        """Axis-aligned box with wall faces tagged by :data:`WALL_IDS`."""
        if bounds.dim != 3:
            raise ValueError("ConvexPolyhedron requires 3D bounds")
        lo, hi = bounds.as_arrays()
        x0, y0, z0 = lo
        x1, y1, z1 = hi
        vertices = np.array(
            [
                [x0, y0, z0],  # 0
                [x1, y0, z0],  # 1
                [x1, y1, z0],  # 2
                [x0, y1, z0],  # 3
                [x0, y0, z1],  # 4
                [x1, y0, z1],  # 5
                [x1, y1, z1],  # 6
                [x0, y1, z1],  # 7
            ],
            dtype=float,
        )
        faces = [
            np.array([0, 3, 7, 4]),  # -x
            np.array([1, 2, 6, 5]),  # +x
            np.array([0, 1, 5, 4]),  # -y
            np.array([3, 2, 6, 7]),  # +y
            np.array([0, 1, 2, 3]),  # -z
            np.array([4, 5, 6, 7]),  # +z
        ]
        return cls(vertices=vertices, faces=faces, face_ids=np.array(WALL_IDS))

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_faces(self) -> int:
        return len(self.faces)

    @property
    def num_face_vertices(self) -> int:
        """Total vertex references across faces (connectivity size)."""
        return int(sum(len(f) for f in self.faces))

    def characteristic_scale(self) -> float:
        """Largest extent along any axis (for tolerance scaling)."""
        if len(self.vertices) == 0:
            return 1.0
        return float(np.max(self.vertices.max(axis=0) - self.vertices.min(axis=0)))

    def centroid(self) -> np.ndarray:
        """Mean of the vertices (inside the polyhedron by convexity)."""
        return self.vertices.mean(axis=0)

    def max_vertex_distance(self, point: np.ndarray) -> float:
        """Greatest distance from ``point`` to any vertex.

        This is the 'security radius' test of the native Voronoi backend: a
        bisector with a site farther than twice this distance cannot cut the
        cell any further.
        """
        d = self.vertices - np.asarray(point, dtype=float)
        return float(np.sqrt(np.einsum("ij,ij->i", d, d).max()))

    def max_pairwise_vertex_distance(self) -> float:
        """Greatest distance between any two vertices (cell 'diameter').

        Used by the paper's conservative early volume cull: a cell kept only
        if this exceeds the diameter of the sphere circumscribing the
        threshold volume.
        """
        v = self.vertices
        if len(v) < 2:
            return 0.0
        # O(n^2) but n ~ 35 for Voronoi cells.
        diff = v[:, None, :] - v[None, :, :]
        return float(np.sqrt(np.einsum("ijk,ijk->ij", diff, diff).max()))

    def wall_face_mask(self) -> np.ndarray:
        """Boolean mask of faces generated by the initial box walls."""
        return self.face_ids < 0

    def neighbor_ids(self) -> np.ndarray:
        """Generator ids of all non-wall faces (neighboring site indices)."""
        return self.face_ids[self.face_ids >= 0]

    # ------------------------------------------------------------------
    # metric quantities (orientation-free)
    # ------------------------------------------------------------------
    def _face_area_vectors(self) -> np.ndarray:
        """Per-face area vectors (Newell's method), arbitrary sign."""
        out = np.zeros((len(self.faces), 3))
        for i, face in enumerate(self.faces):
            pts = self.vertices[face]
            nxt = np.roll(pts, -1, axis=0)
            out[i] = 0.5 * np.cross(pts, nxt).sum(axis=0)
        return out

    def surface_area(self) -> float:
        """Total face area."""
        av = self._face_area_vectors()
        return float(np.sqrt(np.einsum("ij,ij->i", av, av)).sum())

    def face_areas(self) -> np.ndarray:
        """Area of each face, in face order."""
        av = self._face_area_vectors()
        return np.sqrt(np.einsum("ij,ij->i", av, av))

    def volume(self) -> float:
        """Volume by summing pyramids from the centroid over each face.

        Valid for convex polyhedra regardless of face winding: each pyramid
        height is taken as an absolute distance.
        """
        c = self.centroid()
        total = 0.0
        for face in self.faces:
            rel = self.vertices[face] - c
            # Fan-triangulate the face and sum signed tetrahedron volumes
            # with apex at the centroid: det(q0, qk, qk+1).  For a planar
            # face the terms share a sign, so abs of the sum is the pyramid
            # volume regardless of winding.
            cr = np.cross(rel[1:-1], rel[2:])
            total += abs(float((cr @ rel[0]).sum()))
        return total / 6.0

    def face_plane(self, face_index: int) -> tuple[np.ndarray, float]:
        """Outward plane ``(unit_normal, offset)`` of a face.

        Outward means pointing away from the centroid; for degenerate
        (near-zero-area) faces the Newell normal may vanish, in which case a
        zero vector is returned.
        """
        face = self.faces[face_index]
        pts = self.vertices[face]
        nxt = np.roll(pts, -1, axis=0)
        n = 0.5 * np.cross(pts, nxt).sum(axis=0)
        norm = np.linalg.norm(n)
        if norm == 0.0:
            return np.zeros(3), 0.0
        n = n / norm
        p0 = pts.mean(axis=0)
        if np.dot(n, p0 - self.centroid()) < 0:
            n = -n
        return n, float(np.dot(n, p0))

    def contains(self, point: np.ndarray, rel_eps: float = DEFAULT_REL_EPS) -> bool:
        """Tolerant point-in-polyhedron test."""
        p = np.asarray(point, dtype=float)
        eps = scale_eps(self.characteristic_scale(), rel_eps)
        for i in range(len(self.faces)):
            n, d = self.face_plane(i)
            if np.dot(n, p) > d + eps:
                return False
        return True

    # ------------------------------------------------------------------
    # clipping
    # ------------------------------------------------------------------
    def clip_halfspace(
        self,
        normal: np.ndarray,
        offset: float,
        generator_id: int,
        rel_eps: float = DEFAULT_REL_EPS,
    ) -> "ConvexPolyhedron | None":
        """Intersect with the halfspace ``normal . x <= offset``.

        Returns a new polyhedron (``self`` unchanged), or ``None`` if the
        intersection is empty.  If the plane does not cut the polyhedron the
        original object is returned unmodified (no copy).  The new cap face
        is tagged with ``generator_id``.
        """
        normal = np.asarray(normal, dtype=float)
        eps = scale_eps(self.characteristic_scale(), rel_eps)
        dist = self.vertices @ normal - offset
        code = np.zeros(len(dist), dtype=np.int8)
        code[dist < -eps] = INSIDE
        code[dist > eps] = OUTSIDE

        if not np.any(code == OUTSIDE):
            return self  # plane misses (or merely grazes) the polyhedron
        if not np.any(code == INSIDE):
            return None  # entirely on the discarded side

        new_vertices: list[np.ndarray] = []
        # Map original kept vertex index -> new index, and cut edge -> new index.
        vmap: dict[int, int] = {}
        emap: dict[tuple[int, int], int] = {}

        def keep_vertex(i: int) -> int:
            j = vmap.get(i)
            if j is None:
                j = len(new_vertices)
                new_vertices.append(self.vertices[i])
                vmap[i] = j
            return j

        def cut_edge(i: int, j: int) -> int:
            key = (i, j) if i < j else (j, i)
            k = emap.get(key)
            if k is None:
                t = dist[i] / (dist[i] - dist[j])
                p = self.vertices[i] + t * (self.vertices[j] - self.vertices[i])
                k = len(new_vertices)
                new_vertices.append(p)
                emap[key] = k
            return k

        new_faces: list[np.ndarray] = []
        new_ids: list[int] = []
        cap_vertex_ids: set[int] = set()

        for face, fid in zip(self.faces, self.face_ids):
            poly: list[int] = []
            n = len(face)
            for a in range(n):
                i, j = int(face[a]), int(face[(a + 1) % n])
                ci, cj = code[i], code[j]
                if ci != OUTSIDE:
                    poly.append(keep_vertex(i))
                    if ci == ON:
                        cap_vertex_ids.add(vmap[i])
                if (ci == INSIDE and cj == OUTSIDE) or (
                    ci == OUTSIDE and cj == INSIDE
                ):
                    k = cut_edge(i, j)
                    poly.append(k)
                    cap_vertex_ids.add(k)
            # Collapse consecutive duplicates that tolerant classification
            # can produce, then drop degenerate faces.
            dedup: list[int] = []
            for v in poly:
                if not dedup or dedup[-1] != v:
                    dedup.append(v)
            if len(dedup) > 1 and dedup[0] == dedup[-1]:
                dedup.pop()
            if len(dedup) >= 3:
                new_faces.append(np.array(dedup, dtype=np.int64))
                new_ids.append(int(fid))

        # Build the cap face on the cutting plane.
        if len(cap_vertex_ids) >= 3:
            cap = self._order_cap(
                np.array(sorted(cap_vertex_ids)), new_vertices, normal
            )
            new_faces.append(cap)
            new_ids.append(int(generator_id))

        if len(new_faces) < 4 or len(new_vertices) < 4:
            return None  # clipped to (near) nothing

        return ConvexPolyhedron(
            vertices=np.asarray(new_vertices),
            faces=new_faces,
            face_ids=np.asarray(new_ids, dtype=np.int64),
        )

    @staticmethod
    def _order_cap(
        ids: np.ndarray, vertices: list[np.ndarray], normal: np.ndarray
    ) -> np.ndarray:
        """Order cap vertices into a cycle around the plane normal."""
        pts = np.asarray([vertices[i] for i in ids])
        center = pts.mean(axis=0)
        # In-plane orthonormal basis.
        n = normal / np.linalg.norm(normal)
        a = np.array([1.0, 0.0, 0.0])
        if abs(np.dot(a, n)) > 0.9:
            a = np.array([0.0, 1.0, 0.0])
        u = np.cross(n, a)
        u /= np.linalg.norm(u)
        v = np.cross(n, u)
        rel = pts - center
        ang = np.arctan2(rel @ v, rel @ u)
        return ids[np.argsort(ang)]

    # ------------------------------------------------------------------
    def validate(self, rel_eps: float = 1e-6) -> None:
        """Sanity checks: closed, convex-ish, centroid interior.

        Intended for tests and debugging; raises ``ValueError`` on the first
        violated invariant.
        """
        if len(self.faces) != len(self.face_ids):
            raise ValueError("face_ids length mismatch")
        if len(self.faces) < 4:
            raise ValueError(f"too few faces: {len(self.faces)}")
        used = np.unique(np.concatenate([np.asarray(f) for f in self.faces]))
        if used.min() < 0 or used.max() >= len(self.vertices):
            raise ValueError("face index out of range")
        # Every edge must be shared by exactly two faces (closed 2-manifold).
        from collections import Counter

        edge_count: Counter = Counter()
        for face in self.faces:
            n = len(face)
            for a in range(n):
                i, j = int(face[a]), int(face[(a + 1) % n])
                edge_count[(min(i, j), max(i, j))] += 1
        bad = {e: c for e, c in edge_count.items() if c != 2}
        if bad:
            raise ValueError(f"non-manifold edges: {bad}")
        # Centroid inside all face planes.
        c = self.centroid()
        eps = scale_eps(self.characteristic_scale(), rel_eps)
        for i in range(len(self.faces)):
            n, d = self.face_plane(i)
            if np.dot(n, c) > d + eps:
                raise ValueError(f"centroid outside face {i}")
