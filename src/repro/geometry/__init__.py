"""Computational-geometry kernels (the repo's "Qhull" substrate).

Provides convex hulls (native Quickhull and scipy/Qhull backends), convex
polyhedra with halfspace clipping, two interchangeable Voronoi cell
constructions, and Delaunay duality helpers.  Everything downstream —
tess's parallel tessellation and the void analysis — builds on these
kernels.
"""

from .convex_hull import Hull, convex_hull, merge_coplanar_triangles
from .delaunay import DelaunayMesh, circumcenters, circumradii, delaunay
from .polyhedron import WALL_IDS, ConvexPolyhedron
from .predicates import DEFAULT_REL_EPS, classify_against_plane, orient3d, scale_eps
from .voronoi_cells import VoronoiCellGeometry, voronoi_cells_clip
from .voronoi_delaunay import DelaunayVoronoi, tet_circumcenters
from .voronoi_flat import FlatVoronoi
from .voronoi_qhull import voronoi_cells_qhull

__all__ = [
    "Hull",
    "convex_hull",
    "merge_coplanar_triangles",
    "DelaunayMesh",
    "circumcenters",
    "circumradii",
    "delaunay",
    "WALL_IDS",
    "ConvexPolyhedron",
    "DEFAULT_REL_EPS",
    "classify_against_plane",
    "orient3d",
    "scale_eps",
    "VoronoiCellGeometry",
    "voronoi_cells_clip",
    "voronoi_cells_qhull",
    "DelaunayVoronoi",
    "FlatVoronoi",
    "tet_circumcenters",
]


def voronoi_cells(points, box, sites=None, backend: str = "clip"):
    """Dispatch to a Voronoi backend (``"clip"`` native or ``"qhull"``)."""
    if backend == "clip":
        return voronoi_cells_clip(points, box, sites=sites)
    if backend == "qhull":
        return voronoi_cells_qhull(points, box, sites=sites)
    raise ValueError(f"unknown Voronoi backend {backend!r} (use 'clip' or 'qhull')")
