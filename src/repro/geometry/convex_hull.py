"""3D convex hulls: a native Quickhull plus a scipy(Qhull) backend.

The paper computes each Voronoi cell's faces, areas, and volumes by running
a convex hull over the cell's vertices (§III-C step 3d), using the Qhull
library.  Here we provide the same operation with two interchangeable
backends:

* ``native`` — a from-scratch incremental Quickhull (Barber et al. 1996):
  build an initial simplex from extreme points, then repeatedly lift the
  farthest outside point, delete the faces it sees, and re-triangulate the
  horizon.  O(n log n) expected.
* ``qhull`` — :class:`scipy.spatial.ConvexHull`, which wraps the very same
  Qhull code the paper used.

Both return a :class:`Hull` of outward-oriented triangles; tests
cross-validate the two backends on random point clouds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .predicates import scale_eps

__all__ = ["Hull", "convex_hull", "merge_coplanar_triangles"]


@dataclass(frozen=True)
class Hull:
    """A triangulated convex hull.

    Attributes
    ----------
    points:
        The input point array the indices refer to.
    vertices:
        Sorted unique indices of input points on the hull.
    simplices:
        ``(m, 3)`` triangle array, each wound counter-clockwise viewed from
        outside (outward normals by the right-hand rule).
    """

    points: np.ndarray
    vertices: np.ndarray
    simplices: np.ndarray

    def volume(self) -> float:
        """Enclosed volume via the divergence theorem."""
        p = self.points
        a, b, c = (p[self.simplices[:, k]] for k in range(3))
        return float(np.einsum("ij,ij->", np.cross(a, b), c)) / 6.0

    def area(self) -> float:
        """Total surface area."""
        p = self.points
        a, b, c = (p[self.simplices[:, k]] for k in range(3))
        cr = np.cross(b - a, c - a)
        return float(np.sqrt(np.einsum("ij,ij->i", cr, cr)).sum()) / 2.0

    def contains(self, q: np.ndarray, rel_eps: float = 1e-9) -> bool:
        """Tolerant membership test against every face plane."""
        p = self.points
        q = np.asarray(q, dtype=float)
        scale = float(np.max(p[self.vertices].max(0) - p[self.vertices].min(0)))
        eps = scale_eps(scale, rel_eps)
        a, b, c = (p[self.simplices[:, k]] for k in range(3))
        n = np.cross(b - a, c - a)
        lhs = np.einsum("ij,j->i", n, q) - np.einsum("ij,ij->i", n, a)
        rhs = eps * np.sqrt(np.einsum("ij,ij->i", n, n)) + eps
        return bool(np.all(lhs <= rhs))


def convex_hull(points: np.ndarray, backend: str = "native") -> Hull:
    """Convex hull of 3D points.

    Parameters
    ----------
    points:
        ``(n, 3)`` array, ``n >= 4``, not all coplanar.
    backend:
        ``"native"`` for the from-scratch Quickhull, ``"qhull"`` for
        :class:`scipy.spatial.ConvexHull`.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {pts.shape}")
    if len(pts) < 4:
        raise ValueError(f"need at least 4 points, got {len(pts)}")
    if backend == "qhull":
        return _scipy_hull(pts)
    if backend == "native":
        return _QuickHull(pts).run()
    raise ValueError(f"unknown backend {backend!r} (use 'native' or 'qhull')")


def _scipy_hull(pts: np.ndarray) -> Hull:
    from scipy.spatial import ConvexHull as SciHull

    h = SciHull(pts)
    simplices = h.simplices.copy()
    # Orient each triangle outward using Qhull's plane equations.
    a = pts[simplices[:, 0]]
    b = pts[simplices[:, 1]]
    c = pts[simplices[:, 2]]
    n = np.cross(b - a, c - a)
    flip = np.einsum("ij,ij->i", n, h.equations[:, :3]) < 0
    simplices[flip, 1], simplices[flip, 2] = (
        simplices[flip, 2].copy(),
        simplices[flip, 1].copy(),
    )
    return Hull(points=pts, vertices=np.sort(h.vertices), simplices=simplices)


class _Face:
    """Mutable Quickhull face: triangle + outside point set."""

    __slots__ = ("a", "b", "c", "normal", "offset", "outside", "alive")

    def __init__(self, a: int, b: int, c: int, pts: np.ndarray):
        self.a, self.b, self.c = a, b, c
        n = np.cross(pts[b] - pts[a], pts[c] - pts[a])
        self.normal = n
        self.offset = float(n @ pts[a])
        self.outside: list[int] = []
        self.alive = True

    def dist(self, pts: np.ndarray, idx: np.ndarray) -> np.ndarray:
        return pts[idx] @ self.normal - self.offset

    def edges(self) -> tuple[tuple[int, int], ...]:
        return ((self.a, self.b), (self.b, self.c), (self.c, self.a))


class _QuickHull:
    """Incremental Quickhull over a fixed point array."""

    def __init__(self, pts: np.ndarray):
        self.pts = pts
        scale = float(np.max(pts.max(axis=0) - pts.min(axis=0)))
        if scale == 0.0:
            raise ValueError("all points coincide; hull is degenerate")
        self.eps = scale_eps(scale, 1e-12) * 100.0

    # ------------------------------------------------------------------
    def run(self) -> Hull:
        faces = self._initial_simplex()
        self._assign_outside(faces, np.arange(len(self.pts)))

        pending = [f for f in faces if f.outside]
        while pending:
            face = pending.pop()
            if not face.alive or not face.outside:
                continue
            d = face.dist(self.pts, np.asarray(face.outside))
            far = face.outside[int(np.argmax(d))]
            visible = self._visible_faces(faces, far)
            horizon = self._horizon(visible)
            orphan: list[int] = []
            for f in visible:
                f.alive = False
                orphan.extend(f.outside)
                f.outside = []
            new_faces = []
            for i, j in horizon:
                nf = _Face(i, j, far, self.pts)
                new_faces.append(nf)
            faces = [f for f in faces if f.alive] + new_faces
            orphan = [p for p in set(orphan) if p != far]
            self._assign_outside(new_faces, np.asarray(sorted(orphan), dtype=np.int64))
            pending = [f for f in faces if f.alive and f.outside]

        simplices = np.array(
            [[f.a, f.b, f.c] for f in faces if f.alive], dtype=np.int64
        )
        vertices = np.unique(simplices)
        return Hull(points=self.pts, vertices=vertices, simplices=simplices)

    # ------------------------------------------------------------------
    def _initial_simplex(self) -> list[_Face]:
        pts = self.pts
        # 1. extreme pair along the axis with the largest spread
        spread_axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        i0 = int(np.argmin(pts[:, spread_axis]))
        i1 = int(np.argmax(pts[:, spread_axis]))
        if i0 == i1:
            raise ValueError("degenerate input: zero spread")
        # 2. farthest point from the line (i0, i1)
        d01 = pts[i1] - pts[i0]
        rel = pts - pts[i0]
        cr = np.cross(rel, d01)
        line_d = np.einsum("ij,ij->i", cr, cr)
        i2 = int(np.argmax(line_d))
        if line_d[i2] <= self.eps**2:
            raise ValueError("degenerate input: all points collinear")
        # 3. farthest point from the plane (i0, i1, i2)
        n = np.cross(pts[i1] - pts[i0], pts[i2] - pts[i0])
        plane_d = rel @ n
        i3 = int(np.argmax(np.abs(plane_d)))
        if abs(plane_d[i3]) <= self.eps * np.linalg.norm(n):
            raise ValueError("degenerate input: all points coplanar")
        if plane_d[i3] > 0:
            # Swap so the tetrahedron (i0,i1,i2,i3) is positively oriented
            # with outward-wound faces below.
            i1, i2 = i2, i1
        return [
            _Face(i0, i1, i2, pts),
            _Face(i0, i3, i1, pts),
            _Face(i1, i3, i2, pts),
            _Face(i2, i3, i0, pts),
        ]

    def _assign_outside(self, faces: list[_Face], candidates: np.ndarray) -> None:
        if len(candidates) == 0:
            return
        remaining = candidates
        for f in faces:
            if len(remaining) == 0:
                break
            d = f.dist(self.pts, remaining)
            mask = d > self.eps
            f.outside.extend(int(i) for i in remaining[mask])
            remaining = remaining[~mask]

    def _visible_faces(self, faces: list[_Face], p: int) -> list[_Face]:
        q = self.pts[p]
        return [
            f
            for f in faces
            if f.alive and (q @ f.normal - f.offset) > self.eps
        ]

    @staticmethod
    def _horizon(visible: list[_Face]) -> list[tuple[int, int]]:
        """Directed boundary edges of the visible region.

        An edge appears once per face; edges interior to the visible set
        appear in both directions and cancel.  The survivors, kept with the
        visible face's winding, give outward-wound new triangles when joined
        to the apex point.
        """
        seen: dict[tuple[int, int], tuple[int, int]] = {}
        for f in visible:
            for i, j in f.edges():
                key = (j, i) if (j, i) in seen else None
                if key:
                    del seen[key]
                else:
                    seen[(i, j)] = (i, j)
        return list(seen.values())


def merge_coplanar_triangles(
    hull: Hull, rel_eps: float = 1e-6
) -> tuple[list[np.ndarray], np.ndarray]:
    """Group hull triangles into maximal coplanar polygonal faces.

    Returns ``(faces, normals)`` where each face is an ordered vertex-index
    cycle and ``normals`` holds one outward unit normal per face.  Used to
    recover the paper's "~15 faces per cell" statistics from triangulated
    hulls and to build polygon meshes for the data model.
    """
    pts = hull.points
    a, b, c = (pts[hull.simplices[:, k]] for k in range(3))
    n = np.cross(b - a, c - a)
    norms = np.sqrt(np.einsum("ij,ij->i", n, n))
    good = norms > 0
    n_unit = np.zeros_like(n)
    n_unit[good] = n[good] / norms[good, None]
    offs = np.einsum("ij,ij->i", n_unit, a)

    scale = float(np.max(pts.max(0) - pts.min(0)))
    eps = scale_eps(scale, rel_eps)

    # Union coplanar neighbors (triangles sharing an edge with same plane).
    parent = list(range(len(hull.simplices)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: int, y: int) -> None:
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[ry] = rx

    edge_owner: dict[tuple[int, int], int] = {}
    for t, (i, j, k) in enumerate(hull.simplices):
        for e in ((i, j), (j, k), (k, i)):
            key = (min(e), max(e))
            other = edge_owner.get(key)
            if other is None:
                edge_owner[key] = t
            else:
                same_plane = (
                    np.dot(n_unit[t], n_unit[other]) > 1.0 - rel_eps * 10
                    and abs(offs[t] - offs[other]) <= eps
                )
                if same_plane:
                    union(t, other)

    groups: dict[int, list[int]] = {}
    for t in range(len(hull.simplices)):
        groups.setdefault(find(t), []).append(t)

    faces: list[np.ndarray] = []
    normals: list[np.ndarray] = []
    for tris in groups.values():
        # Boundary edges of the merged patch form the polygon cycle.
        edge_use: dict[tuple[int, int], int] = {}
        directed: dict[int, int] = {}
        for t in tris:
            i, j, k = (int(v) for v in hull.simplices[t])
            for e in ((i, j), (j, k), (k, i)):
                key = (min(e), max(e))
                edge_use[key] = edge_use.get(key, 0) + 1
        for t in tris:
            i, j, k = (int(v) for v in hull.simplices[t])
            for e in ((i, j), (j, k), (k, i)):
                key = (min(e), max(e))
                if edge_use[key] == 1:
                    directed[e[0]] = e[1]
        if not directed:
            continue
        start = next(iter(directed))
        cycle = [start]
        cur = directed[start]
        while cur != start and len(cycle) <= len(directed):
            cycle.append(cur)
            cur = directed[cur]
        faces.append(np.asarray(cycle, dtype=np.int64))
        normals.append(n_unit[tris[0]])
    return faces, np.asarray(normals)
