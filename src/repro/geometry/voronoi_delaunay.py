"""Delaunay-direct flat Voronoi engine (production tessellation path).

:class:`DelaunayVoronoi` builds the same flat-CSR Voronoi interface as
:class:`~repro.geometry.voronoi_flat.FlatVoronoi` without ever calling
``scipy.spatial.Voronoi``.  A raw ``scipy.spatial.Delaunay`` is ~2x
cheaper than the Voronoi call on the same points *and* returns pure
ndarrays (``simplices``, ``neighbors``), so the whole diagram can be
derived with array passes and no list-of-lists flattening:

* Voronoi vertices are the circumcenters of the Delaunay tetrahedra —
  one batched Cramer solve over all tets;
* each tet contributes its 6 edges; grouping the 6m (edge -> tet)
  incidences by edge key collects, per Delaunay edge, the ring of tets
  whose circumcenters are exactly the dual ridge polygon of that
  site pair;
* a ridge is finite iff its Delaunay edge is interior — hull edges (the
  edges of faces with ``neighbors == -1``) dualize to unbounded ridges,
  and hull *sites* are the unbounded cells;
* each finite ring is ordered by angle around the site-pair axis, then
  coincident circumcenters (cospherical point sets — lattices —
  triangulate into slivers whose circumcenters collide) are merged by
  tolerance; rings left with fewer than three distinct vertices are
  dropped as degenerate, so lattice inputs do not fabricate zero-area
  ridges or phantom adjacency;
* volumes/areas come from the same segmented Newell + bisector-pyramid
  identity as FlatVoronoi, completeness from hull incidence plus an
  all-circumcenters-inside-the-container test.

The per-ring order/dedup/Newell work runs in a compiled C kernel when
:mod:`repro._native` can build one (it fuses ~15 NumPy passes into one
loop); otherwise an equivalent vectorized NumPy path is taken.  Both
paths are exercised by the parity tests.

Qhull's int32 ``simplices`` are promoted to int64 on entry (PR 5's
id-safety rule: downstream CSR indices must not wrap at 2**31).

The one Delaunay triangulation can be shared: pass a prebuilt
``scipy.spatial.Delaunay`` (or :class:`~repro.geometry.delaunay.
DelaunayMesh`) via ``mesh=``, and read :attr:`DelaunayVoronoi.mesh` /
:attr:`DelaunayVoronoi.tet_circumcenters` to reuse the triangulation for
the dual output mode (:mod:`repro.core.delaunay_mode`) or DTFE density
estimation — one qhull call per block, shared by every consumer.
"""

from __future__ import annotations

import numpy as np

from .. import _native
from ..diy.bounds import Bounds
from .voronoi_flat import FlatVoronoiBase

__all__ = ["DelaunayVoronoi", "tet_circumcenters"]

#: the 6 vertex pairs (edges) of a tetrahedron
_TET_EDGES = np.array(
    [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]], dtype=np.int64
)
#: vertex triples of the face opposite each tet vertex (scipy convention)
_TET_FACES = np.array(
    [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]], dtype=np.int64
)
#: the 3 vertex pairs (edges) of a triangular face
_FACE_EDGES = np.array([[0, 1], [0, 2], [1, 2]], dtype=np.int64)

#: relative tolerance (of the container diagonal) under which two ring
#: circumcenters are the same Voronoi vertex
_COINCIDENT_RTOL = 1e-9


def _lstsq_fixup(centers, pts, tets, bad):
    """Re-solve the exactly singular tets (NaN/inf centers) one by one."""
    for i in np.flatnonzero(bad):
        a = pts[tets[i, 0]]
        rows = pts[tets[i, 1:]] - a
        rhs = 0.5 * np.einsum("ij,ij->i", rows, rows)
        centers[i] = np.linalg.lstsq(rows, rhs, rcond=None)[0] + a


def tet_circumcenters(points: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Circumcenters of tetrahedra: batched Cramer's rule.

    Row ``k`` of the per-tet system equates the center's distance to
    vertex 0 and vertex ``k+1``.  Exactly singular systems (degenerate
    slivers) fall back to least squares; the resulting far-away center
    is merged/culled by the coincidence tolerance later.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    tets = np.ascontiguousarray(tets, dtype=np.int64)
    native = _native.lib()
    if native is not None:
        out = np.empty((len(tets), 3))
        nbad = native.tet_circumcenters(points, tets, len(tets), out)
        if nbad:
            _lstsq_fixup(
                out, points, tets, ~np.isfinite(out).all(axis=1)
            )
        return out

    a = points[tets[:, 0]]
    rows = np.stack([points[tets[:, k]] - a for k in (1, 2, 3)], axis=1)
    rhs = 0.5 * np.einsum("ijk,ijk->ij", rows, rows)
    c23 = np.cross(rows[:, 1], rows[:, 2])
    c31 = np.cross(rows[:, 2], rows[:, 0])
    c12 = np.cross(rows[:, 0], rows[:, 1])
    det = np.einsum("ij,ij->i", rows[:, 0], c23)
    with np.errstate(divide="ignore", invalid="ignore"):
        centers = (
            rhs[:, :1] * c23 + rhs[:, 1:2] * c31 + rhs[:, 2:] * c12
        ) / det[:, None]
    centers += a
    bad = ~np.isfinite(centers).all(axis=1)
    if bad.any():
        _lstsq_fixup(centers, points, tets, bad)
    return centers


class DelaunayVoronoi(FlatVoronoiBase):
    """Flat-CSR Voronoi diagram computed directly from a Delaunay mesh.

    Same interface and attribute semantics as :class:`FlatVoronoi` (see
    its docstring); the vertex pool is the per-tet circumcenter array, so
    ``vertices[t]`` is the circumcenter of tet ``t`` and
    :attr:`tet_circumcenters` aliases it.

    Parameters
    ----------
    points:
        ``(n, 3)`` sites.
    box:
        Container bounds; cells with a vertex outside are incomplete.
    mesh:
        Optional prebuilt triangulation of exactly ``points`` — a
        ``scipy.spatial.Delaunay`` or a
        :class:`~repro.geometry.delaunay.DelaunayMesh` — to skip the
        qhull call (the one-triangulation-per-block sharing contract).
    """

    def __init__(self, points: np.ndarray, box: Bounds, mesh=None):
        pts = np.ascontiguousarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError(f"points must be (n, 3), got {pts.shape}")
        n = len(pts)
        self.points = pts
        self.box = box
        if n < 5:
            self._init_degenerate(n)
            return

        tets, nbrs, coplanar = self._triangulate(pts, mesh)
        if tets is None:
            self._init_degenerate(n)
            return
        # Qhull's Qz option (used by the joggle fallback) can leave a
        # synthetic point-at-infinity (index >= n) in the simplices on
        # degenerate input.  Drop those tets — their faces dualize to
        # nothing real — remapping severed neighbor links to -1 so the
        # touched sites register as unbounded below.
        synth = (tets >= n).any(axis=1)
        if synth.any():
            remap = np.full(len(tets) + 1, -1, dtype=np.int64)
            remap[np.flatnonzero(~synth)] = np.arange(int((~synth).sum()))
            tets = tets[~synth]
            nbrs = remap[nbrs[~synth]]
            if len(tets) == 0:
                self._init_degenerate(n)
                return
        tets = np.ascontiguousarray(tets)
        m = len(tets)
        self.num_tets = m
        self._tets = tets
        self._neighbors = nbrs

        # ---- dual vertices: all circumcenters, one batched solve --------
        self.vertices = tet_circumcenters(pts, tets)

        # ---- group tets by Delaunay edge: the dual ridge rings ----------
        # 6 edges per tet, keyed lo*n + hi.  When key and tet id fit in
        # one int64, pack them and sort *values* (roughly twice as fast
        # as argsort + two gathers); else argsort the keys.
        ev = tets[:, _TET_EDGES]  # (m, 6, 2)
        ekey = (
            np.minimum(ev[..., 0], ev[..., 1]) * n
            + np.maximum(ev[..., 0], ev[..., 1])
        ).ravel()
        shift = int(m).bit_length()
        if (n * n) >> (63 - shift) == 0:
            packed = (ekey << shift) | np.repeat(
                np.arange(m, dtype=np.int64), 6
            )
            packed.sort()
            ekey = packed >> shift
            tet_of = packed & ((np.int64(1) << shift) - 1)
        else:
            tet_of = np.repeat(np.arange(m, dtype=np.int64), 6)
            order = np.argsort(ekey)
            ekey = ekey[order]
            tet_of = tet_of[order]
        ring_starts = np.flatnonzero(
            np.concatenate([[True], ekey[1:] != ekey[:-1]])
        )
        ring_lengths = np.diff(np.concatenate([ring_starts, [len(ekey)]]))
        edge_keys = ekey[ring_starts]

        # ---- unboundedness from convex-hull incidence -------------------
        # neighbors == -1 marks hull facets; their vertices are the
        # unbounded sites and their edges dualize to unbounded ridges.
        bt, bk = np.nonzero(nbrs == -1)
        hull_faces = tets[bt[:, None], _TET_FACES[bk]]  # (B, 3)
        hull_sites = np.unique(hull_faces)
        fe = hull_faces[:, _FACE_EDGES]
        hull_keys = np.unique(
            np.minimum(fe[..., 0], fe[..., 1]) * n
            + np.maximum(fe[..., 0], fe[..., 1])
        )
        finite = ~np.isin(edge_keys, hull_keys, assume_unique=True)

        f_lengths = ring_lengths[finite]
        f_keys = edge_keys[finite]
        R = len(f_keys)
        ridge_sites = np.empty((R, 2), dtype=np.int64)
        ridge_sites[:, 0] = f_keys // n
        ridge_sites[:, 1] = f_keys % n
        # ring tet ids, rings contiguous: ridge r is fl_flat[off[r]:off[r+1]]
        fl_flat = np.ascontiguousarray(
            tet_of[np.repeat(finite, ring_lengths)]
        )
        fl_offsets = np.concatenate([[0], np.cumsum(f_lengths)])

        lo, hi = box.as_arrays()
        eps = _COINCIDENT_RTOL * float(np.linalg.norm(hi - lo))
        native = _native.lib()
        if R == 0:
            self.ridge_sites = np.empty((0, 2), dtype=np.int64)
            self.ridge_flat = np.empty(0, dtype=np.int64)
            self.ridge_offsets = np.zeros(1, dtype=np.int64)
            self.ridge_areas = np.empty(0)
        elif native is not None:
            out_flat = np.empty(len(fl_flat), dtype=np.int64)
            out_len = np.empty(R, dtype=np.int64)
            areas = np.empty(R)
            keep = np.empty(R, dtype=np.uint8)
            total = native.order_rings(
                self.vertices, pts, np.ascontiguousarray(ridge_sites),
                fl_flat, fl_offsets, R, eps * eps,
                out_flat, out_len, areas, keep,
            )
            keep = keep.view(bool)
            self.ridge_flat = out_flat[:total]
            self.ridge_offsets = np.concatenate(
                [[0], np.cumsum(out_len[keep])]
            )
            self.ridge_sites = ridge_sites[keep]
            self.ridge_areas = areas[keep]
            self.degenerate_ridges_dropped = R - len(self.ridge_sites)
        else:
            fl_rid = np.repeat(np.arange(R, dtype=np.int64), f_lengths)
            (
                self.ridge_flat,
                self.ridge_offsets,
                keep_ridge,
            ) = self._order_and_dedup_rings(
                pts, ridge_sites, fl_flat, fl_offsets, fl_rid, f_lengths, eps
            )
            self.ridge_sites = ridge_sites[keep_ridge]
            self.degenerate_ridges_dropped = R - len(self.ridge_sites)
            # segmented Newell area over the ordered rings
            opts = self.vertices[self.ridge_flat]
            nxt_idx = np.arange(len(self.ridge_flat)) + 1
            nxt_idx[self.ridge_offsets[1:] - 1] = self.ridge_offsets[:-1]
            cr = np.cross(opts, opts[nxt_idx])
            area_vec = (
                np.add.reduceat(cr, self.ridge_offsets[:-1], axis=0) * 0.5
            )
            self.ridge_areas = np.sqrt(
                np.einsum("ij,ij->i", area_vec, area_vec)
            )
        R = len(self.ridge_sites)

        # ---- bisector-pyramid volumes + surface areas -------------------
        if R > 0:
            d = np.linalg.norm(
                pts[self.ridge_sites[:, 1]] - pts[self.ridge_sites[:, 0]],
                axis=1,
            )
            pyramid = self.ridge_areas * d / 6.0
            self.volumes = np.bincount(
                self.ridge_sites[:, 0], weights=pyramid, minlength=n
            ) + np.bincount(
                self.ridge_sites[:, 1], weights=pyramid, minlength=n
            )
            self.areas = np.bincount(
                self.ridge_sites[:, 0], weights=self.ridge_areas, minlength=n
            ) + np.bincount(
                self.ridge_sites[:, 1], weights=self.ridge_areas, minlength=n
            )
        else:
            self.ridge_areas = np.empty(0)
            self.volumes = np.zeros(n)
            self.areas = np.zeros(n)

        # ---- completeness -----------------------------------------------
        # Bounded iff not on the convex hull; inside iff every incident
        # circumcenter (== every cell vertex, by duality) is in the box.
        bounded = np.ones(n, dtype=bool)
        bounded[hull_sites] = False
        c_in = np.all((self.vertices >= lo) & (self.vertices <= hi), axis=1)
        cell_in = np.ones(n, dtype=bool)
        if not c_in.all():
            cell_in[tets[~c_in].ravel()] = False
        # Sites absent from the triangulation: qhull folds exact duplicates
        # (and near-coplanar merges) into a representative vertex; they
        # share its cell, mirroring Voronoi's shared point_region (zero
        # volume, no ridges — the representative carries the metrics).
        in_tri = np.zeros(n, dtype=bool)
        in_tri[tets.ravel()] = True
        missing = ~in_tri
        if missing.any():
            bounded_m = np.zeros(n, dtype=bool)
            if coplanar is not None and len(coplanar):
                cop = coplanar[coplanar[:, 0] < n]
                rep = np.minimum(cop[:, 2], n - 1)
                bounded_m[cop[:, 0]] = bounded[rep]
            bounded[missing] = bounded_m[missing]
            cell_in[missing] = True
        self.complete = bounded & cell_in
        if self.used_fallback:
            # Joggled output is qhull-run-specific noise on exactly
            # degenerate input; never certify cells from it.
            self.complete[:] = False

        # ---- CSR: site -> valid ridge ids -------------------------------
        if R > 0:
            counts = np.bincount(
                self.ridge_sites[:, 0], minlength=n
            ) + np.bincount(self.ridge_sites[:, 1], minlength=n)
            self.cell_ridges_offsets = np.concatenate(
                [[0], np.cumsum(counts)]
            ).astype(np.int64)
            self.cell_ridges_flat = np.empty(2 * R, dtype=np.int64)
            if native is not None:
                cursor = self.cell_ridges_offsets[:-1].copy()
                native.fill_cell_ridges(
                    np.ascontiguousarray(self.ridge_sites), R,
                    cursor, self.cell_ridges_flat,
                )
            else:
                sites_both = np.concatenate(
                    [self.ridge_sites[:, 0], self.ridge_sites[:, 1]]
                )
                rid_both = np.concatenate(
                    [np.arange(R), np.arange(R)]
                ).astype(np.int64)
                # Stable sort by site: side-0 entries precede side-1
                # entries within each cell, each in ridge order
                # (FlatVoronoi's layout).
                self.cell_ridges_flat = rid_both[
                    np.argsort(sites_both, kind="stable")
                ]
        else:
            self.cell_ridges_offsets = np.zeros(n + 1, dtype=np.int64)
            self.cell_ridges_flat = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def _triangulate(self, pts: np.ndarray, mesh):
        """Return int64 ``(tets, neighbors, coplanar)`` from ``mesh`` or a
        fresh qhull run (with a joggle fallback on degenerate input)."""
        if mesh is not None:
            if hasattr(mesh, "tetrahedra"):  # DelaunayMesh
                return (
                    np.asarray(mesh.tetrahedra, dtype=np.int64),
                    np.asarray(mesh.neighbors, dtype=np.int64),
                    None,
                )
            return (
                np.asarray(mesh.simplices, dtype=np.int64),
                np.asarray(mesh.neighbors, dtype=np.int64),
                np.asarray(mesh.coplanar, dtype=np.int64),
            )

        from scipy.spatial import Delaunay, QhullError

        try:
            tri = Delaunay(pts)
        except QhullError:
            try:
                tri = Delaunay(pts, qhull_options="Qbb Qc Qz QJ")
                self.used_fallback = True
            except QhullError:
                return None, None, None
        return (
            tri.simplices.astype(np.int64),
            tri.neighbors.astype(np.int64),
            np.asarray(tri.coplanar, dtype=np.int64),
        )

    def _order_and_dedup_rings(
        self, pts, ridge_sites, fl_flat, fl_offsets, fl_rid, f_lengths, eps
    ):
        """NumPy fallback: angle-order each tet ring and merge coincident
        circumcenters (the compiled kernel's semantics, vectorized).

        Returns ``(ridge_flat, ridge_offsets, keep_ridge)`` with rings of
        fewer than three distinct vertices dropped (``keep_ridge`` masks
        the surviving rings in the input ridge order).
        """
        axis = pts[ridge_sites[:, 1]] - pts[ridge_sites[:, 0]]
        axis /= np.linalg.norm(axis, axis=1, keepdims=True)
        helper = np.zeros_like(axis)
        use_y = np.abs(axis[:, 0]) > 0.9
        helper[use_y, 1] = 1.0
        helper[~use_y, 0] = 1.0
        u = np.cross(axis, helper)
        u /= np.linalg.norm(u, axis=1, keepdims=True)
        v = np.cross(axis, u)

        vpts = self.vertices[fl_flat]
        centers = (
            np.add.reduceat(vpts, fl_offsets[:-1], axis=0)
            / f_lengths[:, None]
        )
        rel = vpts - centers[fl_rid]
        ang = np.arctan2(
            np.einsum("ij,ij->i", rel, v[fl_rid]),
            np.einsum("ij,ij->i", rel, u[fl_rid]),
        )
        # One argsort of a composite float key instead of a two-key lexsort
        # (~10x cheaper): ring id in the integer part, normalized angle in
        # the fraction.  Fractional resolution at R ~ 2^17 rings is ~1e-10
        # rad; ties at that scale are coincident vertices, merged below.
        comp = fl_rid + (ang + np.pi) / (2.0 * np.pi + 1e-6)
        order = np.argsort(comp, kind="stable")
        sflat = fl_flat[order]
        spts = vpts[order]

        # A vertex coincident with its cyclic predecessor is the same
        # Voronoi vertex: cospherical sites triangulate into tet fans that
        # share one circumcenter, and keeping the duplicates would turn
        # lattice ridges into degenerate polygons.
        prev = np.arange(len(sflat)) - 1
        prev[fl_offsets[:-1]] = fl_offsets[1:] - 1
        dd = spts - spts[prev]
        keep = np.einsum("ij,ij->i", dd, dd) > eps * eps
        new_len = np.add.reduceat(keep.astype(np.int64), fl_offsets[:-1])
        keep_ridge = new_len >= 3
        keep &= keep_ridge[fl_rid]
        return (
            sflat[keep],
            np.concatenate([[0], np.cumsum(new_len[keep_ridge])]),
            keep_ridge,
        )

    # ------------------------------------------------------------------
    @property
    def mesh(self):
        """The underlying triangulation as a :class:`DelaunayMesh`."""
        from .delaunay import DelaunayMesh

        if self.num_tets == 0:
            return DelaunayMesh(
                points=self.points,
                tetrahedra=np.empty((0, 4), dtype=np.int64),
                neighbors=np.empty((0, 4), dtype=np.int64),
            )
        return DelaunayMesh(
            points=self.points, tetrahedra=self._tets, neighbors=self._neighbors
        )

    @property
    def tet_circumcenters(self) -> np.ndarray:
        """Per-tet circumcenters — identical to :attr:`vertices`."""
        return self.vertices
