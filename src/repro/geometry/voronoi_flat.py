"""Vectorized global Voronoi diagram (flat-array Qhull backend).

:class:`FlatVoronoi` converts :class:`scipy.spatial.Voronoi` output into
flat CSR-style arrays and computes *all* cell metrics with array
operations — no per-cell Python geometry:

* ridge polygons are ordered by angle around their site-pair axis in one
  vectorized pass (lexsort over (ridge, angle));
* ridge areas come from a segmented Newell sum (``np.add.reduceat``);
* cell volumes exploit the bisector identity: every Voronoi ridge lies on
  the perpendicular bisector of its site pair, so the pyramid from either
  site to the ridge has height ``|s_p - s_q| / 2`` and the cell volume is
  ``(1/6) * sum of A_r * d_r`` over the cell's ridges;
* completeness combines Qhull's unbounded-region marker with an
  all-vertices-inside-the-container test, matching the semantics of the
  clip backend.

:class:`FlatVoronoi` was the engine behind tess's production path until the
Delaunay-direct engine (:mod:`repro.geometry.voronoi_delaunay`) replaced
it; it remains the first-line cross-validation oracle, with the per-cell
backends in :mod:`repro.geometry.voronoi_cells` /
:mod:`repro.geometry.voronoi_qhull` as the deeper references.

:class:`FlatVoronoiBase` holds the flat-CSR interface contract both
engines share: attribute layout, cycle/neighbor accessors, and the batched
cell-diameter kernel used by the early volume cull.
"""

from __future__ import annotations

from itertools import chain

import numpy as np

from ..diy.bounds import Bounds

__all__ = ["FlatVoronoi", "FlatVoronoiBase"]


def _segment_gather(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Indices gathering CSR segments ``[starts[i], starts[i]+lengths[i])``."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out_starts = np.concatenate([[0], np.cumsum(lengths[:-1])])
    return (
        np.repeat(starts, lengths)
        + np.arange(total)
        - np.repeat(out_starts, lengths)
    )


class FlatVoronoiBase:
    """Shared flat-CSR Voronoi interface (see :class:`FlatVoronoi`).

    Subclasses populate in ``__init__``: ``points``, ``box``, ``vertices``,
    ``ridge_sites``, ``ridge_flat``/``ridge_offsets``, ``ridge_areas``,
    ``volumes``/``areas``, ``complete``, ``cell_ridges_flat``/
    ``cell_ridges_offsets`` — plus the geometry counters ``num_tets``,
    ``degenerate_ridges_dropped``, and ``used_fallback``.
    """

    #: Delaunay tetrahedra behind the diagram (0 for the Qhull-Voronoi path).
    num_tets: int = 0
    #: ridges discarded as coincident-circumcenter slivers (Delaunay path).
    degenerate_ridges_dropped: int = 0
    #: True when the engine fell back to joggled input or an empty diagram.
    used_fallback: bool = False

    def _init_degenerate(self, n: int) -> None:
        self.used_fallback = True
        self.vertices = np.empty((0, 3))
        self.ridge_sites = np.empty((0, 2), dtype=np.int64)
        self.ridge_flat = np.empty(0, dtype=np.int64)
        self.ridge_offsets = np.zeros(1, dtype=np.int64)
        self.ridge_areas = np.empty(0)
        self.volumes = np.zeros(n)
        self.areas = np.zeros(n)
        self.complete = np.zeros(n, dtype=bool)
        self.cell_ridges_offsets = np.zeros(n + 1, dtype=np.int64)
        self.cell_ridges_flat = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def num_sites(self) -> int:
        return len(self.points)

    @property
    def num_ridges(self) -> int:
        """Number of finite ridges."""
        return len(self.ridge_sites)

    def cell_ridge_ids(self, site: int) -> np.ndarray:
        """Valid-ridge indices bounding the cell of ``site``."""
        return self.cell_ridges_flat[
            self.cell_ridges_offsets[site] : self.cell_ridges_offsets[site + 1]
        ]

    def ridge_cycle(self, r: int) -> np.ndarray:
        """Ordered vertex indices (into :attr:`vertices`) of ridge ``r``."""
        return self.ridge_flat[self.ridge_offsets[r] : self.ridge_offsets[r + 1]]

    def cell_neighbors(self, site: int) -> np.ndarray:
        """Site indices across each of the cell's ridges."""
        rs = self.ridge_sites[self.cell_ridge_ids(site)]
        return np.where(rs[:, 0] == site, rs[:, 1], rs[:, 0])

    def max_vertex_separation(self, site: int) -> float:
        """Diameter of the cell's vertex set (early-cull quantity)."""
        return float(
            self.max_vertex_separations(np.asarray([site], dtype=np.int64))[0]
        )

    def max_vertex_separations(
        self, sites: np.ndarray | None = None, chunk: int = 2048
    ) -> np.ndarray:
        """Batched cell diameters: max pairwise vertex distance per cell.

        Computes, for every requested site (default all), the exact maximum
        pairwise distance between the distinct vertices of its cell — the
        conservative early-cull quantity of paper §III-C — with array ops
        only.  Cells with fewer than two vertices get 0.  ``chunk`` bounds
        the number of cells expanded to vertex pairs at once, capping the
        O(sum k_i^2) intermediate memory.
        """
        sites = (
            np.arange(self.num_sites, dtype=np.int64)
            if sites is None
            else np.asarray(sites, dtype=np.int64)
        )
        out = np.zeros(len(sites))
        cr_off = self.cell_ridges_offsets
        r_off = self.ridge_offsets
        for c0 in range(0, len(sites), chunk):
            sel = sites[c0 : c0 + chunk]
            counts = (cr_off[sel + 1] - cr_off[sel]).astype(np.int64)
            rids = self.cell_ridges_flat[_segment_gather(cr_off[sel], counts)]
            cyc_len = (r_off[rids + 1] - r_off[rids]).astype(np.int64)
            vids = self.ridge_flat[_segment_gather(r_off[rids], cyc_len)]
            # vertices per cell (with multiplicity across its ridges)
            per_cell = np.zeros(len(sel), dtype=np.int64)
            np.add.at(per_cell, np.repeat(np.arange(len(sel)), counts), cyc_len)
            cell_of = np.repeat(np.arange(len(sel)), per_cell)
            # distinct (cell, vertex) pairs: duplicates don't change the max
            # but quadratically inflate the pair expansion below.
            nv = max(len(self.vertices), 1)
            uniq = np.unique(cell_of * nv + vids)
            ucell = uniq // nv
            uvid = uniq % nv
            k = np.bincount(ucell, minlength=len(sel)).astype(np.int64)
            multi = k >= 2
            if not multi.any():
                continue
            # all k_i^2 vertex pairs within each cell's segment
            seg_starts = np.concatenate([[0], np.cumsum(k[:-1])])
            kk = k[multi]
            starts = seg_starts[multi]
            left = np.repeat(uvid[_segment_gather(starts, kk)], np.repeat(kk, kk))
            right = uvid[
                _segment_gather(np.repeat(starts, kk), np.repeat(kk, kk))
            ]
            diff = self.vertices[left] - self.vertices[right]
            d2 = np.einsum("ij,ij->i", diff, diff)
            bounds = np.concatenate([[0], np.cumsum(kk * kk)])[:-1]
            out[c0 + np.flatnonzero(multi)] = np.sqrt(
                np.maximum.reduceat(d2, bounds)
            )
        return out


class FlatVoronoi(FlatVoronoiBase):
    """Flat-array Voronoi diagram of a 3D point set within a container box.

    Attributes (all computed in ``__init__``)
    -----------------------------------------
    vertices:
        ``(nv, 3)`` Voronoi vertex coordinates (Qhull's global pool).
    ridge_sites:
        ``(R, 2)`` site index pair of each *valid* (finite) ridge.
    ridge_flat / ridge_offsets:
        Ordered vertex-index cycles of the valid ridges in CSR form:
        ridge ``r`` is ``ridge_flat[ridge_offsets[r]:ridge_offsets[r+1]]``.
    ridge_areas:
        ``(R,)`` polygon area per valid ridge.
    volumes / areas:
        ``(n,)`` per-site cell volume and surface area (NaN/partial for
        incomplete cells — do not use unless ``complete`` is set).
    complete:
        ``(n,)`` bool; cell is bounded with every vertex inside the box.
    cell_ridges_flat / cell_ridges_offsets:
        CSR mapping from each site to the valid-ridge indices around it.
    """

    def __init__(self, points: np.ndarray, box: Bounds):
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError(f"points must be (n, 3), got {pts.shape}")
        n = len(pts)
        self.points = pts
        self.box = box
        if n < 5:
            # Too few sites for a 3D Delaunay: everything is unbounded.
            self._init_degenerate(n)
            return

        from scipy.spatial import QhullError, Voronoi

        try:
            vor = Voronoi(pts)
        except QhullError:
            # Degenerate input (coincident/collinear/coplanar points):
            # retry with joggled input, as qhull recommends; give up to an
            # empty (all-incomplete) diagram if even that fails.
            try:
                vor = Voronoi(pts, qhull_options="Qbb Qc Qz QJ")
                self.used_fallback = True
            except QhullError:
                self._init_degenerate(n)
                return
        self.vertices = vor.vertices

        # ---- flatten ridges, keeping only finite ones -------------------
        # One C-level pass per list-of-lists (map/chain feed fromiter with a
        # preset count) — the per-element genexpr flattens this replaces
        # were the hot spot of the whole constructor after the Qhull call.
        lengths = np.fromiter(
            map(len, vor.ridge_vertices),
            dtype=np.int64,
            count=len(vor.ridge_vertices),
        )
        flat = np.fromiter(
            chain.from_iterable(vor.ridge_vertices),
            dtype=np.int64,
            count=int(lengths.sum()),
        )
        starts = np.concatenate([[0], np.cumsum(lengths)])
        # A ridge is finite iff it has no -1 vertex (scipy puts -1 first).
        has_inf = np.zeros(len(lengths), dtype=bool)
        np.logical_or.at(has_inf, np.repeat(np.arange(len(lengths)), lengths), flat < 0)

        ridge_points = np.asarray(vor.ridge_points, dtype=np.int64)
        # Qhull's Qz option introduces a synthetic point-at-infinity whose
        # index (>= n) can appear in ridge_points on degenerate inputs;
        # such ridges bound unbounded cells.
        real_sites = np.all(ridge_points < n, axis=1)
        synthetic_touch = np.unique(
            ridge_points[~real_sites][ridge_points[~real_sites] < n]
        )
        finite = ~has_inf & (lengths >= 3) & real_sites
        self.ridge_sites = ridge_points[finite]
        fl_lengths = lengths[finite]
        R = int(finite.sum())

        # Gather the finite ridges' flat vertices.
        keep_mask = np.repeat(finite, lengths)
        fl_flat = flat[keep_mask]
        fl_offsets = np.concatenate([[0], np.cumsum(fl_lengths)])
        fl_rid = np.repeat(np.arange(R), fl_lengths)

        # ---- order each ridge polygon by angle around its pair axis -----
        if R > 0:
            axis = pts[self.ridge_sites[:, 1]] - pts[self.ridge_sites[:, 0]]
            axis /= np.linalg.norm(axis, axis=1, keepdims=True)
            helper = np.zeros_like(axis)
            use_y = np.abs(axis[:, 0]) > 0.9
            helper[use_y, 1] = 1.0
            helper[~use_y, 0] = 1.0
            u = np.cross(axis, helper)
            u /= np.linalg.norm(u, axis=1, keepdims=True)
            v = np.cross(axis, u)

            vpts = self.vertices[fl_flat]
            centers = np.add.reduceat(vpts, fl_offsets[:-1], axis=0)
            centers /= fl_lengths[:, None]
            rel = vpts - centers[fl_rid]
            ang = np.arctan2(
                np.einsum("ij,ij->i", rel, v[fl_rid]),
                np.einsum("ij,ij->i", rel, u[fl_rid]),
            )
            order = np.lexsort((ang, fl_rid))
            self.ridge_flat = fl_flat[order]
            self.ridge_offsets = fl_offsets

            # ---- segmented Newell area ---------------------------------
            opts = self.vertices[self.ridge_flat]
            # next vertex within each ridge cycle
            nxt_idx = np.arange(len(self.ridge_flat)) + 1
            nxt_idx[fl_offsets[1:] - 1] = fl_offsets[:-1]
            cr = np.cross(opts, opts[nxt_idx])
            area_vec = np.add.reduceat(cr, fl_offsets[:-1], axis=0) * 0.5
            self.ridge_areas = np.sqrt(np.einsum("ij,ij->i", area_vec, area_vec))

            # ---- cell volume/area via the bisector identity --------------
            d = np.linalg.norm(
                pts[self.ridge_sites[:, 1]] - pts[self.ridge_sites[:, 0]], axis=1
            )
            pyramid = self.ridge_areas * d / 6.0
            self.volumes = np.zeros(n)
            self.areas = np.zeros(n)
            for side in (0, 1):
                np.add.at(self.volumes, self.ridge_sites[:, side], pyramid)
                np.add.at(self.areas, self.ridge_sites[:, side], self.ridge_areas)
        else:
            self.ridge_flat = np.empty(0, dtype=np.int64)
            self.ridge_offsets = np.zeros(1, dtype=np.int64)
            self.ridge_areas = np.empty(0)
            self.volumes = np.zeros(n)
            self.areas = np.zeros(n)

        # ---- completeness -------------------------------------------------
        # A site is bounded iff its region is nonempty and has no -1 vertex.
        # Build region lengths and -1 membership once with array ops instead
        # of a per-site Python loop over vor.regions.
        regions = vor.regions
        region_lengths = np.fromiter(
            map(len, regions), dtype=np.int64, count=len(regions)
        )
        region_flat = np.fromiter(
            chain.from_iterable(regions),
            dtype=np.int64,
            count=int(region_lengths.sum()),
        )
        region_of = np.repeat(np.arange(len(regions)), region_lengths)
        region_has_inf = (
            np.bincount(
                region_of, weights=region_flat < 0, minlength=len(regions)
            )
            > 0
        )
        region_bad = (region_lengths == 0) | region_has_inf
        bounded = ~region_bad[np.asarray(vor.point_region[:n], dtype=np.int64)]
        bounded[synthetic_touch] = False  # cells facing the Qz point
        # A ridge with a vertex outside the box taints both its cells.
        lo, hi = box.as_arrays()
        if R > 0:
            vin = np.all((self.vertices >= lo) & (self.vertices <= hi), axis=1)
            ridge_in = np.ones(R, dtype=bool)
            np.logical_and.at(
                ridge_in,
                np.repeat(np.arange(R), np.diff(self.ridge_offsets)),
                vin[self.ridge_flat],
            )
            cell_in = np.ones(n, dtype=bool)
            for side in (0, 1):
                np.logical_and.at(cell_in, self.ridge_sites[:, side], ridge_in)
            # Sites whose infinite ridges were dropped must not count as
            # complete just because their remaining ridges look fine.
            self.complete = bounded & cell_in
        else:
            self.complete = np.zeros(n, dtype=bool)

        # ---- CSR: site -> valid ridge ids ---------------------------------
        counts = np.zeros(n, dtype=np.int64)
        for side in (0, 1):
            np.add.at(counts, self.ridge_sites[:, side], 1)
        self.cell_ridges_offsets = np.concatenate([[0], np.cumsum(counts)])
        self.cell_ridges_flat = np.empty(int(counts.sum()), dtype=np.int64)
        cursor = self.cell_ridges_offsets[:-1].copy()
        for side in (0, 1):
            sites_side = self.ridge_sites[:, side]
            # Stable fill: iterate ridges in order, vectorized via argsort.
            order = np.argsort(sites_side, kind="stable")
            sorted_sites = sites_side[order]
            pos = cursor[sorted_sites]
            # offsets within each site's run
            run_start = np.concatenate(
                [[0], np.flatnonzero(np.diff(sorted_sites)) + 1]
            )
            run_id = np.zeros(len(sorted_sites), dtype=np.int64)
            run_id[run_start[1:]] = 1
            run_id = np.cumsum(run_id)
            within = np.arange(len(sorted_sites)) - run_start[run_id]
            self.cell_ridges_flat[pos + within] = order
            # Advance each site's cursor past this side's entries.
            cursor += np.bincount(sites_side, minlength=n)
