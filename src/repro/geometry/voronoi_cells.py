"""Native cell-based Voronoi construction (bisector clipping).

This is the ``clip`` backend of the tessellation: each cell starts as the
container box and is intersected with one halfspace per nearby site — the
perpendicular bisector between the cell's own site and that neighbor — in
increasing distance order.  Iteration stops at the *security radius*: once
the next candidate site is farther than twice the distance from the site to
the farthest current cell vertex, no further bisector can cut the cell
(Rycroft's Voro++ uses the same criterion; the paper cites it as the prior
shared-memory parallel Voronoi implementation).

Every face of the resulting polyhedron carries the index of the neighbor
site whose bisector generated it (or a negative wall code if the container
box survived on that side).  A cell is **complete** when no wall faces
remain: its geometry is fully determined by real neighbors, so a larger
point set could not change it — the exact property tess needs to certify
cells computed from ghost-augmented local points (paper §III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..diy.bounds import Bounds
from .polyhedron import ConvexPolyhedron
from .predicates import DEFAULT_REL_EPS

__all__ = ["VoronoiCellGeometry", "voronoi_cells_clip"]


@dataclass
class VoronoiCellGeometry:
    """Geometry of one Voronoi cell.

    Attributes
    ----------
    site:
        Index of the generating site in the input point array.
    polyhedron:
        The cell's polyhedron, or ``None`` when construction degenerated
        (coincident sites).  Incomplete cells still carry their (box-clipped
        or unbounded-truncated) polyhedron for diagnostics.
    complete:
        True when the cell is bounded entirely by real bisector faces, so
        its geometry cannot change if more distant sites were added.
    """

    site: int
    polyhedron: ConvexPolyhedron | None
    complete: bool

    @property
    def volume(self) -> float:
        """Cell volume (0.0 for degenerate cells)."""
        return 0.0 if self.polyhedron is None else self.polyhedron.volume()

    @property
    def surface_area(self) -> float:
        """Cell surface area (0.0 for degenerate cells)."""
        return 0.0 if self.polyhedron is None else self.polyhedron.surface_area()

    @property
    def neighbors(self) -> np.ndarray:
        """Indices of sites sharing a face with this cell."""
        if self.polyhedron is None:
            return np.empty(0, dtype=np.int64)
        return self.polyhedron.neighbor_ids()


def voronoi_cells_clip(
    points: np.ndarray,
    box: Bounds,
    sites: np.ndarray | None = None,
    rel_eps: float = DEFAULT_REL_EPS,
    initial_k: int = 32,
) -> list[VoronoiCellGeometry]:
    """Compute Voronoi cells for ``sites`` among ``points`` inside ``box``.

    Parameters
    ----------
    points:
        ``(n, 3)`` array of all sites (e.g. owned + ghost particles).
    box:
        Container; cells are clipped to it, and cells that retain a wall
        face are flagged incomplete.
    sites:
        Indices of the points whose cells to compute (default: all).
    rel_eps:
        Relative geometric tolerance.
    initial_k:
        First KD-tree query size; grows geometrically as needed.

    Returns
    -------
    list[VoronoiCellGeometry]
        One entry per requested site, in the order of ``sites``.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {pts.shape}")
    n = len(pts)
    if n == 0:
        return []
    site_idx = np.arange(n) if sites is None else np.asarray(sites, dtype=np.int64)

    tree = cKDTree(pts)
    container = ConvexPolyhedron.from_bounds(box)
    # Precompute |p|^2 once; the bisector offset is (|c|^2 - |s|^2) / 2.
    sq = np.einsum("ij,ij->i", pts, pts)

    out: list[VoronoiCellGeometry] = []
    for s in site_idx:
        out.append(_build_cell(int(s), pts, sq, tree, container, rel_eps, initial_k))
    return out


def _build_cell(
    s: int,
    pts: np.ndarray,
    sq: np.ndarray,
    tree: cKDTree,
    container: ConvexPolyhedron,
    rel_eps: float,
    initial_k: int,
) -> VoronoiCellGeometry:
    n = len(pts)
    site = pts[s]
    poly: ConvexPolyhedron | None = container
    k = min(n, max(2, initial_k))
    # Position in the sorted neighbor list.  Start at 0 — with coincident
    # sites the KD-tree may put a twin, not self, in the first slot.
    processed = 0

    while True:
        dists, idxs = tree.query(site, k=k)
        dists = np.atleast_1d(dists)
        idxs = np.atleast_1d(idxs)
        # Drop the inf padding scipy appends when k exceeds n.
        valid = np.isfinite(dists)
        dists, idxs = dists[valid], idxs[valid]

        done = False
        while processed < len(idxs):
            c = int(idxs[processed])
            d = float(dists[processed])
            processed += 1
            if c == s:
                continue  # duplicate-coordinate site can displace self from slot 0
            if d <= 0.0:
                # Coincident site: the bisector is ill-defined; declare the
                # cell degenerate rather than fabricating geometry.
                return VoronoiCellGeometry(site=s, polyhedron=None, complete=False)
            if poly is not None and d > 2.0 * poly.max_vertex_distance(site):
                done = True
                break
            normal = pts[c] - site
            offset = 0.5 * (sq[c] - sq[s])
            poly = poly.clip_halfspace(normal, offset, generator_id=c, rel_eps=rel_eps)
            if poly is None:
                # Numerically impossible for distinct sites (the site itself
                # always satisfies every kept halfspace) — treat defensively.
                return VoronoiCellGeometry(site=s, polyhedron=None, complete=False)

        if done or processed >= n:
            break
        k = min(n, k * 2)

    complete = poly is not None and not bool(poly.wall_face_mask().any())
    return VoronoiCellGeometry(site=s, polyhedron=poly, complete=complete)
