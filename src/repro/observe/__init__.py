"""repro.observe — unified tracing and metrics for the whole stack.

The paper's quantitative story is phase timings (Table II, Figure 10:
exchange / compute / output per rank); production codes like HACC carry
built-in per-phase instrumentation for the same reason.  This subsystem
stitches every layer of a run — initial conditions, simulation steps, in
situ tessellation phases, analysis tools, communication waits, shared-
memory transport, checkpoints — into one inspectable, exportable
timeline plus a process-wide metrics registry.

Three parts:

* :mod:`repro.observe.trace` — per-rank span tracer with wall and
  thread-CPU clocks, recording into bounded ring buffers.  Disabled
  tracing costs one flag check per instrumentation point
  (``benchmarks/bench_trace_overhead.py`` proves <5% on a full run).
* :mod:`repro.observe.metrics` — counters / gauges / histograms that
  absorb the per-layer counters (CommStats, TessTimings, RecoveryStats)
  and add memory high-water marks and fault counters.
* :mod:`repro.observe.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``, one track per rank) and flat JSON summaries for
  CI perf gating.

Cross-rank merge is automatic: the thread backend shares this module's
state, and the process backend ships each forked rank's buffers back
with its result (:mod:`repro.observe.bridge`), so after any
``run_parallel`` region the parent holds the globally-ordered trace.

Quickstart::

    from repro import observe

    observe.enable()
    ...  # run a simulation / tessellation (any backend)
    observe.write_chrome_trace("trace.json")   # load in ui.perfetto.dev
    observe.write_metrics("metrics.json")

Or from the CLI: ``repro-sim deck.json --trace trace.json``.
"""

from __future__ import annotations

from .bridge import (
    absorb_comm_stats,
    absorb_process_results,
    absorb_recovery_stats,
    absorb_tess_timings,
    process_worker,
    rank_finished,
)
from .export import (
    chrome_trace,
    metrics_report,
    phase_criticals,
    span_summary,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileReservoir,
    peak_rss_bytes,
    registry,
)
from .trace import (
    disable,
    dropped_events,
    enable,
    enabled,
    num_events,
    raw_events,
    record,
    reset,
    span,
)

__all__ = [
    "enable",
    "disable",
    "enabled",
    "reset",
    "reset_all",
    "span",
    "record",
    "raw_events",
    "num_events",
    "dropped_events",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "span_summary",
    "phase_criticals",
    "metrics_report",
    "write_metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileReservoir",
    "MetricsRegistry",
    "registry",
    "peak_rss_bytes",
    "absorb_comm_stats",
    "absorb_tess_timings",
    "absorb_recovery_stats",
    "rank_finished",
    "process_worker",
    "absorb_process_results",
]


def reset_all() -> None:
    """Drop all recorded spans *and* every metric (test isolation)."""
    reset()
    registry().reset()
