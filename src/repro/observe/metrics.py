"""Process-wide metrics registry (counters, gauges, histograms).

The registry is the numeric half of ``repro.observe``: where the tracer
answers "when did each phase run", the registry answers "how much" —
messages and bytes moved, memory high-water marks, checkpoint and fault
counters, per-phase time distributions.  It absorbs (and supersedes as
the cross-layer aggregation point) the ad-hoc counters that already live
in :class:`repro.diy.comm.CommStats` and
:class:`repro.core.timing.TessTimings` without changing their public
fields — see :mod:`repro.observe.bridge` for the mapping.

Metrics are keyed by name plus sorted labels (``comm.bytes_sent{rank=2}``)
and carry a *merge rule* so per-process registries from forked ranks can
be folded into the parent at region end:

* **counters** add (totals over ranks and regions),
* **gauges** take the maximum (high-water semantics — peak RSS, peak
  per-rank array bytes),
* **histograms** combine count/total/min/max,
* **reservoirs** concatenate their bounded sample windows (quantile
  summaries — request latencies — where count/total/min/max cannot
  answer "what is p99").
"""

from __future__ import annotations

import sys
import threading
from collections import deque
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileReservoir",
    "MetricsRegistry",
    "registry",
    "peak_rss_bytes",
]


class Counter:
    """Monotonic accumulator (int or float)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (negative increments are rejected)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Last-value metric with a high-water helper (merge rule: max)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the maximum of the current and new value (high-water)."""
        if value > self.value:
            self.value = value


class Histogram:
    """Streaming distribution summary: count, total, min, max."""

    __slots__ = ("count", "total", "min", "max")
    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class QuantileReservoir:
    """Bounded sliding window of samples with percentile queries.

    Keeps the most recent ``capacity`` observations in a deque (appends are
    GIL-atomic, so concurrent server threads can observe without a lock)
    plus a lifetime count.  Percentiles reflect the current window — for a
    latency metric that is "the recent distribution", which is what a
    serving dashboard and the CI latency gate both want.
    """

    __slots__ = ("samples", "count")
    kind = "reservoir"
    capacity = 8192

    def __init__(self) -> None:
        self.samples: deque[float] = deque(maxlen=self.capacity)
        self.count = 0

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self.count += 1

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the current window; 0 when
        empty."""
        if not self.samples:
            return 0.0
        data = sorted(self.samples)
        idx = (q / 100.0) * (len(data) - 1)
        lo = int(idx)
        hi = min(lo + 1, len(data) - 1)
        frac = idx - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": max(self.samples) if self.samples else 0.0,
            "samples": list(self.samples),
        }


def _key(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create store of named, labeled metrics.

    Thread-safe for creation; individual metric updates are simple
    attribute writes (rank threads update disjoint labeled metrics, and
    Python's attribute assignment is atomic enough for observability
    counters).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: dict[str, Any]):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(key, cls())
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {key!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter ``name`` with ``labels``, created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge ``name`` with ``labels``, created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram ``name`` with ``labels``, created on first use."""
        return self._get(Histogram, name, labels)

    def reservoir(self, name: str, **labels: Any) -> QuantileReservoir:
        """The quantile reservoir ``name`` with ``labels``, created on
        first use."""
        return self._get(QuantileReservoir, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Drop every metric (used by forked ranks to start clean)."""
        with self._lock:
            self._metrics.clear()

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """Serializable snapshot: ``{"counters": .., "gauges": ..,
        "histograms": ..}`` keyed by ``name{label=value,...}``."""
        out: dict[str, dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "reservoirs": {},
        }
        with self._lock:
            items = list(self._metrics.items())
        for key, metric in items:
            if isinstance(metric, Counter):
                out["counters"][key] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][key] = metric.value
            elif isinstance(metric, QuantileReservoir):
                out["reservoirs"][key] = metric.as_dict()
            else:
                out["histograms"][key] = metric.as_dict()
        return out

    def merge_dict(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold an :meth:`as_dict` snapshot from another process into this
        registry: counters add, gauges take the max, histograms combine."""
        for key, value in snapshot.get("counters", {}).items():
            metric = self._metrics.get(key)
            if metric is None:
                with self._lock:
                    metric = self._metrics.setdefault(key, Counter())
            metric.value += value
        for key, value in snapshot.get("gauges", {}).items():
            metric = self._metrics.get(key)
            if metric is None:
                with self._lock:
                    metric = self._metrics.setdefault(key, Gauge())
            metric.set_max(value)
        for key, h in snapshot.get("histograms", {}).items():
            metric = self._metrics.get(key)
            if metric is None:
                with self._lock:
                    metric = self._metrics.setdefault(key, Histogram())
            if h["count"]:
                metric.count += h["count"]
                metric.total += h["total"]
                if h["min"] < metric.min:
                    metric.min = h["min"]
                if h["max"] > metric.max:
                    metric.max = h["max"]
        for key, r in snapshot.get("reservoirs", {}).items():
            metric = self._metrics.get(key)
            if metric is None:
                with self._lock:
                    metric = self._metrics.setdefault(key, QuantileReservoir())
            metric.samples.extend(r.get("samples", []))
            metric.count += r["count"]


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry (forked ranks inherit a private copy)."""
    return _registry


def peak_rss_bytes() -> int:
    """This process's resident-set high-water mark in bytes.

    Uses ``getrusage``; Linux reports kilobytes, macOS bytes.  Returns 0
    on platforms without the ``resource`` module.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(rss)
    return int(rss) * 1024
