"""Exporters for recorded spans and metrics.

Two consumers, two formats:

* **Chrome trace-event JSON** (:func:`chrome_trace`,
  :func:`write_chrome_trace`) — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Each rank is one
  track (``pid`` = rank, with a ``process_name`` metadata record), every
  span is a complete ``"X"`` event with microsecond ``ts``/``dur``
  normalized to the earliest recorded span, and thread-CPU seconds plus
  user attributes ride in ``args``.
* **Flat summaries** (:func:`span_summary`, :func:`phase_criticals`,
  :func:`write_metrics`, :func:`write_jsonl`) — machine-readable dicts for
  benchmark tables and the CI perf-regression gate: per-span-name totals,
  per-phase max-over-ranks seconds (the paper's critical-path convention),
  and the full metrics-registry snapshot.
"""

from __future__ import annotations

import json
from typing import Any

from . import trace
from .metrics import registry

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "span_summary",
    "phase_criticals",
    "metrics_report",
    "write_metrics",
]


def chrome_trace(events: list[tuple] | None = None) -> dict[str, Any]:
    """The Chrome trace-event document for ``events`` (default: all
    recorded), globally ordered by start time with one track per rank."""
    if events is None:
        events = trace.raw_events()
    events = sorted(events, key=lambda ev: ev[trace.T0])
    base = events[0][trace.T0] if events else 0.0
    ranks = sorted({ev[trace.RANK] for ev in events})

    out: list[dict[str, Any]] = []
    for rank in ranks:
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": rank,
                "tid": 0,
                "args": {"name": f"rank {rank}"},
            }
        )
    for name, rank, t0, t1, cpu, cat, attrs in events:
        args: dict[str, Any] = {"cpu_ms": round(cpu * 1e3, 6)}
        if attrs:
            args.update(attrs)
        out.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": round((t0 - base) * 1e6, 3),
                "dur": round((t1 - t0) * 1e6, 3),
                "pid": rank,
                "tid": 0,
                "args": args,
            }
        )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, events: list[tuple] | None = None) -> int:
    """Write the Chrome trace JSON to ``path``; returns the span count."""
    doc = chrome_trace(events)
    with open(path, "w") as f:
        json.dump(doc, f)
    return sum(1 for ev in doc["traceEvents"] if ev["ph"] == "X")


def write_jsonl(path: str, events: list[tuple] | None = None) -> int:
    """Write one JSON object per span to ``path`` (flat event log)."""
    if events is None:
        events = trace.raw_events()
    n = 0
    with open(path, "w") as f:
        for name, rank, t0, t1, cpu, cat, attrs in sorted(
            events, key=lambda ev: ev[trace.T0]
        ):
            row = {
                "name": name,
                "rank": rank,
                "t0": t0,
                "t1": t1,
                "wall_s": t1 - t0,
                "cpu_s": cpu,
                "cat": cat,
            }
            if attrs:
                row["attrs"] = attrs
            f.write(json.dumps(row) + "\n")
            n += 1
    return n


def span_summary(events: list[tuple] | None = None) -> dict[str, Any]:
    """Aggregate spans by name: count, wall/cpu totals, per-rank wall."""
    if events is None:
        events = trace.raw_events()
    out: dict[str, Any] = {}
    for name, rank, t0, t1, cpu, _cat, _attrs in events:
        row = out.get(name)
        if row is None:
            row = out[name] = {
                "count": 0,
                "wall_s": 0.0,
                "cpu_s": 0.0,
                "max_s": 0.0,
                "by_rank_s": {},
            }
        wall = t1 - t0
        row["count"] += 1
        row["wall_s"] += wall
        row["cpu_s"] += cpu
        if wall > row["max_s"]:
            row["max_s"] = wall
        by_rank = row["by_rank_s"]
        by_rank[rank] = by_rank.get(rank, 0.0) + wall
    return out


def phase_criticals(events: list[tuple] | None = None) -> dict[str, float]:
    """Per-span-name **max-over-ranks** total wall seconds.

    This is the paper's Table II convention: the phase time that matters
    at scale is the busiest rank's, not the average.
    """
    summary = span_summary(events)
    return {
        name: max(row["by_rank_s"].values())
        for name, row in summary.items()
        if row["by_rank_s"]
    }


def metrics_report() -> dict[str, Any]:
    """The combined machine-readable report: span aggregates, per-phase
    critical-path seconds, the metrics registry, and buffer health."""
    return {
        "spans": span_summary(),
        "phase_max_s": phase_criticals(),
        "metrics": registry().as_dict(),
        "trace": {
            "events": trace.num_events(),
            "dropped": trace.dropped_events(),
        },
    }


def write_metrics(path: str) -> dict[str, Any]:
    """Write :func:`metrics_report` as JSON to ``path``; returns it."""
    report = metrics_report()
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    return report
