"""Low-overhead per-rank span tracing (the recording half of repro.observe).

A *span* is one timed region on one rank — a simulation step, a
tessellation phase, a blocked receive — carrying a wall-clock interval
(``time.perf_counter``, comparable across threads *and* forked processes
on Linux, where it is the system-wide monotonic clock), the thread-CPU
time consumed inside it (``time.thread_time``), a category, and free-form
attributes.  Spans land in a per-rank ring buffer; exporters
(:mod:`repro.observe.export`) turn the buffers into Chrome trace-event
JSON or flat summaries.

Design rules:

* **Disabled tracing costs near zero.**  :func:`span` checks one module
  flag and returns a shared no-op context manager; :func:`record` is a
  flag check and return.  No buffer is allocated until the first event is
  recorded while enabled.
* **Recording is allocation-light.**  Events are plain tuples appended to
  a bounded ``deque``; when a rank's buffer is full the oldest events are
  overwritten and a drop counter advances (observability must never OOM
  the run it observes).
* **Ranks never share a buffer entry.**  On the thread backend all ranks
  share this module's state and are distinguished by the ``rank`` they
  pass; on the process backend each forked rank inherits the enabled flag
  and records into its own copy, which the runtime ships back to the
  parent at region end (see :func:`repro.observe.bridge.process_worker`).

Event tuple layout (kept as a tuple for append speed)::

    (name, rank, t_start, t_end, cpu_s, category, attrs_or_None)
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Iterable

__all__ = [
    "enable",
    "disable",
    "enabled",
    "reset",
    "span",
    "record",
    "raw_events",
    "num_events",
    "dropped_events",
    "ingest",
    "DEFAULT_CAPACITY",
]

DEFAULT_CAPACITY = 65536

# Event tuple field indices (shared with the exporters).
NAME, RANK, T0, T1, CPU, CAT, ATTRS = range(7)

_enabled = False
_capacity = DEFAULT_CAPACITY
_buffers: dict[int, "_RingBuffer"] = {}
_lock = threading.Lock()


class _RingBuffer:
    """Bounded per-rank event store; overwrites oldest when full."""

    __slots__ = ("events", "dropped")

    def __init__(self, capacity: int) -> None:
        self.events: deque = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, event: tuple) -> None:
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(event)


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    """Live span: records itself into the rank's buffer on exit."""

    __slots__ = ("name", "rank", "cat", "attrs", "_w0", "_c0")

    def __init__(self, name: str, rank: int, cat: str, attrs: dict | None):
        self.name = name
        self.rank = rank
        self.cat = cat
        self.attrs = attrs
        self._w0 = 0.0
        self._c0 = 0.0

    def __enter__(self) -> "_Span":
        self._w0 = time.perf_counter()
        self._c0 = time.thread_time()
        return self

    def __exit__(self, *exc: object) -> bool:
        cpu = time.thread_time() - self._c0
        record(
            self.name,
            self.rank,
            self._w0,
            time.perf_counter(),
            cpu=cpu,
            cat=self.cat,
            attrs=self.attrs,
        )
        return False


def enable(capacity: int | None = None) -> None:
    """Turn tracing on; events start recording into per-rank buffers.

    ``capacity`` bounds each rank's ring buffer (events beyond it evict the
    oldest); it applies to buffers created after this call.
    """
    global _enabled, _capacity
    if capacity is not None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        _capacity = int(capacity)
    _enabled = True


def disable() -> None:
    """Turn tracing off.  Recorded events stay until :func:`reset`."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _enabled


def capacity() -> int:
    """The per-rank ring-buffer capacity applied to new buffers."""
    return _capacity


def reset() -> None:
    """Drop all recorded events and their buffers (capacity is kept)."""
    with _lock:
        _buffers.clear()


def span(name: str, rank: int = 0, cat: str = "app", **attrs: Any):
    """Context manager timing ``name`` on ``rank``.

    Returns a shared no-op when tracing is disabled, so instrumented code
    pays one flag check.  ``attrs`` become the span's Chrome-trace ``args``.
    """
    if not _enabled:
        return _NOOP
    return _Span(name, rank, cat, attrs or None)


def record(
    name: str,
    rank: int,
    t0: float,
    t1: float,
    cpu: float = 0.0,
    cat: str = "app",
    attrs: dict | None = None,
) -> None:
    """Append an already-measured span (``perf_counter`` endpoints)."""
    if not _enabled:
        return
    buf = _buffers.get(rank)
    if buf is None:
        with _lock:
            buf = _buffers.setdefault(rank, _RingBuffer(_capacity))
    buf.append((name, rank, t0, t1, cpu, cat, attrs))


def raw_events() -> list[tuple]:
    """All recorded events across ranks (rank order, then record order)."""
    with _lock:
        return [ev for rank in sorted(_buffers) for ev in _buffers[rank].events]


def num_events() -> int:
    """Total events currently buffered."""
    with _lock:
        return sum(len(buf.events) for buf in _buffers.values())


def dropped_events() -> int:
    """Events evicted from full ring buffers since the last :func:`reset`."""
    with _lock:
        return sum(buf.dropped for buf in _buffers.values())


def ingest(events: Iterable[tuple]) -> None:
    """Merge events recorded elsewhere (another process) into the buffers.

    Used by the process backend to fold each forked rank's buffer into the
    parent at region end; events keep their original rank.
    """
    for ev in events:
        buf = _buffers.get(ev[RANK])
        if buf is None:
            with _lock:
                buf = _buffers.setdefault(ev[RANK], _RingBuffer(_capacity))
        buf.append(ev)
