"""Glue between the runtime layers and the observe subsystem.

Nothing here is imported *by* the layers' data types — the bridge takes
:class:`~repro.diy.comm.CommStats`, :class:`~repro.core.timing.TessTimings`
and friends duck-typed, so ``repro.observe`` stays import-light and free
of cycles.  Three jobs:

* **absorption** — map the existing per-layer counters
  (CommStats, TessTimings, RecoveryStats, the fault injector) onto the
  process-wide metrics registry, keyed by rank, without touching their
  public fields;
* **rank finalization** — :func:`rank_finished` runs once per rank at
  parallel-region end (both backends) and records the rank's
  communication totals, memory high-water marks, and fault counters;
* **process-backend transport** — :func:`process_worker` wraps a region
  worker so each forked rank ships its span buffer and metrics snapshot
  back with its result, and :func:`absorb_process_results` folds them
  into the parent and unwraps the user results.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from .. import faults
from . import trace
from .metrics import peak_rss_bytes, registry

__all__ = [
    "absorb_comm_stats",
    "absorb_tess_timings",
    "absorb_recovery_stats",
    "rank_finished",
    "process_worker",
    "absorb_process_results",
]

_COMM_COUNTERS = (
    "msgs_sent",
    "msgs_recv",
    "bytes_sent",
    "bytes_recv",
    "recv_wait_s",
    "barrier_wait_s",
    "shm_msgs_sent",
    "shm_bytes_sent",
    "chunk_frames_sent",
    "msgs_dropped",
    "msgs_delayed",
)

_TESS_PHASES = ("exchange", "compute", "output")


def absorb_comm_stats(stats: Any, rank: int) -> None:
    """Fold a :class:`~repro.diy.comm.CommStats` into the registry as
    ``comm.<field>{rank=r}`` counters plus per-collective call counts."""
    reg = registry()
    for name in _COMM_COUNTERS:
        value = getattr(stats, name)
        if value:
            reg.counter(f"comm.{name}", rank=rank).inc(value)
    for coll, count in stats.collective_calls.items():
        reg.counter(f"comm.collective.{coll}", rank=rank).inc(count)


def absorb_tess_timings(timings: Any, rank: int) -> None:
    """Fold a :class:`~repro.core.timing.TessTimings` into per-phase
    wall/cpu histograms (``tess.<phase>_s{rank=r}``) and byte counters."""
    reg = registry()
    for phase in _TESS_PHASES:
        reg.histogram(f"tess.{phase}_s", rank=rank).observe(getattr(timings, phase))
        reg.histogram(f"tess.{phase}_cpu_s", rank=rank).observe(
            getattr(timings, f"{phase}_cpu")
        )
    reg.counter("tess.runs", rank=rank).inc()
    if timings.bytes_sent:
        reg.counter("tess.bytes_sent", rank=rank).inc(timings.bytes_sent)
    if timings.comm_wait:
        reg.counter("tess.comm_wait_s", rank=rank).inc(timings.comm_wait)


def absorb_recovery_stats(recovery: Any, rank: int) -> None:
    """Fold a :class:`~repro.hacc.simulation.RecoveryStats` into
    checkpoint counters (``ckpt.*{rank=r}``)."""
    reg = registry()
    reg.counter("ckpt.written", rank=rank).inc(recovery.checkpoints_written)
    reg.counter("ckpt.bytes", rank=rank).inc(recovery.checkpoint_bytes)
    reg.counter("ckpt.seconds", rank=rank).inc(recovery.checkpoint_seconds)
    if recovery.resumed_step >= 0:
        reg.counter("ckpt.resumes", rank=rank).inc()
        reg.gauge("ckpt.resumed_step", rank=rank).set_max(recovery.resumed_step)


def rank_finished(comm: Any) -> None:
    """Per-rank region-end hook: absorb communication totals, memory
    high-water marks, and fault-injection counters for ``comm.rank``."""
    rank = comm.rank
    absorb_comm_stats(comm.stats, rank)
    registry().gauge("mem.peak_rss_bytes", rank=rank).set_max(peak_rss_bytes())
    injector = faults.active()
    if injector is not None:
        reg = registry()
        if injector.dropped:
            reg.counter("faults.injected_drops", rank=rank).inc(injector.dropped)
        if injector.delayed:
            reg.counter("faults.injected_delays", rank=rank).inc(injector.delayed)


_WRAP_KEY = "__repro_observe_wrapped__"


class process_worker:  # noqa: N801 - factory-style callable, keeps old name
    """Wrap a process-backend region worker for observation transport.

    A *picklable* callable (not a closure): persistent pool workers receive
    their task over a pipe, so the wrapper must serialize along with the
    user function.  It also carries the parent's trace-enabled flag and
    capacity — a pool worker was forked before ``observe.enable()`` ran in
    the parent, so fork inheritance (which the fresh-fork path relies on)
    cannot arm tracing there; the wrapper re-arms it on entry instead.

    On the way out it clears any inherited observe state so only events
    recorded inside the region travel back, then bundles the child's span
    buffer and metrics snapshot with the result.  Span tuples and metric
    snapshots are plain ``str``/``int``/``float``/``dict`` data, so they
    serialize over the pipe + shared-memory transport like any payload.
    """

    def __init__(self, func: Callable[..., Any]):
        self.func = func
        self.trace_enabled = trace.enabled()
        self.trace_capacity = trace.capacity() if self.trace_enabled else None
        functools.update_wrapper(self, func)

    def __call__(self, comm, *args: Any, **kwargs: Any):
        if self.trace_enabled:
            trace.enable(self.trace_capacity)
        trace.reset()
        registry().reset()
        result = self.func(comm, *args, **kwargs)
        rank_finished(comm)
        return {
            _WRAP_KEY: True,
            "result": result,
            "events": trace.raw_events(),
            "metrics": registry().as_dict(),
        }


def absorb_process_results(wrapped_results: list[Any]) -> list[Any]:
    """Fold forked ranks' observations into this process; return the
    unwrapped per-rank user results (rank order preserved)."""
    results: list[Any] = []
    for item in wrapped_results:
        if isinstance(item, dict) and item.get(_WRAP_KEY):
            trace.ingest(item["events"])
            registry().merge_dict(item["metrics"])
            results.append(item["result"])
        else:  # a rank that never entered the wrapper (defensive)
            results.append(item)
    return results
