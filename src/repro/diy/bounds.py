"""Axis-aligned bounding boxes and periodic-domain helpers.

These are the geometric primitives underneath the DIY-style block
decomposition (:mod:`repro.diy.decomposition`): every block owns a core
:class:`Bounds` box, and ghost regions are expressed as grown boxes.  The
periodic helpers implement the coordinate translation that the paper adds to
DIY for periodic boundary neighbors (paper Figure 6): a particle leaving one
side of the domain re-enters on the opposite side with its coordinates
shifted by the domain length.

All functions are vectorized over ``(n, 3)`` coordinate arrays; nothing here
loops over particles in Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Bounds",
    "wrap_positions",
    "periodic_translation",
    "minimum_image",
]


@dataclass(frozen=True)
class Bounds:
    """A half-open axis-aligned box ``[min, max)`` in ``dim`` dimensions.

    The half-open convention means a point on a shared block face belongs to
    exactly one block, so decompositions partition the domain without
    double-counting particles.

    Parameters
    ----------
    min:
        Lower corner, shape ``(dim,)``.
    max:
        Upper corner, shape ``(dim,)``.
    """

    min: tuple[float, ...]
    max: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.min) != len(self.max):
            raise ValueError(
                f"min and max must have equal length, "
                f"got {len(self.min)} and {len(self.max)}"
            )
        if any(lo > hi for lo, hi in zip(self.min, self.max)):
            raise ValueError(f"degenerate bounds: min={self.min} max={self.max}")
        # Normalize to plain floats so equality and hashing behave.
        object.__setattr__(self, "min", tuple(float(v) for v in self.min))
        object.__setattr__(self, "max", tuple(float(v) for v in self.max))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def cube(cls, size: float, dim: int = 3, origin: float = 0.0) -> "Bounds":
        """A ``dim``-dimensional cube ``[origin, origin + size)^dim``."""
        return cls((origin,) * dim, (origin + size,) * dim)

    @classmethod
    def from_arrays(cls, lo: np.ndarray, hi: np.ndarray) -> "Bounds":
        """Build from array-like corners."""
        return cls(
            tuple(np.asarray(lo, dtype=float)), tuple(np.asarray(hi, dtype=float))
        )

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Spatial dimensionality."""
        return len(self.min)

    @property
    def sizes(self) -> np.ndarray:
        """Edge lengths per axis, shape ``(dim,)``."""
        return np.asarray(self.max) - np.asarray(self.min)

    @property
    def volume(self) -> float:
        """Product of edge lengths."""
        return float(np.prod(self.sizes))

    @property
    def center(self) -> np.ndarray:
        """Geometric center, shape ``(dim,)``."""
        return (np.asarray(self.min) + np.asarray(self.max)) / 2.0

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(lo, hi)`` as float arrays."""
        return np.asarray(self.min, dtype=float), np.asarray(self.max, dtype=float)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def grown(self, amount: float | np.ndarray) -> "Bounds":
        """Return a copy grown by ``amount`` on every side (the ghost box)."""
        lo, hi = self.as_arrays()
        amount = np.asarray(amount, dtype=float)
        return Bounds.from_arrays(lo - amount, hi + amount)

    def clamped_to(self, other: "Bounds") -> "Bounds":
        """Return this box intersected with ``other`` (must overlap)."""
        lo = np.maximum(self.as_arrays()[0], other.as_arrays()[0])
        hi = np.minimum(self.as_arrays()[1], other.as_arrays()[1])
        if np.any(lo > hi):
            raise ValueError(f"boxes do not overlap: {self} vs {other}")
        return Bounds.from_arrays(lo, hi)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Vectorized half-open membership test.

        Parameters
        ----------
        points:
            Shape ``(n, dim)`` (or ``(dim,)`` for a single point).

        Returns
        -------
        numpy.ndarray
            Boolean mask of shape ``(n,)`` (or a scalar bool).
        """
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        pts = np.atleast_2d(pts)
        lo, hi = self.as_arrays()
        inside = np.all((pts >= lo) & (pts < hi), axis=1)
        return bool(inside[0]) if single else inside

    def contains_closed(self, points: np.ndarray) -> np.ndarray:
        """Closed-interval membership test ``[min, max]`` (for ghost regions)."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        lo, hi = self.as_arrays()
        inside = np.all((pts >= lo) & (pts <= hi), axis=1)
        return inside if np.asarray(points).ndim > 1 else bool(inside[0])

    def distance_to_boundary(self, points: np.ndarray) -> np.ndarray:
        """Distance from interior points to the nearest face (0 outside).

        Used to decide which particles fall within the ghost-zone distance of
        a block face and therefore must be exchanged.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        lo, hi = self.as_arrays()
        d = np.minimum(pts - lo, hi - pts)
        d = np.min(d, axis=1)
        return np.maximum(d, 0.0)

    def intersects(self, other: "Bounds") -> bool:
        """True if the closed boxes share any point."""
        alo, ahi = self.as_arrays()
        blo, bhi = other.as_arrays()
        return bool(np.all(ahi >= blo) and np.all(bhi >= alo))

    def corners(self) -> np.ndarray:
        """All ``2**dim`` corner points, shape ``(2**dim, dim)``."""
        lo, hi = self.as_arrays()
        grids = np.meshgrid(*[(lo[i], hi[i]) for i in range(self.dim)], indexing="ij")
        return np.stack([g.ravel() for g in grids], axis=1)


def wrap_positions(points: np.ndarray, domain: Bounds) -> np.ndarray:
    """Wrap coordinates into the periodic ``domain`` box.

    Positions any distance outside the box are mapped back by the modulo of
    the domain length per axis.  Returns a new array; the input is untouched.
    """
    pts = np.asarray(points, dtype=float)
    lo, _ = domain.as_arrays()
    sizes = domain.sizes
    out = (pts - lo) % sizes
    # Floating modulo of a tiny negative value can round up to exactly
    # `sizes`; fold that back to the lower face to keep the result half-open.
    out = np.where(out >= sizes, 0.0, out)
    return out + lo


def periodic_translation(wrap: np.ndarray, domain: Bounds) -> np.ndarray:
    """Translation added to particle coordinates sent along a periodic link.

    ``wrap`` is a per-axis integer in ``{-1, 0, +1}``: ``+1`` means the link
    crosses the *upper* domain face on that axis, so a particle sent along it
    re-enters at the lower side and its coordinate shifts by ``-L``.  The
    returned vector, **added** to particle coordinates, transforms them into
    the neighbor block's frame — the user-specified transform callback the
    paper added to DIY (Figure 6).  Conversely, the neighbor's box viewed
    from the source frame is shifted by the *negative* of this vector.
    """
    return -np.asarray(wrap, dtype=float) * domain.sizes


def minimum_image(delta: np.ndarray, domain: Bounds) -> np.ndarray:
    """Minimum-image convention for displacement vectors in a periodic box.

    Maps each component of ``delta`` into ``[-L/2, L/2)`` where ``L`` is the
    domain size on that axis.  Used by the friends-of-friends halo finder and
    by accuracy comparisons across the periodic seam.
    """
    d = np.asarray(delta, dtype=float)
    sizes = domain.sizes
    return d - np.round(d / sizes) * sizes
