"""Zero-copy NumPy payload transport for the process SPMD backend.

Serialization strategy (used by :mod:`repro.diy.process_backend`):

* Payloads are pickled with **protocol 5**, so every contiguous NumPy
  buffer is surrendered out-of-band as a :class:`pickle.PickleBuffer`
  instead of being copied into the pickle stream.
* Small buffers travel inline with the metadata over the pipe.  Buffers at
  or above :data:`SHM_THRESHOLD` bytes are placed in a
  ``multiprocessing.shared_memory`` segment: the sender copies the raw
  bytes in once, ships only ``(segment name, offset, size)``, and the
  receiver reconstructs the arrays as **views into the mapped segment** —
  no per-element serialization and no receive-side copy.
* Segments come from a per-process :class:`ShmPool` (power-of-two size
  classes).  Ownership stays with the sender: the receiver tracks each
  mapped region in a :class:`SegmentLease` and, once no live array
  references the mapping (refcount-observed idleness), the segment name is
  released back to the owner, whose pool recycles it for later sends.  This
  keeps steady-state communication (ghost exchange every step, mesh
  allreduce every step) allocating shared memory O(1) times rather than
  O(steps).

The wire format is ``(meta, descriptors)`` where ``meta`` is the pickle
stream and each descriptor is ``("raw", bytes)`` for an inline buffer or
``("shm", name, offset, nbytes)`` for a shared-memory one.

Pipe framing
------------
``multiprocessing.connection.Connection.send_bytes`` stores each frame's
length in a C ``int``, so a single frame is capped just below 2 GiB (and
pickle itself historically hits ``INT_MAX`` limits in the same place).
:func:`send_message`/:func:`recv_message` hide that cap: a wire blob above
:data:`CHUNK_LIMIT` bytes travels as a small pickled header
``(CHUNK_HEADER, nchunks, total)`` followed by ``nchunks`` raw slices, each
safely under the frame limit, reassembled on the receive side.  With
chunking disabled (``REPRO_CHUNK_LIMIT=0``) an oversized frame raises a
:class:`CommError` naming the payload size instead of an opaque
``struct.error``/``OSError`` from deep inside the pipe code.
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "SHM_THRESHOLD",
    "CHUNK_LIMIT",
    "CHUNK_HEADER",
    "CommError",
    "ShmPool",
    "SegmentLease",
    "encode_payload",
    "decode_payload",
    "attach_segment",
    "send_message",
    "recv_message",
    "unlink_segments",
]

#: Buffers at or above this many bytes ride in shared memory instead of the
#: pipe.  Kept below the typical 64 KiB pipe buffer so inline messages
#: rarely block the sender.  Overridable for testing via the environment.
SHM_THRESHOLD = int(os.environ.get("REPRO_SHM_THRESHOLD", 1 << 15))

#: A single pipe frame larger than this many bytes is split into chunks
#: (header frame + raw slices).  Must stay below the ~2 GiB C ``int`` cap
#: of ``Connection.send_bytes``; 0 disables chunking, making oversized
#: frames raise :class:`CommError`.  Overridable via the environment.
CHUNK_LIMIT = int(os.environ.get("REPRO_CHUNK_LIMIT", 1 << 28))

#: First element of the pickled chunk header frame.  Ordinary wire messages
#: are 6-tuples starting with a list (the piggybacked release names), so a
#: tuple starting with this marker is unambiguous.
CHUNK_HEADER = "__repro_chunks__"

#: Hard per-frame cap of Connection.send_bytes (length is a C int; leave
#: headroom for the protocol's own header).
_PIPE_MAX = (1 << 31) - 64

_MIN_SEGMENT = 1 << 15  # smallest size class (32 KiB)
_ALIGN = 64  # buffer alignment within a segment


class CommError(RuntimeError):
    """Transport-level failure with an actionable message (e.g. a payload
    too large for a single pipe frame while chunking is disabled)."""


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Unregister an *attached* segment from the resource tracker.

    On Python < 3.13 merely attaching registers the segment, so the
    attaching process would unlink it (and warn) at exit even though the
    creating process owns cleanup.  Undo that registration; the owner's
    pool performs the real unlink.
    """
    try:  # pragma: no cover - tracker internals, best effort
        from multiprocessing import resource_tracker

        name = shm._name  # type: ignore[attr-defined]
        resource_tracker.unregister(name, "shared_memory")
    except Exception:
        pass


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment by name without claiming ownership of it."""
    shm = shared_memory.SharedMemory(name=name, create=False)
    _untrack(shm)
    return shm


def unlink_segments(prefix: str) -> int:
    """Best-effort unlink of every /dev/shm segment named ``prefix*``.

    The recovery path for ranks that died without running their pool's
    :meth:`ShmPool.shutdown` (``os._exit`` fault injection, ``SIGTERM`` from
    the parent): their segments would otherwise accumulate in ``/dev/shm``
    until the filesystem fills.  Pools created with a name ``prefix`` get
    deterministic segment names, so the parent can sweep a dead region by
    prefix alone.  Returns the number of segments removed; harmless (0) on
    platforms without a /dev/shm directory.
    """
    shm_dir = "/dev/shm"
    removed = 0
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return 0
    for name in names:
        if name.startswith(prefix):
            try:
                os.unlink(os.path.join(shm_dir, name))
                removed += 1
            except OSError:
                pass
    return removed


def send_message(conn, wire: bytes) -> int:
    """Send one logical message over ``conn``, chunking oversized frames.

    Returns the number of extra frames used (0 for a normal single-frame
    send, ``nchunks`` when the chunked path engaged).  The caller must hold
    whatever send lock serializes writers on ``conn`` for the whole call —
    the header and its chunks must be contiguous on the stream.

    Raises :class:`CommError` when the message exceeds the single-frame pipe
    cap and chunking is disabled (``REPRO_CHUNK_LIMIT=0``).
    """
    total = len(wire)
    limit = min(CHUNK_LIMIT, _PIPE_MAX) if CHUNK_LIMIT > 0 else 0
    if limit <= 0 or total <= limit:
        if total > _PIPE_MAX:
            raise CommError(
                f"message of {total} bytes exceeds the {_PIPE_MAX}-byte pipe "
                f"frame limit and chunked transport is disabled "
                f"(REPRO_CHUNK_LIMIT={CHUNK_LIMIT}); re-enable chunking or "
                f"move the payload into shared memory"
            )
        conn.send_bytes(wire)
        return 0
    nchunks = -(-total // limit)
    conn.send_bytes(pickle.dumps((CHUNK_HEADER, nchunks, total), protocol=5))
    view = memoryview(wire)
    for i in range(nchunks):
        conn.send_bytes(view[i * limit : (i + 1) * limit])
    return nchunks


def recv_message(conn) -> tuple[object, int]:
    """Receive one logical message sent by :func:`send_message`.

    Returns ``(payload_object, extra_frames)`` where ``extra_frames`` is 0
    for a plain message and the chunk count when reassembly happened.
    Propagates ``EOFError``/``OSError`` from the underlying pipe unchanged
    so callers keep their existing dead-peer handling.
    """
    obj = pickle.loads(conn.recv_bytes())
    if not (isinstance(obj, tuple) and obj and obj[0] == CHUNK_HEADER):
        return obj, 0
    _, nchunks, total = obj
    buf = bytearray(total)
    view = memoryview(buf)
    offset = 0
    for _ in range(nchunks):
        offset += conn.recv_bytes_into(view, offset)
    if offset != total:
        raise CommError(
            f"chunked message truncated: expected {total} bytes, got {offset}"
        )
    return pickle.loads(buf), nchunks


class ShmPool:
    """Per-process pooled allocator of shared-memory segments.

    Segments are created in power-of-two size classes and handed out with
    :meth:`acquire`; once the receiving process reports a segment idle (via
    the backend's release protocol) :meth:`recycle` returns it to the free
    list for reuse.  :meth:`shutdown` unlinks every segment this pool ever
    created — the pool is the single owner of its segments' lifetimes.

    A ``prefix`` makes segment names deterministic (``<prefix>.<seq>``), so
    a supervising process that knows the prefix can reclaim the segments of
    a rank that died without running :meth:`shutdown` (see
    :func:`unlink_segments`).
    """

    def __init__(self, prefix: str | None = None) -> None:
        # acquire() runs on the app (sending) thread while recycle() runs on
        # the backend's receiver thread, so the free lists are lock-guarded.
        self._lock = threading.Lock()
        self._free: dict[int, list[shared_memory.SharedMemory]] = {}
        self._inflight: dict[str, shared_memory.SharedMemory] = {}
        self._prefix = prefix
        self._seq = 0
        self.created = 0  # segments ever created (observability/tests)
        self.recycled = 0  # acquires served from the free list

    @staticmethod
    def _size_class(nbytes: int) -> int:
        size = _MIN_SEGMENT
        while size < nbytes:
            size <<= 1
        return size

    def acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        """A segment of at least ``nbytes``, reused from the pool if possible."""
        size = self._size_class(nbytes)
        with self._lock:
            bucket = self._free.get(size)
            shm = bucket.pop() if bucket else None
        if shm is not None:
            self.recycled += 1
        else:
            shm = self._create(size)
            self.created += 1
        with self._lock:
            self._inflight[shm.name] = shm
        return shm

    def _create(self, size: int) -> shared_memory.SharedMemory:
        if self._prefix is None:
            return shared_memory.SharedMemory(create=True, size=size)
        # Deterministic names; skip over leftovers from an earlier
        # incarnation rather than failing (the sweep may not have run yet).
        while True:
            name = f"{self._prefix}.{self._seq}"
            self._seq += 1
            try:
                return shared_memory.SharedMemory(name=name, create=True, size=size)
            except FileExistsError:
                continue

    def recycle(self, name: str) -> None:
        """Return an in-flight segment (reported idle by its receiver)."""
        with self._lock:
            shm = self._inflight.pop(name, None)
            if shm is not None:
                self._free.setdefault(shm.size, []).append(shm)

    def shutdown(self) -> None:
        """Close and unlink every segment this pool created (idempotent)."""
        with self._lock:
            segments = list(self._inflight.values())
            self._inflight.clear()
            for bucket in self._free.values():
                segments.extend(bucket)
            self._free.clear()
        for shm in segments:
            close_segment_quietly(shm)
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


def close_segment_quietly(shm: shared_memory.SharedMemory) -> None:
    """Close a mapping, tolerating (and permanently silencing) live exports.

    If an array still aliases the mapping, ``close()`` raises BufferError —
    and would raise *again* from ``SharedMemory.__del__`` at interpreter
    exit, spewing "Exception ignored" noise.  The memory is reclaimed by the
    OS at process exit regardless, so on failure the instance's ``close`` is
    stubbed out to keep the destructor quiet.
    """
    try:
        shm.close()
    except BufferError:
        shm.close = lambda: None  # type: ignore[method-assign]


class SegmentLease:
    """Receiver-side record of one message's shared-memory mappings.

    Holds the uint8 wrapper arrays handed to ``pickle.loads`` as
    out-of-band buffers.  Buffer views that NumPy derives during
    reconstruction keep a reference to their *exporter* — the wrapper —
    so the lease is *idle* exactly when every wrapper's refcount has
    fallen back to the lease's own bookkeeping references, at which point
    the segment names can be sent back to the owning rank for recycling.
    (A plain memoryview would not work here: CPython chains derived views
    to the underlying mmap exporter, skipping the intermediate object.)
    """

    __slots__ = ("names", "views")

    def __init__(self, names: list[str], views: list[np.ndarray]):
        self.names = names
        self.views = views

    def idle(self) -> bool:
        """True when no consumer (array) references any wrapper anymore."""
        # Refcount 3 = self.views entry + loop variable + getrefcount arg.
        return all(sys.getrefcount(v) <= 3 for v in self.views)

    def release_views(self) -> None:
        """Drop the lease's wrapper references."""
        self.views = []


def encode_payload(
    obj: object, pool: ShmPool, threshold: int | None = None
) -> tuple[bytes, list[tuple], int]:
    """Serialize ``obj`` into ``(meta, descriptors, shm_bytes)``.

    ``meta`` is the protocol-5 pickle stream with buffers elided;
    ``descriptors`` carries one entry per out-of-band buffer; ``shm_bytes``
    is how many payload bytes were diverted into shared memory (0 when the
    payload was inline-only).
    """
    threshold = SHM_THRESHOLD if threshold is None else threshold
    buffers: list[pickle.PickleBuffer] = []
    meta = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)

    raws: list[memoryview | bytes] = []
    for pb in buffers:
        try:
            raws.append(pb.raw())  # flat view of the underlying memory
        except BufferError:
            # Non C-contiguous underlying buffer (e.g. an F-ordered array):
            # 'A' order preserves the memory layout the reconstructor expects.
            raws.append(memoryview(pb).tobytes(order="A"))

    descriptors: list[tuple] = [()] * len(raws)
    large = [i for i, r in enumerate(raws) if r.nbytes >= threshold]
    shm_bytes = 0
    if large:
        # Pack all large buffers of this message into one pooled segment.
        offsets: list[int] = []
        cursor = 0
        for i in large:
            offsets.append(cursor)
            cursor += -(-raws[i].nbytes // _ALIGN) * _ALIGN
        seg = pool.acquire(cursor)
        for i, off in zip(large, offsets):
            n = raws[i].nbytes
            seg.buf[off : off + n] = raws[i]
            descriptors[i] = ("shm", seg.name, off, n)
            shm_bytes += n
    for i, r in enumerate(raws):
        if not descriptors[i]:
            descriptors[i] = ("raw", r.tobytes() if isinstance(r, memoryview) else r)
    return meta, descriptors, shm_bytes


def decode_payload(
    meta: bytes,
    descriptors: list[tuple],
    attach,
) -> tuple[object, SegmentLease | None]:
    """Inverse of :func:`encode_payload`.

    ``attach`` maps a segment name to a mapped ``SharedMemory`` (the caller
    caches mappings per peer segment).  Arrays referencing shared-memory
    buffers are **views into the segment** (via a uint8 wrapper array whose
    lifetime the lease can observe); the returned lease tracks them so the
    segment can be recycled once they die.  Returns ``(payload, lease)``
    with ``lease=None`` for inline-only messages.
    """
    buffers: list[bytes | np.ndarray] = []
    names: list[str] = []
    views: list[np.ndarray] = []
    for d in descriptors:
        if d[0] == "raw":
            buffers.append(d[1])
        else:
            _, name, off, n = d
            shm = attach(name)
            wrap = np.frombuffer(shm.buf, dtype=np.uint8, offset=off, count=n)
            if name not in names:
                names.append(name)
            views.append(wrap)
            buffers.append(wrap)
    obj = pickle.loads(meta, buffers=buffers)
    del buffers
    lease = SegmentLease(names, views) if views else None
    return obj, lease
