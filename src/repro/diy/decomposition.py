"""Regular block decomposition with 26-connectivity and periodic links.

This mirrors DIY's regular decomposition: the global domain is split into a
grid of equally sized blocks; each block knows its core bounds and its
neighbors.  Two features the paper (§III-C1) added to DIY are modeled here:

* **periodic boundary neighbors** — blocks on one edge of the domain link to
  blocks on the opposite edge, and each such link carries the integer wrap
  vector needed to translate particle coordinates into the neighbor's frame;
* **near-point targeting** — :meth:`Decomposition.neighbors_near_point`
  returns only the neighbor links whose (possibly wrapped) block box lies
  within a given distance of a target point, so a particle is sent only to
  neighbors that actually need it for their ghost region.

Blocks are identified by a global integer *gid*; the default assignment maps
``gid % nranks`` to a rank, but the paper's configuration (one block per MPI
process) is the common case.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from .bounds import Bounds, periodic_translation

__all__ = ["NeighborLink", "Block", "Decomposition", "factor_into_grid"]


@dataclass(frozen=True)
class NeighborLink:
    """A directed link from one block to a neighboring block.

    Attributes
    ----------
    gid:
        Global id of the neighbor block.
    direction:
        Per-axis step in ``{-1, 0, +1}`` from the source block to the
        neighbor in grid coordinates (before periodic wrapping).
    wrap:
        Per-axis integer in ``{-1, 0, +1}``; nonzero components mean the link
        crosses the periodic domain boundary on that axis, and particle
        coordinates must be translated by ``wrap * domain_size`` when sent
        along this link.
    """

    gid: int
    direction: tuple[int, ...]
    wrap: tuple[int, ...]

    @property
    def is_periodic(self) -> bool:
        """True if this link crosses the periodic domain boundary."""
        return any(w != 0 for w in self.wrap)


@dataclass(frozen=True)
class Block:
    """One block of the regular decomposition."""

    gid: int
    coords: tuple[int, ...]
    core: Bounds
    links: tuple[NeighborLink, ...]

    def ghost_bounds(self, ghost: float) -> Bounds:
        """Core bounds grown by the ghost-zone thickness."""
        return self.core.grown(ghost)


def factor_into_grid(n: int, dim: int = 3) -> tuple[int, ...]:
    """Factor ``n`` blocks into a near-cubic ``dim``-dimensional grid.

    Chooses the factorization whose block grid is as close to a cube as
    possible (smallest max/min side ratio), matching how DIY and HACC choose
    process grids.  Raises if ``n < 1``.
    """
    if n < 1:
        raise ValueError(f"cannot decompose into {n} blocks")
    best: tuple[int, ...] | None = None
    best_score = np.inf

    def rec(remaining: int, axes_left: int, acc: tuple[int, ...]) -> None:
        nonlocal best, best_score
        if axes_left == 1:
            grid = acc + (remaining,)
            score = max(grid) / min(grid)
            if score < best_score or (score == best_score and grid > (best or ())):
                best, best_score = grid, score
            return
        d = 1
        while d * d <= remaining if axes_left == 2 else d <= remaining:
            if remaining % d == 0:
                rec(remaining // d, axes_left - 1, acc + (d,))
            d += 1

    rec(n, dim, ())
    assert best is not None
    return tuple(sorted(best, reverse=True))


class Decomposition:
    """Regular grid decomposition of a periodic (or bounded) domain.

    Parameters
    ----------
    domain:
        The global domain box.
    grid:
        Number of blocks per axis, e.g. ``(2, 2, 1)``.  Use
        :func:`factor_into_grid` to derive one from a block count.
    periodic:
        Per-axis periodicity flags; a scalar bool applies to all axes.
    """

    def __init__(
        self,
        domain: Bounds,
        grid: tuple[int, ...],
        periodic: bool | tuple[bool, ...] = True,
    ) -> None:
        if len(grid) != domain.dim:
            raise ValueError(f"grid {grid} does not match domain dim {domain.dim}")
        if any(g < 1 for g in grid):
            raise ValueError(f"grid sides must be >= 1, got {grid}")
        if isinstance(periodic, bool):
            periodic = (periodic,) * domain.dim
        if len(periodic) != domain.dim:
            raise ValueError("periodic flags must match domain dim")

        self.domain = domain
        self.grid = tuple(int(g) for g in grid)
        self.periodic = tuple(bool(p) for p in periodic)
        self._blocks = self._build_blocks()

    # ------------------------------------------------------------------
    @classmethod
    def regular(
        cls,
        domain: Bounds,
        nblocks: int,
        periodic: bool | tuple[bool, ...] = True,
    ) -> "Decomposition":
        """Decompose into ``nblocks`` near-cubic blocks."""
        return cls(domain, factor_into_grid(nblocks, domain.dim), periodic)

    # ------------------------------------------------------------------
    @property
    def nblocks(self) -> int:
        """Total number of blocks."""
        return int(np.prod(self.grid))

    def _check_gid(self, gid: int) -> None:
        """Reject gids outside ``[0, nblocks)`` before any indexing.

        Without this, Python's negative indexing and modulo arithmetic
        silently return a *valid-looking* wrong block for bad gids.
        """
        if not 0 <= int(gid) < self.nblocks:
            grid = f" (grid {self.grid})" if self.grid is not None else ""
            raise ValueError(
                f"gid {gid} out of range for decomposition with "
                f"{self.nblocks} blocks{grid}"
            )

    def block(self, gid: int) -> Block:
        """The block with global id ``gid``."""
        self._check_gid(gid)
        return self._blocks[gid]

    def blocks(self) -> tuple[Block, ...]:
        """All blocks in gid order."""
        return self._blocks

    def block_region(self, gid: int):
        """The exact owned region of block ``gid``, or ``None``.

        Regular blocks are boxes, fully described by ``block(gid).core``;
        irregular decompositions (``repro.balance.BalancedDecomposition``)
        override this to return the union-of-cells region that ghost
        targeting and completeness certification must use.
        """
        self._check_gid(gid)
        return None

    def gid_of_coords(self, coords: tuple[int, ...]) -> int:
        """Row-major gid of grid coordinates."""
        gid = 0
        for c, g in zip(coords, self.grid):
            gid = gid * g + c
        return gid

    def coords_of_gid(self, gid: int) -> tuple[int, ...]:
        """Grid coordinates of a gid (inverse of :meth:`gid_of_coords`)."""
        self._check_gid(gid)
        coords = []
        for g in reversed(self.grid):
            coords.append(gid % g)
            gid //= g
        return tuple(reversed(coords))

    # ------------------------------------------------------------------
    def _grid_indices(self, points: np.ndarray, grid: tuple[int, ...]) -> np.ndarray:
        """Per-axis cell indices of points on a regular ``grid`` subdivision.

        Out-of-domain coordinates are **wrapped** on periodic axes (same
        modulo rule as :func:`~repro.diy.bounds.wrap_positions`, including
        the fold of a float modulo that rounds up to exactly the domain
        size) and **rejected** on non-periodic axes — a clamped guess
        would silently misassign particles that drifted across the face.
        The only clamp kept is the non-periodic upper face itself: a point
        exactly at ``hi`` belongs to the last block.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.shape[1] != self.domain.dim:
            raise ValueError(
                f"points have dim {pts.shape[1]}, domain has {self.domain.dim}"
            )
        lo, _ = self.domain.as_arrays()
        sizes = self.domain.sizes
        per = np.asarray(self.periodic)
        shifted = pts - lo
        bad = ~per & ((shifted < 0.0) | (shifted > sizes))
        if bad.any():
            i = int(np.argwhere(bad.any(axis=1))[0, 0])
            raise ValueError(
                f"point {pts[i]} lies outside the non-periodic domain "
                f"{self.domain}"
            )
        wrapped = shifted % sizes
        wrapped = np.where(wrapped >= sizes, 0.0, wrapped)
        coords = np.where(per, wrapped, shifted)
        cell = sizes / np.asarray(grid, dtype=float)
        idx = np.floor(coords / cell).astype(np.int64)
        # Non-periodic upper face (and float round-up near a cell face)
        # lands in the last cell.
        return np.clip(idx, 0, np.asarray(grid) - 1)

    def locate(self, points: np.ndarray) -> np.ndarray:
        """Vectorized owner lookup: gid of the block containing each point.

        Points outside the domain are wrapped on periodic axes; on
        non-periodic axes they raise ``ValueError`` (see
        :meth:`_grid_indices`), so float drift during migration can never
        silently misassign a particle to an edge block.
        """
        idx = self._grid_indices(points, self.grid)
        gids = np.zeros(len(idx), dtype=np.int64)
        for axis, g in enumerate(self.grid):
            gids = gids * g + idx[:, axis]
        return gids

    # ------------------------------------------------------------------
    def neighbors_near_point(
        self, gid: int, point: np.ndarray, radius: float
    ) -> list[NeighborLink]:
        """Links whose neighbor ghost region needs ``point``.

        This is the paper's *targeted particle exchange*: the point is sent
        only to neighbors whose (wrap-translated) core box is within
        ``radius`` of it.  ``point`` is in the source block's frame.

        Distance is Chebyshev (per-axis maximum): a point qualifies exactly
        when its translated image lies inside the neighbor's axis-aligned
        ghost box ``core.grown(radius)`` — the region the receiving block's
        tessellation container and certification assume is fully populated.
        A Euclidean criterion would leave the corners of that box (up to
        ``radius * sqrt(3)`` from the core) silently uncovered.
        """
        self._check_gid(gid)
        p = np.asarray(point, dtype=float)
        out = []
        for link in self._blocks[gid].links:
            nb = self._blocks[link.gid].core
            # The neighbor box viewed from the source frame is shifted by the
            # negative of the send translation (see periodic_translation).
            shift = -periodic_translation(np.asarray(link.wrap), self.domain)
            lo, hi = nb.as_arrays()
            lo, hi = lo + shift, hi + shift
            # Chebyshev distance from point to the shifted box.
            d = np.maximum(np.maximum(lo - p, p - hi), 0.0)
            if float(d.max()) <= radius:
                out.append(link)
        return out

    def neighbors_near_points(
        self, gid: int, points: np.ndarray, radius: float
    ) -> list[tuple[NeighborLink, np.ndarray]]:
        """Vectorized form of :meth:`neighbors_near_point` over many points.

        Returns one ``(link, mask)`` pair per link of block ``gid``, where
        ``mask`` selects the points within ``radius`` of that neighbor's
        translated box.  This is the bulk path used by the ghost exchange.
        """
        self._check_gid(gid)
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        out = []
        for link in self._blocks[gid].links:
            nb = self._blocks[link.gid].core
            shift = -periodic_translation(np.asarray(link.wrap), self.domain)
            lo, hi = nb.as_arrays()
            lo, hi = lo + shift, hi + shift
            d = np.maximum(np.maximum(lo - pts, pts - hi), 0.0)
            mask = d.max(axis=1) <= radius  # Chebyshev: see scalar variant
            out.append((link, mask))
        return out

    # ------------------------------------------------------------------
    def _build_blocks(self) -> tuple[Block, ...]:
        lo, _ = self.domain.as_arrays()
        cell = self.domain.sizes / np.asarray(self.grid, dtype=float)
        blocks = []
        dim = self.domain.dim
        for coords in itertools.product(*[range(g) for g in self.grid]):
            c = np.asarray(coords, dtype=float)
            core = Bounds.from_arrays(lo + c * cell, lo + (c + 1) * cell)
            links = self._links_for(coords)
            gid = self.gid_of_coords(coords)
            blocks.append(Block(gid=gid, coords=coords, core=core, links=links))
        blocks.sort(key=lambda b: b.gid)
        return tuple(blocks)

    def _links_for(self, coords: tuple[int, ...]) -> tuple[NeighborLink, ...]:
        dim = len(coords)
        links: dict[tuple[int, tuple[int, ...]], NeighborLink] = {}
        for direction in itertools.product((-1, 0, 1), repeat=dim):
            if all(d == 0 for d in direction):
                continue
            ncoords = []
            wrap = []
            valid = True
            for axis, (c, d, g, per) in enumerate(
                zip(coords, direction, self.grid, self.periodic)
            ):
                nc = c + d
                w = 0
                if nc < 0:
                    if not per:
                        valid = False
                        break
                    nc += g
                    w = -1
                elif nc >= g:
                    if not per:
                        valid = False
                        break
                    nc -= g
                    w = +1
                ncoords.append(nc)
                wrap.append(w)
            if not valid:
                continue
            ngid = self.gid_of_coords(tuple(ncoords))
            if tuple(ncoords) == coords and all(w == 0 for w in wrap):
                continue  # self without wrap is not a link
            key = (ngid, tuple(wrap))
            # With tiny grids (e.g. 2 blocks on an axis) multiple directions
            # can reach the same (gid, wrap); keep one link per pair.
            if key not in links:
                links[key] = NeighborLink(
                    gid=ngid, direction=tuple(direction), wrap=tuple(wrap)
                )
        return tuple(links.values())
