"""Single-file blocked I/O in the style of DIY's parallel writer.

All blocks of a decomposition are written into **one file**: a fixed header,
then each block's serialized payload at an exclusive-scan byte offset, then a
footer index of ``(gid, offset, size, crc32)`` records and a trailing pointer
to the footer.  On real MPI this is ``MPI_File_write_at_all``; here each rank
performs positioned writes (``os.pwrite``) on a private descriptor into the
shared file, which keeps the exact offset arithmetic and collective
structure of the original — and works identically whether ranks are threads
or OS processes (``run_parallel(..., backend="process")``), since nothing
but the communicator is shared between ranks.

Crash consistency
-----------------
:func:`write_blocks` is **crash-consistent**: every rank writes into a
deterministic temp path next to the destination, each rank ``fsync``\\ s its
payload bytes, and only after all ranks have finished does rank 0 append the
footer, ``fsync``, and atomically ``os.replace`` the temp file over the
destination (followed by a directory fsync so the rename itself is durable).
A crash at *any* point — a rank dying mid-payload, the footer half written,
power loss before the rename — leaves the previous file at ``path`` intact;
the orphaned ``path + ".tmp"`` is simply overwritten by the next write.

Torn or truncated files are additionally *detectable*: the footer carries a
CRC32 per block payload, the trailer carries a CRC32 of the footer itself
plus an end-of-file magic, and :class:`BlockFileReader` validates all three,
raising a precise :class:`CheckpointError` instead of handing back garbage.

The payload format is caller-defined bytes; :func:`pack_arrays` /
:func:`unpack_arrays` provide a safe (``allow_pickle=False``) container for
named NumPy arrays used by the tessellation data model.

File layout (version 2)::

    offset 0        magic  b"DIYB"  (4 bytes)
    4               version u32
    8               nblocks u64
    16              block payloads, tightly packed in gid order of write
    footer_offset   nblocks x (gid u64, offset u64, size u64, crc32 u32)
    end-16          footer_offset u64, footer_crc32 u32, magic b"DIYE"

Version-1 files (no checksums, 8-byte trailer) remain readable.
"""

from __future__ import annotations

import io
import mmap
import os
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from .. import faults
from .comm import Communicator

__all__ = [
    "pack_arrays",
    "unpack_arrays",
    "write_blocks",
    "BlockFileReader",
    "CheckpointError",
    "HEADER_SIZE",
]

_MAGIC = b"DIYB"
_END_MAGIC = b"DIYE"
_VERSION = 2
_HEADER = struct.Struct("<4sIQ")
_INDEX_ENTRY = struct.Struct("<QQQI")
_TRAILER = struct.Struct("<QI4s")
# Version-1 layout (kept readable): no CRCs, bare footer-offset trailer.
_INDEX_ENTRY_V1 = struct.Struct("<QQQ")
_TRAILER_V1 = struct.Struct("<Q")

HEADER_SIZE = _HEADER.size


class CheckpointError(ValueError):
    """A block file (or checkpoint built on one) is torn, truncated, or
    otherwise inconsistent.  The message names the path and what failed."""


# ----------------------------------------------------------------------
# array container serialization
# ----------------------------------------------------------------------
def pack_arrays(arrays: dict[str, np.ndarray]) -> bytes:
    """Serialize a mapping of names to arrays into a self-describing blob.

    Uses the ``.npy`` wire format per array (no pickling), so any dtype/shape
    round-trips exactly.  Keys are written in sorted order for determinism.
    """
    out = io.BytesIO()
    keys = sorted(arrays)
    out.write(struct.pack("<I", len(keys)))
    for key in keys:
        kb = key.encode("utf-8")
        body = io.BytesIO()
        np.save(body, np.ascontiguousarray(arrays[key]), allow_pickle=False)
        blob = body.getvalue()
        out.write(struct.pack("<H", len(kb)))
        out.write(kb)
        out.write(struct.pack("<Q", len(blob)))
        out.write(blob)
    return out.getvalue()


def unpack_arrays(
    blob: bytes | memoryview, only: set[str] | None = None
) -> dict[str, np.ndarray]:
    """Inverse of :func:`pack_arrays`.

    Accepts any buffer (``bytes`` or a ``memoryview`` over an mmap'd block
    file) and decodes by offset arithmetic, so a ``memoryview`` is never
    copied wholesale.  With ``only`` given, arrays whose names are not in
    the set are *skipped without touching their bytes* — the catalog
    store's extents scan reads two tiny arrays out of a multi-megabyte
    payload this way.
    """
    view = memoryview(blob)
    (nkeys,) = struct.unpack_from("<I", view, 0)
    off = 4
    out: dict[str, np.ndarray] = {}
    for _ in range(nkeys):
        (klen,) = struct.unpack_from("<H", view, off)
        off += 2
        key = bytes(view[off : off + klen]).decode("utf-8")
        off += klen
        (blen,) = struct.unpack_from("<Q", view, off)
        off += 8
        if only is None or key in only:
            body = io.BytesIO(bytes(view[off : off + blen]))
            out[key] = np.load(body, allow_pickle=False)
        off += blen
    return out


# ----------------------------------------------------------------------
# collective write
# ----------------------------------------------------------------------
def write_blocks(
    path: str | os.PathLike,
    comm: Communicator,
    blocks: list[tuple[int, bytes]],
    nblocks_total: int | None = None,
) -> int:
    """Collectively write per-rank ``(gid, payload)`` blocks to one file.

    Every rank passes its own blocks; offsets are computed with an exclusive
    scan of per-rank byte totals, each rank writes its payloads at its own
    offsets, and rank 0 writes the header, footer index, and trailer.

    The write is crash-consistent (see module docs): all bytes go to
    ``path + ".tmp"``, which rank 0 atomically renames over ``path`` only
    after every rank has written and fsynced.  A crash mid-write never
    clobbers an existing file at ``path``.

    Returns the total file size in bytes (valid on every rank).
    """
    path = os.fspath(path)
    tmp = path + ".tmp"
    local_size = sum(len(b) for _, b in blocks)
    start = comm.exscan(local_size)
    offset = HEADER_SIZE + (0 if start is None else int(start))

    # Rank 0 creates/truncates the *temp* file before anyone writes into it;
    # the destination stays untouched until the final atomic rename.
    if comm.rank == 0:
        with open(tmp, "wb"):
            pass
    comm.barrier()

    inj = faults.active()
    tear = inj.torn_write(comm.rank) if inj is not None else None

    index_entries: list[tuple[int, int, int, int]] = []
    fd = os.open(tmp, os.O_WRONLY)
    try:
        if tear is not None:
            # Injected fault: write a partial first payload, make it durable
            # (so the tear is really on disk), then crash this rank.
            if blocks:
                gid, payload = blocks[0]
                os.pwrite(fd, payload[: int(len(payload) * tear)], offset)
            os.fsync(fd)
            inj.crash_write(comm.rank)  # raises or os._exit; never returns
        for gid, payload in blocks:
            written = os.pwrite(fd, payload, offset)
            if written != len(payload):
                raise IOError(
                    f"short write for block {gid}: {written} of {len(payload)} bytes"
                )
            index_entries.append((gid, offset, len(payload), zlib.crc32(payload)))
            offset += len(payload)
        os.fsync(fd)
    finally:
        os.close(fd)

    all_entries = comm.gather(index_entries, root=0)
    # One tree allreduce carries both footer inputs (bytes and block count).
    total_payload, total_blocks = comm.allreduce(
        (local_size, len(blocks)), op=lambda a, b: (a[0] + b[0], a[1] + b[1])
    )
    footer_offset = HEADER_SIZE + int(total_payload)
    nblocks = nblocks_total if nblocks_total is not None else int(total_blocks)

    if comm.rank == 0:
        flat = sorted((e for per_rank in all_entries for e in per_rank))
        if len(flat) != nblocks:
            raise ValueError(
                f"expected {nblocks} blocks in file, wrote {len(flat)}"
            )
        gids = [g for g, _, _, _ in flat]
        if gids != list(range(nblocks)):
            raise ValueError(f"block gids must be 0..{nblocks - 1}, got {gids}")
        fd = os.open(tmp, os.O_WRONLY)
        try:
            os.pwrite(fd, _HEADER.pack(_MAGIC, _VERSION, nblocks), 0)
            footer = b"".join(_INDEX_ENTRY.pack(*e) for e in flat)
            os.pwrite(fd, footer, footer_offset)
            os.pwrite(
                fd,
                _TRAILER.pack(footer_offset, zlib.crc32(footer), _END_MAGIC),
                footer_offset + len(footer),
            )
            os.fsync(fd)
        finally:
            os.close(fd)
        # Publish: atomic rename, then make the rename itself durable.
        os.replace(tmp, path)
        dirfd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)

    comm.barrier()
    return footer_offset + nblocks * _INDEX_ENTRY.size + _TRAILER.size


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _IndexEntry:
    gid: int
    offset: int
    size: int
    crc: int | None  # None for version-1 files (no checksum recorded)


class BlockFileReader:
    """Random-access reader for files produced by :func:`write_blocks`.

    Safe for concurrent use from multiple rank-threads (positioned reads on
    a private descriptor).  Supports reading any subset of blocks, which is
    how the postprocessing plugin's parallel reader divides work.

    The file structure is validated on open (magic, trailer end-marker,
    footer bounds, footer CRC32) and each payload's CRC32 is validated on
    :meth:`read_block`; torn or truncated files raise
    :class:`CheckpointError` with the path and the failing field.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._fd = os.open(self.path, os.O_RDONLY)
        self._mmap: mmap.mmap | None = None
        try:
            self._load_index()
        except Exception:
            os.close(self._fd)
            raise

    def _load_index(self) -> None:
        file_size = os.fstat(self._fd).st_size
        if file_size < HEADER_SIZE + _TRAILER_V1.size:
            raise CheckpointError(
                f"{self.path}: truncated block file ({file_size} bytes, "
                f"header alone is {HEADER_SIZE})"
            )
        header = os.pread(self._fd, HEADER_SIZE, 0)
        magic, version, nblocks = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise CheckpointError(
                f"{self.path}: not a DIY block file (magic {magic!r})"
            )
        if version not in (1, _VERSION):
            raise CheckpointError(f"{self.path}: unsupported version {version}")
        self.version = int(version)
        self.nblocks = int(nblocks)

        entry_struct = _INDEX_ENTRY if self.version == 2 else _INDEX_ENTRY_V1
        trailer_struct = _TRAILER if self.version == 2 else _TRAILER_V1
        if file_size < HEADER_SIZE + trailer_struct.size:
            raise CheckpointError(
                f"{self.path}: truncated block file ({file_size} bytes)"
            )
        trailer = os.pread(
            self._fd, trailer_struct.size, file_size - trailer_struct.size
        )
        if self.version == 2:
            footer_offset, footer_crc, end_magic = trailer_struct.unpack(trailer)
            if end_magic != _END_MAGIC:
                raise CheckpointError(
                    f"{self.path}: missing end-of-file marker (torn or "
                    f"truncated write)"
                )
        else:
            (footer_offset,) = trailer_struct.unpack(trailer)
            footer_crc = None
        footer_size = self.nblocks * entry_struct.size
        expected_size = footer_offset + footer_size + trailer_struct.size
        if footer_offset < HEADER_SIZE or expected_size != file_size:
            raise CheckpointError(
                f"{self.path}: footer index at {footer_offset} for "
                f"{self.nblocks} blocks implies {expected_size} bytes, file "
                f"has {file_size}"
            )
        footer = os.pread(self._fd, footer_size, footer_offset)
        if len(footer) != footer_size:
            raise CheckpointError(
                f"{self.path}: short footer read ({len(footer)} of "
                f"{footer_size} bytes)"
            )
        if footer_crc is not None and zlib.crc32(footer) != footer_crc:
            raise CheckpointError(
                f"{self.path}: footer CRC mismatch (torn or corrupted write)"
            )
        self.file_size = int(file_size)
        # Content-derived identity of this file: the footer CRC covers every
        # payload's (gid, offset, size, crc32) record, so any change to any
        # block changes the tag.  V1 files have no stored CRC; the computed
        # one serves the same purpose.
        self.footer_crc = int(zlib.crc32(footer))
        self._index: dict[int, _IndexEntry] = {}
        for i in range(self.nblocks):
            rec = entry_struct.unpack_from(footer, i * entry_struct.size)
            gid, off, size = int(rec[0]), int(rec[1]), int(rec[2])
            crc = int(rec[3]) if self.version == 2 else None
            if off < HEADER_SIZE or off + size > footer_offset:
                raise CheckpointError(
                    f"{self.path}: block {gid} spans [{off}, {off + size}) "
                    f"outside the payload region [{HEADER_SIZE}, "
                    f"{footer_offset})"
                )
            self._index[gid] = _IndexEntry(gid, off, size, crc)

    def __enter__(self) -> "BlockFileReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Release the mapping and file descriptor (idempotent).

        Any :meth:`read_block_view` memoryviews must be released (or their
        contents copied out) before closing.
        """
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None  # type: ignore[assignment]

    @property
    def content_tag(self) -> str:
        """ETag-style identity of the file contents.

        Derived from the footer CRC (which covers every block's payload
        CRC), the file size, and the block count — republishing a snapshot
        with different contents always changes the tag, while re-reading
        the same file always reproduces it.
        """
        return f"{self.nblocks:x}-{self.file_size:x}-{self.footer_crc:08x}"

    def block_sizes(self) -> dict[int, int]:
        """Payload byte size per gid (from the footer index; no I/O)."""
        return {gid: e.size for gid, e in self._index.items()}

    def read_block_view(self, gid: int, verify: bool = True) -> memoryview:
        """Zero-copy ``memoryview`` of block ``gid`` over an mmap'd file.

        The first call maps the whole file (pages fault in on demand, so a
        footer-directed scan of a few small arrays touches only those
        pages).  The view is valid until :meth:`close`.  ``verify`` checks
        the payload CRC — the catalog store does this once per cold read
        and serves cache hits without re-hashing.
        """
        try:
            entry = self._index[gid]
        except KeyError:
            raise KeyError(
                f"block {gid} not in file (0..{self.nblocks - 1})"
            ) from None
        if self._mmap is None:
            self._mmap = mmap.mmap(
                self._fd, self.file_size, prot=mmap.PROT_READ
            )
        view = memoryview(self._mmap)[entry.offset : entry.offset + entry.size]
        if verify and entry.crc is not None and zlib.crc32(view) != entry.crc:
            raise CheckpointError(
                f"{self.path}: CRC mismatch for block {gid} (payload corrupted)"
            )
        return view

    def read_block(self, gid: int, verify: bool = True) -> bytes:
        """Raw payload bytes of block ``gid`` (CRC-checked unless ``verify``
        is False or the file predates checksums)."""
        try:
            entry = self._index[gid]
        except KeyError:
            raise KeyError(f"block {gid} not in file (0..{self.nblocks - 1})") from None
        blob = os.pread(self._fd, entry.size, entry.offset)
        if len(blob) != entry.size:
            raise CheckpointError(
                f"{self.path}: short read for block {gid} ({len(blob)} of "
                f"{entry.size} bytes)"
            )
        if verify and entry.crc is not None and zlib.crc32(blob) != entry.crc:
            raise CheckpointError(
                f"{self.path}: CRC mismatch for block {gid} (payload corrupted)"
            )
        return blob

    def read_block_arrays(self, gid: int) -> dict[str, np.ndarray]:
        """Payload of block ``gid`` decoded with :func:`unpack_arrays`."""
        return unpack_arrays(self.read_block(gid))
