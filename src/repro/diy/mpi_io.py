"""Single-file blocked I/O in the style of DIY's parallel writer.

All blocks of a decomposition are written into **one file**: a fixed header,
then each block's serialized payload at an exclusive-scan byte offset, then a
footer index of ``(gid, offset, size)`` records and a trailing pointer to the
footer.  On real MPI this is ``MPI_File_write_at_all``; here each rank
performs positioned writes (``os.pwrite``) on a private descriptor into the
shared file, which keeps the exact offset arithmetic and collective
structure of the original — and works identically whether ranks are threads
or OS processes (``run_parallel(..., backend="process")``), since nothing
but the communicator is shared between ranks.

The payload format is caller-defined bytes; :func:`pack_arrays` /
:func:`unpack_arrays` provide a safe (``allow_pickle=False``) container for
named NumPy arrays used by the tessellation data model.

File layout::

    offset 0        magic  b"DIYB"  (4 bytes)
    4               version u32
    8               nblocks u64
    16              block payloads, tightly packed in gid order of write
    footer_offset   nblocks x (gid u64, offset u64, size u64)
    end-8           footer_offset u64
"""

from __future__ import annotations

import io
import os
import struct
from dataclasses import dataclass

import numpy as np

from .comm import Communicator

__all__ = [
    "pack_arrays",
    "unpack_arrays",
    "write_blocks",
    "BlockFileReader",
    "HEADER_SIZE",
]

_MAGIC = b"DIYB"
_VERSION = 1
_HEADER = struct.Struct("<4sIQ")
_INDEX_ENTRY = struct.Struct("<QQQ")
_TRAILER = struct.Struct("<Q")

HEADER_SIZE = _HEADER.size


# ----------------------------------------------------------------------
# array container serialization
# ----------------------------------------------------------------------
def pack_arrays(arrays: dict[str, np.ndarray]) -> bytes:
    """Serialize a mapping of names to arrays into a self-describing blob.

    Uses the ``.npy`` wire format per array (no pickling), so any dtype/shape
    round-trips exactly.  Keys are written in sorted order for determinism.
    """
    out = io.BytesIO()
    keys = sorted(arrays)
    out.write(struct.pack("<I", len(keys)))
    for key in keys:
        kb = key.encode("utf-8")
        body = io.BytesIO()
        np.save(body, np.ascontiguousarray(arrays[key]), allow_pickle=False)
        blob = body.getvalue()
        out.write(struct.pack("<H", len(kb)))
        out.write(kb)
        out.write(struct.pack("<Q", len(blob)))
        out.write(blob)
    return out.getvalue()


def unpack_arrays(blob: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`pack_arrays`."""
    buf = io.BytesIO(blob)
    (nkeys,) = struct.unpack("<I", buf.read(4))
    out: dict[str, np.ndarray] = {}
    for _ in range(nkeys):
        (klen,) = struct.unpack("<H", buf.read(2))
        key = buf.read(klen).decode("utf-8")
        (blen,) = struct.unpack("<Q", buf.read(8))
        body = io.BytesIO(buf.read(blen))
        out[key] = np.load(body, allow_pickle=False)
    return out


# ----------------------------------------------------------------------
# collective write
# ----------------------------------------------------------------------
def write_blocks(
    path: str | os.PathLike,
    comm: Communicator,
    blocks: list[tuple[int, bytes]],
    nblocks_total: int | None = None,
) -> int:
    """Collectively write per-rank ``(gid, payload)`` blocks to one file.

    Every rank passes its own blocks; offsets are computed with an exclusive
    scan of per-rank byte totals, each rank writes its payloads at its own
    offsets, and rank 0 writes the header, footer index, and trailer.

    Returns the total file size in bytes (valid on every rank).
    """
    path = os.fspath(path)
    local_size = sum(len(b) for _, b in blocks)
    start = comm.exscan(local_size)
    offset = HEADER_SIZE + (0 if start is None else int(start))

    # Rank 0 creates/truncates the file before anyone writes into it.
    if comm.rank == 0:
        with open(path, "wb"):
            pass
    comm.barrier()

    index_entries: list[tuple[int, int, int]] = []
    fd = os.open(path, os.O_WRONLY)
    try:
        for gid, payload in blocks:
            written = os.pwrite(fd, payload, offset)
            if written != len(payload):
                raise IOError(
                    f"short write for block {gid}: {written} of {len(payload)} bytes"
                )
            index_entries.append((gid, offset, len(payload)))
            offset += len(payload)
    finally:
        os.close(fd)

    all_entries = comm.gather(index_entries, root=0)
    # One tree allreduce carries both footer inputs (bytes and block count).
    total_payload, total_blocks = comm.allreduce(
        (local_size, len(blocks)), op=lambda a, b: (a[0] + b[0], a[1] + b[1])
    )
    footer_offset = HEADER_SIZE + int(total_payload)
    nblocks = nblocks_total if nblocks_total is not None else int(total_blocks)

    if comm.rank == 0:
        flat = sorted((e for per_rank in all_entries for e in per_rank))
        if len(flat) != nblocks:
            raise ValueError(
                f"expected {nblocks} blocks in file, wrote {len(flat)}"
            )
        gids = [g for g, _, _ in flat]
        if gids != list(range(nblocks)):
            raise ValueError(f"block gids must be 0..{nblocks - 1}, got {gids}")
        fd = os.open(path, os.O_WRONLY)
        try:
            os.pwrite(fd, _HEADER.pack(_MAGIC, _VERSION, nblocks), 0)
            footer = b"".join(_INDEX_ENTRY.pack(*e) for e in flat)
            os.pwrite(fd, footer, footer_offset)
            os.pwrite(
                fd,
                _TRAILER.pack(footer_offset),
                footer_offset + len(footer),
            )
        finally:
            os.close(fd)

    comm.barrier()
    return footer_offset + nblocks * _INDEX_ENTRY.size + _TRAILER.size


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _IndexEntry:
    gid: int
    offset: int
    size: int


class BlockFileReader:
    """Random-access reader for files produced by :func:`write_blocks`.

    Safe for concurrent use from multiple rank-threads (positioned reads on
    a private descriptor).  Supports reading any subset of blocks, which is
    how the postprocessing plugin's parallel reader divides work.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._fd = os.open(self.path, os.O_RDONLY)
        try:
            header = os.pread(self._fd, HEADER_SIZE, 0)
            magic, version, nblocks = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise ValueError(f"{self.path}: not a DIY block file (magic {magic!r})")
            if version != _VERSION:
                raise ValueError(f"{self.path}: unsupported version {version}")
            self.nblocks = int(nblocks)

            file_size = os.fstat(self._fd).st_size
            trailer = os.pread(self._fd, _TRAILER.size, file_size - _TRAILER.size)
            (footer_offset,) = _TRAILER.unpack(trailer)
            footer = os.pread(
                self._fd, self.nblocks * _INDEX_ENTRY.size, footer_offset
            )
            self._index = {}
            for i in range(self.nblocks):
                gid, off, size = _INDEX_ENTRY.unpack_from(footer, i * _INDEX_ENTRY.size)
                self._index[int(gid)] = _IndexEntry(int(gid), int(off), int(size))
        except Exception:
            os.close(self._fd)
            raise

    def __enter__(self) -> "BlockFileReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Release the file descriptor (idempotent)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None  # type: ignore[assignment]

    def read_block(self, gid: int) -> bytes:
        """Raw payload bytes of block ``gid``."""
        try:
            entry = self._index[gid]
        except KeyError:
            raise KeyError(f"block {gid} not in file (0..{self.nblocks - 1})") from None
        blob = os.pread(self._fd, entry.size, entry.offset)
        if len(blob) != entry.size:
            raise IOError(f"short read for block {gid}")
        return blob

    def read_block_arrays(self, gid: int) -> dict[str, np.ndarray]:
        """Payload of block ``gid`` decoded with :func:`unpack_arrays`."""
        return unpack_arrays(self.read_block(gid))
