"""DIY-style data-parallel building blocks.

This subpackage reimplements the slice of DIY (Peterka et al., LDAV 2011)
that the paper's tess library depends on: regular block decomposition with
26-connectivity and periodic boundary neighbors, an MPI-like communicator
(here an in-process thread SPMD runtime), a neighborhood enqueue/exchange
pattern with per-link periodic coordinate transforms and near-point
targeting, and a single-file blocked parallel writer/reader.
"""

from .bounds import Bounds, minimum_image, periodic_translation, wrap_positions
from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    CommStats,
    Communicator,
    ParallelError,
    Request,
    run_parallel,
)
from .decomposition import Block, Decomposition, NeighborLink, factor_into_grid
from .exchange import Assignment, NeighborExchanger
from .mpi_io import BlockFileReader, pack_arrays, unpack_arrays, write_blocks
from .process_backend import RankDiedError, pool_enabled, shutdown_pool
from .reduction import tree_allreduce, tree_reduce
from .transport import CommError

__all__ = [
    "Bounds",
    "minimum_image",
    "periodic_translation",
    "wrap_positions",
    "ANY_SOURCE",
    "ANY_TAG",
    "CommStats",
    "Communicator",
    "Request",
    "ParallelError",
    "run_parallel",
    "Block",
    "Decomposition",
    "NeighborLink",
    "factor_into_grid",
    "Assignment",
    "NeighborExchanger",
    "BlockFileReader",
    "pack_arrays",
    "unpack_arrays",
    "write_blocks",
    "tree_allreduce",
    "tree_reduce",
    "RankDiedError",
    "CommError",
    "pool_enabled",
    "shutdown_pool",
]
