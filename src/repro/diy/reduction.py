"""Tree-structured global reductions (DIY's merge reduction).

DIY's signature communication pattern beyond neighbor exchange is the
*merge* reduction: partial results combine pairwise up a binomial tree in
``ceil(log2 P)`` rounds, so global analysis products (histograms, counts,
extrema) cost logarithmic depth instead of the linear gather used by naive
implementations.  tess's companion tools use it for their summary
statistics.

The ``op`` must be associative; commutativity is not required (partners
are combined in rank order).
"""

from __future__ import annotations

from typing import Any, Callable

from .comm import Communicator

__all__ = ["tree_reduce", "tree_allreduce"]

_TAG_BASE = 1 << 19  # below the collective tag space, above user tags


def tree_reduce(
    comm: Communicator,
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int = 0,
) -> Any:
    """Reduce ``value`` across ranks to ``root`` along a binomial tree.

    Collective.  Returns the reduction at ``root`` and ``None`` elsewhere.
    The tree is rooted at rank 0 internally; for another root the result is
    forwarded (one extra message), keeping the implementation simple while
    preserving the log-depth combine structure.
    """
    if not 0 <= root < comm.size:
        raise ValueError(f"root {root} out of range [0, {comm.size})")
    acc = value
    rank, size = comm.rank, comm.size
    round_no = 0
    stride = 1
    while stride < size:
        tag = _TAG_BASE + round_no
        if rank % (2 * stride) == 0:
            partner = rank + stride
            if partner < size:
                other = comm.recv(source=partner, tag=tag)
                acc = op(acc, other)  # lower rank on the left: rank order
        elif rank % (2 * stride) == stride:
            comm.send(acc, dest=rank - stride, tag=tag)
            acc = None
        stride *= 2
        round_no += 1

    if root != 0:
        tag = _TAG_BASE + 64
        if rank == 0:
            comm.send(acc, dest=root, tag=tag)
            return None
        if rank == root:
            return comm.recv(source=0, tag=tag)
        return None
    return acc if rank == 0 else None


def tree_allreduce(
    comm: Communicator, value: Any, op: Callable[[Any, Any], Any]
) -> Any:
    """Tree reduction followed by a broadcast; every rank gets the result."""
    return comm.bcast(tree_reduce(comm, value, op, root=0), root=0)
