"""Tree-structured global reductions (DIY's merge reduction).

DIY's signature communication pattern beyond neighbor exchange is the
*merge* reduction: partial results combine pairwise up a binomial tree in
``ceil(log2 P)`` rounds, so global analysis products (histograms, counts,
extrema) cost logarithmic depth instead of the linear gather used by naive
implementations.  tess's companion tools use it for their summary
statistics.

The binomial combine now lives in the communicator itself
(:meth:`repro.diy.comm.Communicator.reduce` /
:meth:`~repro.diy.comm.Communicator.allreduce` are tree-based and carry
their traffic on the isolated internal collective channel, out of reach of
user wildcard receives); these wrappers are kept as the stable DIY-flavored
entry points.

The ``op`` must be associative; commutativity is not required (partners
are combined in rank order).
"""

from __future__ import annotations

from typing import Any, Callable

from .comm import Communicator

__all__ = ["tree_reduce", "tree_allreduce"]


def tree_reduce(
    comm: Communicator,
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int = 0,
) -> Any:
    """Reduce ``value`` across ranks to ``root`` along a binomial tree.

    Collective.  Returns the reduction at ``root`` and ``None`` elsewhere.
    The tree is rooted at rank 0 internally; for another root the result is
    forwarded (one extra message), keeping the implementation simple while
    preserving the log-depth combine structure.
    """
    return comm.reduce(value, op=op, root=root)


def tree_allreduce(
    comm: Communicator, value: Any, op: Callable[[Any, Any], Any]
) -> Any:
    """Tree reduction followed by a broadcast; every rank gets the result."""
    return comm.allreduce(value, op=op)
