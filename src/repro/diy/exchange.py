"""DIY-style neighborhood exchange.

A :class:`NeighborExchanger` moves payloads between neighboring blocks of a
:class:`~repro.diy.decomposition.Decomposition`.  The pattern follows DIY's
``enqueue``/``exchange`` API: during a round, each block enqueues payloads to
some of its links; a single collective ``exchange`` then delivers everything,
and each block dequeues what its neighbors sent.

Two behaviors from the paper (§III-C1) are first-class here:

* **Periodic transforms** — when a payload travels along a link that crosses
  the periodic domain boundary, a user-supplied ``transform(payload,
  translation)`` callback is invoked with the coordinate translation for that
  link, so particle positions arrive expressed in the receiving block's
  frame.
* **Near-point targeting** — helpers on the decomposition select only the
  links whose ghost region actually needs a given particle; the exchanger
  itself is target-agnostic and ships whatever was enqueued.

Blocks are mapped to ranks by an :class:`Assignment` (round-robin by
default).  Multiple blocks per rank are supported, which also gives a serial
mode: one rank holding all blocks exchanges with itself.

The exchanger is written purely against the :class:`Communicator` contract,
so it runs unchanged on either execution backend of
:func:`repro.diy.comm.run_parallel` — thread ranks (payloads pass by
reference) or process ranks (payloads move with pickle protocol-5
zero-copy/shared-memory transport).  Enqueued payloads must not be mutated
after :meth:`NeighborExchanger.enqueue`; every call site in this package
enqueues private copies.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

import numpy as np

from .bounds import periodic_translation
from .comm import Communicator
from .decomposition import Decomposition, NeighborLink

__all__ = ["Assignment", "NeighborExchanger"]


class Assignment:
    """Maps block gids to ranks.

    The default is round-robin (``rank = gid % nranks``), matching DIY's
    contiguous/round-robin assigners.  The paper's runs use one block per
    process, which is the special case ``nblocks == nranks``.
    """

    def __init__(self, nblocks: int, nranks: int):
        if nblocks < 1 or nranks < 1:
            raise ValueError("nblocks and nranks must be >= 1")
        if nranks > nblocks:
            raise ValueError(
                f"more ranks ({nranks}) than blocks ({nblocks}); every rank needs work"
            )
        self.nblocks = nblocks
        self.nranks = nranks

    def rank_of(self, gid: int) -> int:
        """Rank owning block ``gid``."""
        if not 0 <= gid < self.nblocks:
            raise ValueError(f"gid {gid} out of range [0, {self.nblocks})")
        return gid % self.nranks

    def gids_of(self, rank: int) -> list[int]:
        """All block gids owned by ``rank``, ascending."""
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        return list(range(rank, self.nblocks, self.nranks))


class NeighborExchanger:
    """Per-rank neighborhood exchange engine.

    Parameters
    ----------
    decomposition:
        The global block decomposition (identical on every rank).
    comm:
        This rank's communicator.
    assignment:
        Block-to-rank mapping; defaults to round-robin over
        ``decomposition.nblocks`` blocks.
    transform:
        Callback ``transform(payload, translation) -> payload`` applied to
        payloads sent along periodic links, where ``translation`` is the
        vector to add to coordinates (see
        :func:`repro.diy.bounds.periodic_translation`).  If omitted, payloads
        cross periodic links unmodified.
    """

    def __init__(
        self,
        decomposition: Decomposition,
        comm: Communicator,
        assignment: Assignment | None = None,
        transform: Callable[[Any, np.ndarray], Any] | None = None,
    ) -> None:
        self.decomposition = decomposition
        self.comm = comm
        self.assignment = assignment or Assignment(decomposition.nblocks, comm.size)
        if self.assignment.nblocks != decomposition.nblocks:
            raise ValueError("assignment does not cover the decomposition")
        if self.assignment.nranks != comm.size:
            raise ValueError("assignment rank count does not match communicator size")
        self.transform = transform
        # outgoing[dest_rank] -> list of (dest_gid, src_gid, payload)
        self._outgoing: dict[int, list[tuple[int, int, Any]]] = defaultdict(list)
        self.local_gids = self.assignment.gids_of(comm.rank)

    # ------------------------------------------------------------------
    def enqueue(self, src_gid: int, link: NeighborLink, payload: Any) -> None:
        """Queue ``payload`` from block ``src_gid`` along ``link``.

        Periodic links apply the transform callback immediately (the payload
        is already a private copy at every call site in this package).
        """
        if self.assignment.rank_of(src_gid) != self.comm.rank:
            raise ValueError(
                f"block {src_gid} is not owned by rank {self.comm.rank}"
            )
        if link.is_periodic and self.transform is not None:
            translation = periodic_translation(
                np.asarray(link.wrap), self.decomposition.domain
            )
            payload = self.transform(payload, translation)
        dest_rank = self.assignment.rank_of(link.gid)
        self._outgoing[dest_rank].append((link.gid, src_gid, payload))

    def exchange(self, *, dense: bool = False) -> dict[int, list[tuple[int, Any]]]:
        """Deliver all enqueued payloads (collective).

        Every rank must call this, even with nothing enqueued.  Returns a
        mapping from each locally owned gid to the list of ``(src_gid,
        payload)`` pairs received this round, in deterministic
        (source-rank, enqueue) order.  The outgoing queues are cleared.

        The default path is **sparse**: each rank sends one batch per
        destination rank with a non-empty queue (plus a small O(log P)
        header round), so the cost scales with the neighborhood size rather
        than the dense alltoall's O(P) messages per rank.  ``dense=True``
        keeps the original alltoall as a reference path for validation and
        benchmarking; both orders received batches identically.
        """
        from .. import observe

        if observe.enabled():
            # Exchange-traffic counters feed the same dashboard as the
            # balance gauges: after a rebalance the payload volume per
            # round shows whether the irregular blocks' tight region
            # targeting held ghost traffic down.
            reg = observe.registry()
            reg.counter("exchange.rounds", rank=self.comm.rank).inc()
            reg.counter("exchange.payloads", rank=self.comm.rank).inc(
                sum(len(q) for q in self._outgoing.values())
            )
        if dense:
            sendbufs = [self._outgoing.get(r, []) for r in range(self.comm.size)]
            self._outgoing.clear()
            batches = self.comm.alltoall(sendbufs)
        else:
            outbox = {r: q for r, q in self._outgoing.items() if q}
            self._outgoing.clear()
            received = self.comm.sparse_alltoall(outbox)
            batches = [received[r] for r in sorted(received)]

        inbox: dict[int, list[tuple[int, Any]]] = {g: [] for g in self.local_gids}
        for batch in batches:  # in source-rank order
            for dest_gid, src_gid, payload in batch:
                inbox[dest_gid].append((src_gid, payload))
        return inbox
