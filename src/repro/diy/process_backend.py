"""Process SPMD backend: one OS process per rank, pipes + shared memory.

This is the second execution backend of :func:`repro.diy.comm.run_parallel`
(``backend="process"``).  Each rank is a forked OS process, so rank code
runs with true hardware parallelism — the GIL bounds only a single rank,
not the region.  The :class:`~repro.diy.comm.Communicator` contract (and
therefore every tree collective, the neighbor exchange, the parallel
writer, and CommStats) is carried unchanged on top of a different
transport:

* every rank pair shares a duplex pipe; a per-rank receiver thread drains
  all pipes into the same :class:`~repro.diy.comm._Mailbox` matching
  structures the thread backend uses;
* payloads are serialized with pickle protocol 5 — NumPy buffers move
  out-of-band, and large ones ride pooled ``multiprocessing.shared_memory``
  segments so ghost exchange and I/O gathers never serialize element-wise
  (see :mod:`repro.diy.transport`);
* segment names released by receivers piggyback on subsequent messages
  back to the owning rank, whose pool recycles them;
* a single logical message may exceed the ~2 GiB pipe frame cap — the
  transport splits it into chunk frames transparently
  (:func:`repro.diy.transport.send_message`).

Execution comes in two flavors:

**Persistent rank pool (default).**  The first ``run_parallel`` at a given
rank count forks a :class:`RankPool` whose workers — and their pooled shm
segments, attached-mapping caches, and pipe mesh — stay alive across
parallel regions.  Subsequent runs *lease* the pool: the worker function
and arguments are pickled down per-rank task pipes, results come back over
per-rank result pipes, and a flush round quiesces the data pipes between
tasks so no message from one region can leak into the next.  Fault
injection composes: the active :class:`~repro.faults.FaultSpec` ships with
each task (pool workers forked long ago cannot inherit it).  Any failed
run — a raising rank, a dead process, a deadlock — *invalidates* the pool
(workers are torn down, their ``/dev/shm`` segments swept by name prefix)
and the next run forks a fresh one.  ``REPRO_POOL=0`` disables pooling;
:func:`shutdown_pool` (also registered ``atexit``) releases the workers
explicitly.

**Fresh fork (fallback).**  Tasks whose function or arguments don't pickle
(closures over live objects) transparently fall back to the original
fork-per-region path, where everything is inherited by reference and only
results cross back.

Failure semantics mirror the thread backend: the first raising rank aborts
the region (a shared event plus a broken barrier wake the peers) and the
parent re-raises a :class:`~repro.diy.comm.ParallelError` naming that rank.
A rank that dies without a result (crash, ``os._exit``, OOM-kill) surfaces
as :class:`RankDiedError` within a short detection bound, and the shared
memory it leased is reclaimed by a prefix sweep so repeated
fault-injection runs cannot exhaust ``/dev/shm``.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import threading
import time
import traceback
from collections import defaultdict
from multiprocessing import connection, get_context
from typing import Any, Callable

from .. import faults, observe
from ..observe import trace as _otrace
from ..observe.metrics import registry as _registry
from . import transport
from .comm import (
    _DEFAULT_TIMEOUT,
    _AbortedError,
    _coll_group_size,
    _Mailbox,
    Communicator,
    ParallelError,
)

__all__ = [
    "run_parallel_processes",
    "RankDiedError",
    "RankPool",
    "shutdown_pool",
    "pool_enabled",
]

_POLL_S = 0.05  # receiver-thread poll interval (also the abort latency)
_DETECT_POLL_S = 0.2  # parent's dead-child detection poll interval

#: Control tag (collective channel) used to quiesce the pipe mesh between
#: pooled tasks.  Negative tags can never collide with user or collective
#: traffic (user tags are >= 0; collective tags are >= _COLL_TAG).
_FLUSH_TAG = -2

_pool_seq = itertools.count()  # distinct shm prefixes across pool generations
_region_seq = itertools.count()  # distinct shm prefixes across fresh regions

#: Always-on pool lifecycle counters (cheap introspection for tests and the
#: scaling bench).  Mirrored into the observe metrics registry as
#: ``pool.<name>`` counters only while observation is enabled, matching how
#: CommStats and friends are absorbed.
pool_counters: dict[str, int] = {
    "forks": 0,  # worker processes ever forked into pools
    "runs_leased": 0,  # run_parallel calls served by a pool
    "runs_reused": 0,  # of those, served by already-warm workers
    "fallback_runs": 0,  # unpicklable tasks that fell back to fresh fork
    "invalidations": 0,  # pools torn down by a failed run
}


def _pool_count(name: str, n: int = 1) -> None:
    pool_counters[name] += n
    if observe.enabled():
        _registry().counter(f"pool.{name}").inc(n)


class RankDiedError(RuntimeError):
    """A rank process exited (crash, kill, os._exit) without delivering a
    result.  Raised to the caller wrapped in a
    :class:`~repro.diy.comm.ParallelError` naming the rank, within
    ~``_DETECT_POLL_S`` of the death rather than after the recv timeout."""


class _ProcessWorld:
    """Child-side world: the Communicator transport for one rank process."""

    def __init__(
        self,
        rank: int,
        size: int,
        conns: dict[int, connection.Connection],
        barrier,
        abort_mp,
        timeout: float,
        shm_prefix: str | None = None,
    ) -> None:
        self.rank = rank
        self.size = size
        self.timeout = timeout
        self.coll_group = _coll_group_size(size)
        self.abort = threading.Event()  # local mirror of the shared flag
        self._abort_mp = abort_mp
        self._barrier_mp = barrier
        self._conns = conns
        self._send_locks = {peer: threading.Lock() for peer in conns}
        self._user_mb = _Mailbox()
        self._coll_mb = _Mailbox()
        self.pool = transport.ShmPool(prefix=shm_prefix)
        self._attached: dict[str, Any] = {}  # peer segment name -> mapping
        self._leases: list[tuple[int, transport.SegmentLease]] = []
        self._pending_release: dict[int, list[str]] = defaultdict(list)
        self._release_lock = threading.Lock()
        self._stop = threading.Event()
        self._recv_thread = threading.Thread(
            target=self._recv_loop, name=f"rank-{rank}-recv", daemon=True
        )

    def start(self) -> None:
        self._recv_thread.start()

    # -- Communicator transport interface ------------------------------
    def deliver(
        self, dest: int, source: int, tag: int, payload: Any, coll: bool = False
    ) -> tuple[int, int]:
        """Ship ``payload`` to ``dest``; returns ``(shm_bytes, chunk_frames)``
        — bytes moved via shared memory and extra pipe frames used by
        chunked framing (0 for an ordinary single-frame send)."""
        if dest == self.rank:
            self.inbox(dest, coll).put(source, tag, payload)
            return 0, 0
        t0 = time.perf_counter() if _otrace._enabled else 0.0
        meta, descriptors, shm_bytes = transport.encode_payload(payload, self.pool)
        if _otrace._enabled and shm_bytes:
            _otrace.record(
                "shm-send",
                self.rank,
                t0,
                time.perf_counter(),
                cat="shm",
                attrs={"dest": dest, "bytes": shm_bytes},
            )
        with self._release_lock:
            releases = self._pending_release.pop(dest, [])
        wire = pickle.dumps(
            (releases, source, tag, coll, meta, descriptors), protocol=5
        )
        try:
            with self._send_locks[dest]:
                frames = transport.send_message(self._conns[dest], wire)
        except (BrokenPipeError, OSError):
            # A broken data pipe means the peer process is gone — this rank
            # is a secondary casualty either way.  The authoritative
            # diagnosis (which rank died, and why) comes from the parent's
            # exit-code poll, so never surface the raw pipe error as if it
            # were this rank's own failure.
            raise _AbortedError(
                "parallel region aborted while sending (peer pipe closed)"
            ) from None
        return shm_bytes, frames

    def inbox(self, rank: int, coll: bool) -> _Mailbox:
        assert rank == self.rank, "a rank process only reads its own mailbox"
        return self._coll_mb if coll else self._user_mb

    def barrier_wait(self) -> None:
        if self.abort.is_set() or self._abort_mp.is_set():
            raise _AbortedError("parallel region aborted at barrier")
        try:
            self._barrier_mp.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            raise _AbortedError("barrier broken (a peer rank failed)") from None

    # -- receiver machinery --------------------------------------------
    def _attach(self, name: str):
        shm = self._attached.get(name)
        if shm is None:
            shm = transport.attach_segment(name)
            self._attached[name] = shm
        return shm

    def _recv_loop(self) -> None:
        by_conn = {conn: peer for peer, conn in self._conns.items()}
        while not self._stop.is_set():
            if self._abort_mp.is_set() and not self.abort.is_set():
                self._local_abort()
            try:
                ready = connection.wait(list(by_conn), timeout=_POLL_S)
            except OSError:
                break
            for conn in ready:
                try:
                    msg, _ = transport.recv_message(conn)
                except (EOFError, OSError, transport.CommError):
                    del by_conn[conn]
                    continue
                releases, source, tag, coll, meta, descriptors = msg
                for name in releases:
                    self.pool.recycle(name)
                payload, lease = transport.decode_payload(
                    meta, descriptors, self._attach
                )
                if lease is not None:
                    self._leases.append((source, lease))
                self.inbox(self.rank, coll).put(source, tag, payload)
            self._reap_leases()

    def _reap_leases(self) -> None:
        """Queue idle segments for release back to their owning ranks."""
        if not self._leases:
            return
        still: list[tuple[int, transport.SegmentLease]] = []
        freed: dict[int, list[str]] = defaultdict(list)
        for owner, lease in self._leases:
            if lease.idle():
                lease.release_views()
                freed[owner].extend(lease.names)
            else:
                still.append((owner, lease))
        self._leases = still
        if freed:
            with self._release_lock:
                for owner, names in freed.items():
                    self._pending_release[owner].extend(names)

    def _local_abort(self) -> None:
        self.abort.set()
        for mb in (self._user_mb, self._coll_mb):
            with mb.lock:
                mb.ready.notify_all()

    # -- pooled-task lifecycle ------------------------------------------
    def flush_task(self) -> None:
        """Quiesce the pipe mesh at the end of a pooled task.

        Every rank sends a flush marker to every peer and waits for the
        peers' markers.  Pipes are FIFO per (source, dest), so receiving a
        peer's marker proves everything that peer sent this task has
        already been drained into the local mailboxes — the mesh carries no
        in-flight traffic that could leak into the next task.  Callers run
        this only after the finish barrier (all ranks done sending).
        Pending shm release names piggyback on the markers, exactly as on
        ordinary messages.
        """
        for peer in sorted(self._conns):
            self.deliver(peer, self.rank, _FLUSH_TAG, None, coll=True)
        for peer in sorted(self._conns):
            self._coll_mb.get(peer, _FLUSH_TAG, self.abort, self.timeout)

    def end_task(self) -> None:
        """Drop task-local message state so the next lease starts clean.

        Unconsumed payloads die here; their shm leases go idle and the
        receiver thread queues the segment names for release on the next
        task's traffic (or they fall to the pool shutdown sweep)."""
        self._user_mb.clear()
        self._coll_mb.clear()

    def shutdown(self) -> None:
        self._stop.set()
        self._recv_thread.join(timeout=5.0)
        for _, lease in self._leases:
            lease.release_views()
        self._leases = []
        for shm in self._attached.values():
            transport.close_segment_quietly(shm)
        self._attached = {}
        self.pool.shutdown()
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass


def _portable_exception(exc: BaseException) -> BaseException:
    """The exception itself if it pickles cleanly, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        detail = "".join(traceback.format_exception(exc)).strip()
        return RuntimeError(f"[{type(exc).__name__}] {exc}\n{detail}")


def _send_status(result_conn: connection.Connection, status: tuple) -> None:
    """Ship a ("ok"/"err", payload) status, downgrading unpicklable results
    to a reported error rather than hanging the parent."""
    try:
        transport.send_message(result_conn, pickle.dumps(status, protocol=5))
    except Exception as exc:  # result not picklable: report, don't hang
        fallback = ("err", _portable_exception(exc))
        try:
            transport.send_message(
                result_conn, pickle.dumps(fallback, protocol=5)
            )
        except Exception:
            pass


def _run_task(
    world: _ProcessWorld,
    rank: int,
    func: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    barrier,
    finish_barrier,
    abort_mp,
    timeout: float,
) -> tuple[str, Any]:
    """Execute one parallel-region task on an established world."""
    world.timeout = timeout
    try:
        result = func(Communicator(rank, world), *args, **kwargs)
        status: tuple[str, Any] = ("ok", result)
    except BaseException as exc:  # noqa: BLE001 - must propagate everything
        abort_mp.set()
        for b in (barrier, finish_barrier):
            try:
                b.abort()  # wake peers blocked at a barrier
            except Exception:
                pass
        status = ("err", _portable_exception(exc))
    if status[0] == "ok":
        # Rendezvous before teardown/reuse: a peer may still be sending to
        # this rank (buffered sends never fail in the thread backend, so
        # they must not fail here either).  This is a *separate* barrier
        # object from the user-visible one — mixing the two would let a
        # finished rank's arrival complete a peer's in-progress user
        # barrier cycle.  A broken barrier means some rank already failed —
        # proceed; the primary error wins at the parent.
        try:
            finish_barrier.wait(timeout=timeout)
        except threading.BrokenBarrierError:
            pass
    return status


def _child_main(
    rank: int,
    size: int,
    func: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    conns: dict[int, connection.Connection],
    extra_conns: list[connection.Connection],
    barrier,
    finish_barrier,
    abort_mp,
    timeout: float,
    result_conn: connection.Connection,
    shm_prefix: str,
) -> None:
    """Fresh-fork worker: run one task, report, tear down, exit."""
    # Fork gave us every pipe end; keep only ours so peers see EOF promptly.
    for conn in extra_conns:
        try:
            conn.close()
        except OSError:
            pass
    world = _ProcessWorld(
        rank, size, conns, barrier, abort_mp, timeout, shm_prefix=shm_prefix
    )
    world.start()
    status = _run_task(
        world, rank, func, args, kwargs, barrier, finish_barrier, abort_mp, timeout
    )
    _send_status(result_conn, status)
    # Drop the last local references to result payloads before teardown so
    # shm-backed arrays die and their mappings close cleanly.
    del status
    world.shutdown()
    try:
        result_conn.close()
    except OSError:
        pass


def _pool_main(
    rank: int,
    size: int,
    conns: dict[int, connection.Connection],
    extra_conns: list[connection.Connection],
    barrier,
    finish_barrier,
    abort_mp,
    task_conn: connection.Connection,
    result_conn: connection.Connection,
    shm_prefix: str,
) -> None:
    """Pool worker: serve tasks off the task pipe until stopped.

    Each iteration runs one parallel-region task against the same
    long-lived world (same pipes, same shm pool, same attached-segment
    cache), then quiesces the mesh so the next task starts from a clean
    slate.  Any failure leaves the shared barriers broken and the abort
    flag set — the parent invalidates the whole pool, so no recovery is
    attempted here.
    """
    for conn in extra_conns:
        try:
            conn.close()
        except OSError:
            pass
    world = _ProcessWorld(
        rank, size, conns, barrier, abort_mp, _DEFAULT_TIMEOUT,
        shm_prefix=shm_prefix,
    )
    world.start()
    while True:
        try:
            task, _ = transport.recv_message(task_conn)
        except Exception:  # EOF/OSError: parent gone or shutting down
            break
        if task[0] != "run":
            break  # explicit ("stop",) from shutdown_pool
        _, func, args, kwargs, spec, timeout = task
        # Fault specs ship with the task: this worker forked before the
        # caller armed its injector, so fork inheritance cannot apply.
        faults.clear()
        if spec is not None:
            faults.install(spec)
        try:
            status = _run_task(
                world, rank, func, args, kwargs, barrier, finish_barrier,
                abort_mp, timeout,
            )
        finally:
            faults.clear()
        clean = False
        if status[0] == "ok" and not abort_mp.is_set():
            try:
                world.flush_task()
                clean = True
            except BaseException:
                pass
        if not clean:
            # The mesh may still carry in-flight traffic — unsafe to reuse.
            abort_mp.set()
        # Clear task-local state BEFORE reporting: once this rank's status
        # reaches the parent, a peer may receive the *next* task and start
        # sending — a clear() after that point would eat the new task's
        # first messages.  Post-flush, clearing here is race-free: the
        # mailboxes hold only this task's leftovers.
        world.end_task()
        _send_status(result_conn, status)
        del status
        if abort_mp.is_set():
            break  # pool invalidated; the parent reaps this worker
    world.shutdown()
    for conn in (task_conn, result_conn):
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# parent-side machinery
# ----------------------------------------------------------------------
def _spawn_rank(ctx, target: Callable[..., Any], args: tuple, rank: int):
    """Fork one rank process (seam for spawn-failure injection in tests)."""
    proc = ctx.Process(target=target, args=args, name=f"rank-{rank}", daemon=True)
    proc.start()
    return proc


def _rank_conns(
    pair_pipes: dict, rank: int
) -> dict[int, connection.Connection]:
    """The duplex pipe ends rank ``rank`` uses to reach each peer."""
    conns: dict[int, connection.Connection] = {}
    for (i, j), (ci, cj) in pair_pipes.items():
        if i == rank:
            conns[j] = ci
        elif j == rank:
            conns[i] = cj
    return conns


def _await_results(
    procs: list,
    pending: dict[connection.Connection, int],
    abort_all: Callable[[], None],
    timeout: float,
) -> tuple[list[Any], list[ParallelError]]:
    """Collect one ("ok"/"err", payload) status per rank.

    Shared by the fresh-fork path and the pool.  A child that exited
    without delivering a result (killed by the OS, or ``os._exit`` from
    fault injection) is detected within ~``_DETECT_POLL_S`` as a
    :class:`RankDiedError`, not after the full recv timeout; a region that
    produces nothing past the timeout grace window is declared deadlocked.
    """
    results: list[Any] = [None] * len(procs)
    errors: list[ParallelError] = []
    deadline = time.monotonic() + timeout + 30.0

    def declare_failed(rank: int, exc: BaseException) -> None:
        """Record a failure and wake every surviving rank promptly.

        Aborting wakes blocked receives (each rank's receiver thread polls
        the shared flag every ``_POLL_S``) and ranks blocked in a barrier
        wait.  Without it, peers of a dead rank would stall until the full
        recv timeout."""
        abort_all()
        errors.append(ParallelError(rank, exc))

    while pending:
        ready = connection.wait(list(pending), timeout=_DETECT_POLL_S)
        for conn in ready:
            rank = pending.pop(conn)
            try:
                (kind, payload), _ = transport.recv_message(conn)
            except (EOFError, OSError):
                procs[rank].join(timeout=1.0)  # reap so exitcode is readable
                declare_failed(
                    rank,
                    RankDiedError(
                        f"rank {rank} process died without a result "
                        f"(exit code {procs[rank].exitcode})"
                    ),
                )
                continue
            if kind == "ok":
                results[rank] = payload
            else:
                declare_failed(rank, payload)
        # Heartbeat: exitcode set + nothing left in the result pipe == dead
        # child (a finished child's result bytes are already in the pipe
        # buffer, and a live pool worker has no exitcode).
        for conn, rank in list(pending.items()):
            if procs[rank].exitcode is not None and not conn.poll():
                del pending[conn]
                declare_failed(
                    rank,
                    RankDiedError(
                        f"rank {rank} process died without a result "
                        f"(exit code {procs[rank].exitcode})"
                    ),
                )
        if not ready and pending and time.monotonic() > deadline:
            abort_all()
            for conn, rank in pending.items():
                errors.append(
                    ParallelError(
                        rank,
                        TimeoutError(
                            f"rank {rank} produced no result within "
                            f"{timeout}s — likely deadlock"
                        ),
                    )
                )
            break
    return results, errors


def _raise_first(errors: list[ParallelError]) -> None:
    # Prefer the originating failure over secondary teardown errors.
    errors.sort(key=lambda e: (isinstance(e.original, _AbortedError), e.rank))
    raise errors[0]


class RankPool:
    """A persistent set of forked rank workers, reused across regions.

    Forking ``nranks`` processes, building the O(n²) pipe mesh, and warming
    each rank's shm pool costs far more than a small tessellation step — a
    pool pays it once and amortizes it over every subsequent
    ``run_parallel`` at the same rank count.  :meth:`run` leases the
    workers for one task; any failure (raising rank, dead process,
    deadlock, unreachable pipe) permanently invalidates the pool — its
    workers are terminated and every shm segment carrying the pool's name
    prefix is swept from ``/dev/shm`` — and the caller's next run forks a
    replacement.  :meth:`shutdown` releases a healthy pool gracefully.
    """

    def __init__(self, nranks: int) -> None:
        ctx = get_context("fork")
        self.nranks = nranks
        self.generation = next(_pool_seq)
        self.shm_prefix = f"repro-{os.getpid()}-p{self.generation}"
        self.alive = True
        self.runs = 0
        self.abort_mp = ctx.Event()
        self.barrier = ctx.Barrier(nranks)
        self.finish_barrier = ctx.Barrier(nranks)
        pair_pipes = {
            (i, j): ctx.Pipe(duplex=True)
            for i in range(nranks)
            for j in range(i + 1, nranks)
        }
        task_pipes = [ctx.Pipe(duplex=False) for _ in range(nranks)]
        result_pipes = [ctx.Pipe(duplex=False) for _ in range(nranks)]
        all_data_conns = [c for pair in pair_pipes.values() for c in pair]
        self.procs: list = []
        try:
            for rank in range(nranks):
                conns = _rank_conns(pair_pipes, rank)
                mine = set(map(id, conns.values()))
                mine.add(id(task_pipes[rank][0]))
                mine.add(id(result_pipes[rank][1]))
                # Everything a child does not own gets closed post-fork:
                # other pairs' data conns, every task write-end and result
                # read-end (parent's side), and the task/result ends that
                # belong to other ranks.
                extra = [c for c in all_data_conns if id(c) not in mine]
                for r, (read_end, write_end) in enumerate(task_pipes):
                    extra.append(write_end)
                    if r != rank:
                        extra.append(read_end)
                for r, (read_end, write_end) in enumerate(result_pipes):
                    extra.append(read_end)
                    if r != rank:
                        extra.append(write_end)
                self.procs.append(
                    _spawn_rank(
                        ctx,
                        _pool_main,
                        (
                            rank,
                            nranks,
                            conns,
                            extra,
                            self.barrier,
                            self.finish_barrier,
                            self.abort_mp,
                            task_pipes[rank][0],
                            result_pipes[rank][1],
                            f"{self.shm_prefix}.r{rank}",
                        ),
                        rank,
                    )
                )
        except BaseException:
            self._abort_all()
            self._kill()
            raise
        for conn in all_data_conns:
            conn.close()
        for read_end, _ in task_pipes:
            read_end.close()
        for _, write_end in result_pipes:
            write_end.close()
        self.task_conns = [w for _, w in task_pipes]
        self.result_conns = [r for r, _ in result_pipes]
        _pool_count("forks", nranks)

    def _abort_all(self) -> None:
        self.abort_mp.set()
        for b in (self.barrier, self.finish_barrier):
            try:
                b.abort()
            except Exception:
                pass

    def run(self, task_wire: bytes, timeout: float) -> list[Any]:
        """Lease the workers for one pickled task; results in rank order."""
        if not self.alive:
            raise RuntimeError("pool has been invalidated or shut down")
        self.runs += 1
        sent = 0
        try:
            for conn in self.task_conns:
                transport.send_message(conn, task_wire)
                sent += 1
        except Exception as exc:
            # Ranks [0, sent) already started the task; the mesh state is
            # unknowable — tear the pool down rather than reuse it.
            self.invalidate()
            raise ParallelError(
                sent, RankDiedError(f"rank {sent} pool worker unreachable: {exc}")
            ) from exc
        pending = {conn: rank for rank, conn in enumerate(self.result_conns)}
        results, errors = _await_results(
            self.procs, pending, self._abort_all, timeout
        )
        if errors or self.abort_mp.is_set():
            self.invalidate()
        if errors:
            _raise_first(errors)
        return results

    def invalidate(self) -> None:
        """Crash-triggered teardown: kill workers, sweep their segments."""
        if not self.alive:
            return
        self.alive = False
        self._abort_all()
        self._kill()
        _pool_count("invalidations")

    def shutdown(self) -> None:
        """Graceful release: workers unlink their own segments and exit."""
        if not self.alive:
            return
        self.alive = False
        stop = pickle.dumps(("stop",), protocol=5)
        for conn in self.task_conns:
            try:
                transport.send_message(conn, stop)
            except Exception:
                pass
        for proc in self.procs:
            proc.join(timeout=5.0)
        self._kill()

    def _kill(self) -> None:
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        for conn in getattr(self, "task_conns", []) + getattr(
            self, "result_conns", []
        ):
            try:
                conn.close()
            except OSError:
                pass
        # Reclaim segments of workers that never ran their own shutdown
        # (terminated, or hard-killed by fault injection).
        transport.unlink_segments(self.shm_prefix)


_pools: dict[int, RankPool] = {}
_pools_lock = threading.Lock()
_atexit_armed = False


def pool_enabled() -> bool:
    """Whether run_parallel leases pooled workers (REPRO_POOL, default on)."""
    return os.environ.get("REPRO_POOL", "1").strip().lower() not in (
        "0", "false", "off",
    )


def _get_pool(nranks: int) -> RankPool:
    global _atexit_armed
    with _pools_lock:
        pool = _pools.get(nranks)
        if pool is None or not pool.alive:
            pool = RankPool(nranks)
            _pools[nranks] = pool
            if not _atexit_armed:
                atexit.register(shutdown_pool)
                _atexit_armed = True
        return pool


def shutdown_pool() -> None:
    """Shut down every persistent rank pool (graceful, idempotent).

    Registered ``atexit`` when the first pool is created, so interpreter
    exit never strands pool workers; call it explicitly to release the
    worker processes and their shared memory earlier (e.g. at the end of a
    CLI run).
    """
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown()


def run_parallel_processes(
    nranks: int,
    func: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    recv_timeout: float | None = None,
    use_pool: bool | None = None,
) -> list[Any]:
    """Run ``func(comm, ...)`` on ``nranks`` forked processes (rank order).

    See :func:`repro.diy.comm.run_parallel`; this is its ``"process"``
    backend.  Requires POSIX ``fork``.

    By default (``use_pool=None``) the task is pickled and leased to the
    persistent :class:`RankPool` for this rank count (honoring
    ``REPRO_POOL``); tasks that don't pickle — closures over live objects —
    transparently fall back to a fresh fork per region, where the worker
    function and arguments are inherited rather than serialized.  Results
    must pickle on every path.
    """
    if not hasattr(os, "fork"):
        raise RuntimeError(
            "backend='process' requires POSIX fork; use backend='thread'"
        )
    timeout = _DEFAULT_TIMEOUT if recv_timeout is None else float(recv_timeout)

    if use_pool is None:
        use_pool = pool_enabled()
    if use_pool:
        injector = faults.active()
        spec = injector.spec if injector is not None else None
        try:
            task_wire = pickle.dumps(
                ("run", func, args, kwargs, spec, timeout), protocol=5
            )
        except Exception:
            task_wire = None
            _pool_count("fallback_runs")
        if task_wire is not None:
            pool = _get_pool(nranks)
            _pool_count("runs_leased")
            if pool.runs:
                _pool_count("runs_reused")
            return pool.run(task_wire, timeout)

    ctx = get_context("fork")
    region_prefix = f"repro-{os.getpid()}-f{next(_region_seq)}"
    pair_pipes = {
        (i, j): ctx.Pipe(duplex=True)
        for i in range(nranks)
        for j in range(i + 1, nranks)
    }
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(nranks)]
    abort_mp = ctx.Event()
    barrier = ctx.Barrier(nranks)
    finish_barrier = ctx.Barrier(nranks)

    def abort_all() -> None:
        abort_mp.set()
        for b in (barrier, finish_barrier):
            try:
                b.abort()
            except Exception:
                pass

    all_data_conns = [c for pair in pair_pipes.values() for c in pair]
    procs: list = []
    try:
        for rank in range(nranks):
            conns = _rank_conns(pair_pipes, rank)
            mine = set(map(id, conns.values())) | {id(result_pipes[rank][1])}
            extra = [c for c in all_data_conns if id(c) not in mine]
            extra += [w for r, (_, w) in enumerate(result_pipes) if r != rank]
            extra += [r_conn for r_conn, _ in result_pipes]
            procs.append(
                _spawn_rank(
                    ctx,
                    _child_main,
                    (
                        rank,
                        nranks,
                        func,
                        args,
                        kwargs,
                        conns,
                        extra,
                        barrier,
                        finish_barrier,
                        abort_mp,
                        timeout,
                        result_pipes[rank][1],
                        f"{region_prefix}.r{rank}",
                    ),
                    rank,
                )
            )
    except BaseException:
        # A failed spawn must not strand the ranks already started: abort
        # them, join-or-terminate every child, and reclaim their segments.
        abort_all()
        for proc in procs:
            proc.join(timeout=2.0)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in all_data_conns:
            try:
                conn.close()
            except OSError:
                pass
        for read_end, write_end in result_pipes:
            for conn in (read_end, write_end):
                try:
                    conn.close()
                except OSError:
                    pass
        transport.unlink_segments(region_prefix)
        raise

    # The parent needs only the result read-ends.
    for conn in all_data_conns:
        conn.close()
    for _, write_end in result_pipes:
        write_end.close()

    pending = {result_pipes[rank][0]: rank for rank in range(nranks)}
    results, errors = _await_results(procs, pending, abort_all, timeout)

    for proc in procs:
        proc.join(timeout=10.0)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    for read_end, _ in result_pipes:
        try:
            read_end.close()
        except OSError:
            pass

    if errors:
        # Ranks that died hard (os._exit, SIGTERM) never unlinked their
        # pooled segments — sweep them so repeated fault-injection runs
        # don't exhaust /dev/shm.
        transport.unlink_segments(region_prefix)
        _raise_first(errors)
    return results
