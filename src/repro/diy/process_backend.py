"""Process SPMD backend: one OS process per rank, pipes + shared memory.

This is the second execution backend of :func:`repro.diy.comm.run_parallel`
(``backend="process"``).  Each rank is a forked OS process, so rank code
runs with true hardware parallelism — the GIL bounds only a single rank,
not the region.  The :class:`~repro.diy.comm.Communicator` contract (and
therefore every tree collective, the neighbor exchange, the parallel
writer, and CommStats) is carried unchanged on top of a different
transport:

* every rank pair shares a duplex pipe; a per-rank receiver thread drains
  all pipes into the same :class:`~repro.diy.comm._Mailbox` matching
  structures the thread backend uses;
* payloads are serialized with pickle protocol 5 — NumPy buffers move
  out-of-band, and large ones ride pooled ``multiprocessing.shared_memory``
  segments so ghost exchange and I/O gathers never serialize element-wise
  (see :mod:`repro.diy.transport`);
* segment names released by receivers piggyback on subsequent messages
  back to the owning rank, whose pool recycles them;
* workers are **forked**, so the worker function, its closures, and every
  argument are inherited by reference — only *results* (and exceptions)
  cross back to the parent, over per-rank result pipes.

Failure semantics mirror the thread backend: the first raising rank aborts
the region (a shared event plus a broken barrier wake the peers) and the
parent re-raises a :class:`~repro.diy.comm.ParallelError` naming that rank.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
from collections import defaultdict
from multiprocessing import connection, get_context
from typing import Any, Callable

from ..observe import trace as _otrace
from . import transport
from .comm import (
    _DEFAULT_TIMEOUT,
    _AbortedError,
    _Mailbox,
    Communicator,
    ParallelError,
)

__all__ = ["run_parallel_processes", "RankDiedError"]

_POLL_S = 0.05  # receiver-thread poll interval (also the abort latency)
_DETECT_POLL_S = 0.2  # parent's dead-child detection poll interval


class RankDiedError(RuntimeError):
    """A rank process exited (crash, kill, os._exit) without delivering a
    result.  Raised to the caller wrapped in a
    :class:`~repro.diy.comm.ParallelError` naming the rank, within
    ~``_DETECT_POLL_S`` of the death rather than after the recv timeout."""


class _ProcessWorld:
    """Child-side world: the Communicator transport for one rank process."""

    def __init__(
        self,
        rank: int,
        size: int,
        conns: dict[int, connection.Connection],
        barrier,
        abort_mp,
        timeout: float,
    ) -> None:
        self.rank = rank
        self.size = size
        self.timeout = timeout
        self.abort = threading.Event()  # local mirror of the shared flag
        self._abort_mp = abort_mp
        self._barrier_mp = barrier
        self._conns = conns
        self._send_locks = {peer: threading.Lock() for peer in conns}
        self._user_mb = _Mailbox()
        self._coll_mb = _Mailbox()
        self.pool = transport.ShmPool()
        self._attached: dict[str, Any] = {}  # peer segment name -> mapping
        self._leases: list[tuple[int, transport.SegmentLease]] = []
        self._pending_release: dict[int, list[str]] = defaultdict(list)
        self._release_lock = threading.Lock()
        self._stop = threading.Event()
        self._recv_thread = threading.Thread(
            target=self._recv_loop, name=f"rank-{rank}-recv", daemon=True
        )

    def start(self) -> None:
        self._recv_thread.start()

    # -- Communicator transport interface ------------------------------
    def deliver(
        self, dest: int, source: int, tag: int, payload: Any, coll: bool = False
    ) -> int:
        """Ship ``payload`` to ``dest``; returns bytes moved via shm."""
        if dest == self.rank:
            self.inbox(dest, coll).put(source, tag, payload)
            return 0
        t0 = time.perf_counter() if _otrace._enabled else 0.0
        meta, descriptors, shm_bytes = transport.encode_payload(payload, self.pool)
        if _otrace._enabled and shm_bytes:
            _otrace.record(
                "shm-send",
                self.rank,
                t0,
                time.perf_counter(),
                cat="shm",
                attrs={"dest": dest, "bytes": shm_bytes},
            )
        with self._release_lock:
            releases = self._pending_release.pop(dest, [])
        wire = pickle.dumps(
            (releases, source, tag, coll, meta, descriptors), protocol=5
        )
        try:
            with self._send_locks[dest]:
                self._conns[dest].send_bytes(wire)
        except (BrokenPipeError, OSError):
            # A broken data pipe means the peer process is gone — this rank
            # is a secondary casualty either way.  The authoritative
            # diagnosis (which rank died, and why) comes from the parent's
            # exit-code poll, so never surface the raw pipe error as if it
            # were this rank's own failure.
            raise _AbortedError(
                "parallel region aborted while sending (peer pipe closed)"
            ) from None
        return shm_bytes

    def inbox(self, rank: int, coll: bool) -> _Mailbox:
        assert rank == self.rank, "a rank process only reads its own mailbox"
        return self._coll_mb if coll else self._user_mb

    def barrier_wait(self) -> None:
        if self.abort.is_set() or self._abort_mp.is_set():
            raise _AbortedError("parallel region aborted at barrier")
        try:
            self._barrier_mp.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            raise _AbortedError("barrier broken (a peer rank failed)") from None

    # -- receiver machinery --------------------------------------------
    def _attach(self, name: str):
        shm = self._attached.get(name)
        if shm is None:
            shm = transport.attach_segment(name)
            self._attached[name] = shm
        return shm

    def _recv_loop(self) -> None:
        by_conn = {conn: peer for peer, conn in self._conns.items()}
        while not self._stop.is_set():
            if self._abort_mp.is_set() and not self.abort.is_set():
                self._local_abort()
            try:
                ready = connection.wait(list(by_conn), timeout=_POLL_S)
            except OSError:
                break
            for conn in ready:
                try:
                    wire = conn.recv_bytes()
                except (EOFError, OSError):
                    del by_conn[conn]
                    continue
                releases, source, tag, coll, meta, descriptors = pickle.loads(wire)
                for name in releases:
                    self.pool.recycle(name)
                payload, lease = transport.decode_payload(
                    meta, descriptors, self._attach
                )
                if lease is not None:
                    self._leases.append((source, lease))
                self.inbox(self.rank, coll).put(source, tag, payload)
            self._reap_leases()

    def _reap_leases(self) -> None:
        """Queue idle segments for release back to their owning ranks."""
        if not self._leases:
            return
        still: list[tuple[int, transport.SegmentLease]] = []
        freed: dict[int, list[str]] = defaultdict(list)
        for owner, lease in self._leases:
            if lease.idle():
                lease.release_views()
                freed[owner].extend(lease.names)
            else:
                still.append((owner, lease))
        self._leases = still
        if freed:
            with self._release_lock:
                for owner, names in freed.items():
                    self._pending_release[owner].extend(names)

    def _local_abort(self) -> None:
        self.abort.set()
        for mb in (self._user_mb, self._coll_mb):
            with mb.lock:
                mb.ready.notify_all()

    def shutdown(self) -> None:
        self._stop.set()
        self._recv_thread.join(timeout=5.0)
        for _, lease in self._leases:
            lease.release_views()
        self._leases = []
        for shm in self._attached.values():
            transport.close_segment_quietly(shm)
        self._attached = {}
        self.pool.shutdown()
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass


def _portable_exception(exc: BaseException) -> BaseException:
    """The exception itself if it pickles cleanly, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        detail = "".join(traceback.format_exception(exc)).strip()
        return RuntimeError(f"[{type(exc).__name__}] {exc}\n{detail}")


def _child_main(
    rank: int,
    size: int,
    func: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    conns: dict[int, connection.Connection],
    extra_conns: list[connection.Connection],
    barrier,
    finish_barrier,
    abort_mp,
    timeout: float,
    result_conn: connection.Connection,
) -> None:
    # Fork gave us every pipe end; keep only ours so peers see EOF promptly.
    for conn in extra_conns:
        try:
            conn.close()
        except OSError:
            pass
    world = _ProcessWorld(rank, size, conns, barrier, abort_mp, timeout)
    world.start()
    try:
        result = func(Communicator(rank, world), *args, **kwargs)
        status: tuple[str, Any] = ("ok", result)
    except BaseException as exc:  # noqa: BLE001 - must propagate everything
        abort_mp.set()
        for b in (barrier, finish_barrier):
            try:
                b.abort()  # wake peers blocked at a barrier
            except Exception:
                pass
        status = ("err", _portable_exception(exc))
    if status[0] == "ok":
        # Rendezvous before teardown: a peer may still be sending to this
        # rank (buffered sends never fail in the thread backend, so they
        # must not fail here either).  This is a *separate* barrier object
        # from the user-visible one — mixing the two would let a finished
        # rank's arrival complete a peer's in-progress user barrier cycle.
        # A broken barrier means some rank already failed — proceed; the
        # primary error wins at the parent.
        try:
            finish_barrier.wait(timeout=timeout)
        except threading.BrokenBarrierError:
            pass
    try:
        result_conn.send_bytes(pickle.dumps(status, protocol=5))
    except Exception as exc:  # result not picklable: report, don't hang
        fallback = ("err", _portable_exception(exc))
        try:
            result_conn.send_bytes(pickle.dumps(fallback, protocol=5))
        except Exception:
            pass
    # Drop the last local references to result payloads before teardown so
    # shm-backed arrays die and their mappings close cleanly.
    del status
    result = None  # noqa: F841 - release, the parent owns the pickled copy
    world.shutdown()
    try:
        result_conn.close()
    except OSError:
        pass


def run_parallel_processes(
    nranks: int,
    func: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    recv_timeout: float | None = None,
) -> list[Any]:
    """Run ``func(comm, ...)`` on ``nranks`` forked processes (rank order).

    See :func:`repro.diy.comm.run_parallel`; this is its ``"process"``
    backend.  Requires a POSIX ``fork`` (the worker function and arguments
    are inherited, not pickled; results must pickle).
    """
    if not hasattr(os, "fork"):
        raise RuntimeError(
            "backend='process' requires POSIX fork; use backend='thread'"
        )
    timeout = _DEFAULT_TIMEOUT if recv_timeout is None else float(recv_timeout)
    ctx = get_context("fork")

    pair_pipes = {
        (i, j): ctx.Pipe(duplex=True)
        for i in range(nranks)
        for j in range(i + 1, nranks)
    }
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(nranks)]
    abort_mp = ctx.Event()
    barrier = ctx.Barrier(nranks)
    finish_barrier = ctx.Barrier(nranks)

    all_data_conns = [c for pair in pair_pipes.values() for c in pair]
    procs = []
    for rank in range(nranks):
        conns: dict[int, connection.Connection] = {}
        for (i, j), (ci, cj) in pair_pipes.items():
            if i == rank:
                conns[j] = ci
            elif j == rank:
                conns[i] = cj
        mine = set(map(id, conns.values())) | {id(result_pipes[rank][1])}
        extra = [c for c in all_data_conns if id(c) not in mine]
        extra += [w for r, (_, w) in enumerate(result_pipes) if r != rank]
        extra += [r_conn for r_conn, _ in result_pipes]
        proc = ctx.Process(
            target=_child_main,
            args=(
                rank,
                nranks,
                func,
                args,
                kwargs,
                conns,
                extra,
                barrier,
                finish_barrier,
                abort_mp,
                timeout,
                result_pipes[rank][1],
            ),
            name=f"rank-{rank}",
            daemon=True,
        )
        proc.start()
        procs.append(proc)

    # The parent needs only the result read-ends.
    for conn in all_data_conns:
        conn.close()
    for _, write_end in result_pipes:
        write_end.close()

    results: list[Any] = [None] * nranks
    errors: list[ParallelError] = []
    pending = {result_pipes[rank][0]: rank for rank in range(nranks)}
    deadline = time.monotonic() + timeout + 30.0

    def declare_failed(rank: int, exc: BaseException) -> None:
        """Record a failure and wake every surviving rank promptly.

        Setting the abort flag wakes blocked receives (each rank's receiver
        thread polls it every ``_POLL_S``); aborting the barriers wakes
        ranks blocked in a collective barrier wait.  Without the barrier
        abort, peers of a dead rank would stall until the full recv
        timeout."""
        abort_mp.set()
        for b in (barrier, finish_barrier):
            try:
                b.abort()
            except Exception:
                pass
        errors.append(ParallelError(rank, exc))

    while pending:
        ready = connection.wait(list(pending), timeout=_DETECT_POLL_S)
        for conn in ready:
            rank = pending.pop(conn)
            try:
                kind, payload = pickle.loads(conn.recv_bytes())
            except (EOFError, OSError):
                procs[rank].join(timeout=1.0)  # reap so exitcode is readable
                declare_failed(
                    rank,
                    RankDiedError(
                        f"rank {rank} process died without a result "
                        f"(exit code {procs[rank].exitcode})"
                    ),
                )
                continue
            if kind == "ok":
                results[rank] = payload
            else:
                abort_mp.set()
                errors.append(ParallelError(rank, payload))
        # Heartbeat: a child that exited without delivering a result (e.g.
        # killed by the OS, or os._exit from fault injection) is detected
        # here within ~_DETECT_POLL_S, not after the full recv timeout.
        # exitcode set + nothing left in the result pipe == dead child (a
        # finished child's result bytes are already in the pipe buffer).
        for conn, rank in list(pending.items()):
            if procs[rank].exitcode is not None and not conn.poll():
                del pending[conn]
                declare_failed(
                    rank,
                    RankDiedError(
                        f"rank {rank} process died without a result "
                        f"(exit code {procs[rank].exitcode})"
                    ),
                )
        if not ready and pending and time.monotonic() > deadline:
            abort_mp.set()
            for conn, rank in pending.items():
                errors.append(
                    ParallelError(
                        rank,
                        TimeoutError(
                            f"rank {rank} produced no result within "
                            f"{timeout}s — likely deadlock"
                        ),
                    )
                )
            break

    for proc in procs:
        proc.join(timeout=10.0)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    for read_end, _ in result_pipes:
        try:
            read_end.close()
        except OSError:
            pass

    if errors:
        # Prefer the originating failure over secondary teardown errors.
        errors.sort(key=lambda e: (isinstance(e.original, _AbortedError), e.rank))
        raise errors[0]
    return results
