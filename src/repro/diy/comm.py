"""In-process SPMD runtime with an mpi4py-style communicator.

The paper's stack runs on MPI across Blue Gene/P nodes.  This module provides
the same programming model inside one Python process: :func:`run_parallel`
launches one thread per rank, each executing the same function with its own
:class:`Communicator`.  The API intentionally mirrors mpi4py's lowercase
(object, pickle-level) interface — ``send``/``recv``/``bcast``/``gather``/
``allreduce``/``alltoall``/``exscan``/``barrier`` — so that porting the
library onto real MPI is a mechanical substitution of the communicator
object.

Design notes
------------
* Message matching is by ``(source, tag)`` with per-rank mailboxes guarded by
  a condition variable; messages between a given (source, dest, tag) triple
  are delivered in send order (MPI's non-overtaking guarantee).
* Collectives are built from point-to-point operations plus a reusable
  barrier; they must be called by all ranks in the same order, exactly as in
  MPI.
* NumPy arrays are passed by reference, not serialized: ranks share an
  address space.  Senders must not mutate a buffer after sending it; all
  call sites in this package send freshly built arrays or copies.
* Exceptions raised in any rank cancel the whole parallel region and are
  re-raised in the caller, with the originating rank attached.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "Communicator",
    "ParallelError",
    "run_parallel",
    "ANY_SOURCE",
    "ANY_TAG",
]

ANY_SOURCE = -1
ANY_TAG = -1

_DEFAULT_TIMEOUT = 300.0  # seconds; a deadlocked test should fail, not hang


class ParallelError(RuntimeError):
    """An exception raised inside a parallel region, tagged with its rank."""

    def __init__(self, rank: int, original: BaseException):
        super().__init__(f"rank {rank} raised {type(original).__name__}: {original}")
        self.rank = rank
        self.original = original


class _AbortedError(RuntimeError):
    """Secondary failure: a rank was torn down because a peer rank failed.

    Never surfaced to callers when the primary failure is available.
    """


@dataclass
class _Mailbox:
    """Per-rank incoming message store with (source, tag) matching."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    ready: threading.Condition = field(default=None)  # type: ignore[assignment]
    # queues[(source, tag)] -> deque of payloads, preserving send order
    queues: dict[tuple[int, int], deque] = field(default_factory=dict)
    arrivals: deque = field(default_factory=deque)  # (source, tag) arrival order

    def __post_init__(self) -> None:
        self.ready = threading.Condition(self.lock)

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self.lock:
            self.queues.setdefault((source, tag), deque()).append(payload)
            self.arrivals.append((source, tag))
            self.ready.notify_all()

    def get(self, source: int, tag: int, abort: threading.Event) -> tuple[Any, int, int]:
        """Blocking matched receive; returns (payload, source, tag)."""
        with self.lock:
            while True:
                key = self._match(source, tag)
                if key is not None:
                    payload = self.queues[key].popleft()
                    if not self.queues[key]:
                        del self.queues[key]
                    try:
                        self.arrivals.remove(key)
                    except ValueError:
                        pass
                    return payload, key[0], key[1]
                if abort.is_set():
                    raise _AbortedError(
                        "parallel region aborted while waiting for message"
                    )
                if not self.ready.wait(timeout=_DEFAULT_TIMEOUT):
                    raise TimeoutError(
                        f"recv(source={source}, tag={tag}) timed out after "
                        f"{_DEFAULT_TIMEOUT}s — likely deadlock"
                    )

    def _match(self, source: int, tag: int) -> tuple[int, int] | None:
        if source != ANY_SOURCE and tag != ANY_TAG:
            key = (source, tag)
            return key if self.queues.get(key) else None
        # Wildcard: first arrival that matches.
        for key in self.arrivals:
            s, t = key
            if (source in (ANY_SOURCE, s)) and (tag in (ANY_TAG, t)):
                if self.queues.get(key):
                    return key
        return None


class _Barrier:
    """A reusable barrier that honors the abort flag."""

    def __init__(self, n: int, abort: threading.Event):
        self._barrier = threading.Barrier(n)
        self._abort = abort

    def wait(self) -> None:
        if self._abort.is_set():
            self._barrier.abort()
            raise _AbortedError("parallel region aborted at barrier")
        try:
            self._barrier.wait(timeout=_DEFAULT_TIMEOUT)
        except threading.BrokenBarrierError:
            raise _AbortedError("barrier broken (a peer rank failed)") from None


class _World:
    """Shared state for one parallel region."""

    def __init__(self, size: int):
        self.size = size
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.abort = threading.Event()
        self.barrier = _Barrier(size, self.abort)
        # Scratch slots for collectives rooted at a rank.
        self.bcast_slot: list[Any] = [None]


class Communicator:
    """mpi4py-flavored communicator for one rank of a parallel region.

    All collective operations must be invoked by every rank of the region in
    the same order.  Tags below 2**20 are reserved for user point-to-point
    traffic; collectives use a disjoint internal tag space.
    """

    _COLL_TAG = 1 << 20  # base tag for internal collective traffic

    def __init__(self, rank: int, world: _World):
        self._rank = rank
        self._world = world
        self._coll_seq = 0  # per-rank collective sequence number

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This rank's index in ``[0, size)``."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the region."""
        return self._world.size

    # mpi4py spellings
    def Get_rank(self) -> int:  # noqa: N802 - mpi4py compatibility
        return self._rank

    def Get_size(self) -> int:  # noqa: N802 - mpi4py compatibility
        return self._world.size

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to rank ``dest``.  Buffered; never blocks."""
        self._check_rank(dest)
        self._world.mailboxes[dest].put(self._rank, tag, obj)

    # In this runtime sends are always buffered, so isend == send.
    isend = send

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload object."""
        payload, _, _ = self._world.mailboxes[self._rank].get(
            source, tag, self._world.abort
        )
        return payload

    def recv_with_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, int, int]:
        """Blocking receive returning ``(payload, source, tag)``."""
        return self._world.mailboxes[self._rank].get(source, tag, self._world.abort)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all ranks."""
        self._world.barrier.wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; all ranks return it."""
        tag = self._next_coll_tag()
        if self._rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.send(obj, dst, tag)
            return obj
        return self.recv(root, tag)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank at ``root`` (rank order); None elsewhere."""
        tag = self._next_coll_tag()
        if self._rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src, tag)
            return out
        self.send(obj, root, tag)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one object per rank at every rank."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter ``size`` objects from ``root``; each rank returns its item."""
        tag = self._next_coll_tag()
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(
                    f"scatter at root needs exactly {self.size} items, got "
                    f"{None if objs is None else len(objs)}"
                )
            for dst in range(self.size):
                if dst != root:
                    self.send(objs[dst], dst, tag)
            return objs[root]
        return self.recv(root, tag)

    def reduce(
        self, obj: Any, op: Callable[[Any, Any], Any] = None, root: int = 0
    ) -> Any | None:
        """Reduce one contribution per rank to ``root`` with ``op`` (default +)."""
        import operator

        op = op or operator.add
        vals = self.gather(obj, root=root)
        if self._rank != root:
            return None
        acc = vals[0]
        for v in vals[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Reduce with ``op`` (default +) and broadcast the result."""
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)

    def exscan(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``.

        Used by the parallel writer to turn per-rank byte counts into file
        offsets, exactly as DIY does with ``MPI_Exscan``.
        """
        import operator

        op = op or operator.add
        vals = self.allgather(value)
        if self._rank == 0:
            return None
        acc = vals[0]
        for v in vals[1 : self._rank]:
            acc = op(acc, v)
        return acc

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Exchange ``objs[d]`` to each rank ``d``; returns items received
        from every rank, in rank order."""
        if len(objs) != self.size:
            raise ValueError(f"alltoall needs {self.size} items, got {len(objs)}")
        tag = self._next_coll_tag()
        for dst in range(self.size):
            if dst != self._rank:
                self.send(objs[dst], dst, tag)
        out: list[Any] = [None] * self.size
        out[self._rank] = objs[self._rank]
        for src in range(self.size):
            if src != self._rank:
                out[src] = self.recv(src, tag)
        return out

    # ------------------------------------------------------------------
    def _next_coll_tag(self) -> int:
        # Collectives execute in the same order on all ranks, so a per-rank
        # sequence number yields matching tags without coordination.
        self._coll_seq += 1
        return self._COLL_TAG + self._coll_seq

    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.size:
            raise ValueError(f"rank {r} out of range [0, {self.size})")


def run_parallel(
    nranks: int,
    func: Callable[..., Any],
    *args: Any,
    **kwargs: Any,
) -> list[Any]:
    """Run ``func(comm, *args, **kwargs)`` on ``nranks`` ranks; return results.

    ``func`` receives a :class:`Communicator` as its first argument.  Returns
    the per-rank return values in rank order.  If any rank raises, the region
    is aborted and a :class:`ParallelError` wrapping the first failure is
    raised.

    ``nranks == 1`` runs inline on the calling thread (serial mode — the
    paper's standalone/serial configuration) which keeps single-rank paths
    easy to debug and profile.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")

    world = _World(nranks)

    if nranks == 1:
        return [func(Communicator(0, world), *args, **kwargs)]

    results: list[Any] = [None] * nranks
    errors: list[ParallelError] = []
    errors_lock = threading.Lock()

    def runner(rank: int) -> None:
        try:
            results[rank] = func(Communicator(rank, world), *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must propagate everything
            with errors_lock:
                errors.append(ParallelError(rank, exc))
            world.abort.set()
            world.barrier._barrier.abort()  # wake ranks blocked at a barrier
            # Wake any rank blocked in a matched receive.
            for mb in world.mailboxes:
                with mb.lock:
                    mb.ready.notify_all()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        # Prefer the originating failure over secondary teardown errors.
        errors.sort(key=lambda e: (isinstance(e.original, _AbortedError), e.rank))
        raise errors[0]
    return results
