"""SPMD runtime with an mpi4py-style communicator (thread + process backends).

The paper's stack runs on MPI across Blue Gene/P nodes.  This module provides
the same programming model with two interchangeable execution backends:
:func:`run_parallel` launches one **thread** per rank by default
(deterministic, cheap, shared address space — the right tool for tests and
small runs), or one **OS process** per rank with ``backend="process"``
(true hardware parallelism; arrays travel over pipes/shared memory with
pickle protocol-5 zero-copy transport — see
:mod:`repro.diy.process_backend`).  Each rank executes the same function
with its own :class:`Communicator`.  The API intentionally mirrors mpi4py's
lowercase (object, pickle-level) interface — ``send``/``recv``/``bcast``/
``gather``/``allreduce``/``alltoall``/``exscan``/``barrier`` — so that
porting the library onto real MPI is a mechanical substitution of the
communicator object.

The :class:`Communicator` itself is transport-agnostic: collectives,
matching, tags, and stats are written once against a small world interface
(``deliver``/``inbox``/``barrier_wait``), which is exactly what lets the
process backend reuse every tree algorithm verbatim.

Design notes
------------
* Message matching is by ``(source, tag)`` with per-rank mailboxes guarded by
  a condition variable; messages between a given (source, dest, tag) triple
  are delivered in send order (MPI's non-overtaking guarantee).
* **Tag-space isolation**: internal collective traffic travels on a separate
  mailbox channel, so a user ``recv(ANY_SOURCE, ANY_TAG)`` can *never* match
  a message belonging to a concurrent ``bcast``/``gather``/``allreduce``.
  (Tags >= ``Communicator._COLL_TAG`` label internal messages for debugging,
  but isolation is structural, not tag-value based.)
* Collectives are tree-based — binomial trees for rooted operations
  (``bcast``/``gather``/``scatter``/``reduce``), recursive doubling for
  ``allreduce``/``exscan``, dissemination for ``allgather`` — so every rank
  sends/receives O(log P) messages instead of the O(P) a root-funneled
  implementation costs.  The previous linear algorithms are kept as
  ``linear_*`` reference oracles for tests and benchmarks.  Reduction ops
  must be associative; commutativity is *not* required (operands always
  combine in rank order, as MPI specifies).
* Collectives must be called by all ranks in the same order, exactly as in
  MPI.
* Every communicator carries a :class:`CommStats` — per-rank counters for
  messages/bytes sent and received, per-collective call counts, and time
  blocked in ``recv``/``barrier`` — for communication observability.
* In the thread backend NumPy arrays are passed by reference, not
  serialized: ranks share an address space.  In the process backend they
  are pickled with protocol 5 (buffers out-of-band) and large buffers move
  through pooled shared-memory segments.  Either way, senders must not
  mutate a buffer after sending it; all call sites in this package send
  freshly built arrays or copies.
* Exceptions raised in any rank cancel the whole parallel region and are
  re-raised in the caller, with the originating rank attached.
"""

from __future__ import annotations

import operator
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from .. import faults, observe
from ..observe import trace as _otrace

__all__ = [
    "Communicator",
    "CommStats",
    "ParallelError",
    "Request",
    "run_parallel",
    "ANY_SOURCE",
    "ANY_TAG",
]

ANY_SOURCE = -1
ANY_TAG = -1

_DEFAULT_TIMEOUT = 300.0  # seconds; a deadlocked test should fail, not hang


def _coll_group_size(size: int) -> int:
    """Group width for the two-level (topology-aware) collectives.

    Ranks are partitioned into contiguous groups of this many; each group's
    lowest rank is its *leader*.  Rooted collectives then run in two phases
    — intra-group to the leader, inter-leader to the root — the way
    chainermn's node-aware communicators split intra-/inter-node traffic.
    The result is the same O(log P) total depth with a bounded fan-in at
    every rank and far fewer messages crossing the leader (inter-"node")
    level, which is what matters once leaders ride a slower transport.

    ``REPRO_COLL_GROUP`` overrides (clamped to ``[1, size]``; 1 disables
    grouping).  The default picks the largest power of two <= sqrt(size) so
    intra and inter trees stay balanced, and disables grouping below four
    ranks where there is nothing to amortize.  Depends only on ``size`` —
    never on the backend — so thread and process runs stay message-count
    identical (the parity suites assert this).
    """
    env = os.environ.get("REPRO_COLL_GROUP", "").strip()
    if env:
        try:
            g = int(env)
        except ValueError:
            g = 0
        if g >= 1:
            return min(g, size)
    if size < 4:
        return 1
    g = 1
    while g * g <= size:
        g <<= 1
    return g >> 1


def _payload_nbytes(obj: Any, _depth: int = 0) -> int:
    """Best-effort payload size estimate for the byte counters.

    Arrays report their buffer size; containers recurse a few levels; objects
    with a ``__dict__`` (e.g. ParticleSet, VoronoiBlock) are costed by their
    attributes.  This is an accounting estimate, not a serialization."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj)
    if obj is None or isinstance(obj, (bool, int, float, complex, np.generic)):
        return 8
    if _depth >= 4:
        return 0
    if isinstance(obj, (list, tuple, set, frozenset, deque)):
        return sum(_payload_nbytes(v, _depth + 1) for v in obj)
    if isinstance(obj, dict):
        return sum(
            _payload_nbytes(k, _depth + 1) + _payload_nbytes(v, _depth + 1)
            for k, v in obj.items()
        )
    attrs = getattr(obj, "__dict__", None)
    if attrs:
        return sum(_payload_nbytes(v, _depth + 1) for v in attrs.values())
    return 0


@dataclass
class CommStats:
    """Per-rank communication counters (the observability layer).

    Counters accumulate over the communicator's lifetime; use
    :meth:`snapshot` + :meth:`since` to meter a region::

        before = comm.stats.snapshot()
        ...  # communicate
        delta = comm.stats.since(before)

    ``recv_wait_s``/``barrier_wait_s`` measure wall-clock time blocked inside
    matched receives (user and internal collective traffic alike) and
    barriers — the per-rank communication critical path.
    """

    msgs_sent: int = 0
    msgs_recv: int = 0
    bytes_sent: int = 0
    bytes_recv: int = 0
    recv_wait_s: float = 0.0
    barrier_wait_s: float = 0.0
    #: messages whose payload (partly) traveled via shared memory
    #: (process backend only; always 0 on the thread backend)
    shm_msgs_sent: int = 0
    #: payload bytes moved through shared-memory segments
    shm_bytes_sent: int = 0
    #: extra pipe frames used by chunked large-message framing (process
    #: backend only; a send above the chunk limit counts its chunk frames)
    chunk_frames_sent: int = 0
    #: user p2p messages dropped / delayed by fault injection (repro.faults)
    msgs_dropped: int = 0
    msgs_delayed: int = 0
    #: collective name -> number of invocations (e.g. {"bcast": 3})
    collective_calls: dict[str, int] = field(default_factory=dict)

    @property
    def blocked_s(self) -> float:
        """Total wall-clock time blocked in receives and barriers."""
        return self.recv_wait_s + self.barrier_wait_s

    def snapshot(self) -> "CommStats":
        """An independent copy of the current counters."""
        return CommStats(
            msgs_sent=self.msgs_sent,
            msgs_recv=self.msgs_recv,
            bytes_sent=self.bytes_sent,
            bytes_recv=self.bytes_recv,
            recv_wait_s=self.recv_wait_s,
            barrier_wait_s=self.barrier_wait_s,
            shm_msgs_sent=self.shm_msgs_sent,
            shm_bytes_sent=self.shm_bytes_sent,
            chunk_frames_sent=self.chunk_frames_sent,
            msgs_dropped=self.msgs_dropped,
            msgs_delayed=self.msgs_delayed,
            collective_calls=dict(self.collective_calls),
        )

    def since(self, baseline: "CommStats") -> "CommStats":
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        calls = {
            name: count - baseline.collective_calls.get(name, 0)
            for name, count in self.collective_calls.items()
            if count != baseline.collective_calls.get(name, 0)
        }
        return CommStats(
            msgs_sent=self.msgs_sent - baseline.msgs_sent,
            msgs_recv=self.msgs_recv - baseline.msgs_recv,
            bytes_sent=self.bytes_sent - baseline.bytes_sent,
            bytes_recv=self.bytes_recv - baseline.bytes_recv,
            recv_wait_s=self.recv_wait_s - baseline.recv_wait_s,
            barrier_wait_s=self.barrier_wait_s - baseline.barrier_wait_s,
            shm_msgs_sent=self.shm_msgs_sent - baseline.shm_msgs_sent,
            shm_bytes_sent=self.shm_bytes_sent - baseline.shm_bytes_sent,
            chunk_frames_sent=self.chunk_frames_sent - baseline.chunk_frames_sent,
            msgs_dropped=self.msgs_dropped - baseline.msgs_dropped,
            msgs_delayed=self.msgs_delayed - baseline.msgs_delayed,
            collective_calls=calls,
        )

    def as_dict(self) -> dict[str, Any]:
        """Flat dict form for reports and benchmark tables."""
        return {
            "msgs_sent": self.msgs_sent,
            "msgs_recv": self.msgs_recv,
            "bytes_sent": self.bytes_sent,
            "bytes_recv": self.bytes_recv,
            "recv_wait_s": self.recv_wait_s,
            "barrier_wait_s": self.barrier_wait_s,
            "shm_msgs_sent": self.shm_msgs_sent,
            "shm_bytes_sent": self.shm_bytes_sent,
            "chunk_frames_sent": self.chunk_frames_sent,
            "msgs_dropped": self.msgs_dropped,
            "msgs_delayed": self.msgs_delayed,
            "collective_calls": dict(self.collective_calls),
        }


class Request:
    """Handle returned by :meth:`Communicator.isend`.

    Sends in this runtime are buffered and complete immediately, so the
    request is born finished; ``wait``/``test`` exist so mpi4py-ported code
    calling ``req.wait()`` works unchanged."""

    __slots__ = ("_result",)

    def __init__(self, result: Any = None):
        self._result = result

    def wait(self) -> Any:
        """Block until complete (immediate here); returns the result."""
        return self._result

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: ``(True, result)``."""
        return True, self._result

    # mpi4py spellings
    Wait = wait  # noqa: N815 - mpi4py compatibility
    Test = test  # noqa: N815 - mpi4py compatibility


class ParallelError(RuntimeError):
    """An exception raised inside a parallel region, tagged with its rank."""

    def __init__(self, rank: int, original: BaseException):
        super().__init__(f"rank {rank} raised {type(original).__name__}: {original}")
        self.rank = rank
        self.original = original


class _AbortedError(RuntimeError):
    """Secondary failure: a rank was torn down because a peer rank failed.

    Never surfaced to callers when the primary failure is available.
    """


@dataclass
class _Mailbox:
    """Per-rank incoming message store with (source, tag) matching."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    ready: threading.Condition = field(default=None)  # type: ignore[assignment]
    # queues[(source, tag)] -> deque of payloads, preserving send order
    queues: dict[tuple[int, int], deque] = field(default_factory=dict)
    arrivals: deque = field(default_factory=deque)  # (source, tag) arrival order

    def __post_init__(self) -> None:
        self.ready = threading.Condition(self.lock)

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self.lock:
            self.queues.setdefault((source, tag), deque()).append(payload)
            self.arrivals.append((source, tag))
            self.ready.notify_all()

    def get(
        self, source: int, tag: int, abort: threading.Event, timeout: float
    ) -> tuple[Any, int, int]:
        """Blocking matched receive; returns (payload, source, tag)."""
        with self.lock:
            while True:
                key = self._match(source, tag)
                if key is not None:
                    payload = self.queues[key].popleft()
                    if not self.queues[key]:
                        del self.queues[key]
                    try:
                        self.arrivals.remove(key)
                    except ValueError:
                        pass
                    return payload, key[0], key[1]
                if abort.is_set():
                    raise _AbortedError(
                        "parallel region aborted while waiting for message"
                    )
                if not self.ready.wait(timeout=timeout):
                    raise TimeoutError(
                        f"recv(source={source}, tag={tag}) timed out after "
                        f"{timeout}s — likely deadlock"
                    )

    def clear(self) -> None:
        """Drop every queued message (between pooled tasks: a finished
        region's unconsumed payloads must not leak into the next one)."""
        with self.lock:
            self.queues.clear()
            self.arrivals.clear()

    def _match(self, source: int, tag: int) -> tuple[int, int] | None:
        if source != ANY_SOURCE and tag != ANY_TAG:
            key = (source, tag)
            return key if self.queues.get(key) else None
        # Wildcard: first arrival that matches.
        for key in self.arrivals:
            s, t = key
            if (source in (ANY_SOURCE, s)) and (tag in (ANY_TAG, t)):
                if self.queues.get(key):
                    return key
        return None


class _Barrier:
    """A reusable barrier that honors the abort flag."""

    def __init__(self, n: int, abort: threading.Event, timeout: float):
        self._barrier = threading.Barrier(n)
        self._abort = abort
        self._timeout = timeout

    def wait(self) -> None:
        if self._abort.is_set():
            self._barrier.abort()
            raise _AbortedError("parallel region aborted at barrier")
        try:
            self._barrier.wait(timeout=self._timeout)
        except threading.BrokenBarrierError:
            raise _AbortedError("barrier broken (a peer rank failed)") from None


class _World:
    """Shared state for one thread-backend parallel region.

    Any "world" a :class:`Communicator` runs on provides this transport
    interface: ``size``/``timeout``/``abort`` attributes plus
    ``deliver(dest, source, tag, payload, coll)`` (returns bytes moved via
    shared memory, 0 here), ``inbox(rank, coll)`` (the local
    :class:`_Mailbox`), and ``barrier_wait()``.  The process backend
    (:mod:`repro.diy.process_backend`) implements the same interface over
    pipes and shared memory, reusing every collective verbatim.
    """

    def __init__(self, size: int, timeout: float | None = None):
        self.size = size
        self.timeout = _DEFAULT_TIMEOUT if timeout is None else float(timeout)
        self.coll_group = _coll_group_size(size)
        # User point-to-point traffic and internal collective traffic live in
        # disjoint mailbox channels: a wildcard user receive scans only the
        # user channel, so it can never intercept collective messages.
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.coll_mailboxes = [_Mailbox() for _ in range(size)]
        self.abort = threading.Event()
        self.barrier = _Barrier(size, self.abort, self.timeout)

    def deliver(
        self, dest: int, source: int, tag: int, payload: Any, coll: bool = False
    ) -> tuple[int, int]:
        """Hand ``payload`` to ``dest``'s mailbox (by reference).

        Returns ``(shm_bytes, chunk_frames)`` like the process backend's
        transport — both always 0 here."""
        (self.coll_mailboxes if coll else self.mailboxes)[dest].put(
            source, tag, payload
        )
        return 0, 0

    def inbox(self, rank: int, coll: bool) -> _Mailbox:
        """The mailbox ``rank`` receives on for the given channel."""
        return (self.coll_mailboxes if coll else self.mailboxes)[rank]

    def barrier_wait(self) -> None:
        self.barrier.wait()


class Communicator:
    """mpi4py-flavored communicator for one rank of a parallel region.

    All collective operations must be invoked by every rank of the region in
    the same order.  Internal collective traffic is carried on a channel
    disjoint from user point-to-point messages (see module notes), labeled
    with tags >= ``_COLL_TAG`` for debugging.

    Public collectives are tree-based (O(log P) messages per rank); the
    ``linear_*`` methods preserve the original O(P) root-funneled algorithms
    as reference oracles for validation and benchmarking.  Per-rank traffic
    counters live in :attr:`stats`.
    """

    _COLL_TAG = 1 << 20  # base tag for internal collective traffic
    _COLL_STRIDE = 64  # tag slots per collective call (one per tree round)

    def __init__(self, rank: int, world: _World):
        self._rank = rank
        self._world = world
        self._coll_seq = 0  # per-rank collective sequence number
        self.stats = CommStats()

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This rank's index in ``[0, size)``."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the region."""
        return self._world.size

    # mpi4py spellings
    def Get_rank(self) -> int:  # noqa: N802 - mpi4py compatibility
        return self._rank

    def Get_size(self) -> int:  # noqa: N802 - mpi4py compatibility
        return self._world.size

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to rank ``dest``.  Buffered; never blocks.

        When a fault injector is armed (:mod:`repro.faults`) the send may be
        deterministically dropped or delayed; internal collective traffic is
        never faulted."""
        self._check_rank(dest)
        inj = faults.active()
        if inj is not None:
            action = inj.on_send(self._rank, dest, tag)
            if action == "drop":
                self.stats.msgs_dropped += 1
                return
            if action is not None:
                self.stats.msgs_delayed += 1
                time.sleep(float(action))
        self.stats.msgs_sent += 1
        self.stats.bytes_sent += _payload_nbytes(obj)
        shm, frames = self._world.deliver(dest, self._rank, tag, obj, coll=False)
        if shm:
            self.stats.shm_msgs_sent += 1
            self.stats.shm_bytes_sent += shm
        self.stats.chunk_frames_sent += frames

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; returns a completed :class:`Request`."""
        self.send(obj, dest, tag)
        return Request()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload object."""
        payload, _, _ = self._timed_get(
            self._world.inbox(self._rank, coll=False), source, tag
        )
        return payload

    def recv_with_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, int, int]:
        """Blocking receive returning ``(payload, source, tag)``."""
        return self._timed_get(self._world.inbox(self._rank, coll=False), source, tag)

    def _timed_get(
        self, mailbox: _Mailbox, source: int, tag: int
    ) -> tuple[Any, int, int]:
        t0 = time.perf_counter()
        try:
            payload, src, t = mailbox.get(
                source, tag, self._world.abort, self._world.timeout
            )
        finally:
            t1 = time.perf_counter()
            self.stats.recv_wait_s += t1 - t0
            if _otrace._enabled:
                _otrace.record("comm-wait", self._rank, t0, t1, cat="comm")
        self.stats.msgs_recv += 1
        self.stats.bytes_recv += _payload_nbytes(payload)
        return payload, src, t

    # internal collective channel -------------------------------------
    def _coll_send(self, obj: Any, dest: int, tag: int) -> None:
        self._check_rank(dest)
        if isinstance(obj, np.ndarray) and not obj.flags["C_CONTIGUOUS"]:
            # Pack before shipping: collective payloads are combined and
            # re-sent up the tree, so one contiguous buffer here means the
            # transport sees a single zero-copy block instead of a strided
            # pickle walk (and shm descriptors stay one-per-array).
            obj = np.ascontiguousarray(obj)
        self.stats.msgs_sent += 1
        self.stats.bytes_sent += _payload_nbytes(obj)
        shm, frames = self._world.deliver(dest, self._rank, tag, obj, coll=True)
        if shm:
            self.stats.shm_msgs_sent += 1
            self.stats.shm_bytes_sent += shm
        self.stats.chunk_frames_sent += frames

    def _coll_recv(self, source: int, tag: int) -> Any:
        payload, _, _ = self._timed_get(
            self._world.inbox(self._rank, coll=True), source, tag
        )
        return payload

    def _coll_recv_with_status(self, source: int, tag: int) -> tuple[Any, int, int]:
        return self._timed_get(self._world.inbox(self._rank, coll=True), source, tag)

    # ------------------------------------------------------------------
    # two-level topology helpers
    # ------------------------------------------------------------------
    def _two_level(self) -> tuple[list[int], int, list[int], int | None] | None:
        """Group structure for hierarchical collectives, or ``None`` (flat).

        Ranks are split into contiguous groups of ``world.coll_group``; the
        lowest rank of each group is its leader.  Returns ``(group_ranks,
        my_position_in_group, leader_ranks, my_position_among_leaders)``
        with the last item ``None`` on non-leader ranks.  Contiguity is what
        keeps non-commutative reductions exact: group partials combine in
        rank order inside each group, and leader partials combine in group
        order, so the overall association is a rank-ordered fold.
        """
        g = getattr(self._world, "coll_group", 1)
        size = self.size
        if g <= 1 or g >= size:
            return None
        lo = (self._rank // g) * g
        group = list(range(lo, min(lo + g, size)))
        leaders = list(range(0, size, g))
        lpos = lo // g if self._rank == lo else None
        return group, self._rank - lo, leaders, lpos

    def _bcast_list(
        self, obj: Any, ranks: list[int], mypos: int, rootpos: int, tag: int
    ) -> Any:
        """Binomial broadcast over an ordered rank list (positions virtual)."""
        n = len(ranks)
        if n == 1:
            return obj
        v = (mypos - rootpos) % n
        if v != 0:
            hb = 1 << (v.bit_length() - 1)  # highest set bit: parent link
            obj = self._coll_recv(ranks[(v - hb + rootpos) % n], tag)
        k = 1 << v.bit_length()
        while v + k < n:
            self._coll_send(obj, ranks[(v + k + rootpos) % n], tag)
            k <<= 1
        return obj

    def _reduce_list(
        self, obj: Any, op: Callable[[Any, Any], Any],
        ranks: list[int], mypos: int, tag: int,
    ) -> Any | None:
        """Binomial reduce to ``ranks[0]``, combining in list order (so a
        contiguous rank list folds in rank order — non-commutative safe)."""
        n = len(ranks)
        acc = obj
        stride = 1
        while stride < n:
            if mypos % (2 * stride) == stride:
                self._coll_send(acc, ranks[mypos - stride], tag)
                return None
            if mypos % (2 * stride) == 0:
                partner = mypos + stride
                if partner < n:
                    # Lower position on the left: preserves list order.
                    acc = op(acc, self._coll_recv(ranks[partner], tag))
            stride <<= 1
        return acc

    def _gather_list(
        self, items: dict[int, Any], ranks: list[int], mypos: int, tag: int
    ) -> dict[int, Any] | None:
        """Binomial gather of ``{global_rank: obj}`` dicts at ``ranks[0]``."""
        n = len(ranks)
        subtree = dict(items)
        k = 1
        while k < n:
            if mypos & k:
                self._coll_send(subtree, ranks[mypos - k], tag)
                return None
            child = mypos + k
            if child < n:
                subtree.update(self._coll_recv(ranks[child], tag))
            k <<= 1
        return subtree

    # ------------------------------------------------------------------
    # collectives (tree algorithms)
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all ranks."""
        self._count("barrier")
        t0 = time.perf_counter()
        try:
            self._world.barrier_wait()
        finally:
            t1 = time.perf_counter()
            self.stats.barrier_wait_s += t1 - t0
            if _otrace._enabled:
                _otrace.record("barrier", self._rank, t0, t1, cat="comm")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``.

        Two-level when the world is grouped (root → leaders → group
        members, binomial at each level); flat binomial tree otherwise."""
        self._check_rank(root)
        self._count("bcast")
        tag = self._next_coll_tag()
        tl = self._two_level()
        if tl is None:
            return self._bcast_impl(obj, root, tag)
        group, gpos, leaders, lpos = tl
        if root != 0:
            # One forward hop puts the payload at the global leader; the
            # hierarchical fan-out below is root-agnostic.
            if self._rank == root:
                self._coll_send(obj, 0, tag)
            if self._rank == 0:
                obj = self._coll_recv(root, tag)
        if lpos is not None:
            obj = self._bcast_list(obj, leaders, lpos, 0, tag + 1)
        return self._bcast_list(obj, group, gpos, 0, tag + 2)

    def _bcast_impl(self, obj: Any, root: int, tag: int) -> Any:
        size, rank = self.size, self._rank
        if size == 1:
            return obj
        vrank = (rank - root) % size
        if vrank != 0:
            hb = 1 << (vrank.bit_length() - 1)  # highest set bit: parent link
            parent = (vrank - hb + root) % size
            obj = self._coll_recv(parent, tag)
        k = 1 << vrank.bit_length()  # children are vrank + 2^j for 2^j > vrank
        while vrank + k < size:
            self._coll_send(obj, (vrank + k + root) % size, tag)
            k <<= 1
        return obj

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank at ``root`` (rank order); None elsewhere.

        Two-level when the world is grouped (members → leader, leaders →
        rank 0, one forward to ``root``); flat binomial tree otherwise.
        Either way each rank forwards its merged subtree once, so no rank
        receives more than O(log P) bundles."""
        self._check_rank(root)
        self._count("gather")
        tag = self._next_coll_tag()
        size, rank = self.size, self._rank
        if size == 1:
            return [obj]
        tl = self._two_level()
        if tl is None:
            vrank = (rank - root) % size
            subtree: dict[int, Any] = {vrank: obj}
            k = 1
            while k < size:
                if vrank & k:
                    self._coll_send(subtree, (vrank - k + root) % size, tag)
                    return None
                child = vrank + k
                if child < size:
                    subtree.update(self._coll_recv((child + root) % size, tag))
                k <<= 1
            return [subtree[(r - root) % size] for r in range(size)]
        group, gpos, leaders, lpos = tl
        merged = self._gather_list({rank: obj}, group, gpos, tag)
        if lpos is not None:
            merged = self._gather_list(merged, leaders, lpos, tag + 1)
        if rank == 0:
            out = [merged[r] for r in range(size)]
            if root == 0:
                return out
            self._coll_send(out, root, tag + 2)
            return None
        if rank == root:
            return self._coll_recv(0, tag + 2)
        return None

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter ``size`` objects from ``root``; each rank returns its item.

        Binomial (recursive-halving) tree: the root sends log2 P bundles,
        each internal node forwards halves of its range downward."""
        self._check_rank(root)
        self._count("scatter")
        tag = self._next_coll_tag()
        size, rank = self.size, self._rank
        vrank = (rank - root) % size
        if vrank == 0:
            if objs is None or len(objs) != size:
                raise ValueError(
                    f"scatter at root needs exactly {size} items, got "
                    f"{None if objs is None else len(objs)}"
                )
            if size == 1:
                return objs[0]
            bundle = {v: objs[(v + root) % size] for v in range(size)}
            span = 1
            while span < size:
                span <<= 1
        else:
            lsb = vrank & -vrank  # node owns vrange [vrank, vrank + lsb)
            parent = (vrank - lsb + root) % size
            bundle = self._coll_recv(parent, tag)
            span = lsb
        while span > 1:
            half = span >> 1
            child = vrank + half
            if child < size:
                sub = {
                    v: bundle.pop(v)
                    for v in range(child, min(child + half, size))
                    if v in bundle
                }
                self._coll_send(sub, (child + root) % size, tag)
            span = half
        return bundle[vrank]

    def reduce(
        self, obj: Any, op: Callable[[Any, Any], Any] = None, root: int = 0
    ) -> Any | None:
        """Reduce one contribution per rank to ``root`` with ``op`` (default +).

        Two-level when the world is grouped — members fold to their leader,
        leaders fold to rank 0, both in rank order so non-commutative ops
        stay exact; flat binomial tree otherwise.  For a nonzero root the
        result is forwarded with one extra message."""
        self._check_rank(root)
        self._count("reduce")
        op = op or operator.add
        tag = self._next_coll_tag()
        tl = self._two_level()
        if tl is None:
            return self._reduce_impl(obj, op, root, tag)
        group, gpos, leaders, lpos = tl
        acc = self._reduce_list(obj, op, group, gpos, tag)
        if lpos is not None:
            acc = self._reduce_list(acc, op, leaders, lpos, tag + 1)
        if root == 0:
            return acc if self._rank == 0 else None
        if self._rank == 0:
            self._coll_send(acc, root, tag + 2)
            return None
        if self._rank == root:
            return self._coll_recv(0, tag + 2)
        return None

    def _reduce_impl(
        self, obj: Any, op: Callable[[Any, Any], Any], root: int, tag: int
    ) -> Any | None:
        rank, size = self._rank, self.size
        acc = obj
        stride = 1
        while stride < size:
            if rank % (2 * stride) == stride:
                self._coll_send(acc, rank - stride, tag)
                acc = None
                break
            if rank % (2 * stride) == 0:
                partner = rank + stride
                if partner < size:
                    # Lower rank on the left: preserves rank order.
                    acc = op(acc, self._coll_recv(partner, tag))
            stride <<= 1
        if root == 0:
            return acc if rank == 0 else None
        if rank == 0:
            self._coll_send(acc, root, tag + 1)
            return None
        if rank == root:
            return self._coll_recv(0, tag + 1)
        return None

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Reduce with ``op`` (default +); every rank gets the result.

        Two-level when the world is grouped: members fold to their leader,
        leaders allreduce among themselves (recursive doubling when their
        count is a power of two), and each leader broadcasts back down its
        group — the chainermn node-aware shape.  Flat worlds use recursive
        doubling (power-of-two sizes) or binomial reduce + broadcast.  All
        paths combine in rank order, so non-commutative ops stay exact."""
        self._count("allreduce")
        op = op or operator.add
        tag = self._next_coll_tag()
        rank, size = self._rank, self.size
        if size == 1:
            return obj
        tl = self._two_level()
        if tl is None:
            if size & (size - 1) == 0:  # power of two: recursive doubling
                acc = obj
                k = 1
                rnd = 0
                while k < size:
                    partner = rank ^ k
                    self._coll_send(acc, partner, tag + rnd)
                    other = self._coll_recv(partner, tag + rnd)
                    acc = op(acc, other) if partner > rank else op(other, acc)
                    k <<= 1
                    rnd += 1
                return acc
            result = self._reduce_impl(obj, op, 0, tag)
            return self._bcast_impl(result, 0, tag + 32)
        group, gpos, leaders, lpos = tl
        acc = self._reduce_list(obj, op, group, gpos, tag)
        if lpos is not None:
            nl = len(leaders)
            if nl & (nl - 1) == 0:  # recursive doubling among leaders
                k = 1
                rnd = 1
                while k < nl:
                    ppos = lpos ^ k
                    self._coll_send(acc, leaders[ppos], tag + rnd)
                    other = self._coll_recv(leaders[ppos], tag + rnd)
                    acc = op(acc, other) if ppos > lpos else op(other, acc)
                    k <<= 1
                    rnd += 1
            else:
                acc = self._reduce_list(acc, op, leaders, lpos, tag + 1)
                acc = self._bcast_list(acc, leaders, lpos, 0, tag + 2)
        return self._bcast_list(acc, group, gpos, 0, tag + 33)

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one object per rank at every rank.

        Dissemination (Bruck) algorithm: in round k each rank forwards all
        items it knows to rank+2^k and learns from rank-2^k, completing in
        ceil(log2 P) rounds for any P."""
        self._count("allgather")
        tag = self._next_coll_tag()
        rank, size = self._rank, self.size
        if size == 1:
            return [obj]
        known: dict[int, Any] = {rank: obj}
        k = 1
        rnd = 0
        while k < size:
            self._coll_send(dict(known), (rank + k) % size, tag + rnd)
            known.update(self._coll_recv((rank - k) % size, tag + rnd))
            k <<= 1
            rnd += 1
        return [known[r] for r in range(size)]

    def exscan(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``.

        Recursive-doubling distributed scan: rank r learns progressively
        earlier contiguous segments and prepends them, so non-commutative
        ops are safe.  Used by the parallel writer to turn per-rank byte
        counts into file offsets, exactly as DIY does with ``MPI_Exscan``.
        """
        self._count("exscan")
        op = op or operator.add
        tag = self._next_coll_tag()
        rank, size = self._rank, self.size
        result = None  # exclusive prefix over ranks [x, rank)
        acc = value  # reduction of a contiguous range ending at this rank
        stride = 1
        rnd = 0
        while stride < size:
            if rank + stride < size:
                self._coll_send(acc, rank + stride, tag + rnd)
            if rank - stride >= 0:
                other = self._coll_recv(rank - stride, tag + rnd)
                result = other if result is None else op(other, result)
                acc = op(other, acc)
            stride <<= 1
            rnd += 1
        return result

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Exchange ``objs[d]`` to each rank ``d``; returns items received
        from every rank, in rank order.  Dense: O(P) messages per rank by
        construction — use :meth:`sparse_alltoall` when most entries are
        empty."""
        if len(objs) != self.size:
            raise ValueError(f"alltoall needs {self.size} items, got {len(objs)}")
        self._count("alltoall")
        tag = self._next_coll_tag()
        for dst in range(self.size):
            if dst != self._rank:
                self._coll_send(objs[dst], dst, tag)
        out: list[Any] = [None] * self.size
        out[self._rank] = objs[self._rank]
        for src in range(self.size):
            if src != self._rank:
                out[src] = self._coll_recv(src, tag)
        return out

    def sparse_alltoall(self, outbox: Mapping[int, Any]) -> dict[int, Any]:
        """Point-to-point exchange of per-destination payloads (collective).

        Every rank passes a mapping from destination rank to payload,
        containing only the destinations it actually addresses.  Returns the
        mapping from source rank to received payload.  A small header round
        (an elementwise-summed count vector, itself a tree allreduce) tells
        each rank how many payloads to expect, so total message cost is
        O(neighbors + log P) instead of the dense alltoall's O(P).
        """
        self._count("sparse_alltoall")
        counts = np.zeros(self.size, dtype=np.int64)
        for dest in outbox:
            self._check_rank(dest)
            if dest != self._rank:
                counts[dest] = 1
        incoming = self.allreduce(counts)
        tag = self._next_coll_tag()
        for dest in sorted(outbox):
            if dest != self._rank:
                self._coll_send(outbox[dest], dest, tag)
        received: dict[int, Any] = {}
        for _ in range(int(incoming[self._rank])):
            payload, src, _ = self._coll_recv_with_status(ANY_SOURCE, tag)
            received[src] = payload
        if self._rank in outbox:
            received[self._rank] = outbox[self._rank]
        return received

    # ------------------------------------------------------------------
    # linear reference collectives (the original O(P) algorithms)
    # ------------------------------------------------------------------
    def linear_bcast(self, obj: Any, root: int = 0) -> Any:
        """Root-funneled broadcast: root sends to every rank (oracle)."""
        self._check_rank(root)
        self._count("linear_bcast")
        tag = self._next_coll_tag()
        if self._rank == root:
            for dst in range(self.size):
                if dst != root:
                    self._coll_send(obj, dst, tag)
            return obj
        return self._coll_recv(root, tag)

    def linear_gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Root-funneled gather: every rank sends to root (oracle)."""
        self._check_rank(root)
        self._count("linear_gather")
        tag = self._next_coll_tag()
        if self._rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self._coll_recv(src, tag)
            return out
        self._coll_send(obj, root, tag)
        return None

    def linear_scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Root-funneled scatter (oracle)."""
        self._check_rank(root)
        self._count("linear_scatter")
        tag = self._next_coll_tag()
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(
                    f"scatter at root needs exactly {self.size} items, got "
                    f"{None if objs is None else len(objs)}"
                )
            for dst in range(self.size):
                if dst != root:
                    self._coll_send(objs[dst], dst, tag)
            return objs[root]
        return self._coll_recv(root, tag)

    def linear_reduce(
        self, obj: Any, op: Callable[[Any, Any], Any] = None, root: int = 0
    ) -> Any | None:
        """Gather-then-fold reduction at root, in rank order (oracle)."""
        op = op or operator.add
        vals = self.linear_gather(obj, root=root)
        if self._rank != root:
            return None
        acc = vals[0]
        for v in vals[1:]:
            acc = op(acc, v)
        return acc

    def linear_allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Linear reduce to rank 0 plus linear broadcast (oracle)."""
        return self.linear_bcast(self.linear_reduce(obj, op=op, root=0), root=0)

    def linear_allgather(self, obj: Any) -> list[Any]:
        """Linear gather at rank 0 plus linear broadcast (oracle)."""
        return self.linear_bcast(self.linear_gather(obj, root=0), root=0)

    def linear_exscan(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Allgather-then-fold exclusive scan (oracle)."""
        op = op or operator.add
        vals = self.linear_allgather(value)
        if self._rank == 0:
            return None
        acc = vals[0]
        for v in vals[1 : self._rank]:
            acc = op(acc, v)
        return acc

    # ------------------------------------------------------------------
    def _count(self, name: str) -> None:
        calls = self.stats.collective_calls
        calls[name] = calls.get(name, 0) + 1

    def _next_coll_tag(self) -> int:
        # Collectives execute in the same order on all ranks, so a per-rank
        # sequence number yields matching tags without coordination.  Each
        # call reserves _COLL_STRIDE tag slots for its tree rounds.
        self._coll_seq += 1
        return self._COLL_TAG + self._coll_seq * self._COLL_STRIDE

    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.size:
            raise ValueError(f"rank {r} out of range [0, {self.size})")


def run_parallel(
    nranks: int,
    func: Callable[..., Any],
    *args: Any,
    recv_timeout: float | None = None,
    backend: str = "thread",
    **kwargs: Any,
) -> list[Any]:
    """Run ``func(comm, *args, **kwargs)`` on ``nranks`` ranks; return results.

    ``func`` receives a :class:`Communicator` as its first argument.  Returns
    the per-rank return values in rank order.  If any rank raises, the region
    is aborted and a :class:`ParallelError` wrapping the first failure is
    raised.

    ``backend`` selects the execution substrate:

    * ``"thread"`` (default) — one thread per rank, shared address space,
      messages passed by reference.  Deterministic and cheap; GIL-bound.
    * ``"process"`` — one forked OS process per rank; true hardware
      parallelism.  Payloads move over pipes with pickle protocol-5
      out-of-band buffers, large arrays through pooled shared-memory
      segments (see :mod:`repro.diy.process_backend`).  Requires a
      platform with ``os.fork`` (Linux/macOS).  Results must be picklable.

    ``recv_timeout`` bounds how long a matched receive or barrier may block
    before the region is declared deadlocked (default 300 s).

    ``nranks == 1`` runs inline on the calling thread for either backend
    (serial mode — the paper's standalone/serial configuration) which keeps
    single-rank paths easy to debug and profile.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if backend not in ("thread", "process"):
        raise ValueError(f"unknown backend {backend!r} (use 'thread' or 'process')")

    if backend == "process" and nranks > 1:
        from .process_backend import run_parallel_processes

        if observe.enabled():
            # Forked ranks record observations into their own copies of
            # the observe state; the wrapper ships each rank's span
            # buffer and metrics back with its result for the parent to
            # merge into the globally-ordered trace.
            wrapped = run_parallel_processes(
                nranks,
                observe.process_worker(func),
                args,
                kwargs,
                recv_timeout=recv_timeout,
            )
            return observe.absorb_process_results(wrapped)
        return run_parallel_processes(
            nranks, func, args, kwargs, recv_timeout=recv_timeout
        )

    world = _World(nranks, timeout=recv_timeout)

    def call(comm: Communicator) -> Any:
        result = func(comm, *args, **kwargs)
        if observe.enabled():
            # Thread ranks share the observe state; only the region-end
            # absorption (comm totals, memory high-water) is per rank.
            observe.rank_finished(comm)
        return result

    if nranks == 1:
        return [call(Communicator(0, world))]

    results: list[Any] = [None] * nranks
    errors: list[ParallelError] = []
    errors_lock = threading.Lock()

    def runner(rank: int) -> None:
        try:
            results[rank] = call(Communicator(rank, world))
        except BaseException as exc:  # noqa: BLE001 - must propagate everything
            with errors_lock:
                errors.append(ParallelError(rank, exc))
            world.abort.set()
            world.barrier._barrier.abort()  # wake ranks blocked at a barrier
            # Wake any rank blocked in a matched receive (either channel).
            for mb in world.mailboxes + world.coll_mailboxes:
                with mb.lock:
                    mb.ready.notify_all()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        # Prefer the originating failure over secondary teardown errors.
        errors.sort(key=lambda e: (isinstance(e.original, _AbortedError), e.rank))
        raise errors[0]
    return results
