"""Linear matter power spectrum: BBKS and Eisenstein-Hu transfer functions.

The initial conditions draw a Gaussian random field with the linear power
spectrum P(k) = A k^ns T(k)^2 D(a)^2, normalized so that the z=0 field has
the cosmology's sigma8.  Two classic transfer functions are provided:

* ``bbks`` — Bardeen, Bond, Kaiser & Szalay (1986) fitting form with the
  Sugiyama (1995) baryon-corrected shape parameter;
* ``eisenstein_hu`` — the zero-baryon ("no-wiggle") form of Eisenstein & Hu
  (1998), more accurate around the matter-radiation equality turnover.

k is in h/Mpc throughout, P(k) in (Mpc/h)^3 — the same conventions as HACC
input decks.
"""

from __future__ import annotations

import numpy as np

from .cosmology import LCDM

__all__ = ["transfer_bbks", "transfer_eisenstein_hu", "LinearPowerSpectrum"]


def transfer_bbks(k: np.ndarray, cosmo: LCDM) -> np.ndarray:
    """BBKS (1986) CDM transfer function with Sugiyama's shape parameter."""
    k = np.asarray(k, dtype=float)
    gamma = (
        cosmo.omega_m
        * cosmo.h
        * np.exp(-cosmo.omega_b * (1.0 + np.sqrt(2 * cosmo.h) / cosmo.omega_m))
    )
    q = k / gamma
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (
            np.log(1.0 + 2.34 * q)
            / (2.34 * q)
            * (1.0 + 3.89 * q + (16.1 * q) ** 2 + (5.46 * q) ** 3 + (6.71 * q) ** 4)
            ** -0.25
        )
    return np.where(q > 0, t, 1.0)


def transfer_eisenstein_hu(k: np.ndarray, cosmo: LCDM) -> np.ndarray:
    """Eisenstein & Hu (1998) zero-baryon transfer function.

    Implements eqs. (26)-(31) of astro-ph/9709112 with the baryon
    suppression entering through the effective shape parameter.
    """
    k = np.asarray(k, dtype=float)
    om, ob, h = cosmo.omega_m, cosmo.omega_b, cosmo.h
    theta = 2.728 / 2.7  # CMB temperature in units of 2.7 K
    fb = ob / om
    # Sound horizon approximation (eq. 26).
    s = 44.5 * np.log(9.83 / (om * h * h)) / np.sqrt(1.0 + 10.0 * (ob * h * h) ** 0.75)
    # Shape-parameter suppression (eq. 30-31).
    a_gamma = 1.0 - 0.328 * np.log(431.0 * om * h * h) * fb + 0.38 * np.log(
        22.3 * om * h * h
    ) * fb**2
    with np.errstate(divide="ignore", invalid="ignore"):
        gamma_eff = om * h * (
            a_gamma + (1.0 - a_gamma) / (1.0 + (0.43 * k * s * h) ** 4)
        )
        q = k * theta**2 / gamma_eff
        l0 = np.log(2.0 * np.e + 1.8 * q)
        c0 = 14.2 + 731.0 / (1.0 + 62.5 * q)
        t = l0 / (l0 + c0 * q * q)
    return np.where(k > 0, t, 1.0)


_TRANSFERS = {"bbks": transfer_bbks, "eisenstein_hu": transfer_eisenstein_hu}


class LinearPowerSpectrum:
    """sigma8-normalized linear matter power spectrum.

    Parameters
    ----------
    cosmo:
        Background cosmology (supplies ns, sigma8, and transfer parameters).
    transfer:
        ``"eisenstein_hu"`` (default) or ``"bbks"``.
    """

    def __init__(self, cosmo: LCDM, transfer: str = "eisenstein_hu"):
        if transfer not in _TRANSFERS:
            raise ValueError(
                f"unknown transfer {transfer!r}; choose from {sorted(_TRANSFERS)}"
            )
        self.cosmo = cosmo
        self.transfer_name = transfer
        self._transfer = _TRANSFERS[transfer]
        self._amplitude = 1.0
        self._amplitude = (cosmo.sigma8 / self.sigma_r(8.0)) ** 2

    # ------------------------------------------------------------------
    def __call__(self, k: np.ndarray | float, a: float = 1.0) -> np.ndarray | float:
        """P(k, a) in (Mpc/h)^3; k in h/Mpc."""
        k_arr = np.asarray(k, dtype=float)
        t = self._transfer(k_arr, self.cosmo)
        d = self.cosmo.growth_factor(a)
        with np.errstate(invalid="ignore"):
            p = self._amplitude * k_arr**self.cosmo.ns * t * t * d * d
        p = np.where(k_arr > 0, p, 0.0)
        return float(p) if p.ndim == 0 else p

    def sigma_r(self, r: float, a: float = 1.0) -> float:
        """RMS linear fluctuation in a top-hat sphere of radius ``r`` Mpc/h.

        sigma^2(R) = (1/2 pi^2) ∫ k^2 P(k) W^2(kR) dk with the spherical
        top-hat window W(x) = 3 (sin x - x cos x) / x^3, integrated in ln k.
        """
        lnk = np.linspace(np.log(1e-4), np.log(1e2), 2048)
        k = np.exp(lnk)
        x = k * r
        w = 3.0 * (np.sin(x) - x * np.cos(x)) / x**3
        integrand = k**3 * self(k, a) * w * w / (2.0 * np.pi**2)
        return float(np.sqrt(np.trapezoid(integrand, lnk)))
