"""Flat ΛCDM background cosmology: expansion history and linear growth.

HACC evolves the Vlasov-Poisson system in an expanding Friedmann background;
everything the particle-mesh solver and the Zel'dovich initial conditions
need from that background is collected here: the normalized Hubble rate
``E(a)``, the linear growth factor ``D(a)`` (normalized to ``D(1) = 1``),
and the logarithmic growth rate ``f = dlnD/dlna``.

The growth factor uses the standard quadrature solution for flat ΛCDM,

    D(a) ∝ E(a) ∫_0^a da' / (a' E(a'))^3 ,

evaluated with a dense trapezoid rule and cached on a log-spaced grid so
repeated calls during time stepping are O(1) interpolations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LCDM", "PLANCK_LIKE"]


@dataclass(frozen=True)
class LCDM:
    """Flat ΛCDM parameters and derived background functions.

    Parameters
    ----------
    omega_m:
        Total matter density parameter today (CDM + baryons).
    omega_b:
        Baryon density parameter (used by the Eisenstein-Hu transfer
        function).
    h:
        Dimensionless Hubble parameter, ``H0 = 100 h`` km/s/Mpc.
    ns:
        Scalar spectral index.
    sigma8:
        RMS linear density fluctuation in 8 Mpc/h spheres at z=0; fixes the
        power-spectrum normalization.
    """

    omega_m: float = 0.265
    omega_b: float = 0.045
    h: float = 0.71
    ns: float = 0.963
    sigma8: float = 0.8

    # Cached growth-factor table (lazily built; frozen dataclass workaround).
    _growth_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.omega_m <= 1.0:
            raise ValueError(f"omega_m must be in (0, 1], got {self.omega_m}")
        if not 0.0 <= self.omega_b < self.omega_m:
            raise ValueError("omega_b must be nonnegative and below omega_m")
        if self.h <= 0:
            raise ValueError(f"h must be positive, got {self.h}")

    # ------------------------------------------------------------------
    @property
    def omega_l(self) -> float:
        """Dark-energy density parameter (flatness: 1 - omega_m)."""
        return 1.0 - self.omega_m

    def e_of_a(self, a: np.ndarray | float) -> np.ndarray | float:
        """Normalized Hubble rate ``E(a) = H(a)/H0`` for flat ΛCDM."""
        a = np.asarray(a, dtype=float)
        out = np.sqrt(self.omega_m / a**3 + self.omega_l)
        return float(out) if out.ndim == 0 else out

    def hubble(self, a: float) -> float:
        """H(a) in km/s/Mpc."""
        return 100.0 * self.h * float(self.e_of_a(a))

    # ------------------------------------------------------------------
    def _growth_table(self) -> tuple[np.ndarray, np.ndarray]:
        cached = self._growth_cache.get("table")
        if cached is not None:
            return cached
        # Integrand 1/(a E)^3 from a ~ 0; log-spaced for early-time accuracy.
        a_grid = np.logspace(-4, 0.05, 4096)
        integrand = 1.0 / (a_grid * self.e_of_a(a_grid)) ** 3
        # Cumulative trapezoid, starting from an analytic matter-dominated
        # piece below the first grid point (D ∝ a there, integral ∝ a^(5/2)).
        cum = np.concatenate(
            [[0.0], np.cumsum(0.5 * (integrand[1:] + integrand[:-1]) * np.diff(a_grid))]
        )
        head = (2.0 / 5.0) * a_grid[0] ** 2.5 / self.omega_m**1.5
        unnorm = self.e_of_a(a_grid) * (cum + head)
        norm = np.interp(1.0, a_grid, unnorm)
        table = (a_grid, unnorm / norm)
        self._growth_cache["table"] = table
        return table

    def growth_factor(self, a: np.ndarray | float) -> np.ndarray | float:
        """Linear growth factor ``D(a)``, normalized to ``D(1) = 1``."""
        a_grid, d_grid = self._growth_table()
        a_arr = np.asarray(a, dtype=float)
        if np.any(a_arr <= 0):
            raise ValueError("scale factor must be positive")
        out = np.interp(a_arr, a_grid, d_grid)
        return float(out) if out.ndim == 0 else out

    def growth_rate(self, a: float) -> float:
        """Logarithmic growth rate ``f(a) = dlnD/dlna`` (finite difference)."""
        da = 1e-4 * a
        lo = max(a - da, 1e-4)
        hi = a + da
        d_lo = self.growth_factor(lo)
        d_hi = self.growth_factor(hi)
        return float((np.log(d_hi) - np.log(d_lo)) / (np.log(hi) - np.log(lo)))

    # ------------------------------------------------------------------
    @staticmethod
    def a_of_z(z: float) -> float:
        """Scale factor at redshift ``z``."""
        return 1.0 / (1.0 + z)

    @staticmethod
    def z_of_a(a: float) -> float:
        """Redshift at scale factor ``a``."""
        return 1.0 / a - 1.0


#: A WMAP7-era parameter set close to the Coyote Universe runs HACC used.
PLANCK_LIKE = LCDM()
