"""HACC-style cosmological N-body simulation substrate.

A particle-mesh Vlasov-Poisson solver in the spirit of HACC's long-range
component: ΛCDM background, σ8-normalized linear power spectrum, Zel'dovich
initial conditions, CIC mesh transfers, spectral Poisson solve, symplectic
KDK stepping, and a rank-parallel driver with particle migration and in
situ analysis hooks.
"""

from .checkpoint import (
    BYTES_PER_PARTICLE,
    CheckpointError,
    find_latest_checkpoint,
    read_checkpoint,
    restart_simulation,
    write_checkpoint,
)
from .correlation import CorrelationFunction, pair_correlation
from .cosmology import LCDM, PLANCK_LIKE
from .initial_conditions import zeldovich_ics
from .integrator import TimeStepper, compute_accelerations, kdk_step
from .mesh import cic_deposit, cic_gather, density_contrast
from .measurements import MeasuredPower, measure_power_spectrum
from .particles import ParticleSet
from .poisson import accelerations_from_delta, gravitational_potential
from .power_spectrum import (
    LinearPowerSpectrum,
    transfer_bbks,
    transfer_eisenstein_hu,
)
from .simulation import (
    HACCSimulation,
    RecoveryStats,
    SimulationConfig,
    StepRecord,
    run_simulation,
    run_with_recovery,
)

__all__ = [
    "LCDM",
    "PLANCK_LIKE",
    "CorrelationFunction",
    "pair_correlation",
    "BYTES_PER_PARTICLE",
    "read_checkpoint",
    "restart_simulation",
    "write_checkpoint",
    "zeldovich_ics",
    "TimeStepper",
    "compute_accelerations",
    "kdk_step",
    "cic_deposit",
    "cic_gather",
    "density_contrast",
    "ParticleSet",
    "MeasuredPower",
    "measure_power_spectrum",
    "accelerations_from_delta",
    "gravitational_potential",
    "LinearPowerSpectrum",
    "transfer_bbks",
    "transfer_eisenstein_hu",
    "HACCSimulation",
    "SimulationConfig",
    "StepRecord",
    "run_simulation",
    "run_with_recovery",
    "RecoveryStats",
    "CheckpointError",
    "find_latest_checkpoint",
]
