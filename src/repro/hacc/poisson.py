"""Spectral Poisson solver for the particle-mesh force calculation.

HACC's long-range force component is a spectral particle-mesh solve; this
module is its replicated-mesh equivalent.  In the code's internal
(supercomoving, grid) units the Poisson equation is

    laplacian(phi) = (3/2) (Omega_m / a) * delta ,

solved in Fourier space with periodic boundary conditions.  Accelerations
are the spectral gradient ``-i k phat(k)`` transformed back to real space,
one FFT per component.  An optional CIC deconvolution sharpens the force at
the mesh scale by dividing out the assignment window twice (deposit +
gather).

The spectral kernels (wavenumber grids and the CIC window) depend only on
the mesh size, so they are memoized per ``ng`` — the force solver calls
here every step of a run, and rebuilding them dominated small-mesh solves.
Cached arrays are marked read-only; treat them as immutable.
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = ["gravitational_potential", "accelerations_from_delta"]


@functools.lru_cache(maxsize=8)
def _k_grids(ng: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Angular wavenumbers (grid units, spacing 1) for an rfftn layout.

    Memoized per mesh size; the returned arrays are shared and read-only.
    """
    k = 2.0 * np.pi * np.fft.fftfreq(ng)
    kz = 2.0 * np.pi * np.fft.rfftfreq(ng)
    grids = (
        k[:, None, None].copy(),
        k[None, :, None].copy(),
        kz[None, None, :].copy(),
    )
    for g in grids:
        g.setflags(write=False)
    return grids


@functools.lru_cache(maxsize=8)
def _cic_window_sq(ng: int) -> np.ndarray:
    """Squared CIC assignment window W^2(k) on the rfftn grid.

    Memoized per mesh size; the returned array is shared and read-only.
    """

    def w1d(k: np.ndarray) -> np.ndarray:
        x = k / 2.0
        out = np.ones_like(k)
        nz = x != 0
        out[nz] = (np.sin(x[nz]) / x[nz]) ** 2
        return out

    k = 2.0 * np.pi * np.fft.fftfreq(ng)
    kz = 2.0 * np.pi * np.fft.rfftfreq(ng)
    wx = w1d(k)[:, None, None]
    wy = w1d(k)[None, :, None]
    wz = w1d(kz)[None, None, :]
    out = (wx * wy * wz) ** 2
    out.setflags(write=False)
    return out


def gravitational_potential(
    delta: np.ndarray, prefactor: float, deconvolve: bool = False
) -> np.ndarray:
    """Solve ``laplacian(phi) = prefactor * delta`` on a periodic mesh.

    Parameters
    ----------
    delta:
        ``(ng, ng, ng)`` source field (zero mean; the k=0 mode is dropped).
    prefactor:
        Right-hand-side scale, e.g. ``1.5 * omega_m / a``.
    deconvolve:
        Divide out the squared CIC window (compensates deposit+gather
        smoothing).
    """
    d = np.asarray(delta, dtype=float)
    ng = d.shape[0]
    if d.shape != (ng, ng, ng):
        raise ValueError(f"delta must be cubic, got {d.shape}")
    kx, ky, kz = _k_grids(ng)
    k2 = kx**2 + ky**2 + kz**2
    dk = np.fft.rfftn(d)
    if deconvolve:
        dk /= np.maximum(_cic_window_sq(ng), 1e-12)
    with np.errstate(divide="ignore", invalid="ignore"):
        phik = np.where(k2 > 0, -prefactor * dk / k2, 0.0)
    return np.fft.irfftn(phik, s=d.shape, axes=(0, 1, 2))


def accelerations_from_delta(
    delta: np.ndarray, prefactor: float, deconvolve: bool = False
) -> np.ndarray:
    """Mesh acceleration field ``g = -grad(phi)`` for the given source.

    Returns ``(ng, ng, ng, 3)``, computed spectrally (4 FFTs total).
    """
    d = np.asarray(delta, dtype=float)
    ng = d.shape[0]
    if d.shape != (ng, ng, ng):
        raise ValueError(f"delta must be cubic, got {d.shape}")
    kx, ky, kz = _k_grids(ng)
    k2 = kx**2 + ky**2 + kz**2
    dk = np.fft.rfftn(d)
    if deconvolve:
        dk /= np.maximum(_cic_window_sq(ng), 1e-12)
    with np.errstate(divide="ignore", invalid="ignore"):
        phik = np.where(k2 > 0, -prefactor * dk / k2, 0.0)
    out = np.empty((ng, ng, ng, 3))
    for axis, kcomp in enumerate((kx, ky, kz)):
        out[..., axis] = np.fft.irfftn(-1j * kcomp * phik, s=d.shape, axes=(0, 1, 2))
    return out
