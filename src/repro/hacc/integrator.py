"""Symplectic kick-drift-kick time stepping in the expanding universe.

The equations of motion in supercomoving variables (positions ``x`` in grid
units, momenta ``p = a^2 dx/dt * t0/r0`` with ``t0 = 1/H0``) are

    dx/da = f(a) p / a^2 ,      dp/da = -f(a) grad(phi) ,
    f(a)  = 1 / (a E(a)) ,      laplacian(phi) = (3/2) (Omega_m / a) delta ,

the standard particle-mesh formulation (Kravtsov's PM notes; HACC's
long-range solver integrates the same system).  One :func:`kdk_step`
advances the particles from ``a`` to ``a + da`` with a half-kick /
full-drift / half-kick scheme, recomputing the force at the midpoint drift
position for second-order accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .cosmology import LCDM
from .mesh import cic_deposit, cic_gather, density_contrast
from .particles import ParticleSet
from .poisson import accelerations_from_delta

__all__ = ["compute_accelerations", "kdk_step", "TimeStepper"]


def compute_accelerations(
    positions: np.ndarray,
    ng: int,
    cosmo: LCDM,
    a: float,
    deconvolve: bool = False,
    density_callback: Callable[[np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """PM accelerations ``-grad(phi)`` at particle positions (grid units).

    ``density_callback``, when given, receives the locally deposited mass
    mesh and must return the *global* mass mesh — this is the hook the
    parallel simulation uses to allreduce per-rank deposits.
    """
    mass = cic_deposit(positions, ng)
    if density_callback is not None:
        mass = density_callback(mass)
    delta = density_contrast(mass)
    prefactor = 1.5 * cosmo.omega_m / a
    g_mesh = accelerations_from_delta(delta, prefactor, deconvolve=deconvolve)
    return cic_gather(g_mesh, positions)


def _f(cosmo: LCDM, a: float) -> float:
    return 1.0 / (a * float(cosmo.e_of_a(a)))


def kdk_step(
    particles: ParticleSet,
    ng: int,
    cosmo: LCDM,
    a: float,
    da: float,
    deconvolve: bool = False,
    density_callback: Callable[[np.ndarray], np.ndarray] | None = None,
) -> float:
    """Advance ``particles`` in place from ``a`` to ``a + da`` (KDK).

    Returns the new scale factor.  Positions are wrapped back into
    ``[0, ng)`` after the drift.
    """
    if da <= 0:
        raise ValueError(f"da must be positive, got {da}")
    a_mid = a + 0.5 * da

    # Half kick at a.
    g = compute_accelerations(
        particles.positions, ng, cosmo, a, deconvolve, density_callback
    )
    particles.velocities += 0.5 * da * _f(cosmo, a) * g

    # Full drift at the midpoint.
    particles.positions += da * _f(cosmo, a_mid) / a_mid**2 * particles.velocities
    np.mod(particles.positions, ng, out=particles.positions)

    # Half kick at a + da with the updated density.
    a_new = a + da
    g = compute_accelerations(
        particles.positions, ng, cosmo, a_new, deconvolve, density_callback
    )
    particles.velocities += 0.5 * da * _f(cosmo, a_new) * g
    return a_new


@dataclass
class TimeStepper:
    """Uniform-in-``a`` stepping schedule from ``a_init`` to ``a_final``.

    HACC steps the global solver uniformly in the scale factor; the paper's
    runs quote step counts (25-100), so the schedule is defined by
    ``nsteps`` rather than an accuracy target.
    """

    a_init: float
    a_final: float
    nsteps: int

    def __post_init__(self) -> None:
        if not 0 < self.a_init < self.a_final <= 1.0 + 1e-12:
            raise ValueError(
                f"need 0 < a_init < a_final <= 1, got {self.a_init}, {self.a_final}"
            )
        if self.nsteps < 1:
            raise ValueError(f"nsteps must be >= 1, got {self.nsteps}")

    @property
    def da(self) -> float:
        """Scale-factor increment per step."""
        return (self.a_final - self.a_init) / self.nsteps

    def a_at(self, step: int) -> float:
        """Scale factor after ``step`` completed steps."""
        if not 0 <= step <= self.nsteps:
            raise ValueError(f"step {step} outside [0, {self.nsteps}]")
        return self.a_init + step * self.da
