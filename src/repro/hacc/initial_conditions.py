"""Zel'dovich-approximation initial conditions.

HACC initializes tracer particles on a regular lattice displaced by the
Zel'dovich approximation: a Gaussian random field delta_k is drawn with the
linear power spectrum, the displacement field is

    psi_k = i k / k^2 * delta_k ,

and particles start at ``q + D(a_i) psi(q)`` with momenta proportional to
``dD/da``.  The paper's runs (Section IV) place ``np^3`` particles on an
``ng = np`` grid with a box of the same number of Mpc/h per side, so the
initial inter-particle spacing is exactly 1 Mpc/h; :func:`zeldovich_ics`
defaults to that configuration.

Units: positions in grid units [0, ng); momenta are the supercomoving
``p = a^2 E(a) dD/dlna ... psi`` combination consumed by
:mod:`repro.hacc.integrator` (see that module for the conventions).
"""

from __future__ import annotations

import numpy as np

from .cosmology import LCDM
from .particles import ParticleSet
from .power_spectrum import LinearPowerSpectrum

__all__ = ["gaussian_field_k", "zeldovich_displacements", "zeldovich_ics"]


def _k_grids_physical(ng: int, box: float):
    """Wavenumbers in h/Mpc on the rfftn grid of an ``ng^3`` mesh."""
    k1 = 2.0 * np.pi * np.fft.fftfreq(ng, d=box / ng)
    kz = 2.0 * np.pi * np.fft.rfftfreq(ng, d=box / ng)
    return k1[:, None, None], k1[None, :, None], kz[None, None, :]


def gaussian_field_k(
    ng: int,
    box: float,
    power: LinearPowerSpectrum,
    a: float,
    seed: int,
) -> np.ndarray:
    """Draw delta_k on the rfftn grid with power ``P(k, a)``.

    The field is normalized so that ``irfftn(delta_k)`` is the real-space
    overdensity: modes are drawn with variance ``P(k) ng^6 / box^3`` under
    NumPy's unnormalized-forward FFT convention.  Hermitian symmetry is
    guaranteed by drawing the white noise in real space.
    """
    rng = np.random.default_rng(seed)
    # White noise in real space -> unit-variance complex modes with exact
    # Hermitian symmetry after rfftn.
    white = rng.standard_normal((ng, ng, ng))
    wk = np.fft.rfftn(white)  # variance ng^3 per mode

    kx, ky, kz = _k_grids_physical(ng, box)
    kk = np.sqrt(kx**2 + ky**2 + kz**2)
    pk = power(kk, a=a)
    amp = np.sqrt(pk * ng**3 / box**3)  # wk has variance ng^3; want P * ng^6/box^3
    dk = wk * amp
    dk[0, 0, 0] = 0.0
    return dk


def zeldovich_displacements(delta_k: np.ndarray, ng: int, box: float) -> np.ndarray:
    """Displacement field psi (in Mpc/h) from delta_k: psi_k = i k delta_k / k^2."""
    kx, ky, kz = _k_grids_physical(ng, box)
    k2 = kx**2 + ky**2 + kz**2
    psi = np.empty((ng, ng, ng, 3))
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_k2 = np.where(k2 > 0, 1.0 / k2, 0.0)
    for axis, kcomp in enumerate((kx, ky, kz)):
        psi[..., axis] = np.fft.irfftn(
            1j * kcomp * delta_k * inv_k2, s=(ng, ng, ng), axes=(0, 1, 2)
        )
    return psi


def zeldovich_ics(
    np_side: int,
    cosmo: LCDM,
    a_init: float,
    box: float | None = None,
    ng: int | None = None,
    seed: int = 0,
    transfer: str = "eisenstein_hu",
) -> ParticleSet:
    """Zel'dovich initial conditions on a particle lattice.

    Parameters
    ----------
    np_side:
        Particles per dimension (``np_side^3`` total).
    cosmo:
        Background cosmology.
    a_init:
        Starting scale factor (e.g. 0.02 for z=49).
    box:
        Box side in Mpc/h; defaults to ``np_side`` (1 Mpc/h spacing, the
        paper's configuration).
    ng:
        Displacement-field mesh (defaults to ``np_side``).
    seed:
        Random realization seed.

    Returns
    -------
    ParticleSet
        Positions in grid units of the ``ng`` mesh, momenta in the
        supercomoving convention of :mod:`repro.hacc.integrator`, ids
        numbered lattice-row-major.
    """
    if np_side < 2:
        raise ValueError(f"np_side must be >= 2, got {np_side}")
    if not 0 < a_init <= 1:
        raise ValueError(f"a_init must be in (0, 1], got {a_init}")
    box = float(np_side) if box is None else float(box)
    ng = int(np_side) if ng is None else int(ng)

    power = LinearPowerSpectrum(cosmo, transfer=transfer)
    dk = gaussian_field_k(ng, box, power, a=1.0, seed=seed)  # z=0 normalization
    psi = zeldovich_displacements(dk, ng, box)  # Mpc/h, z=0 amplitude

    # Lattice coincides with the mesh when np_side == ng; otherwise sample
    # the displacement field at lattice sites via nearest mesh point.
    spacing_g = ng / np_side  # lattice spacing in grid units
    idx = np.arange(np_side)
    qx, qy, qz = np.meshgrid(idx, idx, idx, indexing="ij")
    lattice_g = (
        np.stack([qx, qy, qz], axis=-1).reshape(-1, 3).astype(float) * spacing_g
    )
    mesh_idx = np.mod(np.rint(lattice_g).astype(np.int64), ng)
    psi_p = psi[mesh_idx[:, 0], mesh_idx[:, 1], mesh_idx[:, 2]]  # Mpc/h

    d_i = cosmo.growth_factor(a_init)
    f_i = cosmo.growth_rate(a_init)
    e_i = cosmo.e_of_a(a_init)
    cell = box / ng  # Mpc/h per grid unit

    positions = np.mod(lattice_g + d_i * psi_p / cell, ng)
    # Supercomoving momentum p = a^2 dx/dt * (t0/r0); Zel'dovich gives
    # dx/dt = (dD/dt) psi = H0 a E f D psi, hence p = a^2 E f D psi (grid units).
    momenta = (a_init**2 * e_i * f_i * d_i) * psi_p / cell

    return ParticleSet(
        positions=positions,
        velocities=momenta,
        ids=np.arange(np_side**3, dtype=np.int64),
    )
