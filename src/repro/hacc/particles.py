"""Struct-of-arrays particle storage.

HACC stores particles as parallel arrays (positions, momenta, global ids);
:class:`ParticleSet` mirrors that layout so every operation — force
interpolation, migration masks, ghost selection — is a vectorized NumPy
expression over contiguous arrays.  Optional per-particle ``annotations``
(extra named arrays, e.g. analysis tags) ride along through every
``select``/``concatenate``/migration round trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ParticleSet"]


@dataclass
class ParticleSet:
    """Particles as parallel arrays.

    Attributes
    ----------
    positions:
        ``(n, 3)`` comoving positions (grid units inside the integrator,
        Mpc/h at the analysis interface).
    velocities:
        ``(n, 3)`` conjugate momenta / velocities in matching units.
    ids:
        ``(n,)`` globally unique particle identifiers (int64), preserved
        across migration and ghost exchange.
    annotations:
        Optional named per-particle arrays (first axis length ``n``).
        Dtypes and keys survive selection, concatenation, and migration —
        including zero-row selections, which rebalancing legitimately
        produces on ranks with no outgoing particles.
    """

    positions: np.ndarray
    velocities: np.ndarray
    ids: np.ndarray
    annotations: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.positions = np.atleast_2d(np.asarray(self.positions, dtype=float))
        self.velocities = np.atleast_2d(np.asarray(self.velocities, dtype=float))
        self.ids = np.asarray(self.ids, dtype=np.int64)
        n = len(self.positions)
        if self.positions.shape != (n, 3):
            raise ValueError(f"positions must be (n, 3), got {self.positions.shape}")
        if self.velocities.shape != (n, 3):
            raise ValueError(
                f"velocities must match positions, got {self.velocities.shape}"
            )
        if self.ids.shape != (n,):
            raise ValueError(f"ids must be (n,), got {self.ids.shape}")
        for key, value in list(self.annotations.items()):
            arr = np.asarray(value)
            if arr.shape[:1] != (n,):
                raise ValueError(
                    f"annotation {key!r} must have leading length {n}, "
                    f"got shape {arr.shape}"
                )
            self.annotations[key] = arr

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.positions)

    @classmethod
    def empty(cls) -> "ParticleSet":
        """A particle set with zero particles (and no annotations)."""
        return cls(
            positions=np.empty((0, 3)),
            velocities=np.empty((0, 3)),
            ids=np.empty(0, dtype=np.int64),
        )

    @staticmethod
    def _as_index(mask_or_index: np.ndarray) -> np.ndarray:
        idx = np.asarray(mask_or_index)
        if idx.size == 0 and idx.dtype.kind not in "bui":
            # An empty Python list defaults to float64, which NumPy rejects
            # as an index; a zero-row selection is legitimate (migration
            # with no outgoing particles), so coerce to an int index.
            idx = idx.astype(np.int64)
        return idx

    def select(self, mask_or_index: np.ndarray) -> "ParticleSet":
        """Subset by boolean mask or index array (copies).

        Zero-row selections (empty masks, empty index lists) are valid and
        preserve all dtypes and annotation keys.
        """
        idx = self._as_index(mask_or_index)
        return ParticleSet(
            positions=self.positions[idx].copy(),
            velocities=self.velocities[idx].copy(),
            ids=self.ids[idx].copy(),
            annotations={k: v[idx].copy() for k, v in self.annotations.items()},
        )

    @staticmethod
    def concatenate(parts: list["ParticleSet"]) -> "ParticleSet":
        """Concatenate particle sets (empty input yields an empty set).

        Un-annotated zero-row parts (e.g. ``ParticleSet.empty()`` filler in
        migration outboxes) are neutral elements and are skipped.  Annotated
        zero-row parts participate so that keys and dtypes round-trip even
        when every rank sends nothing.  Mixing annotated and un-annotated
        non-trivial parts is ambiguous and raises.
        """
        live = [p for p in parts if len(p) > 0 or p.annotations]
        if not live:
            return ParticleSet.empty()
        keysets = {frozenset(p.annotations) for p in live}
        if len(keysets) > 1:
            keys = sorted(frozenset.union(*keysets) - frozenset.intersection(*keysets))
            raise ValueError(
                f"cannot concatenate particle sets with mismatched "
                f"annotation keys (differing: {keys})"
            )
        keys = sorted(keysets.pop())
        return ParticleSet(
            positions=np.concatenate([p.positions for p in live]),
            velocities=np.concatenate([p.velocities for p in live]),
            ids=np.concatenate([p.ids for p in live]),
            annotations={
                k: np.concatenate([p.annotations[k] for p in live]) for k in keys
            },
        )

    def copy(self) -> "ParticleSet":
        """Deep copy."""
        return ParticleSet(
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            ids=self.ids.copy(),
            annotations={k: v.copy() for k, v in self.annotations.items()},
        )
