"""Struct-of-arrays particle storage.

HACC stores particles as parallel arrays (positions, momenta, global ids);
:class:`ParticleSet` mirrors that layout so every operation — force
interpolation, migration masks, ghost selection — is a vectorized NumPy
expression over contiguous arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ParticleSet"]


@dataclass
class ParticleSet:
    """Particles as parallel arrays.

    Attributes
    ----------
    positions:
        ``(n, 3)`` comoving positions (grid units inside the integrator,
        Mpc/h at the analysis interface).
    velocities:
        ``(n, 3)`` conjugate momenta / velocities in matching units.
    ids:
        ``(n,)`` globally unique particle identifiers (int64), preserved
        across migration and ghost exchange.
    """

    positions: np.ndarray
    velocities: np.ndarray
    ids: np.ndarray

    def __post_init__(self) -> None:
        self.positions = np.atleast_2d(np.asarray(self.positions, dtype=float))
        self.velocities = np.atleast_2d(np.asarray(self.velocities, dtype=float))
        self.ids = np.asarray(self.ids, dtype=np.int64)
        n = len(self.positions)
        if self.positions.shape != (n, 3):
            raise ValueError(f"positions must be (n, 3), got {self.positions.shape}")
        if self.velocities.shape != (n, 3):
            raise ValueError(
                f"velocities must match positions, got {self.velocities.shape}"
            )
        if self.ids.shape != (n,):
            raise ValueError(f"ids must be (n,), got {self.ids.shape}")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.positions)

    @classmethod
    def empty(cls) -> "ParticleSet":
        """A particle set with zero particles."""
        return cls(
            positions=np.empty((0, 3)),
            velocities=np.empty((0, 3)),
            ids=np.empty(0, dtype=np.int64),
        )

    def select(self, mask_or_index: np.ndarray) -> "ParticleSet":
        """Subset by boolean mask or index array (copies)."""
        return ParticleSet(
            positions=self.positions[mask_or_index].copy(),
            velocities=self.velocities[mask_or_index].copy(),
            ids=self.ids[mask_or_index].copy(),
        )

    @staticmethod
    def concatenate(parts: list["ParticleSet"]) -> "ParticleSet":
        """Concatenate particle sets (empty input yields an empty set)."""
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            return ParticleSet.empty()
        return ParticleSet(
            positions=np.concatenate([p.positions for p in parts]),
            velocities=np.concatenate([p.velocities for p in parts]),
            ids=np.concatenate([p.ids for p in parts]),
        )

    def copy(self) -> "ParticleSet":
        """Deep copy."""
        return ParticleSet(
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            ids=self.ids.copy(),
        )
