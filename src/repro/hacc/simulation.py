"""HACC-style N-body simulation driver with domain decomposition.

:class:`HACCSimulation` couples the pieces of this subpackage — Zel'dovich
initial conditions, CIC mesh transfers, the spectral Poisson solver, and
KDK stepping — into a rank-parallel simulation: each rank owns the
particles inside one block of a :class:`~repro.diy.decomposition.
Decomposition` and they cooperate through the communicator.

Parallelization strategy (a documented substitution for HACC's distributed
FFT): per-rank CIC deposits are **allreduced into a replicated global
mesh**, every rank runs the identical spectral solve, and forces are
gathered locally.  At the mesh sizes this reproduction targets (<= 128^3)
the replicated mesh is cheap, results are bitwise rank-count-independent,
and the particle side — which is what tess consumes — has exactly HACC's
structure: block-owned particles, periodic wrapping, and post-drift
migration to neighbor ranks.

In situ analysis hooks fire at selected steps with the live particle state,
which is how the cosmology-tools framework (:mod:`repro.insitu`) attaches.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import faults, observe
from ..observe import trace as _trace
from ..diy.bounds import Bounds
from ..diy.comm import Communicator, run_parallel
from ..diy.decomposition import Decomposition
from .cosmology import LCDM, PLANCK_LIKE
from .initial_conditions import zeldovich_ics
from .integrator import TimeStepper, kdk_step
from .particles import ParticleSet

__all__ = [
    "SimulationConfig",
    "StepRecord",
    "RecoveryStats",
    "HACCSimulation",
    "run_simulation",
    "run_with_recovery",
]

#: Hook signature: hook(simulation, step_index, scale_factor).
Hook = Callable[["HACCSimulation", int, float], None]


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulation run (the 'input deck').

    Defaults follow the paper's setup: ``np_side`` particles per dimension
    on an equal-size force mesh in a box of ``np_side`` Mpc/h (initial
    spacing exactly 1 Mpc/h), evolved from z=49 to z=0.
    """

    np_side: int = 32
    nsteps: int = 100
    cosmo: LCDM = field(default_factory=lambda: PLANCK_LIKE)
    a_init: float = 0.02
    a_final: float = 1.0
    seed: int = 0
    transfer: str = "eisenstein_hu"
    deconvolve: bool = False
    ng: int | None = None
    box: float | None = None
    #: dynamic load balancing (:mod:`repro.balance`): when the max/mean
    #: per-rank particle count exceeds this after a migration, the domain
    #: is re-split along a space-filling curve into equal-load blocks and
    #: particles migrate to their new owners.  ``None`` disables it.
    balance_threshold: float | None = None
    #: coarse load-grid cells per axis for the repartitioner
    balance_grid: int = 16
    #: check the imbalance gauges every this many steps
    balance_every: int = 1

    def __post_init__(self) -> None:
        if self.np_side < 2:
            raise ValueError(f"np_side must be >= 2, got {self.np_side}")
        if self.balance_threshold is not None and self.balance_threshold <= 1.0:
            raise ValueError(
                f"balance_threshold must exceed 1.0 (perfect balance), "
                f"got {self.balance_threshold}"
            )
        if self.balance_grid < 2:
            raise ValueError(f"balance_grid must be >= 2, got {self.balance_grid}")
        if self.balance_every < 1:
            raise ValueError(f"balance_every must be >= 1, got {self.balance_every}")

    @property
    def mesh_size(self) -> int:
        """Force-mesh points per dimension."""
        return self.np_side if self.ng is None else self.ng

    @property
    def box_size(self) -> float:
        """Box side in Mpc/h."""
        return float(self.np_side) if self.box is None else float(self.box)

    @property
    def cell_size(self) -> float:
        """Mesh cell size in Mpc/h."""
        return self.box_size / self.mesh_size

    @property
    def num_particles(self) -> int:
        """Total particle count."""
        return self.np_side**3

    def domain(self) -> Bounds:
        """The periodic simulation domain in Mpc/h."""
        return Bounds.cube(self.box_size)


@dataclass
class StepRecord:
    """Wall-clock accounting for one step (feeds Table II)."""

    step: int
    a: float
    seconds: float


@dataclass
class RecoveryStats:
    """Observability for one :func:`run_with_recovery` invocation.

    ``resumed_step`` is the step index the run restarted from (``-1`` for a
    fresh start); the checkpoint counters cover only checkpoints written by
    *this* invocation.
    """

    resumed_step: int = -1
    steps_run: int = 0
    checkpoints_written: int = 0
    checkpoint_bytes: int = 0
    checkpoint_seconds: float = 0.0


class HACCSimulation:
    """One rank's view of a domain-decomposed N-body run.

    Parameters
    ----------
    config:
        The input deck.
    comm:
        Communicator; ``None`` runs serially (a single implicit rank).
    decomposition:
        Block decomposition of the domain; defaults to one near-cubic block
        per rank.  Must have exactly ``comm.size`` blocks (one per rank,
        the paper's configuration).
    """

    def __init__(
        self,
        config: SimulationConfig,
        comm: Communicator | None = None,
        decomposition: Decomposition | None = None,
    ) -> None:
        self.config = config
        self.comm = comm
        nranks = 1 if comm is None else comm.size
        self.decomposition = decomposition or Decomposition.regular(
            config.domain(), nranks, periodic=True
        )
        if self.decomposition.nblocks != nranks:
            raise ValueError(
                f"decomposition has {self.decomposition.nblocks} blocks for "
                f"{nranks} ranks; HACCSimulation runs one block per rank"
            )
        self.gid = 0 if comm is None else comm.rank
        self.block = self.decomposition.block(self.gid)
        self.stepper = TimeStepper(config.a_init, config.a_final, config.nsteps)
        self.a = config.a_init
        self.step_index = 0
        self.step_records: list[StepRecord] = []
        #: per-particle scalar annotation aligned with :attr:`local` (the
        #: Voronoi cell density of the paper's §V proposal); populated by
        #: checkpoint restart, invalidated when particles migrate.
        self.cell_density: np.ndarray | None = None
        #: dynamic-load-balance bookkeeping (see :meth:`_maybe_rebalance`)
        self.rebalances = 0
        self.last_imbalance: float | None = None

        # Every rank generates the identical realization deterministically
        # and keeps its own block's particles (replicated IC generation).
        with _trace.span("ic", rank=self.gid, cat="sim"):
            ics = zeldovich_ics(
                config.np_side,
                config.cosmo,
                config.a_init,
                box=config.box_size,
                ng=config.mesh_size,
                seed=config.seed,
                transfer=config.transfer,
            )
            mine = (
                self.decomposition.locate(self._to_mpc(ics.positions))
                == self.gid
            )
            self.local = ics.select(mine)

    # ------------------------------------------------------------------
    # unit helpers
    # ------------------------------------------------------------------
    def _to_mpc(self, grid_positions: np.ndarray) -> np.ndarray:
        return grid_positions * self.config.cell_size

    def positions_mpc(self) -> np.ndarray:
        """Local particle positions in Mpc/h."""
        return self._to_mpc(self.local.positions)

    @property
    def num_local(self) -> int:
        """Number of locally owned particles."""
        return len(self.local)

    def num_global(self) -> int:
        """Total particle count across ranks (collective in parallel)."""
        if self.comm is None:
            return len(self.local)
        return int(self.comm.allreduce(len(self.local)))

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def _global_mass_mesh(self, local_mesh: np.ndarray) -> np.ndarray:
        if self.comm is None:
            return local_mesh
        return self.comm.allreduce(local_mesh)

    def step(self) -> None:
        """Advance one KDK step and migrate particles to their new owners."""
        if self.step_index >= self.config.nsteps:
            raise RuntimeError("simulation already at a_final")
        inj = faults.active()
        if inj is not None:
            # Fault-injection seam: may kill this rank entering this step.
            inj.on_step(self.gid, self.step_index + 1)
        t0 = time.perf_counter()
        with _trace.span(
            "step", rank=self.gid, cat="sim", step=self.step_index + 1
        ):
            self.a = kdk_step(
                self.local,
                self.config.mesh_size,
                self.config.cosmo,
                self.stepper.a_at(self.step_index),
                self.stepper.da,
                deconvolve=self.config.deconvolve,
                density_callback=self._global_mass_mesh,
            )
            self.step_index += 1
            self._migrate()
            self._maybe_rebalance()
        self.step_records.append(
            StepRecord(self.step_index, self.a, time.perf_counter() - t0)
        )
        if observe.enabled():
            p = self.local
            observe.registry().gauge(
                "mem.particle_bytes", rank=self.gid
            ).set_max(
                p.positions.nbytes + p.velocities.nbytes + p.ids.nbytes
            )

    def _migrate(self) -> None:
        """Send particles that drifted out of this block to their owners."""
        if self.comm is None:
            return
        owners = self.decomposition.locate(self.positions_mpc())
        staying = owners == self.gid
        outbox: list[ParticleSet] = []
        for rank in range(self.comm.size):
            if rank == self.comm.rank:
                outbox.append(ParticleSet.empty())
            else:
                outbox.append(self.local.select(owners == rank))
        arrivals = self.comm.alltoall(outbox)
        self.local = ParticleSet.concatenate(
            [self.local.select(staying)] + [p for p in arrivals if len(p)]
        )
        # The annotation indexes the pre-migration particle order; drop it
        # rather than silently misalign it.
        self.cell_density = None

    def _maybe_rebalance(self) -> bool:
        """Re-split the domain when the load imbalance crosses the threshold.

        Collective: every rank shares its particle count (the max/mean and
        max/min gauges are published through ``repro.observe``), and when
        max/mean exceeds ``config.balance_threshold`` all ranks allreduce
        the coarse load histogram, deterministically build the same
        :class:`~repro.balance.BalancedDecomposition`, and migrate
        particles to their new owners through the existing all-to-all
        (chunked transport on the process backend).  Particle state is
        untouched — only ownership changes — so analysis results match a
        static-decomposition run.
        """
        cfg = self.config
        if cfg.balance_threshold is None or self.comm is None:
            return False
        if self.step_index % cfg.balance_every != 0:
            return False
        from ..balance import (
            compute_cell_counts,
            load_imbalance,
            publish_imbalance,
            rebalance_decomposition,
        )

        counts = np.asarray(self.comm.allgather(self.num_local), dtype=np.int64)
        gauges = load_imbalance(counts)
        publish_imbalance(gauges)
        self.last_imbalance = gauges["max_over_mean"]
        if gauges["max_over_mean"] <= cfg.balance_threshold:
            return False
        with _trace.span(
            "rebalance", rank=self.gid, cat="sim", step=self.step_index
        ):
            hist = self.comm.allreduce(
                compute_cell_counts(
                    self.positions_mpc(), cfg.domain(), cfg.balance_grid
                )
            )
            self.decomposition = rebalance_decomposition(
                cfg.domain(), hist, self.comm.size, periodic=True
            )
            self.block = self.decomposition.block(self.gid)
            self._migrate()
        self.rebalances += 1
        post = load_imbalance(
            np.asarray(self.comm.allgather(self.num_local), dtype=np.int64)
        )
        publish_imbalance(post, prefix="balance.post")
        self.last_imbalance = post["max_over_mean"]
        if observe.enabled():
            observe.registry().counter("balance.rebalances").inc()
        return True

    def run(self, hooks: dict[int, list[Hook]] | list[Hook] | None = None) -> None:
        """Run all remaining steps, firing hooks after selected steps.

        ``hooks`` may be a list (fire after every step) or a mapping from
        step index (1-based, i.e. after that many completed steps) to hook
        lists.  Hooks also fire at step 0 (initial conditions) when the
        mapping contains key 0.
        """
        table = _normalize_hooks(hooks, self.config.nsteps)

        for hook in table.get(0, []):
            hook(self, 0, self.a)
        while self.step_index < self.config.nsteps:
            self.step()
            for hook in table.get(self.step_index, []):
                hook(self, self.step_index, self.a)

    def simulation_seconds(self) -> float:
        """Total wall-clock spent inside :meth:`step` so far."""
        return float(sum(r.seconds for r in self.step_records))


def _normalize_hooks(
    hooks: dict[int, list[Hook]] | list[Hook] | None, nsteps: int
) -> dict[int, list[Hook]]:
    """The hook-table form of ``hooks`` (see :meth:`HACCSimulation.run`)."""
    if hooks is None:
        return {}
    if isinstance(hooks, dict):
        return hooks
    # A plain list fires after every completed step (not at the ICs).
    return {s: list(hooks) for s in range(1, nsteps + 1)}


def run_with_recovery(
    config: SimulationConfig,
    comm: Communicator | None = None,
    *,
    checkpoint_dir: str,
    checkpoint_every: int = 1,
    resume: bool = False,
    hooks: dict[int, list[Hook]] | list[Hook] | None = None,
    precision: str = "f8",
) -> HACCSimulation:
    """Run a simulation with periodic checkpoints and crash recovery.

    Every ``checkpoint_every`` completed steps (and at the final step) the
    full state is written crash-consistently to
    ``checkpoint_dir/ckpt-STEP.ckpt``.  With ``resume=True`` the run
    restarts from the newest checkpoint in the directory that passes full
    validation — torn files from a mid-write crash are skipped — and hooks
    for already-completed steps (in situ analysis included) are *not*
    re-fired.  The default ``"f8"`` precision makes a same-rank-count
    resume reproduce the uninterrupted run bit for bit.

    Returns the finished simulation; ``sim.recovery`` is a
    :class:`RecoveryStats` describing what this invocation did.
    """
    from .checkpoint import (
        checkpoint_path,
        find_latest_checkpoint,
        restart_simulation,
        write_checkpoint,
    )

    if comm is None or comm.rank == 0:
        os.makedirs(checkpoint_dir, exist_ok=True)
    if comm is not None:
        comm.barrier()

    sim: HACCSimulation | None = None
    resumed_step = -1
    if resume:
        # Rank 0 decides which checkpoint to restart from (validation is
        # deterministic, but one decision broadcast keeps ranks agreeing
        # even if the directory changes under a concurrent scan).
        found = None
        if comm is None or comm.rank == 0:
            found = find_latest_checkpoint(checkpoint_dir, config)
        if comm is not None:
            found = comm.bcast(found, root=0)
        if found is not None:
            resumed_step, path = found
            sim = restart_simulation(path, config, comm=comm)
    if sim is None:
        sim = HACCSimulation(config, comm=comm)

    recovery = RecoveryStats(resumed_step=resumed_step)
    sim.recovery = recovery
    table = _normalize_hooks(hooks, config.nsteps)

    if resumed_step < 0:
        for hook in table.get(0, []):
            hook(sim, 0, sim.a)
    while sim.step_index < config.nsteps:
        sim.step()
        recovery.steps_run += 1
        if sim.step_index > resumed_step:  # skip already-analyzed steps
            for hook in table.get(sim.step_index, []):
                hook(sim, sim.step_index, sim.a)
        if checkpoint_every > 0 and (
            sim.step_index % checkpoint_every == 0
            or sim.step_index == config.nsteps
        ):
            t0 = time.perf_counter()
            nbytes = write_checkpoint(
                checkpoint_path(checkpoint_dir, sim.step_index),
                comm,
                sim,
                scalar=sim.cell_density,
                precision=precision,
            )
            recovery.checkpoints_written += 1
            recovery.checkpoint_bytes += int(nbytes)
            recovery.checkpoint_seconds += time.perf_counter() - t0
    if observe.enabled():
        observe.absorb_recovery_stats(recovery, sim.gid)
    return sim


def run_simulation(
    config: SimulationConfig,
    nranks: int = 1,
    hooks: dict[int, list[Hook]] | list[Hook] | None = None,
    backend: str = "thread",
) -> ParticleSet:
    """Run a complete simulation and return the final global particles.

    Serial (``nranks=1``) runs inline; parallel runs launch the SPMD region
    internally and concatenate the per-rank survivors (positions in grid
    units, as in :class:`HACCSimulation`).  ``backend`` selects the SPMD
    substrate (``"thread"`` or ``"process"``); see
    :func:`repro.diy.comm.run_parallel`.
    """

    def worker(comm: Communicator) -> ParticleSet:
        sim = HACCSimulation(config, comm=comm if comm.size > 1 else None)
        sim.run(hooks=hooks)
        return sim.local

    parts = run_parallel(nranks, worker, backend=backend)
    return ParticleSet.concatenate(parts)
