"""HACC-style particle checkpoints (paper §III-C2's 40 B/particle baseline).

The paper compares tess's output budget against "a HACC checkpoint that
saves only particle data" at 40 bytes per particle.  That layout is
reproduced exactly: per particle, six float32 phase-space components, one
float32 scalar slot (HACC stores the potential; here it carries the cell
density when a tessellation has annotated it — the paper's §V proposal),
a uint32 status mask, and an int64 id:

    6 * 4 (x y z vx vy vz) + 4 (scalar) + 4 (mask) + 8 (id) = 40 bytes.

Checkpoints are written collectively through the DIY blocked writer (one
block per rank) and support exact simulation restart:
:func:`restart_simulation` reconstructs a :class:`HACCSimulation` mid-run,
and stepping it forward reproduces the uninterrupted run bit-for-bit up to
float32 storage rounding.
"""

from __future__ import annotations

import struct

import numpy as np

from ..diy.comm import Communicator
from ..diy.mpi_io import BlockFileReader, write_blocks
from .particles import ParticleSet
from .simulation import HACCSimulation, SimulationConfig

__all__ = [
    "BYTES_PER_PARTICLE",
    "write_checkpoint",
    "read_checkpoint",
    "restart_simulation",
]

BYTES_PER_PARTICLE = 40
_HEADER = struct.Struct("<dQi")  # scale factor, step index, np_side


def _encode_block(
    particles: ParticleSet, a: float, step: int, np_side: int,
    scalar: np.ndarray | None = None,
) -> bytes:
    n = len(particles)
    rec = np.empty((n, 7), dtype="<f4")
    rec[:, 0:3] = particles.positions
    rec[:, 3:6] = particles.velocities
    rec[:, 6] = 0.0 if scalar is None else np.asarray(scalar, dtype="<f4")
    mask = np.zeros(n, dtype="<u4")  # HACC's per-particle status word
    return (
        _HEADER.pack(a, step, np_side)
        + struct.pack("<Q", n)
        + rec.tobytes()
        + mask.tobytes()
        + particles.ids.astype("<i8").tobytes()
    )


def _decode_block(blob: bytes) -> tuple[ParticleSet, np.ndarray, float, int, int]:
    a, step, np_side = _HEADER.unpack_from(blob, 0)
    off = _HEADER.size
    (n,) = struct.unpack_from("<Q", blob, off)
    off += 8
    rec = np.frombuffer(blob, dtype="<f4", count=7 * n, offset=off).reshape(n, 7)
    off += 28 * n
    off += 4 * n  # status mask (unused on read)
    ids = np.frombuffer(blob, dtype="<i8", count=n, offset=off)
    particles = ParticleSet(
        positions=rec[:, 0:3].astype(float),
        velocities=rec[:, 3:6].astype(float),
        ids=ids.copy(),
    )
    return particles, rec[:, 6].astype(float), float(a), int(step), int(np_side)


def write_checkpoint(
    path: str,
    comm: Communicator,
    sim: HACCSimulation,
    scalar: np.ndarray | None = None,
) -> int:
    """Collectively write the simulation state; returns total file bytes.

    ``scalar`` optionally fills the per-particle annotation slot (e.g. the
    Voronoi cell density from an in situ tessellation).
    """
    blob = _encode_block(sim.local, sim.a, sim.step_index, sim.config.np_side, scalar)
    return write_blocks(path, comm, [(comm.rank, blob)], nblocks_total=comm.size)


def read_checkpoint(path: str) -> tuple[ParticleSet, np.ndarray, float, int, int]:
    """Read all blocks of a checkpoint.

    Returns ``(particles, scalar, a, step, np_side)`` with the particles
    concatenated across blocks.
    """
    parts: list[ParticleSet] = []
    scalars: list[np.ndarray] = []
    meta = None
    with BlockFileReader(path) as reader:
        for gid in range(reader.nblocks):
            p, s, a, step, np_side = _decode_block(reader.read_block(gid))
            parts.append(p)
            scalars.append(s)
            if meta is None:
                meta = (a, step, np_side)
            elif meta != (a, step, np_side):
                raise ValueError(f"{path}: inconsistent block headers")
    assert meta is not None
    particles = ParticleSet.concatenate(parts)
    scalar = np.concatenate(scalars) if scalars else np.empty(0)
    return particles, scalar, meta[0], meta[1], meta[2]


def restart_simulation(
    path: str, config: SimulationConfig, comm: Communicator | None = None
) -> HACCSimulation:
    """Rebuild a mid-run simulation from a checkpoint.

    ``config`` must match the checkpointed run (particle count is
    verified; physics parameters are the caller's responsibility, exactly
    as with HACC input decks).  Each rank keeps the particles its block
    owns under the current decomposition, so the restart rank count may
    differ from the writing rank count.
    """
    particles, _, a, step, np_side = read_checkpoint(path)
    if np_side != config.np_side:
        raise ValueError(
            f"checkpoint is a {np_side}^3 run; config says {config.np_side}^3"
        )
    sim = HACCSimulation(config, comm=comm)
    mine = sim.decomposition.locate(sim._to_mpc(particles.positions)) == sim.gid
    sim.local = particles.select(mine)
    sim.a = a
    sim.step_index = step
    return sim
