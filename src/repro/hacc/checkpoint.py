"""HACC-style particle checkpoints (paper §III-C2's 40 B/particle baseline).

The paper compares tess's output budget against "a HACC checkpoint that
saves only particle data" at 40 bytes per particle.  That layout is
reproduced exactly: per particle, six float32 phase-space components, one
float32 scalar slot (HACC stores the potential; here it carries the cell
density when a tessellation has annotated it — the paper's §V proposal),
a uint32 status mask, and an int64 id:

    6 * 4 (x y z vx vy vz) + 4 (scalar) + 4 (mask) + 8 (id) = 40 bytes.

For *restart* checkpoints (as opposed to analysis outputs) the writer also
supports ``precision="f8"`` — full float64 phase space, as production HACC
uses for its own restart dumps — so a resumed run reproduces the
uninterrupted run **bit for bit**, not merely to float32 rounding.

Checkpoints are written collectively through the DIY blocked writer (one
block per rank), which is crash-consistent: the file is staged in a temp
path and atomically renamed into place only after every rank has written
and fsynced, so a rank dying mid-checkpoint never destroys the previous
good checkpoint (see :mod:`repro.diy.mpi_io`).  Torn or truncated files
are rejected with :class:`CheckpointError` — by the container's CRC32
footer, by per-block size validation in :func:`_decode_block`, and
(behind ``validate=True``) by a global particle-id coverage check.

:func:`restart_simulation` reconstructs a :class:`HACCSimulation` mid-run;
:func:`find_latest_checkpoint` scans a checkpoint directory for the newest
file that passes full validation, which is what the recovery driver
(:func:`repro.hacc.simulation.run_with_recovery`) restarts from.
"""

from __future__ import annotations

import os
import re
import struct

import numpy as np

from ..diy.comm import Communicator, run_parallel
from ..diy.mpi_io import BlockFileReader, CheckpointError, write_blocks
from ..observe import trace as _trace
from .particles import ParticleSet
from .simulation import HACCSimulation, SimulationConfig

__all__ = [
    "BYTES_PER_PARTICLE",
    "CheckpointError",
    "write_checkpoint",
    "read_checkpoint",
    "read_checkpoint_blocks",
    "restart_simulation",
    "checkpoint_path",
    "list_checkpoints",
    "find_latest_checkpoint",
]

BYTES_PER_PARTICLE = 40

_BLOCK_MAGIC = b"HCKP"
#: magic, precision flag (0 = f4, 1 = f8), scale factor, step, np_side, n
_BLOCK_HEADER = struct.Struct("<4sBdQiQ")
_PRECISIONS = {"f4": 0, "f8": 1}
_ITEMSIZE = {0: 4, 1: 8}

_CKPT_RE = re.compile(r"^ckpt-(\d{6})\.ckpt$")


def _encode_block(
    particles: ParticleSet, a: float, step: int, np_side: int,
    scalar: np.ndarray | None = None,
    precision: str = "f4",
) -> bytes:
    try:
        prec = _PRECISIONS[precision]
    except KeyError:
        raise ValueError(f"precision must be 'f4' or 'f8', got {precision!r}")
    ftype = f"<f{_ITEMSIZE[prec]}"
    n = len(particles)
    rec = np.empty((n, 7), dtype=ftype)
    rec[:, 0:3] = particles.positions
    rec[:, 3:6] = particles.velocities
    rec[:, 6] = 0.0 if scalar is None else np.asarray(scalar, dtype=ftype)
    mask = np.zeros(n, dtype="<u4")  # HACC's per-particle status word
    return (
        _BLOCK_HEADER.pack(_BLOCK_MAGIC, prec, a, step, np_side, n)
        + rec.tobytes()
        + mask.tobytes()
        + particles.ids.astype("<i8").tobytes()
    )


def _decode_block(
    blob: bytes, path: str = "<memory>", gid: int = -1
) -> tuple[ParticleSet, np.ndarray, float, int, int]:
    """Decode one checkpoint block, validating sizes up front.

    A truncated or foreign blob raises :class:`CheckpointError` naming the
    path, block gid, and expected vs. actual byte counts — never an opaque
    ``ValueError`` out of ``np.frombuffer``.
    """
    if len(blob) < _BLOCK_HEADER.size:
        raise CheckpointError(
            f"{path}: checkpoint block {gid} truncated: {len(blob)} bytes, "
            f"header alone is {_BLOCK_HEADER.size}"
        )
    magic, prec, a, step, np_side = _BLOCK_HEADER.unpack_from(blob, 0)[:5]
    n = _BLOCK_HEADER.unpack_from(blob, 0)[5]
    if magic != _BLOCK_MAGIC:
        raise CheckpointError(
            f"{path}: block {gid} is not a HACC checkpoint block "
            f"(magic {magic!r})"
        )
    if prec not in _ITEMSIZE:
        raise CheckpointError(
            f"{path}: block {gid} has unknown precision flag {prec}"
        )
    itemsize = _ITEMSIZE[prec]
    expected = _BLOCK_HEADER.size + n * (7 * itemsize + 4 + 8)
    if len(blob) != expected:
        raise CheckpointError(
            f"{path}: checkpoint block {gid} holds {len(blob)} bytes, "
            f"expected {expected} for {n} particles"
        )
    off = _BLOCK_HEADER.size
    rec = np.frombuffer(
        blob, dtype=f"<f{itemsize}", count=7 * n, offset=off
    ).reshape(n, 7)
    off += 7 * itemsize * n
    off += 4 * n  # status mask (unused on read)
    ids = np.frombuffer(blob, dtype="<i8", count=n, offset=off)
    particles = ParticleSet(
        positions=rec[:, 0:3].astype(float),
        velocities=rec[:, 3:6].astype(float),
        ids=ids.copy(),
    )
    return particles, rec[:, 6].astype(float), float(a), int(step), int(np_side)


def write_checkpoint(
    path: str,
    comm: Communicator | None,
    sim: HACCSimulation,
    scalar: np.ndarray | None = None,
    precision: str = "f4",
) -> int:
    """Collectively write the simulation state; returns total file bytes.

    ``scalar`` optionally fills the per-particle annotation slot (e.g. the
    Voronoi cell density from an in situ tessellation).  ``precision`` is
    ``"f4"`` (the paper's 40 B/particle analysis budget) or ``"f8"`` (exact
    restart, as HACC's own restart dumps).  ``comm=None`` writes serially.
    """
    if comm is None:
        return run_parallel(
            1, lambda c: write_checkpoint(path, c, sim, scalar, precision)
        )[0]
    with _trace.span(
        "checkpoint", rank=comm.rank, cat="io", step=sim.step_index
    ):
        blob = _encode_block(
            sim.local, sim.a, sim.step_index, sim.config.np_side, scalar, precision
        )
        return write_blocks(
            path, comm, [(comm.rank, blob)], nblocks_total=comm.size
        )


def read_checkpoint_blocks(
    path: str, validate: bool = False
) -> tuple[list[tuple[ParticleSet, np.ndarray]], float, int, int]:
    """Read all blocks of a checkpoint, preserving per-block particle order.

    Returns ``(blocks, a, step, np_side)`` where ``blocks[gid]`` is that
    block's ``(particles, scalar)`` exactly as written — which is what makes
    a same-rank-count restart bit-identical.  With ``validate=True`` the
    global particle-id set is additionally checked to be exactly
    ``0..np_side**3 - 1`` with no duplicates, rejecting files assembled
    from torn writes of the pre-CRC format.
    """
    blocks: list[tuple[ParticleSet, np.ndarray]] = []
    meta = None
    with BlockFileReader(path) as reader:
        if reader.nblocks == 0:
            raise CheckpointError(f"{path}: checkpoint contains no blocks")
        for gid in range(reader.nblocks):
            p, s, a, step, np_side = _decode_block(
                reader.read_block(gid), path=path, gid=gid
            )
            blocks.append((p, s))
            if meta is None:
                meta = (a, step, np_side)
            elif meta != (a, step, np_side):
                raise CheckpointError(
                    f"{path}: inconsistent block headers (block {gid} says "
                    f"{(a, step, np_side)}, block 0 says {meta})"
                )
    assert meta is not None
    a, step, np_side = meta
    if validate:
        ids = np.concatenate([p.ids for p, _ in blocks]) if blocks else np.empty(0)
        expected_n = np_side**3
        unique = np.unique(ids)
        if len(ids) != expected_n or len(unique) != len(ids):
            raise CheckpointError(
                f"{path}: checkpoint holds {len(ids)} particles "
                f"({len(ids) - len(unique)} duplicate ids), expected "
                f"{expected_n} unique for a {np_side}^3 run"
            )
        if unique[0] != 0 or unique[-1] != expected_n - 1:
            raise CheckpointError(
                f"{path}: particle ids span [{unique[0]}, {unique[-1]}], "
                f"expected exactly 0..{expected_n - 1}"
            )
    return blocks, a, step, np_side


def read_checkpoint(
    path: str, validate: bool = False
) -> tuple[ParticleSet, np.ndarray, float, int, int]:
    """Read all blocks of a checkpoint.

    Returns ``(particles, scalar, a, step, np_side)`` with the particles
    concatenated across blocks.  See :func:`read_checkpoint_blocks` for
    ``validate``.
    """
    blocks, a, step, np_side = read_checkpoint_blocks(path, validate=validate)
    particles = ParticleSet.concatenate([p for p, _ in blocks])
    scalar = (
        np.concatenate([s for _, s in blocks]) if blocks else np.empty(0)
    )
    return particles, scalar, a, step, np_side


def restart_simulation(
    path: str,
    config: SimulationConfig,
    comm: Communicator | None = None,
    validate: bool = True,
) -> HACCSimulation:
    """Rebuild a mid-run simulation from a checkpoint.

    ``config`` must match the checkpointed run (particle count is
    verified; physics parameters are the caller's responsibility, exactly
    as with HACC input decks).  When the restart rank count equals the
    writing rank count, each rank takes its own block's particles *in
    stored order*, so resuming an ``"f8"``-precision checkpoint reproduces
    the uninterrupted run bit for bit; otherwise particles are
    redistributed under the current decomposition.

    The per-particle scalar annotation (the Voronoi cell density of the
    paper's §V proposal) is redistributed alongside the particles and
    exposed as ``sim.cell_density``, aligned with ``sim.local``.
    """
    blocks, a, step, np_side = read_checkpoint_blocks(path, validate=validate)
    if np_side != config.np_side:
        raise ValueError(
            f"checkpoint is a {np_side}^3 run; config says {config.np_side}^3"
        )
    sim = HACCSimulation(config, comm=comm)
    nranks = 1 if comm is None else comm.size
    if len(blocks) == nranks:
        # Same layout as the writer: adopt this rank's block verbatim.
        particles, scalar = blocks[sim.gid]
        sim.local = particles
        sim.cell_density = scalar
    else:
        particles = ParticleSet.concatenate([p for p, _ in blocks])
        scalar = np.concatenate([s for _, s in blocks])
        mine = sim.decomposition.locate(sim._to_mpc(particles.positions)) == sim.gid
        sim.local = particles.select(mine)
        sim.cell_density = scalar[mine].copy()
    sim.a = a
    sim.step_index = step
    return sim


# ----------------------------------------------------------------------
# checkpoint directories (the recovery driver's storage layout)
# ----------------------------------------------------------------------
def checkpoint_path(directory: str | os.PathLike, step: int) -> str:
    """Canonical path of the checkpoint taken after ``step`` steps."""
    return os.path.join(os.fspath(directory), f"ckpt-{step:06d}.ckpt")


def list_checkpoints(directory: str | os.PathLike) -> list[tuple[int, str]]:
    """All checkpoint files in ``directory`` as ``(step, path)``, ascending.

    Only well-named files are listed; no validation is performed (use
    :func:`find_latest_checkpoint` for that).
    """
    directory = os.fspath(directory)
    out: list[tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        m = _CKPT_RE.match(name)
        if m:
            out.append((int(m.group(1)), os.path.join(directory, name)))
    return sorted(out)


def find_latest_checkpoint(
    directory: str | os.PathLike, config: SimulationConfig | None = None
) -> tuple[int, str] | None:
    """The newest checkpoint in ``directory`` that passes full validation.

    Candidates are tried newest-first; torn, truncated, or id-incomplete
    files (and, when ``config`` is given, wrong-``np_side`` files) are
    skipped, so a crash *during* a checkpoint write falls back to the
    previous good one.  Returns ``(step, path)`` or ``None``.
    """
    for step, path in reversed(list_checkpoints(directory)):
        try:
            _, _, _, np_side = read_checkpoint_blocks(path, validate=True)
        except (CheckpointError, OSError, struct.error):
            continue
        if config is not None and np_side != config.np_side:
            continue
        return step, path
    return None
