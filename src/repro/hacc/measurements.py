"""Measurements on simulation snapshots: P(k) and two-point statistics.

HACC's science output is dominated by the matter power spectrum (the paper
cites the Coyote Universe precision-P(k) program), and the paper motivates
tessellations as a probe *beyond* such two-point statistics.  This module
supplies the two-point side: a shot-noise-corrected P(k) estimator on the
CIC mesh, used by tests to validate that the simulation's large scales
track linear theory, and by examples to contrast with the cell-based
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mesh import cic_deposit, density_contrast

__all__ = ["MeasuredPower", "measure_power_spectrum"]


@dataclass(frozen=True)
class MeasuredPower:
    """Binned power spectrum measurement."""

    k: np.ndarray  # bin-mean wavenumber, h/Mpc
    power: np.ndarray  # P(k), (Mpc/h)^3, shot-noise corrected
    modes: np.ndarray  # modes per bin
    shot_noise: float  # subtracted white level, box^3 / N

    def rows(self) -> list[tuple[float, float, int]]:
        """(k, P, modes) rows for printing."""
        return list(zip(self.k.tolist(), self.power.tolist(), self.modes.tolist()))


def measure_power_spectrum(
    positions: np.ndarray,
    box: float,
    ng: int,
    nbins: int = 16,
    deconvolve: bool = True,
    subtract_shot_noise: bool = True,
) -> MeasuredPower:
    """Measure P(k) of a periodic particle snapshot.

    Parameters
    ----------
    positions:
        ``(n, 3)`` positions in box units ``[0, box)`` (Mpc/h).
    box:
        Box side, Mpc/h.
    ng:
        FFT mesh per dimension.
    nbins:
        Logarithmic k bins between the fundamental and the Nyquist mode.
    deconvolve:
        Divide out the CIC assignment window (|W|^2 per mode).
    subtract_shot_noise:
        Remove the discreteness plateau ``box^3 / N``.
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {pos.shape}")
    n = len(pos)
    if n == 0:
        raise ValueError("no particles")

    delta = density_contrast(cic_deposit(pos / (box / ng), ng))
    dk = np.fft.rfftn(delta)

    k1 = 2.0 * np.pi * np.fft.fftfreq(ng, d=box / ng)
    kz = 2.0 * np.pi * np.fft.rfftfreq(ng, d=box / ng)
    kk = np.sqrt(
        k1[:, None, None] ** 2 + k1[None, :, None] ** 2 + kz[None, None, :] ** 2
    )

    pk_mode = np.abs(dk) ** 2 * (box**3 / ng**6)

    if deconvolve:
        def w1d(k: np.ndarray) -> np.ndarray:
            x = k * (box / ng) / 2.0
            out = np.ones_like(k)
            nz = x != 0
            out[nz] = (np.sin(x[nz]) / x[nz]) ** 2
            return out

        window = (
            w1d(k1)[:, None, None]
            * w1d(k1)[None, :, None]
            * w1d(kz)[None, None, :]
        ) ** 2
        pk_mode = pk_mode / np.maximum(window, 1e-12)

    # rfftn double-counts nothing on the kz=0 / kz=Nyquist planes for the
    # purposes of binned averages if we weight those planes once; the bias
    # from ignoring this is far below our validation tolerances, so modes
    # are binned uniformly.
    k_fund = 2.0 * np.pi / box
    k_nyq = np.pi * ng / box
    edges = np.logspace(np.log10(k_fund * 0.99), np.log10(k_nyq), nbins + 1)
    which = np.digitize(kk.ravel(), edges) - 1
    valid = (which >= 0) & (which < nbins) & (kk.ravel() > 0)

    ksum = np.bincount(which[valid], weights=kk.ravel()[valid], minlength=nbins)
    psum = np.bincount(which[valid], weights=pk_mode.ravel()[valid], minlength=nbins)
    counts = np.bincount(which[valid], minlength=nbins)

    good = counts > 0
    kmean = np.where(good, ksum / np.maximum(counts, 1), np.nan)
    pmean = np.where(good, psum / np.maximum(counts, 1), np.nan)

    shot = box**3 / n
    if subtract_shot_noise:
        pmean = pmean - shot

    return MeasuredPower(
        k=kmean[good],
        power=pmean[good],
        modes=counts[good],
        shot_noise=shot,
    )
