"""Cloud-in-cell (CIC) mesh operations on a periodic grid.

The spectral particle-mesh force solver needs two grid transfers:
depositing particle mass onto the density mesh and gathering mesh-defined
accelerations back to particle positions.  Both use the standard CIC
(trilinear) kernel, fully vectorized with ``np.add.at`` scatter adds —
there are no per-particle Python loops.

Positions are in *grid units* ``[0, ng)``; callers convert from physical
coordinates by dividing by the cell size.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cic_deposit", "cic_gather", "density_contrast"]


def _cic_weights(pos: np.ndarray, ng: int):
    """Base cell indices and per-axis weights for trilinear interpolation."""
    p = np.mod(pos, ng)
    i0 = np.floor(p).astype(np.int64)
    frac = p - i0
    i0 = np.mod(i0, ng)
    i1 = np.mod(i0 + 1, ng)
    return i0, i1, frac


def cic_deposit(
    positions: np.ndarray, ng: int, weights: np.ndarray | None = None
) -> np.ndarray:
    """Deposit particles onto an ``ng^3`` periodic mesh with CIC weighting.

    Parameters
    ----------
    positions:
        ``(n, 3)`` particle positions in grid units.
    ng:
        Mesh points per dimension.
    weights:
        Optional per-particle masses (default 1).

    Returns
    -------
    numpy.ndarray
        ``(ng, ng, ng)`` mass mesh; its sum equals the total input mass.
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {pos.shape}")
    w = np.ones(len(pos)) if weights is None else np.asarray(weights, dtype=float)
    if len(w) != len(pos):
        raise ValueError("weights length must match positions")

    i0, i1, f = _cic_weights(pos, ng)
    g = 1.0 - f
    mesh = np.zeros((ng, ng, ng))
    # The 8 corner contributions of the trilinear kernel.
    for dx, wx in ((0, g[:, 0]), (1, f[:, 0])):
        ix = i0[:, 0] if dx == 0 else i1[:, 0]
        for dy, wy in ((0, g[:, 1]), (1, f[:, 1])):
            iy = i0[:, 1] if dy == 0 else i1[:, 1]
            for dz, wz in ((0, g[:, 2]), (1, f[:, 2])):
                iz = i0[:, 2] if dz == 0 else i1[:, 2]
                np.add.at(mesh, (ix, iy, iz), w * wx * wy * wz)
    return mesh


def cic_gather(field: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Interpolate a mesh field to particle positions (CIC; the adjoint of
    :func:`cic_deposit`).

    ``field`` may be ``(ng, ng, ng)`` for a scalar or ``(ng, ng, ng, c)``
    for ``c`` components (e.g. a 3-vector acceleration).
    """
    f_arr = np.asarray(field, dtype=float)
    ng = f_arr.shape[0]
    if f_arr.shape[:3] != (ng, ng, ng):
        raise ValueError(f"field must be cubic, got {f_arr.shape}")
    pos = np.asarray(positions, dtype=float)
    i0, i1, f = _cic_weights(pos, ng)
    g = 1.0 - f

    vec = f_arr.ndim == 4
    out_shape = (len(pos), f_arr.shape[3]) if vec else (len(pos),)
    out = np.zeros(out_shape)
    for dx, wx in ((0, g[:, 0]), (1, f[:, 0])):
        ix = i0[:, 0] if dx == 0 else i1[:, 0]
        for dy, wy in ((0, g[:, 1]), (1, f[:, 1])):
            iy = i0[:, 1] if dy == 0 else i1[:, 1]
            for dz, wz in ((0, g[:, 2]), (1, f[:, 2])):
                iz = i0[:, 2] if dz == 0 else i1[:, 2]
                w = wx * wy * wz
                if vec:
                    out += f_arr[ix, iy, iz] * w[:, None]
                else:
                    out += f_arr[ix, iy, iz] * w
    return out


def density_contrast(mass_mesh: np.ndarray) -> np.ndarray:
    """Overdensity field ``delta = rho / rho_mean - 1`` from a mass mesh."""
    mean = mass_mesh.mean()
    if mean <= 0:
        raise ValueError("mass mesh has nonpositive mean; no particles deposited?")
    return mass_mesh / mean - 1.0
