"""Cloud-in-cell (CIC) mesh operations on a periodic grid.

The spectral particle-mesh force solver needs two grid transfers:
depositing particle mass onto the density mesh and gathering mesh-defined
accelerations back to particle positions.  Both use the standard CIC
(trilinear) kernel with no per-particle Python loops.

The deposit scatter-add is a single ``np.bincount`` over raveled flat mesh
indices of all 8 trilinear corners — ``np.add.at`` performs the same
reduction but through the much slower buffered ufunc.at machinery, so it is
kept only as a reference oracle (:func:`cic_deposit_add_at`) for the tests.

Positions are in *grid units* ``[0, ng)``; callers convert from physical
coordinates by dividing by the cell size.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cic_deposit", "cic_deposit_add_at", "cic_gather", "density_contrast"]


def _cic_weights(pos: np.ndarray, ng: int):
    """Base cell indices and per-axis weights for trilinear interpolation."""
    p = np.mod(pos, ng)
    i0 = np.floor(p).astype(np.int64)
    frac = p - i0
    i0 = np.mod(i0, ng)
    i1 = np.mod(i0 + 1, ng)
    return i0, i1, frac


def cic_deposit(
    positions: np.ndarray, ng: int, weights: np.ndarray | None = None
) -> np.ndarray:
    """Deposit particles onto an ``ng^3`` periodic mesh with CIC weighting.

    Parameters
    ----------
    positions:
        ``(n, 3)`` particle positions in grid units.
    ng:
        Mesh points per dimension.
    weights:
        Optional per-particle masses (default 1).

    Returns
    -------
    numpy.ndarray
        ``(ng, ng, ng)`` mass mesh; its sum equals the total input mass.
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {pos.shape}")
    w = np.ones(len(pos)) if weights is None else np.asarray(weights, dtype=float)
    if len(w) != len(pos):
        raise ValueError("weights length must match positions")
    n = len(pos)
    if n == 0:
        return np.zeros((ng, ng, ng))

    i0, i1, f = _cic_weights(pos, ng)
    g = 1.0 - f
    # All 8 trilinear corner contributions, accumulated by one bincount over
    # flat (raveled) mesh indices: 8n index/weight entries, one pass.
    flat = np.empty(8 * n, dtype=np.int64)
    wgt = np.empty(8 * n)
    corner = 0
    for ix, wx in ((i0[:, 0], g[:, 0]), (i1[:, 0], f[:, 0])):
        base_x = ix * (ng * ng)
        for iy, wy in ((i0[:, 1], g[:, 1]), (i1[:, 1], f[:, 1])):
            base_xy = base_x + iy * ng
            wxy = w * wx * wy
            for iz, wz in ((i0[:, 2], g[:, 2]), (i1[:, 2], f[:, 2])):
                sl = slice(corner * n, (corner + 1) * n)
                np.add(base_xy, iz, out=flat[sl])
                np.multiply(wxy, wz, out=wgt[sl])
                corner += 1
    return np.bincount(flat, weights=wgt, minlength=ng**3).reshape(ng, ng, ng)


def cic_deposit_add_at(
    positions: np.ndarray, ng: int, weights: np.ndarray | None = None
) -> np.ndarray:
    """Reference CIC deposit using ``np.add.at`` (the original implementation).

    Kept as the oracle the tests validate :func:`cic_deposit`'s bincount
    scatter against; not used on the hot path.
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {pos.shape}")
    w = np.ones(len(pos)) if weights is None else np.asarray(weights, dtype=float)
    if len(w) != len(pos):
        raise ValueError("weights length must match positions")

    i0, i1, f = _cic_weights(pos, ng)
    g = 1.0 - f
    mesh = np.zeros((ng, ng, ng))
    # The 8 corner contributions of the trilinear kernel.
    for dx, wx in ((0, g[:, 0]), (1, f[:, 0])):
        ix = i0[:, 0] if dx == 0 else i1[:, 0]
        for dy, wy in ((0, g[:, 1]), (1, f[:, 1])):
            iy = i0[:, 1] if dy == 0 else i1[:, 1]
            for dz, wz in ((0, g[:, 2]), (1, f[:, 2])):
                iz = i0[:, 2] if dz == 0 else i1[:, 2]
                np.add.at(mesh, (ix, iy, iz), w * wx * wy * wz)
    return mesh


def cic_gather(field: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Interpolate a mesh field to particle positions (CIC; the adjoint of
    :func:`cic_deposit`).

    ``field`` may be ``(ng, ng, ng)`` for a scalar or ``(ng, ng, ng, c)``
    for ``c`` components (e.g. a 3-vector acceleration).
    """
    f_arr = np.asarray(field, dtype=float)
    ng = f_arr.shape[0]
    if f_arr.shape[:3] != (ng, ng, ng):
        raise ValueError(f"field must be cubic, got {f_arr.shape}")
    pos = np.asarray(positions, dtype=float)
    i0, i1, f = _cic_weights(pos, ng)
    g = 1.0 - f

    vec = f_arr.ndim == 4
    out_shape = (len(pos), f_arr.shape[3]) if vec else (len(pos),)
    out = np.zeros(out_shape)
    for dx, wx in ((0, g[:, 0]), (1, f[:, 0])):
        ix = i0[:, 0] if dx == 0 else i1[:, 0]
        for dy, wy in ((0, g[:, 1]), (1, f[:, 1])):
            iy = i0[:, 1] if dy == 0 else i1[:, 1]
            for dz, wz in ((0, g[:, 2]), (1, f[:, 2])):
                iz = i0[:, 2] if dz == 0 else i1[:, 2]
                w = wx * wy * wz
                if vec:
                    out += f_arr[ix, iy, iz] * w[:, None]
                else:
                    out += f_arr[ix, iy, iz] * w
    return out


def density_contrast(mass_mesh: np.ndarray) -> np.ndarray:
    """Overdensity field ``delta = rho / rho_mean - 1`` from a mass mesh."""
    mean = mass_mesh.mean()
    if mean <= 0:
        raise ValueError("mass mesh has nonpositive mean; no particles deposited?")
    return mass_mesh / mean - 1.0
