"""Two-point correlation function xi(r) (the paper's baseline statistic).

The paper motivates tessellations as probes *beyond* "traditional
two-point statistics such as power spectrum and correlation"; this module
supplies the correlation side of that baseline: the Landy-Szalay-free
natural estimator on a periodic box,

    xi(r) = DD(r) / RR_expected(r) - 1 ,

where the expected random pair count in a periodic volume is analytic
(shell volume x pair density), so no random catalog is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..diy.bounds import Bounds

__all__ = ["CorrelationFunction", "pair_correlation"]


@dataclass(frozen=True)
class CorrelationFunction:
    """Binned two-point correlation measurement."""

    r: np.ndarray  # bin centers
    xi: np.ndarray  # xi(r)
    pairs: np.ndarray  # DD counts per bin

    def rows(self) -> list[tuple[float, float, int]]:
        """(r, xi, DD) rows for printing."""
        return list(zip(self.r.tolist(), self.xi.tolist(), self.pairs.tolist()))


def pair_correlation(
    positions: np.ndarray,
    domain: Bounds,
    r_max: float,
    nbins: int = 12,
    r_min: float | None = None,
) -> CorrelationFunction:
    """Measure xi(r) on a periodic box with the natural estimator.

    Parameters
    ----------
    positions:
        ``(n, 3)`` positions inside the domain.
    domain:
        Periodic box.
    r_max:
        Largest separation (must be below half the box for the periodic
        metric to be single-valued).
    nbins:
        Logarithmic bins between ``r_min`` (default ``r_max / 50``) and
        ``r_max``.
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {pos.shape}")
    n = len(pos)
    if n < 2:
        raise ValueError("need at least two particles")
    half = float(domain.sizes.min()) / 2.0
    if not 0 < r_max <= half:
        raise ValueError(f"r_max must be in (0, {half}] for this box")
    r_min = r_max / 50.0 if r_min is None else float(r_min)
    if not 0 < r_min < r_max:
        raise ValueError("need 0 < r_min < r_max")

    lo, _ = domain.as_arrays()
    tree = cKDTree(pos - lo, boxsize=domain.sizes)
    pairs = tree.query_pairs(r=r_max, output_type="ndarray")
    if len(pairs):
        d = pos[pairs[:, 0]] - pos[pairs[:, 1]]
        d -= np.round(d / domain.sizes) * domain.sizes
        dist = np.sqrt(np.einsum("ij,ij->i", d, d))
    else:
        dist = np.empty(0)

    edges = np.logspace(np.log10(r_min), np.log10(r_max), nbins + 1)
    dd = np.histogram(dist, bins=edges)[0].astype(float)

    # Expected pair count for an unclustered (Poisson) periodic field:
    # N(N-1)/2 * shell_volume / box_volume.
    shell = 4.0 * np.pi / 3.0 * (edges[1:] ** 3 - edges[:-1] ** 3)
    rr = 0.5 * n * (n - 1) * shell / domain.volume

    with np.errstate(divide="ignore", invalid="ignore"):
        xi = np.where(rr > 0, dd / rr - 1.0, np.nan)
    centers = np.sqrt(edges[:-1] * edges[1:])
    return CorrelationFunction(r=centers, xi=xi, pairs=dd.astype(np.int64))
