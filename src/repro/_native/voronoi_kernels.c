/* Compiled kernels for the Delaunay-direct Voronoi engine hot path.
 *
 * Built on demand by repro._native (gcc -O3 -shared) and loaded via
 * ctypes; repro.geometry.voronoi_delaunay falls back to equivalent
 * NumPy code when no compiler is available.  Both paths are covered by
 * the parity tests, so this file must mirror the NumPy semantics
 * exactly — in particular the cyclic-predecessor coincidence rule and
 * the Newell area accumulated over absolute vertex positions.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>

/* Circumcenters of tetrahedra by Cramer's rule on the 3x3 system that
 * equates the center's squared distance to vertex 0 and vertex k.
 * Exactly singular (degenerate sliver) tets get NaN centers; the
 * caller re-solves those rows by least squares.  Returns the number of
 * non-finite centers written. */
int64_t tet_circumcenters(const double *pts, const int64_t *tets,
                          int64_t m, double *out)
{
    int64_t bad = 0;
    for (int64_t t = 0; t < m; t++) {
        const double *a = pts + 3 * tets[4 * t];
        double r[3][3], b[3];
        for (int k = 0; k < 3; k++) {
            const double *p = pts + 3 * tets[4 * t + k + 1];
            double dx = p[0] - a[0], dy = p[1] - a[1], dz = p[2] - a[2];
            r[k][0] = dx; r[k][1] = dy; r[k][2] = dz;
            b[k] = 0.5 * (dx * dx + dy * dy + dz * dz);
        }
        double c23x = r[1][1] * r[2][2] - r[1][2] * r[2][1];
        double c23y = r[1][2] * r[2][0] - r[1][0] * r[2][2];
        double c23z = r[1][0] * r[2][1] - r[1][1] * r[2][0];
        double det = r[0][0] * c23x + r[0][1] * c23y + r[0][2] * c23z;
        double c31x = r[2][1] * r[0][2] - r[2][2] * r[0][1];
        double c31y = r[2][2] * r[0][0] - r[2][0] * r[0][2];
        double c31z = r[2][0] * r[0][1] - r[2][1] * r[0][0];
        double c12x = r[0][1] * r[1][2] - r[0][2] * r[1][1];
        double c12y = r[0][2] * r[1][0] - r[0][0] * r[1][2];
        double c12z = r[0][0] * r[1][1] - r[0][1] * r[1][0];
        double inv = 1.0 / det;
        double x = (b[0] * c23x + b[1] * c31x + b[2] * c12x) * inv;
        double y = (b[0] * c23y + b[1] * c31y + b[2] * c12y) * inv;
        double z = (b[0] * c23z + b[1] * c31z + b[2] * c12z) * inv;
        out[3 * t] = x + a[0];
        out[3 * t + 1] = y + a[1];
        out[3 * t + 2] = z + a[2];
        if (!isfinite(x) || !isfinite(y) || !isfinite(z))
            bad++;
    }
    return bad;
}

/* Angle-order each dual ridge ring, merge coincident circumcenters,
 * and accumulate the Newell area — one fused pass over the rings.
 *
 * Inputs: verts = per-tet circumcenters, pts = sites, sites = (R, 2)
 * site pairs, fl_flat/offsets = CSR of unordered tet ids per ring,
 * eps2 = squared coincidence tolerance.
 *
 * Outputs (caller-allocated): out_flat (>= total entries) receives the
 * compacted ordered tet ids; out_len[r], areas[r], keep[r] per ring.
 * Returns the total number of kept entries.
 *
 * Ring ordering uses a pseudo-angle (monotonic in atan2, no libm
 * call); the in-plane basis is unnormalized (u = axis x helper,
 * v = axis x u) — an anisotropic positive scaling of the two axes,
 * which preserves angular order.  A vertex coincident with its cyclic
 * predecessor *in sorted order* is dropped (the NumPy rule: an
 * all-coincident ring drops every vertex), and rings left with fewer
 * than three vertices are dropped entirely. */
int64_t order_rings(const double *verts, const double *pts,
                    const int64_t *sites, const int64_t *fl_flat,
                    const int64_t *offsets, int64_t R, double eps2,
                    int64_t *out_flat, int64_t *out_len,
                    double *areas, unsigned char *keep)
{
#define STACK_L 64
    double t_s[STACK_L], px_s[STACK_L], py_s[STACK_L], pz_s[STACK_L];
    int idx_s[STACK_L];
    int64_t total = 0;

    for (int64_t rr = 0; rr < R; rr++) {
        int64_t start = offsets[rr];
        int64_t L = offsets[rr + 1] - start;
        double *t = t_s, *px = px_s, *py = py_s, *pz = pz_s;
        int *idx = idx_s;
        double *heap = NULL;
        if (L > STACK_L) {
            heap = malloc((size_t)L * (4 * sizeof(double) + sizeof(int)));
            t = heap;
            px = heap + L;
            py = heap + 2 * L;
            pz = heap + 3 * L;
            idx = (int *)(heap + 4 * L);
        }

        const double *p0 = pts + 3 * sites[2 * rr];
        const double *p1 = pts + 3 * sites[2 * rr + 1];
        double ax = p1[0] - p0[0], ay = p1[1] - p0[1], az = p1[2] - p0[2];
        /* u = axis x (e_y if |ax| dominates else e_x) */
        double ux, uy, uz;
        if (ax * ax > 0.81 * (ax * ax + ay * ay + az * az)) {
            ux = -az; uy = 0.0; uz = ax;     /* axis x e_y */
        } else {
            ux = 0.0; uy = az; uz = -ay;     /* axis x e_x */
        }
        double vx = ay * uz - az * uy;
        double vy = az * ux - ax * uz;
        double vz = ax * uy - ay * ux;

        double cx = 0.0, cy = 0.0, cz = 0.0;
        for (int64_t i = 0; i < L; i++) {
            const double *vv = verts + 3 * fl_flat[start + i];
            px[i] = vv[0]; py[i] = vv[1]; pz[i] = vv[2];
            cx += vv[0]; cy += vv[1]; cz += vv[2];
        }
        cx /= L; cy /= L; cz /= L;

        for (int64_t i = 0; i < L; i++) {
            double rx = px[i] - cx, ry = py[i] - cy, rz = pz[i] - cz;
            double x = rx * ux + ry * uy + rz * uz;
            double y = rx * vx + ry * vy + rz * vz;
            double den = fabs(x) + fabs(y);
            double pa = den > 0.0 ? x / den : 0.0;   /* [-1, 1] */
            t[i] = y >= 0.0 ? 1.0 - pa : pa - 3.0;   /* monotonic in angle */
            idx[i] = (int)i;
        }
        /* insertion sort by pseudo-angle (rings are tiny) */
        for (int64_t i = 1; i < L; i++) {
            int id = idx[i];
            double key = t[id];
            int64_t j = i;
            while (j > 0 && t[idx[j - 1]] > key) {
                idx[j] = idx[j - 1];
                j--;
            }
            idx[j] = id;
        }
        /* drop vertices coincident with their cyclic predecessor */
        int64_t kept = 0;
        int64_t wrote = total;
        double nx = 0.0, ny = 0.0, nz = 0.0;
        double fx = 0.0, fy = 0.0, fz = 0.0;   /* first kept vertex */
        double lx = 0.0, ly = 0.0, lz = 0.0;   /* last kept vertex */
        for (int64_t i = 0; i < L; i++) {
            int cur = idx[i];
            int prv = idx[(i + L - 1) % L];
            double dx = px[cur] - px[prv];
            double dy = py[cur] - py[prv];
            double dz = pz[cur] - pz[prv];
            if (dx * dx + dy * dy + dz * dz <= eps2)
                continue;
            if (kept > 0) {
                nx += ly * pz[cur] - lz * py[cur];
                ny += lz * px[cur] - lx * pz[cur];
                nz += lx * py[cur] - ly * px[cur];
            } else {
                fx = px[cur]; fy = py[cur]; fz = pz[cur];
            }
            lx = px[cur]; ly = py[cur]; lz = pz[cur];
            out_flat[wrote + kept] = fl_flat[start + cur];
            kept++;
        }
        if (kept >= 3) {
            nx += ly * fz - lz * fy;   /* closing edge */
            ny += lz * fx - lx * fz;
            nz += lx * fy - ly * fx;
            areas[rr] = 0.5 * sqrt(nx * nx + ny * ny + nz * nz);
            out_len[rr] = kept;
            keep[rr] = 1;
            total += kept;
        } else {
            areas[rr] = 0.0;
            out_len[rr] = 0;
            keep[rr] = 0;
        }
        if (heap)
            free(heap);
    }
    return total;
#undef STACK_L
}

/* Counting sort of ridge ids by site: fills the cell -> ridge CSR
 * (cursor[] must enter holding the per-cell offsets; it is consumed).
 * Side-0 entries are written before side-1 entries for every cell,
 * matching FlatVoronoi's layout. */
void fill_cell_ridges(const int64_t *sites, int64_t R,
                      int64_t *cursor, int64_t *out)
{
    for (int side = 0; side < 2; side++)
        for (int64_t r = 0; r < R; r++)
            out[cursor[sites[2 * r + side]]++] = r;
}
