"""On-demand compiled C kernels for hot geometry loops.

NumPy cannot fuse the per-ring work of the Delaunay-direct Voronoi
engine (gather -> project -> sort -> dedup -> Newell is ~15 array
passes over ~6 ring entries per ridge), so the inner loops live in
``voronoi_kernels.c`` and are compiled *on first use* with whatever C
compiler the host has (``cc``/``gcc``/``clang``) — there is no build
step and no new dependency.  The shared object is cached under
``~/.cache/repro-native/`` keyed by a hash of the source and the
compiler, so every process after the first just ``dlopen``s it.

Everything degrades gracefully: if no compiler is found, compilation
fails, or ``REPRO_NO_NATIVE=1`` is set, :func:`lib` returns ``None``
and callers take their equivalent NumPy paths (the parity tests cover
both).  This module must never raise at import time.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

__all__ = ["lib", "available", "build_error"]

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "voronoi_kernels.c")
_CFLAGS = ["-O3", "-fPIC", "-shared"]

_lib = None
_tried = False
_error: str | None = None


def _cache_dir() -> str:
    root = os.environ.get("REPRO_NATIVE_CACHE") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-native"
    )
    os.makedirs(root, exist_ok=True)
    return root


def _compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _build() -> ctypes.CDLL:
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler found (set CC or install gcc)")
    with open(_SOURCE, "rb") as f:
        src = f.read()
    key = hashlib.sha256(
        src + cc.encode() + " ".join(_CFLAGS).encode()
    ).hexdigest()[:16]
    so_path = os.path.join(_cache_dir(), f"voronoi_kernels-{key}.so")
    if not os.path.exists(so_path):
        # Build into a temp file and rename into place: atomic on POSIX,
        # so concurrent first-use ranks cannot dlopen a half-written .so.
        fd, tmp = tempfile.mkstemp(
            suffix=".so", dir=os.path.dirname(so_path)
        )
        os.close(fd)
        try:
            subprocess.run(
                [cc, *_CFLAGS, _SOURCE, "-o", tmp, "-lm"],
                check=True, capture_output=True, timeout=120,
            )
            os.replace(tmp, so_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
    return ctypes.CDLL(so_path)


def _declare(dll: ctypes.CDLL) -> ctypes.CDLL:
    f64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
    i64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
    u8 = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")

    dll.tet_circumcenters.argtypes = [f64, i64, ctypes.c_int64, f64]
    dll.tet_circumcenters.restype = ctypes.c_int64

    dll.order_rings.argtypes = [
        f64, f64, i64, i64, i64, ctypes.c_int64, ctypes.c_double,
        i64, i64, f64, u8,
    ]
    dll.order_rings.restype = ctypes.c_int64

    dll.fill_cell_ridges.argtypes = [i64, ctypes.c_int64, i64, i64]
    dll.fill_cell_ridges.restype = None
    return dll


def lib():
    """The loaded kernel library, or ``None`` if unavailable."""
    global _lib, _tried, _error
    if not _tried:
        _tried = True
        if os.environ.get("REPRO_NO_NATIVE"):
            _error = "disabled by REPRO_NO_NATIVE"
        else:
            try:
                _lib = _declare(_build())
            except Exception as exc:  # noqa: BLE001 - fallback by design
                _error = f"{type(exc).__name__}: {exc}"
    return _lib


def available() -> bool:
    """Whether the compiled kernels can be used in this process."""
    return lib() is not None


def build_error() -> str | None:
    """Why the kernels are unavailable (``None`` when they loaded)."""
    lib()
    return _error
