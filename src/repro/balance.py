"""Dynamic load balancing: SFC repartitioning of clustered domains.

The regular block decomposition (paper §III-C1) assigns equal-*volume*
blocks.  Once structure forms, particle counts per block skew badly and
the strong-scaling wins of the parallel tessellation evaporate: the
critical path is the most loaded block.  PARAVT ships load-balancing
options for exactly this parallel-Voronoi workload, and nbodykit's domain
decomposition rebalances by particle count; this module does the same for
this reproduction.

The repartitioner works on a coarse **load grid**: particle counts are
binned on a regular ``g**3`` grid, the cells are ordered along a Morton
space-filling curve, and the 1-D load curve is cut into ``nblocks``
contiguous equal-load segments (:func:`sfc_partition`).  A weighted
recursive-bisection partitioner (:func:`recursive_bisection_partition`)
is kept as the cross-check oracle.  Either assignment of coarse cells to
blocks becomes a :class:`BalancedDecomposition` — a drop-in
:class:`~repro.diy.decomposition.Decomposition` with the same
:class:`~repro.diy.decomposition.Block`/:class:`~repro.diy.decomposition.
NeighborLink` contract, so the existing ghost exchange, neighborhood
exchanger, and migration machinery run unchanged on top of it.

Irregular blocks are unions of coarse cells, not boxes, so two pieces of
geometry replace the box arithmetic:

* :class:`CellUnionRegion` answers "is this point within Chebyshev
  distance ``r`` of the block's owned region?" exactly, via a 3-D
  summed-area table over the cell indicator (one O(1) query per point);
  the ghost exchange targets particles with it, and the tessellation
  certifies cell completeness against the region actually populated with
  ghosts instead of the block's bounding box.
* Neighbor links are generated for **all** (block, wrap) pairs — the
  near-point targeting prunes per particle, so correctness never depends
  on guessing which blocks touch.

Imbalance observability: :func:`load_imbalance` computes the max/mean and
max/min particle-count gauges, published through ``repro.observe`` as
``balance.max_over_mean`` / ``balance.max_over_min`` (plus raw
``balance.max_count`` / ``balance.min_count``) when tracing is enabled.
"""

from __future__ import annotations

import itertools

import numpy as np

from . import observe
from .diy.bounds import Bounds, periodic_translation
from .diy.decomposition import Block, Decomposition, NeighborLink

__all__ = [
    "morton_key",
    "sfc_partition",
    "recursive_bisection_partition",
    "CellUnionRegion",
    "BalancedDecomposition",
    "compute_cell_counts",
    "rebalance_decomposition",
    "load_imbalance",
    "publish_imbalance",
    "clustered_points",
]


# ----------------------------------------------------------------------
# Morton (Z-order) space-filling curve
# ----------------------------------------------------------------------
def _spread_bits(x: np.ndarray) -> np.ndarray:
    """Insert two zero bits between each bit of ``x`` (21-bit inputs)."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def morton_key(coords: np.ndarray) -> np.ndarray:
    """Morton (Z-order) keys of integer grid coordinates, shape ``(n, 3)``.

    Keys are unique per coordinate triple (up to 21 bits per axis) and
    order the grid along the Z curve, which keeps consecutive cells
    spatially close — the property the SFC partitioner relies on to make
    equal-load segments compact.
    """
    c = np.atleast_2d(np.asarray(coords, dtype=np.int64))
    if c.shape[1] != 3:
        raise ValueError(f"morton_key expects (n, 3) coordinates, got {c.shape}")
    if c.min(initial=0) < 0 or c.max(initial=0) >= (1 << 21):
        raise ValueError("coordinates must be in [0, 2**21) per axis")
    return (
        (_spread_bits(c[:, 0]) << np.uint64(2))
        | (_spread_bits(c[:, 1]) << np.uint64(1))
        | _spread_bits(c[:, 2])
    )


# ----------------------------------------------------------------------
# partitioners: coarse-cell loads -> block owner per cell
# ----------------------------------------------------------------------
def sfc_partition(cell_counts: np.ndarray, nblocks: int) -> np.ndarray:
    """Cut the Morton-ordered load curve into equal-load segments.

    ``cell_counts`` is the ``(g0, g1, g2)`` particle histogram on the
    coarse grid.  Returns a flat ``(g0*g1*g2,)`` int64 array (row-major
    cell order) assigning every cell an owner block in ``[0, nblocks)``.
    Every block receives at least one cell; cuts are placed sequentially
    so each remaining block targets an equal share of the remaining load
    (absorbing overshoot from cells that straddle a cut).
    """
    counts = np.asarray(cell_counts, dtype=np.float64)
    if counts.ndim != 3:
        raise ValueError(f"cell_counts must be 3-D, got shape {counts.shape}")
    ncells = counts.size
    if not 1 <= nblocks <= ncells:
        raise ValueError(
            f"cannot cut {ncells} cells into {nblocks} blocks"
        )
    grid = counts.shape
    coords = np.stack(np.unravel_index(np.arange(ncells), grid), axis=1)
    order = np.argsort(morton_key(coords))  # keys are unique
    loads = counts.ravel()[order]
    cum = np.cumsum(loads)
    total = float(cum[-1])

    boundaries = [0]
    start = 0
    for b in range(nblocks - 1):
        remaining = total - (cum[start - 1] if start else 0.0)
        target = (cum[start - 1] if start else 0.0) + remaining / (nblocks - b)
        lo_c = start + 1  # at least one cell for this block
        hi_c = ncells - (nblocks - 1 - b)  # leave one per later block
        c = int(np.searchsorted(cum, target, side="left")) + 1
        if c > lo_c and c <= hi_c:
            # The cut cell straddles the target; take it only if that
            # lands closer to the equal-load point than stopping short.
            if abs(cum[c - 2] - target) <= abs(cum[c - 1] - target):
                c -= 1
        c = min(max(c, lo_c), hi_c)
        boundaries.append(c)
        start = c
    boundaries.append(ncells)

    owners_ordered = np.empty(ncells, dtype=np.int64)
    for b in range(nblocks):
        owners_ordered[boundaries[b] : boundaries[b + 1]] = b
    owners = np.empty(ncells, dtype=np.int64)
    owners[order] = owners_ordered
    return owners


def recursive_bisection_partition(
    cell_counts: np.ndarray, nblocks: int
) -> np.ndarray:
    """Weighted orthogonal recursive bisection (cross-check oracle).

    Recursively splits the coarse grid along its longest axis at the
    plane closest to a load split proportional to the block counts on
    each side (``floor(n/2) : ceil(n/2)``), so any ``nblocks`` works, not
    just powers of two.  Returns the same flat owner array layout as
    :func:`sfc_partition`; unlike the SFC cut, every block here is a
    *box* of coarse cells.
    """
    counts = np.asarray(cell_counts, dtype=np.float64)
    if counts.ndim != 3:
        raise ValueError(f"cell_counts must be 3-D, got shape {counts.shape}")
    ncells = counts.size
    if not 1 <= nblocks <= ncells:
        raise ValueError(f"cannot cut {ncells} cells into {nblocks} blocks")
    owners = np.empty(counts.shape, dtype=np.int64)

    def rec(lo: tuple, hi: tuple, gid0: int, n: int) -> None:
        sl = tuple(slice(a, b) for a, b in zip(lo, hi))
        if n == 1:
            owners[sl] = gid0
            return
        n_left = n // 2
        extents = [b - a for a, b in zip(lo, hi)]
        # Longest splittable axis (needs >= 2 cells; at least one exists
        # because n <= number of cells in this box).
        axes = sorted(range(3), key=lambda ax: -extents[ax])
        axis = next(ax for ax in axes if extents[ax] >= 2)
        other = tuple(ax for ax in range(3) if ax != axis)
        marginal = counts[sl].sum(axis=other)
        cum = np.cumsum(marginal)
        target = cum[-1] * n_left / n
        # Plane k puts k cell layers on the left; 1 <= k <= extent-1,
        # and each side needs at least as many cells as blocks.
        left_cells_per_layer = int(
            np.prod([extents[a] for a in other], dtype=np.int64)
        )
        k_lo = max(1, -(-n_left // left_cells_per_layer))
        k_hi = min(
            extents[axis] - 1,
            extents[axis]
            - (-(-(n - n_left) // left_cells_per_layer)),
        )
        k = int(np.searchsorted(cum, target, side="left")) + 1
        if k > 1 and abs(cum[k - 2] - target) <= abs(cum[k - 1] - target):
            k -= 1
        k = min(max(k, k_lo), k_hi)
        mid = list(hi)
        mid[axis] = lo[axis] + k
        lo_right = list(lo)
        lo_right[axis] = lo[axis] + k
        rec(lo, tuple(mid), gid0, n_left)
        rec(tuple(lo_right), hi, gid0 + n_left, n - n_left)

    rec((0, 0, 0), counts.shape, 0, nblocks)
    return owners.ravel()


# ----------------------------------------------------------------------
# geometry of a union-of-cells block region
# ----------------------------------------------------------------------
class CellUnionRegion:
    """A union of coarse grid cells with O(1) Chebyshev proximity queries.

    The region is the set of cells marked in ``mask`` on a regular
    ``grid``-shaped subdivision of ``domain``.  A 3-D summed-area table
    over the indicator makes "does the closed box ``[p-r, p+r]`` overlap
    the region?" — equivalently "is the Chebyshev distance from ``p`` to
    the region at most ``r``?" — one eight-corner lookup per point.  This
    is exactly the closed-box criterion the regular decomposition uses
    for its boxes (see ``Decomposition.neighbors_near_points``), so ghost
    targeting and completeness certification carry over unchanged.
    """

    def __init__(self, domain: Bounds, grid: tuple[int, ...], mask: np.ndarray):
        mask = np.asarray(mask, dtype=bool).reshape(grid)
        if mask.ndim != 3:
            raise ValueError("CellUnionRegion is 3-D only")
        if not mask.any():
            raise ValueError("region must contain at least one cell")
        self.domain = domain
        self.grid = tuple(int(g) for g in grid)
        self.mask = mask
        self._lo, _ = domain.as_arrays()
        self._cell = domain.sizes / np.asarray(self.grid, dtype=float)
        sat = mask.astype(np.int64)
        for axis in range(3):
            sat = np.cumsum(sat, axis=axis)
        self._sat = np.zeros(tuple(g + 1 for g in self.grid), dtype=np.int64)
        self._sat[1:, 1:, 1:] = sat

    @property
    def num_cells(self) -> int:
        """Number of coarse cells in the region."""
        return int(self.mask.sum())

    def bounding_box(self) -> Bounds:
        """Axis-aligned bounding box of the region (cells are closed)."""
        idx = np.argwhere(self.mask)
        lo = self._lo + idx.min(axis=0) * self._cell
        hi = self._lo + (idx.max(axis=0) + 1) * self._cell
        return Bounds.from_arrays(lo, hi)

    def volume(self) -> float:
        """Total volume of the region's cells."""
        return float(self.num_cells * np.prod(self._cell))

    def within(self, points: np.ndarray, radius: float) -> np.ndarray:
        """Mask of points with Chebyshev distance <= ``radius`` to the region.

        Points are taken in the domain frame as-is (no periodic wrapping;
        periodic images are handled by querying translated points, one
        wrap vector at a time, exactly like the box-based targeting).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        g = np.asarray(self.grid)
        a = (pts - radius - self._lo) / self._cell
        b = (pts + radius - self._lo) / self._cell
        # Closed query box [p-r, p+r] against closed cells: the lowest
        # overlapped cell index is ceil(a)-1 (touching faces count, as in
        # the box criterion's `<=`), the highest is floor(b).
        lo_idx = np.ceil(a).astype(np.int64) - 1
        hi_idx = np.floor(b).astype(np.int64)
        outside = np.any((hi_idx < 0) | (lo_idx > g - 1), axis=1)
        lo_idx = np.clip(lo_idx, 0, g - 1)
        hi_idx = np.clip(hi_idx, 0, g - 1)
        s = self._sat
        a0, a1, a2 = lo_idx[:, 0], lo_idx[:, 1], lo_idx[:, 2]
        b0, b1, b2 = hi_idx[:, 0] + 1, hi_idx[:, 1] + 1, hi_idx[:, 2] + 1
        count = (
            s[b0, b1, b2]
            - s[a0, b1, b2]
            - s[b0, a1, b2]
            - s[b0, b1, a2]
            + s[a0, a1, b2]
            + s[a0, b1, a2]
            + s[b0, a1, a2]
            - s[a0, a1, a2]
        )
        return (count > 0) & ~outside


# ----------------------------------------------------------------------
# the balanced decomposition
# ----------------------------------------------------------------------
class BalancedDecomposition(Decomposition):
    """Irregular decomposition: blocks are unions of coarse grid cells.

    Drop-in compatible with :class:`~repro.diy.decomposition.
    Decomposition`: it exposes the same ``blocks()``/``block()``/
    ``locate()``/``neighbors_near_points()`` surface, and its blocks
    carry the same :class:`Block`/:class:`NeighborLink` records, so the
    ghost exchange and migration machinery run unchanged.  Differences:

    * a block's ``core`` is the *bounding box* of its owned region; the
      exact owned region is exposed via :meth:`block_region` and is what
      ghost targeting and completeness certification use;
    * links exist for every (block, wrap) pair — the per-particle
      near-point targeting decides what actually travels;
    * grid-coordinate helpers (``gid_of_coords``/``coords_of_gid``) are
      meaningless for irregular blocks and raise.

    Parameters
    ----------
    domain, periodic:
        As in the regular decomposition.
    grid:
        Coarse load-grid shape, e.g. ``(16, 16, 16)``.
    cell_owners:
        Flat ``(prod(grid),)`` row-major owner gid per coarse cell,
        covering ``0..nblocks-1`` (from :func:`sfc_partition` or
        :func:`recursive_bisection_partition`).
    """

    def __init__(
        self,
        domain: Bounds,
        grid: tuple[int, ...],
        cell_owners: np.ndarray,
        periodic: bool | tuple[bool, ...] = True,
    ) -> None:
        if len(grid) != domain.dim or domain.dim != 3:
            raise ValueError("BalancedDecomposition is 3-D only")
        if isinstance(periodic, bool):
            periodic = (periodic,) * domain.dim
        owners = np.asarray(cell_owners, dtype=np.int64).ravel()
        if owners.size != int(np.prod(grid)):
            raise ValueError(
                f"cell_owners has {owners.size} entries for grid {grid}"
            )
        nblocks = int(owners.max()) + 1 if owners.size else 0
        present = np.unique(owners)
        if owners.min(initial=0) < 0 or len(present) != nblocks:
            raise ValueError(
                "cell_owners must cover every gid in [0, nblocks) at least once"
            )
        self.domain = domain
        self.periodic = tuple(bool(p) for p in periodic)
        self.cell_grid = tuple(int(g) for g in grid)
        self.cell_owners = owners
        #: the regular-grid attribute has no meaning here
        self.grid = None
        self._nblocks = nblocks
        owner_grid = owners.reshape(self.cell_grid)
        self._regions = tuple(
            CellUnionRegion(domain, self.cell_grid, owner_grid == gid)
            for gid in range(nblocks)
        )
        self._blocks = self._build_irregular_blocks()

    # -- structure ------------------------------------------------------
    @property
    def nblocks(self) -> int:  # overrides the grid-product property
        return self._nblocks

    def gid_of_coords(self, coords: tuple[int, ...]) -> int:
        raise ValueError(
            "balanced decompositions have no regular block grid; "
            "use locate() for ownership queries"
        )

    def coords_of_gid(self, gid: int) -> tuple[int, ...]:
        raise ValueError(
            "balanced decompositions have no regular block grid; "
            f"gid {gid} has no grid coordinates"
        )

    def block_region(self, gid: int) -> CellUnionRegion:
        """The exact region of space owned by block ``gid``."""
        self._check_gid(gid)
        return self._regions[gid]

    def _build_irregular_blocks(self) -> tuple[Block, ...]:
        wrap_choices = [(-1, 0, 1) if p else (0,) for p in self.periodic]
        blocks = []
        owner_grid = self.cell_owners.reshape(self.cell_grid)
        for gid in range(self._nblocks):
            links = []
            for ngid in range(self._nblocks):
                for wrap in itertools.product(*wrap_choices):
                    if ngid == gid and all(w == 0 for w in wrap):
                        continue
                    links.append(
                        NeighborLink(gid=ngid, direction=wrap, wrap=wrap)
                    )
            first = np.argwhere(owner_grid == gid)[0]
            blocks.append(
                Block(
                    gid=gid,
                    coords=tuple(int(c) for c in first),
                    core=self._regions[gid].bounding_box(),
                    links=tuple(links),
                )
            )
        return tuple(blocks)

    # -- queries --------------------------------------------------------
    def locate(self, points: np.ndarray) -> np.ndarray:
        idx = self._grid_indices(points, self.cell_grid)
        flat = np.ravel_multi_index(tuple(idx.T), self.cell_grid)
        return self.cell_owners[flat]

    def neighbors_near_points(
        self, gid: int, points: np.ndarray, radius: float
    ) -> list[tuple[NeighborLink, np.ndarray]]:
        """Per-link masks of points within ``radius`` of the neighbor's
        *owned region* (wrap-translated), not its bounding box — the
        tight targeting that keeps ghost traffic proportional to actual
        boundary area on irregular blocks."""
        self._check_gid(gid)
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        out = []
        for link in self._blocks[gid].links:
            shift = -periodic_translation(np.asarray(link.wrap), self.domain)
            shifted = pts - shift
            # Cheap bounding-box reject before the exact region query.
            lo, hi = self._blocks[link.gid].core.as_arrays()
            d = np.maximum(np.maximum(lo - shifted, shifted - hi), 0.0)
            candidate = d.max(axis=1) <= radius
            mask = np.zeros(len(pts), dtype=bool)
            if candidate.any():
                mask[candidate] = self._regions[link.gid].within(
                    shifted[candidate], radius
                )
            out.append((link, mask))
        return out

    def neighbors_near_point(self, gid, point, radius):
        pts = np.atleast_2d(np.asarray(point, dtype=float))
        return [
            link
            for link, mask in self.neighbors_near_points(gid, pts, radius)
            if mask[0]
        ]


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def compute_cell_counts(
    positions: np.ndarray, domain: Bounds, grid_side: int
) -> np.ndarray:
    """Particle-count histogram on the coarse ``grid_side**3`` load grid.

    Positions outside the domain are wrapped on periodic axes by the same
    rule as :meth:`Decomposition.locate` (here every axis is treated as
    periodic — the histogram feeds the repartitioner, which is only used
    on periodic cosmology boxes).  Returns int64 counts, so the cross-rank
    allreduce is exact.
    """
    grid = (int(grid_side),) * 3
    helper = Decomposition(domain, (1, 1, 1), periodic=True)
    idx = helper._grid_indices(np.atleast_2d(positions), grid)
    flat = np.ravel_multi_index(tuple(idx.T), grid)
    return np.bincount(flat, minlength=int(np.prod(grid))).reshape(grid)


def rebalance_decomposition(
    domain: Bounds,
    cell_counts: np.ndarray,
    nblocks: int,
    periodic: bool | tuple[bool, ...] = True,
    method: str = "sfc",
) -> BalancedDecomposition:
    """Build a load-balanced decomposition from a coarse-cell histogram.

    ``method`` selects the partitioner: ``"sfc"`` (Morton curve cut into
    equal-load segments; production) or ``"rcb"`` (weighted recursive
    bisection; the cross-check oracle, whose blocks are boxes).
    """
    counts = np.asarray(cell_counts)
    if method == "sfc":
        owners = sfc_partition(counts, nblocks)
    elif method == "rcb":
        owners = recursive_bisection_partition(counts, nblocks)
    else:
        raise ValueError(f"unknown method {method!r}; choose 'sfc' or 'rcb'")
    return BalancedDecomposition(domain, counts.shape, owners, periodic=periodic)


def load_imbalance(counts: np.ndarray) -> dict[str, float]:
    """Imbalance gauges of a per-block particle-count vector.

    Returns ``max``/``min``/``mean`` counts plus the two ratios the
    rebalancer watches: ``max_over_mean`` (the critical-path excess — a
    perfectly balanced run scores 1.0) and ``max_over_min`` (``inf`` when
    some block is empty).
    """
    c = np.asarray(counts, dtype=float)
    if c.size == 0 or c.max() == 0:
        return {
            "max": 0.0,
            "min": 0.0,
            "mean": 0.0,
            "max_over_mean": 1.0,
            "max_over_min": 1.0,
        }
    return {
        "max": float(c.max()),
        "min": float(c.min()),
        "mean": float(c.mean()),
        "max_over_mean": float(c.max() / c.mean()),
        "max_over_min": float(c.max() / c.min()) if c.min() > 0 else float("inf"),
    }


def publish_imbalance(
    gauges: dict[str, float], *, prefix: str = "balance"
) -> None:
    """Publish imbalance gauges through ``repro.observe`` (no-op when
    tracing/metrics are disabled).  ``max_over_min`` is clamped to at
    least one particle per block so the exported JSON stays finite."""
    if not observe.enabled():
        return
    reg = observe.registry()
    reg.gauge(f"{prefix}.max_count").set_max(gauges["max"])
    reg.gauge(f"{prefix}.min_count").set(gauges["min"])
    reg.gauge(f"{prefix}.max_over_mean").set_max(gauges["max_over_mean"])
    finite = (
        gauges["max"] / max(gauges["min"], 1.0) if gauges["max"] else 1.0
    )
    reg.gauge(f"{prefix}.max_over_min").set_max(finite)


def clustered_points(
    n: int,
    box: float,
    seed: int = 0,
    ncenters: int = 5,
    width_fraction: float = 0.045,
    background_fraction: float = 0.15,
    seam: bool = True,
) -> np.ndarray:
    """A clustered test universe: Gaussian clumps plus a sparse background.

    This is the late-time-snapshot stand-in used by the balance benchmark
    and the parity tests: most mass sits in a handful of clusters crowded
    into one octant (so a regular decomposition is badly imbalanced), and
    with ``seam=True`` one cluster straddles ``x = 0`` so periodic wrap
    handling is always exercised.  Positions are wrapped into ``[0, box)``.
    """
    from .diy.bounds import wrap_positions

    rng = np.random.default_rng(seed)
    n_background = int(n * background_fraction)
    n_clustered = n - n_background
    centers = rng.uniform(0.05 * box, 0.45 * box, size=(ncenters, 3))
    if seam and ncenters > 0:
        centers[0] = (0.0, 0.5 * box, 0.5 * box)  # straddles the x seam
    which = rng.integers(0, max(ncenters, 1), size=n_clustered)
    pts = centers[which] + rng.normal(
        0.0, width_fraction * box, size=(n_clustered, 3)
    )
    background = rng.uniform(0.0, box, size=(n_background, 3))
    cloud = np.concatenate([pts, background]) if n_background else pts
    return wrap_positions(cloud, Bounds.cube(box))
