"""In situ cosmology-tools framework: tool registry, schedules, driver.

Couples the HACC-style simulation to the analysis tools (tessellation,
halo finder, statistics) at configured time steps — the architecture of
paper Figure 4, with results collected for run-time use or written to
storage for postprocessing.
"""

from .config import FrameworkConfig, ToolConfig
from .framework import CosmologyToolsFramework, InsituResults, run_simulation_with_tools
from .tools import (
    TOOL_REGISTRY,
    AnalysisTool,
    CellStatisticsTool,
    DTFETool,
    HaloFinderTool,
    StatisticsTool,
    TessellationTool,
    TrackingTool,
    VoidFinderTool,
)

__all__ = [
    "FrameworkConfig",
    "ToolConfig",
    "CosmologyToolsFramework",
    "InsituResults",
    "run_simulation_with_tools",
    "TOOL_REGISTRY",
    "AnalysisTool",
    "HaloFinderTool",
    "StatisticsTool",
    "TessellationTool",
    "VoidFinderTool",
    "CellStatisticsTool",
    "TrackingTool",
    "DTFETool",
]
