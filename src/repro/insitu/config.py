"""Configuration of the in situ cosmology-tools framework (paper Figure 4).

The simulation input deck names which analysis tools run and at which time
steps.  :class:`FrameworkConfig` is the parsed form: a list of
:class:`ToolConfig` entries, each selecting a registered tool by name, a
step schedule, and tool-specific parameters.

Schedules accept either an explicit step list (``steps=[11, 21, 31]``) or a
cadence (``every=10`` — fire after every 10th step, plus optionally the
final step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ToolConfig", "FrameworkConfig"]


@dataclass(frozen=True)
class ToolConfig:
    """One tool activation in the input deck."""

    tool: str
    steps: tuple[int, ...] = ()
    every: int | None = None
    include_final: bool = True
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tool:
            raise ValueError("tool name must be nonempty")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if not self.steps and self.every is None and not self.include_final:
            raise ValueError(f"tool {self.tool!r} would never fire")
        object.__setattr__(self, "steps", tuple(int(s) for s in self.steps))

    def schedule(self, nsteps: int) -> list[int]:
        """Concrete step indices (1-based; 0 = initial conditions)."""
        fire: set[int] = set()
        for s in self.steps:
            if not 0 <= s <= nsteps:
                raise ValueError(f"step {s} outside [0, {nsteps}]")
            fire.add(s)
        if self.every is not None:
            fire.update(range(self.every, nsteps + 1, self.every))
        if self.include_final and (self.steps or self.every is not None):
            fire.add(nsteps)
        if not fire and self.include_final:
            fire.add(nsteps)
        return sorted(fire)


@dataclass(frozen=True)
class FrameworkConfig:
    """The analysis section of a simulation input deck."""

    tools: tuple[ToolConfig, ...]

    def __post_init__(self) -> None:
        names = [t.tool for t in self.tools]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tool entries: {names}")
        object.__setattr__(self, "tools", tuple(self.tools))

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "FrameworkConfig":
        """Parse the dict form used in examples and tests::

            {"tools": [
                {"tool": "tessellation", "every": 10,
                 "params": {"ghost": 4.0}},
                {"tool": "halo_finder", "steps": [100],
                 "params": {"linking_length": 0.2}},
            ]}
        """
        entries = spec.get("tools")
        if not isinstance(entries, list) or not entries:
            raise ValueError("config must contain a nonempty 'tools' list")
        tools = []
        for e in entries:
            known = {"tool", "steps", "every", "include_final", "params"}
            extra = set(e) - known
            if extra:
                raise ValueError(f"unknown tool-config keys: {sorted(extra)}")
            tools.append(
                ToolConfig(
                    tool=e["tool"],
                    steps=tuple(e.get("steps", ())),
                    every=e.get("every"),
                    include_final=e.get("include_final", True),
                    params=dict(e.get("params", {})),
                )
            )
        return cls(tools=tuple(tools))
