"""The in situ cosmology-tools framework driver (paper Figure 4).

:class:`CosmologyToolsFramework` turns a :class:`FrameworkConfig` into the
hook table of a :class:`~repro.hacc.simulation.HACCSimulation` run: at each
configured time step the input particles are handed to the scheduled
analysis tools, and the results are collected per (tool, step) for run-time
inspection or for writing to storage — the postprocessing mode the paper
uses.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Iterator

from ..diy.comm import Communicator, run_parallel
from ..hacc.simulation import HACCSimulation, SimulationConfig
from .config import FrameworkConfig
from .tools import TOOL_REGISTRY, AnalysisTool

__all__ = ["CosmologyToolsFramework", "InsituResults", "run_simulation_with_tools"]


class CosmologyToolsFramework:
    """Couples analysis tools to a simulation via its step hooks.

    Parameters
    ----------
    config:
        Which tools fire at which steps, with their parameters.
    registry:
        Tool-name resolution table; defaults to the built-in registry.
        Use :meth:`register` to add custom tools before instantiation.
    """

    def __init__(
        self,
        config: FrameworkConfig,
        registry: dict[str, type[AnalysisTool]] | None = None,
    ) -> None:
        self.config = config
        registry = dict(TOOL_REGISTRY if registry is None else registry)
        self.tools: list[AnalysisTool] = []
        self._tool_configs = []
        for tc in config.tools:
            cls = registry.get(tc.tool)
            if cls is None:
                raise ValueError(
                    f"unknown tool {tc.tool!r}; registered: {sorted(registry)}"
                )
            self.tools.append(cls(**tc.params))
            self._tool_configs.append(tc)
        #: results[tool_name][step] -> tool result
        self.results: dict[str, dict[int, Any]] = {t.name: {} for t in self.tools}
        # Live subscribers (the Catalyst-style run-time connection of paper
        # Figure 4): callbacks fired as each tool result is produced.
        self._subscribers: dict[str, list] = {}

    def subscribe(self, tool_name: str, callback) -> None:
        """Register ``callback(step, a, result)`` for a tool's live output.

        This is the run-time consumption mode the paper implements through
        ParaView Catalyst: instead of (or in addition to) writing results
        to storage for postprocessing, a live consumer sees each result the
        moment the in situ tool produces it.  Callbacks run on every rank;
        rank-dependent consumers should check their communicator.
        """
        if tool_name not in self.results:
            raise ValueError(
                f"unknown tool {tool_name!r}; configured: {sorted(self.results)}"
            )
        self._subscribers.setdefault(tool_name, []).append(callback)

    @staticmethod
    def register(cls: type[AnalysisTool]) -> type[AnalysisTool]:
        """Class decorator adding a custom tool to the global registry."""
        if not cls.name:
            raise ValueError("tool class must define a nonempty 'name'")
        TOOL_REGISTRY[cls.name] = cls
        return cls

    # ------------------------------------------------------------------
    def hooks_for(self, sim: HACCSimulation, comm: Communicator | None):
        """Hook table for ``HACCSimulation.run`` firing the scheduled tools."""
        table: dict[int, list] = {}
        for tool, tc in zip(self.tools, self._tool_configs):
            for step in tc.schedule(sim.config.nsteps):
                table.setdefault(step, []).append(self._make_hook(tool, comm))
        return table

    def _make_hook(self, tool: AnalysisTool, comm: Communicator | None):
        def hook(sim: HACCSimulation, step: int, a: float) -> None:
            # Tools earlier in the config see a context of results already
            # produced at this step, so e.g. the void finder can consume
            # the tessellation tool's output instead of recomputing it.
            context = {
                name: per_step[step]
                for name, per_step in self.results.items()
                if step in per_step
            }
            result = tool.run(sim, step, a, comm, context=context)
            self.results[tool.name][step] = result
            for callback in self._subscribers.get(tool.name, []):
                callback(step, a, result)

        return hook

    def run(
        self, sim_config: SimulationConfig, comm: Communicator | None = None
    ) -> "CosmologyToolsFramework":
        """Run a full simulation with this framework attached (one rank's
        view when ``comm`` is given; serial otherwise).  Returns ``self``."""
        sim = HACCSimulation(sim_config, comm=comm)
        sim.run(hooks=self.hooks_for(sim, comm))
        self._simulation_seconds = sim.simulation_seconds()
        return self

    @property
    def simulation_seconds(self) -> float:
        """Wall-clock spent in simulation stepping during :meth:`run`."""
        return getattr(self, "_simulation_seconds", 0.0)


class InsituResults(Mapping):
    """Per-tool result store plus run-level metrics.

    Behaves exactly like the ``{tool_name: {step: result}}`` mapping the
    driver used to return (indexing, iteration, ``in``), and additionally
    carries :attr:`simulation_seconds` — the cross-rank maximum wall-clock
    time spent stepping the simulation itself, i.e. the denominator for the
    paper's "analysis costs X% of simulation" accounting.
    """

    def __init__(
        self, results: dict[str, dict[int, Any]], simulation_seconds: float
    ) -> None:
        self._results = results
        self.simulation_seconds = simulation_seconds

    def __getitem__(self, tool_name: str) -> dict[int, Any]:
        return self._results[tool_name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._results)

    def __len__(self) -> int:
        return len(self._results)

    def __repr__(self) -> str:
        return (
            f"InsituResults(tools={sorted(self._results)}, "
            f"simulation_seconds={self.simulation_seconds:.3g})"
        )


def run_simulation_with_tools(
    sim_config: SimulationConfig,
    framework_config: FrameworkConfig | dict,
    nranks: int = 1,
    backend: str = "thread",
) -> InsituResults:
    """Convenience driver: simulate with tools attached; return results.

    Results are identical on every rank (tools broadcast their gathered
    outputs), so the rank-0 result store is returned, wrapped in an
    :class:`InsituResults` that also reports the max-over-ranks simulation
    stepping time.

    ``backend`` selects the SPMD substrate — ``"thread"`` (default) or
    ``"process"`` (one OS process per rank; true hardware parallelism for
    compute-bound in situ analysis) — see
    :func:`repro.diy.comm.run_parallel`.  Tool results are identical
    between the two.
    """
    if isinstance(framework_config, dict):
        framework_config = FrameworkConfig.from_dict(framework_config)

    def worker(comm: Communicator):
        fw = CosmologyToolsFramework(framework_config)
        fw.run(sim_config, comm=comm if comm.size > 1 else None)
        return fw.results, fw.simulation_seconds

    results = run_parallel(nranks, worker, backend=backend)
    sim_seconds = max(seconds for _, seconds in results)
    return InsituResults(results[0][0], sim_seconds)
