"""The in situ cosmology-tools framework driver (paper Figure 4).

:class:`CosmologyToolsFramework` turns a :class:`FrameworkConfig` into the
hook table of a :class:`~repro.hacc.simulation.HACCSimulation` run: at each
configured time step the input particles are handed to the scheduled
analysis tools, and the results are collected per (tool, step) for run-time
inspection or for writing to storage — the postprocessing mode the paper
uses.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Iterator

from ..diy.comm import Communicator, run_parallel
from ..hacc.simulation import HACCSimulation, SimulationConfig, run_with_recovery
from ..observe import trace as _trace
from .config import FrameworkConfig
from .tools import TOOL_REGISTRY, AnalysisTool

__all__ = ["CosmologyToolsFramework", "InsituResults", "run_simulation_with_tools"]


class CosmologyToolsFramework:
    """Couples analysis tools to a simulation via its step hooks.

    Parameters
    ----------
    config:
        Which tools fire at which steps, with their parameters.
    registry:
        Tool-name resolution table; defaults to the built-in registry.
        Use :meth:`register` to add custom tools before instantiation.
    """

    def __init__(
        self,
        config: FrameworkConfig,
        registry: dict[str, type[AnalysisTool]] | None = None,
    ) -> None:
        self.config = config
        registry = dict(TOOL_REGISTRY if registry is None else registry)
        self.tools: list[AnalysisTool] = []
        self._tool_configs = []
        for tc in config.tools:
            cls = registry.get(tc.tool)
            if cls is None:
                raise ValueError(
                    f"unknown tool {tc.tool!r}; registered: {sorted(registry)}"
                )
            self.tools.append(cls(**tc.params))
            self._tool_configs.append(tc)
        #: results[tool_name][step] -> tool result
        self.results: dict[str, dict[int, Any]] = {t.name: {} for t in self.tools}
        # Live subscribers (the Catalyst-style run-time connection of paper
        # Figure 4): callbacks fired as each tool result is produced.
        self._subscribers: dict[str, list] = {}

    def subscribe(self, tool_name: str, callback) -> None:
        """Register ``callback(step, a, result)`` for a tool's live output.

        This is the run-time consumption mode the paper implements through
        ParaView Catalyst: instead of (or in addition to) writing results
        to storage for postprocessing, a live consumer sees each result the
        moment the in situ tool produces it.  Callbacks run on every rank;
        rank-dependent consumers should check their communicator.
        """
        if tool_name not in self.results:
            raise ValueError(
                f"unknown tool {tool_name!r}; configured: {sorted(self.results)}"
            )
        self._subscribers.setdefault(tool_name, []).append(callback)

    @staticmethod
    def register(cls: type[AnalysisTool]) -> type[AnalysisTool]:
        """Class decorator adding a custom tool to the global registry."""
        if not cls.name:
            raise ValueError("tool class must define a nonempty 'name'")
        TOOL_REGISTRY[cls.name] = cls
        return cls

    # ------------------------------------------------------------------
    def hooks_for(self, sim: HACCSimulation, comm: Communicator | None):
        """Hook table for ``HACCSimulation.run`` firing the scheduled tools."""
        return self._hook_table(sim.config.nsteps, comm)

    def _hook_table(self, nsteps: int, comm: Communicator | None):
        table: dict[int, list] = {}
        for tool, tc in zip(self.tools, self._tool_configs):
            for step in tc.schedule(nsteps):
                table.setdefault(step, []).append(self._make_hook(tool, comm))
        return table

    def _make_hook(self, tool: AnalysisTool, comm: Communicator | None):
        def hook(sim: HACCSimulation, step: int, a: float) -> None:
            # Tools earlier in the config see a context of results already
            # produced at this step, so e.g. the void finder can consume
            # the tessellation tool's output instead of recomputing it.
            context = {
                name: per_step[step]
                for name, per_step in self.results.items()
                if step in per_step
            }
            with _trace.span(
                "insitu-tool",
                rank=comm.rank if comm is not None else 0,
                cat="insitu",
                tool=tool.name,
                step=step,
            ):
                result = tool.run(sim, step, a, comm, context=context)
            self.results[tool.name][step] = result
            for callback in self._subscribers.get(tool.name, []):
                callback(step, a, result)

        return hook

    def run(
        self,
        sim_config: SimulationConfig,
        comm: Communicator | None = None,
        *,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 0,
        resume: bool = False,
    ) -> "CosmologyToolsFramework":
        """Run a full simulation with this framework attached (one rank's
        view when ``comm`` is given; serial otherwise).  Returns ``self``.

        With ``checkpoint_dir`` set the run goes through
        :func:`repro.hacc.simulation.run_with_recovery`: every
        ``checkpoint_every`` steps the full simulation state is written
        crash-consistently, and ``resume=True`` restarts from the newest
        valid checkpoint — in situ tools are *not* re-fired for steps the
        interrupted run already analyzed (their results for those steps
        live in the earlier run's output, not in :attr:`results`).
        """
        table = self._hook_table(sim_config.nsteps, comm)
        if checkpoint_dir is not None:
            sim = run_with_recovery(
                sim_config,
                comm,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                resume=resume,
                hooks=table,
            )
            self._resumed_step = sim.recovery.resumed_step
        else:
            sim = HACCSimulation(sim_config, comm=comm)
            sim.run(hooks=table)
        self._simulation_seconds = sim.simulation_seconds()
        self._rebalances = sim.rebalances
        return self

    @property
    def simulation_seconds(self) -> float:
        """Wall-clock spent in simulation stepping during :meth:`run`."""
        return getattr(self, "_simulation_seconds", 0.0)

    @property
    def resumed_step(self) -> int:
        """Step the last :meth:`run` resumed from (-1 if it started fresh
        or ran without checkpointing)."""
        return getattr(self, "_resumed_step", -1)

    @property
    def rebalances(self) -> int:
        """Dynamic-load-balance re-splits the last :meth:`run` performed."""
        return getattr(self, "_rebalances", 0)


class InsituResults(Mapping):
    """Per-tool result store plus run-level metrics.

    Behaves exactly like the ``{tool_name: {step: result}}`` mapping the
    driver used to return (indexing, iteration, ``in``), and additionally
    carries :attr:`simulation_seconds` — the cross-rank maximum wall-clock
    time spent stepping the simulation itself, i.e. the denominator for the
    paper's "analysis costs X% of simulation" accounting.
    """

    def __init__(
        self,
        results: dict[str, dict[int, Any]],
        simulation_seconds: float,
        resumed_step: int = -1,
        rebalances: int = 0,
    ) -> None:
        self._results = results
        self.simulation_seconds = simulation_seconds
        #: step the run resumed from (-1 for a fresh / non-checkpointed run)
        self.resumed_step = resumed_step
        #: dynamic-load-balance re-splits performed during the run
        self.rebalances = rebalances

    def __getitem__(self, tool_name: str) -> dict[int, Any]:
        return self._results[tool_name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._results)

    def __len__(self) -> int:
        return len(self._results)

    def __repr__(self) -> str:
        return (
            f"InsituResults(tools={sorted(self._results)}, "
            f"simulation_seconds={self.simulation_seconds:.3g})"
        )


def run_simulation_with_tools(
    sim_config: SimulationConfig,
    framework_config: FrameworkConfig | dict,
    nranks: int = 1,
    backend: str = "thread",
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
    resume: bool = False,
    balance_threshold: float | None = None,
) -> InsituResults:
    """Convenience driver: simulate with tools attached; return results.

    Results are identical on every rank (tools broadcast their gathered
    outputs), so the rank-0 result store is returned, wrapped in an
    :class:`InsituResults` that also reports the max-over-ranks simulation
    stepping time.

    ``backend`` selects the SPMD substrate — ``"thread"`` (default) or
    ``"process"`` (one OS process per rank; true hardware parallelism for
    compute-bound in situ analysis) — see
    :func:`repro.diy.comm.run_parallel`.  Tool results are identical
    between the two.

    ``checkpoint_dir``/``checkpoint_every``/``resume`` enable the
    crash-recovery path of :meth:`CosmologyToolsFramework.run`; on a
    resumed run :attr:`InsituResults.resumed_step` reports the restart
    point and only steps after it appear in the result store.

    ``balance_threshold`` (when not ``None``) overrides the simulation
    config's dynamic load-balancing threshold (see
    :attr:`~repro.hacc.simulation.SimulationConfig.balance_threshold`);
    :attr:`InsituResults.rebalances` reports how many re-splits fired.
    """
    if isinstance(framework_config, dict):
        framework_config = FrameworkConfig.from_dict(framework_config)
    if balance_threshold is not None:
        from dataclasses import replace

        sim_config = replace(sim_config, balance_threshold=balance_threshold)

    # Module-level worker + picklable configs: the process backend can lease
    # persistent pool workers for the whole simulation instead of forking.
    results = run_parallel(
        nranks,
        _framework_worker,
        sim_config,
        framework_config,
        checkpoint_dir,
        checkpoint_every,
        resume,
        backend=backend,
    )
    sim_seconds = max(seconds for _, seconds, _, _ in results)
    return InsituResults(
        results[0][0],
        sim_seconds,
        resumed_step=results[0][2],
        rebalances=max(r[3] for r in results),
    )


def _framework_worker(
    comm: Communicator,
    sim_config: SimulationConfig,
    framework_config: FrameworkConfig,
    checkpoint_dir: str | None,
    checkpoint_every: int,
    resume: bool,
):
    """Rank worker for :func:`run_simulation_with_tools` (picklable)."""
    fw = CosmologyToolsFramework(framework_config)
    fw.run(
        sim_config,
        comm=comm if comm.size > 1 else None,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        resume=resume,
    )
    return fw.results, fw.simulation_seconds, fw.resumed_step, fw.rebalances
