"""Built-in in situ analysis tools (level-1 analysis in paper Figure 4).

Every tool implements :class:`AnalysisTool`: given the live simulation
state at a fired step, produce a result.  Tools run inside the SPMD region
— they receive the rank-local particle view and the communicator and may
perform collectives (ghost exchanges, gathers).  Results are returned on
every rank (root-gathered objects are broadcast) so the framework's result
store is rank-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


from ..analysis.halos import HaloCatalog, fof_halos, fof_halos_distributed
from ..analysis.statistics import Histogram, histogram
from ..core.tessellate import Tessellation, tessellate_distributed
from ..core.timing import TessTimings
from ..diy.comm import Communicator

__all__ = [
    "AnalysisTool",
    "TessellationTool",
    "HaloFinderTool",
    "StatisticsTool",
    "VoidFinderTool",
    "CellStatisticsTool",
    "TOOL_REGISTRY",
]


class AnalysisTool:
    """Base class: one analysis filter of the in situ framework."""

    #: Registry key used in :class:`~repro.insitu.config.ToolConfig`.
    name: str = ""

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ) -> Any:
        """Analyze the live state; called at each scheduled step.

        ``sim`` is the rank's :class:`~repro.hacc.simulation.HACCSimulation`;
        ``comm`` is ``None`` in serial runs.  ``context`` maps names of
        tools already run at this step to their results, enabling tool
        chaining (e.g. void finding over the tessellation tool's output).
        """
        raise NotImplementedError


@dataclass
class TessellationTool(AnalysisTool):
    """Runs tess in situ and (optionally) writes each output to storage.

    Parameters mirror :func:`repro.core.tessellate.tessellate_distributed`;
    ``output_pattern`` may contain ``{step}`` which is substituted per fire.
    """

    ghost: float = 4.0
    backend: str = "delaunay"
    vmin: float | None = None
    vmax: float | None = None
    output_pattern: str | None = None

    name = "tessellation"

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ) -> Tessellation:
        path = (
            self.output_pattern.format(step=step)
            if self.output_pattern is not None
            else None
        )
        if comm is None:
            from ..core.tessellate import tessellate

            return tessellate(
                sim.positions_mpc(),
                sim.config.domain(),
                nblocks=1,
                ghost=self.ghost,
                ids=sim.local.ids,
                backend=self.backend,
                vmin=self.vmin,
                vmax=self.vmax,
                output_path=path,
            )
        block, timings, nbytes = tessellate_distributed(
            comm,
            sim.decomposition,
            sim.positions_mpc(),
            sim.local.ids,
            ghost=self.ghost,
            backend=self.backend,
            vmin=self.vmin,
            vmax=self.vmax,
            output_path=path,
        )
        blocks = comm.gather(block, root=0)
        # Critical-path timings (incl. comm-blocked time and message/byte
        # counters) combine up the binomial reduce tree in rank order.
        reduced = comm.reduce(timings, op=TessTimings.max_with, root=0)
        if comm.rank == 0:
            tess = Tessellation(
                domain=sim.config.domain(),
                blocks=blocks,
                timings=reduced,
                output_bytes=nbytes,
            )
        else:
            tess = None
        return comm.bcast(tess, root=0)


@dataclass
class HaloFinderTool(AnalysisTool):
    """Friends-of-friends halo finder.

    ``linking_length`` is in units of the mean inter-particle spacing
    (``b``, conventionally 0.2); the absolute length is derived from the
    simulation configuration at run time.
    """

    linking_length: float = 0.2
    min_members: int = 10

    name = "halo_finder"

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ) -> HaloCatalog:
        spacing = sim.config.box_size / sim.config.np_side
        b_abs = self.linking_length * spacing
        if comm is None:
            return fof_halos(
                sim.positions_mpc(),
                b_abs,
                domain=sim.config.domain(),
                min_members=self.min_members,
                ids=sim.local.ids,
            )
        return fof_halos_distributed(
            comm,
            sim.decomposition,
            sim.positions_mpc(),
            sim.local.ids,
            linking_length=b_abs,
            min_members=self.min_members,
        )


@dataclass
class StatisticsTool(AnalysisTool):
    """Grid density-contrast histogram (a cheap always-on summary).

    Deposits the particles on the force mesh, computes delta, and returns
    its histogram with skewness/kurtosis — the simulation-side counterpart
    of the paper's cell-based distributions.
    """

    bins: int = 100

    name = "statistics"

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ) -> Histogram:
        from ..hacc.mesh import cic_deposit, density_contrast

        mesh = cic_deposit(sim.local.positions, sim.config.mesh_size)
        if comm is not None:
            mesh = comm.allreduce(mesh)
        delta = density_contrast(mesh)
        return histogram(delta.ravel(), bins=self.bins)


@dataclass
class VoidFinderTool(AnalysisTool):
    """In situ void finding (paper §V: move component labeling in situ).

    Consumes the tessellation tool's result when it ran earlier at the same
    step (list it first in the config); otherwise tessellates its own block
    and runs the fully distributed path — component labeling with the
    one-collective boundary merge plus a vector allreduce of per-void
    volumes — without ever gathering the global mesh (paper §V's point).
    ``vmin_fraction`` applies the paper's fraction-of-volume-range
    threshold rule; an absolute ``vmin`` wins if both are set.  Minkowski
    functionals need the assembled tessellation, so requesting them falls
    back to the gather-based path.
    """

    ghost: float = 4.0
    vmin: float | None = None
    vmin_fraction: float = 0.1
    min_cells: int = 1
    compute_minkowski: bool = False

    name = "void_finder"

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ):
        from ..analysis.voids import (
            find_voids,
            find_voids_distributed,
            volume_threshold_for_fraction,
        )

        tess = (context or {}).get("tessellation")
        if tess is None and comm is not None and not self.compute_minkowski:
            block, _, _ = tessellate_distributed(
                comm,
                sim.decomposition,
                sim.positions_mpc(),
                sim.local.ids,
                ghost=self.ghost,
            )
            return find_voids_distributed(
                comm,
                block,
                vmin=self.vmin,
                vmin_fraction=self.vmin_fraction,
                min_cells=self.min_cells,
            )
        if tess is None:
            tess = TessellationTool(ghost=self.ghost).run(sim, step, a, comm)
        vmin = self.vmin
        if vmin is None:
            vmin = volume_threshold_for_fraction(tess, self.vmin_fraction)
        return find_voids(
            tess,
            vmin=vmin,
            min_cells=self.min_cells,
            compute_minkowski=self.compute_minkowski,
        )


@dataclass
class CellStatisticsTool(AnalysisTool):
    """In situ histogram summaries of cell volumes and density contrast
    (paper §V: move histogram summary statistics in situ)."""

    ghost: float = 4.0
    bins: int = 100

    name = "cell_statistics"

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ) -> dict[str, Histogram]:
        from ..analysis.statistics import density_contrast

        tess = (context or {}).get("tessellation")
        if tess is None:
            tess = TessellationTool(ghost=self.ghost).run(sim, step, a, comm)
        vols = tess.volumes()
        return {
            "volume": histogram(vols, bins=self.bins),
            "density_contrast": histogram(density_contrast(vols), bins=self.bins),
        }


#: Name -> tool class, extended by user registrations
#: (:meth:`CosmologyToolsFramework.register`).
TOOL_REGISTRY: dict[str, type[AnalysisTool]] = {
    TessellationTool.name: TessellationTool,
    HaloFinderTool.name: HaloFinderTool,
    StatisticsTool.name: StatisticsTool,
    VoidFinderTool.name: VoidFinderTool,
    CellStatisticsTool.name: CellStatisticsTool,
}
