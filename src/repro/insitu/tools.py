"""Built-in in situ analysis tools (level-1 analysis in paper Figure 4).

Every tool implements :class:`AnalysisTool`: given the live simulation
state at a fired step, produce a result.  Tools run inside the SPMD region
— they receive the rank-local particle view and the communicator and may
perform collectives (ghost exchanges, gathers).  Results are returned on
every rank (root-gathered objects are broadcast) so the framework's result
store is rank-independent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import observe
from ..analysis.halos import HaloCatalog, fof_halos, fof_halos_distributed
from ..analysis.statistics import Histogram, histogram
from ..core.tessellate import Tessellation, tessellate_distributed
from ..core.timing import TessTimings
from ..diy.comm import Communicator

__all__ = [
    "AnalysisTool",
    "TessellationTool",
    "HaloFinderTool",
    "StatisticsTool",
    "VoidFinderTool",
    "CellStatisticsTool",
    "TrackingTool",
    "DTFETool",
    "TOOL_REGISTRY",
]


class AnalysisTool:
    """Base class: one analysis filter of the in situ framework."""

    #: Registry key used in :class:`~repro.insitu.config.ToolConfig`.
    name: str = ""

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ) -> Any:
        """Analyze the live state; called at each scheduled step.

        ``sim`` is the rank's :class:`~repro.hacc.simulation.HACCSimulation`;
        ``comm`` is ``None`` in serial runs.  ``context`` maps names of
        tools already run at this step to their results, enabling tool
        chaining (e.g. void finding over the tessellation tool's output).
        """
        raise NotImplementedError


@dataclass
class TessellationTool(AnalysisTool):
    """Runs tess in situ and (optionally) writes each output to storage.

    Parameters mirror :func:`repro.core.tessellate.tessellate_distributed`;
    ``output_pattern`` may contain ``{step}`` which is substituted per fire.
    """

    ghost: float = 4.0
    backend: str = "delaunay"
    vmin: float | None = None
    vmax: float | None = None
    output_pattern: str | None = None

    name = "tessellation"

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ) -> Tessellation:
        path = (
            self.output_pattern.format(step=step)
            if self.output_pattern is not None
            else None
        )
        if comm is None:
            from ..core.tessellate import tessellate

            return tessellate(
                sim.positions_mpc(),
                sim.config.domain(),
                nblocks=1,
                ghost=self.ghost,
                ids=sim.local.ids,
                backend=self.backend,
                vmin=self.vmin,
                vmax=self.vmax,
                output_path=path,
            )
        block, timings, nbytes = tessellate_distributed(
            comm,
            sim.decomposition,
            sim.positions_mpc(),
            sim.local.ids,
            ghost=self.ghost,
            backend=self.backend,
            vmin=self.vmin,
            vmax=self.vmax,
            output_path=path,
        )
        blocks = comm.gather(block, root=0)
        # Critical-path timings (incl. comm-blocked time and message/byte
        # counters) combine up the binomial reduce tree in rank order.
        reduced = comm.reduce(timings, op=TessTimings.max_with, root=0)
        if comm.rank == 0:
            tess = Tessellation(
                domain=sim.config.domain(),
                blocks=blocks,
                timings=reduced,
                output_bytes=nbytes,
            )
        else:
            tess = None
        return comm.bcast(tess, root=0)


@dataclass
class HaloFinderTool(AnalysisTool):
    """Friends-of-friends halo finder.

    ``linking_length`` is in units of the mean inter-particle spacing
    (``b``, conventionally 0.2); the absolute length is derived from the
    simulation configuration at run time.
    """

    linking_length: float = 0.2
    min_members: int = 10

    name = "halo_finder"

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ) -> HaloCatalog:
        spacing = sim.config.box_size / sim.config.np_side
        b_abs = self.linking_length * spacing
        if comm is None:
            return fof_halos(
                sim.positions_mpc(),
                b_abs,
                domain=sim.config.domain(),
                min_members=self.min_members,
                ids=sim.local.ids,
            )
        return fof_halos_distributed(
            comm,
            sim.decomposition,
            sim.positions_mpc(),
            sim.local.ids,
            linking_length=b_abs,
            min_members=self.min_members,
        )


@dataclass
class StatisticsTool(AnalysisTool):
    """Grid density-contrast histogram (a cheap always-on summary).

    Deposits the particles on the force mesh, computes delta, and returns
    its histogram with skewness/kurtosis — the simulation-side counterpart
    of the paper's cell-based distributions.
    """

    bins: int = 100

    name = "statistics"

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ) -> Histogram:
        from ..hacc.mesh import cic_deposit, density_contrast

        mesh = cic_deposit(sim.local.positions, sim.config.mesh_size)
        if comm is not None:
            mesh = comm.allreduce(mesh)
        delta = density_contrast(mesh)
        return histogram(delta.ravel(), bins=self.bins)


@dataclass
class VoidFinderTool(AnalysisTool):
    """In situ void finding (paper §V: move component labeling in situ).

    Consumes the tessellation tool's result when it ran earlier at the same
    step (list it first in the config); otherwise tessellates its own block
    and runs the fully distributed path — component labeling with the
    one-collective boundary merge plus a vector allreduce of per-void
    volumes — without ever gathering the global mesh (paper §V's point).
    ``vmin_fraction`` applies the paper's fraction-of-volume-range
    threshold rule; an absolute ``vmin`` wins if both are set.  Minkowski
    functionals need the assembled tessellation, so requesting them falls
    back to the gather-based path.
    """

    ghost: float = 4.0
    vmin: float | None = None
    vmin_fraction: float = 0.1
    min_cells: int = 1
    compute_minkowski: bool = False

    name = "void_finder"

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ):
        from ..analysis.voids import (
            find_voids,
            find_voids_distributed,
            volume_threshold_for_fraction,
        )

        tess = (context or {}).get("tessellation")
        if tess is None and comm is not None and not self.compute_minkowski:
            block, _, _ = tessellate_distributed(
                comm,
                sim.decomposition,
                sim.positions_mpc(),
                sim.local.ids,
                ghost=self.ghost,
            )
            return find_voids_distributed(
                comm,
                block,
                vmin=self.vmin,
                vmin_fraction=self.vmin_fraction,
                min_cells=self.min_cells,
            )
        if tess is None:
            tess = TessellationTool(ghost=self.ghost).run(sim, step, a, comm)
        vmin = self.vmin
        if vmin is None:
            vmin = volume_threshold_for_fraction(tess, self.vmin_fraction)
        return find_voids(
            tess,
            vmin=vmin,
            min_cells=self.min_cells,
            compute_minkowski=self.compute_minkowski,
        )


@dataclass
class CellStatisticsTool(AnalysisTool):
    """In situ histogram summaries of cell volumes and density contrast
    (paper §V: move histogram summary statistics in situ)."""

    ghost: float = 4.0
    bins: int = 100

    name = "cell_statistics"

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ) -> dict[str, Histogram]:
        from ..analysis.statistics import density_contrast

        tess = (context or {}).get("tessellation")
        if tess is None:
            tess = TessellationTool(ghost=self.ghost).run(sim, step, a, comm)
        vols = tess.volumes()
        return {
            "volume": histogram(vols, bins=self.bins),
            "density_contrast": histogram(density_contrast(vols), bins=self.bins),
        }


@dataclass
class TrackingTool(AnalysisTool):
    """In situ feature tracking: void merger trees across output steps.

    At each fired step the tool thresholds the tessellation (quantile of
    the valid cell volumes, or an absolute ``vmin``), labels connected
    components, and links them to the previous step's labeling through a
    :class:`~repro.analysis.tracking.FeatureTreeBuilder` — the same
    engine as the offline drivers, so the in situ tree is bit-identical
    to postprocessing the saved labelings.  The running tree state lives
    on rank 0 and is snapshotted to ``state_dir`` (atomic npz) after
    every push, so a checkpoint/resume via the recovery driver restores
    the prior labeling bit-identically; every rank returns the current
    :class:`~repro.analysis.tracking.MergerTree` snapshot.

    Incomplete cells (volume 0/NaN) are masked out of the quantile and
    the threshold, never crashing the threshold path.  With a
    communicator, only packed ``(site id, label)`` rows travel to rank 0
    per step — the mesh is never gathered.
    """

    ghost: float = 4.0
    vmin: float | None = None
    vmin_quantile: float = 0.85
    min_overlap: int = 1
    kernel: str = "flat"
    state_dir: str | None = None
    output: str | None = None
    _builder: Any = field(default=None, init=False, repr=False, compare=False)

    name = "tracking"

    _STATE_PREFIX = "tracking_state_"

    def _state_path(self, step: int) -> str:
        return os.path.join(
            self.state_dir, f"{self._STATE_PREFIX}{step:08d}.npz"
        )

    def _get_builder(self, sim):
        """The rank-0 builder, restoring checkpointed state on resume.

        State snapshots are per fired step: the tool can fire *after* the
        simulation's last checkpoint, so on resume the newest snapshot
        may be ahead of the restart point — the restore picks the latest
        snapshot at or before ``resumed_step``, exactly the history the
        re-fired steps will extend.
        """
        from ..analysis.tracking import FeatureTreeBuilder

        if self._builder is not None:
            return self._builder
        resumed = int(
            getattr(getattr(sim, "recovery", None), "resumed_step", -1)
        )
        if self.state_dir is not None and resumed >= 0:
            best = -1
            if os.path.isdir(self.state_dir):
                for fname in os.listdir(self.state_dir):
                    if not (
                        fname.startswith(self._STATE_PREFIX)
                        and fname.endswith(".npz")
                    ):
                        continue
                    try:
                        step = int(fname[len(self._STATE_PREFIX) : -4])
                    except ValueError:
                        continue
                    if step <= resumed:
                        best = max(best, step)
            if best >= 0:
                with np.load(self._state_path(best)) as data:
                    arrays = {k: np.array(data[k]) for k in data.files}
                self._builder = FeatureTreeBuilder.from_state(arrays)
                return self._builder
        self._builder = FeatureTreeBuilder(
            min_overlap=self.min_overlap, kernel=self.kernel
        )
        return self._builder

    def _save_state(self, step: int) -> None:
        if self.state_dir is None or self._builder is None:
            return
        path = self._state_path(step)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as f:
                np.savez(f, **self._builder.state())
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    @staticmethod
    def _valid_volumes(vols: np.ndarray) -> np.ndarray:
        """Mask of cells whose volume is usable for thresholding.

        Incomplete cells legitimately carry volume 0 or NaN; they must
        not poison the quantile or the threshold comparison.
        """
        v = np.asarray(vols, dtype=float)
        return np.isfinite(v) & (v > 0)

    def _threshold(self, vols: np.ndarray) -> float:
        valid = vols[self._valid_volumes(vols)]
        if self.vmin is not None:
            return float(self.vmin)
        if len(valid) == 0:
            return float("inf")  # nothing to keep
        return float(np.quantile(valid, self.vmin_quantile))

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ):
        from ..analysis.components import (
            connected_components,
            connected_components_distributed,
        )
        from ..analysis.tracking import MergerTree, gather_step_rows
        from ..core.data_model import index_in_sorted

        if comm is None or comm.size == 1:
            tess = (context or {}).get("tessellation")
            if tess is None:
                tess = TessellationTool(ghost=self.ghost).run(
                    sim, step, a, comm
                )
            vols = tess.volumes()
            vmin = self._threshold(vols)
            labeling = connected_components(tess, vmin=vmin)
            # Per-label volumes accumulated in ascending-site-id order —
            # the same order the distributed root uses, so sums match
            # bit for bit.
            sids = tess.site_ids().astype(np.int64, copy=False)
            order = np.argsort(sids, kind="stable")
            pos, found = index_in_sorted(labeling.site_ids, sids[order])
            if not found.all():
                raise RuntimeError("labeled cell missing from tessellation")
            cell_vols = np.asarray(vols, dtype=float)[order][pos]
            comp_vol = np.zeros(labeling.num_components)
            np.add.at(comp_vol, labeling.labels, cell_vols)
            builder = self._get_builder(sim)
            builder.push(step, labeling, volumes=comp_vol)
            self._save_state(step)
            tree = MergerTree.from_tree(builder.tree())
        else:
            from ..analysis.tracking import local_labeling

            block, _, _ = tessellate_distributed(
                comm,
                sim.decomposition,
                sim.positions_mpc(),
                sim.local.ids,
                ghost=self.ghost,
            )
            # Global quantile: every rank ships its valid volumes once;
            # np.quantile is order-invariant, so the root's threshold is
            # bit-identical to the serial one.
            valid = np.ascontiguousarray(
                np.asarray(block.volumes, dtype=float)[
                    self._valid_volumes(block.volumes)
                ]
            )
            gathered = comm.gather(valid, root=0)
            if comm.rank == 0:
                allv = np.concatenate(gathered)
                if self.vmin is not None:
                    vmin = float(self.vmin)
                elif len(allv) == 0:
                    vmin = float("inf")
                else:
                    vmin = float(np.quantile(allv, self.vmin_quantile))
            else:
                vmin = None
            vmin = comm.bcast(vmin, root=0)
            labeling = connected_components_distributed(
                comm, block, vmin=vmin
            )
            # Restrict to this rank's owned rows and attach cell volumes.
            own = np.asarray(block.site_ids, dtype=np.int64)
            order = np.argsort(own, kind="stable")
            local = local_labeling(labeling, own)
            pos, found = index_in_sorted(local.site_ids, own[order])
            if not found.all():
                raise RuntimeError("labeled cell missing from local block")
            cell_vols = np.asarray(block.volumes, dtype=float)[order][pos]
            with observe.span(
                "tracking-gather", rank=comm.rank, cat="analysis", step=step
            ):
                glab, comp_vol = gather_step_rows(
                    comm, local, cell_volumes=cell_vols
                )
            if comm.rank == 0:
                builder = self._get_builder(sim)
                builder.push(step, glab, volumes=comp_vol)
                self._save_state(step)
                tree = MergerTree.from_tree(builder.tree())
            else:
                tree = None
            tree = comm.bcast(tree, root=0)
        if observe.enabled():
            observe.registry().counter("tracking.steps").inc()
        if self.output is not None and (comm is None or comm.rank == 0):
            out = self.output.format(step=step)
            os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
            tree.save(out)
        return tree


@dataclass
class DTFETool(AnalysisTool):
    """DTFE density-evolution frames: one ``dtfe_grid`` per output step.

    Emits the paper's §II-A density reconstruction as a regular-grid
    frame at every fired step (the Kaehler 2016-style evolution-movie
    workload).  With a communicator the particle positions are gathered
    at rank 0 (positions only — never the mesh), the field is computed
    once, and the frame broadcast so the result store is
    rank-independent.  ``output_pattern`` may contain ``{step}``; frames
    are written atomically as ``.npy`` by rank 0.
    """

    grid_size: int = 16
    pad_fraction: float = 0.25
    output_pattern: str | None = None

    name = "dtfe"

    def run(
        self,
        sim,
        step: int,
        a: float,
        comm: Communicator | None,
        context: dict[str, Any] | None = None,
    ) -> np.ndarray:
        from ..analysis.dtfe import dtfe_grid

        domain = sim.config.domain()
        pts = np.ascontiguousarray(sim.positions_mpc(), dtype=float)
        if comm is None or comm.size == 1:
            grid = dtfe_grid(
                pts, domain, self.grid_size, pad_fraction=self.pad_fraction
            )
        else:
            gathered = comm.gather(pts, root=0)
            if comm.rank == 0:
                grid = dtfe_grid(
                    np.concatenate(gathered),
                    domain,
                    self.grid_size,
                    pad_fraction=self.pad_fraction,
                )
            else:
                grid = None
            grid = comm.bcast(grid, root=0)
        if observe.enabled():
            observe.registry().counter("dtfe.frames").inc()
        if self.output_pattern is not None and (comm is None or comm.rank == 0):
            out = self.output_pattern.format(step=step)
            os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
            tmp = f"{out}.tmp.{os.getpid()}"
            try:
                with open(tmp, "wb") as f:
                    np.save(f, grid)
                    f.flush()
                    os.fsync(f.fileno())
                os.replace(tmp, out)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        return grid


#: Name -> tool class, extended by user registrations
#: (:meth:`CosmologyToolsFramework.register`).
TOOL_REGISTRY: dict[str, type[AnalysisTool]] = {
    TessellationTool.name: TessellationTool,
    HaloFinderTool.name: HaloFinderTool,
    StatisticsTool.name: StatisticsTool,
    VoidFinderTool.name: VoidFinderTool,
    CellStatisticsTool.name: CellStatisticsTool,
    TrackingTool.name: TrackingTool,
    DTFETool.name: DTFETool,
}
