"""Sharded LRU block cache with a byte budget and miss coalescing.

Decoded :class:`~repro.core.data_model.VoronoiBlock`\\ s are the unit of
caching — decode cost (CRC check plus array materialization) is paid once
per ``(etag, gid)`` and every query against that block reuses the arrays.

Design points, each load-bearing under concurrency:

* **sharding** — keys hash onto independent shards, each with its own
  lock and LRU order, so readers hitting different shards never contend.
  The byte budget is split evenly across shards (the classic
  approximation: global LRU order is not preserved, eviction pressure
  is).
* **miss coalescing** — a shard tracks in-flight loads by key; the first
  requester becomes the *leader* and performs the read outside the lock,
  followers wait on the leader's :class:`~concurrent.futures.Future`.
  N concurrent requests for one cold block cost exactly one underlying
  read (``serve.cache.loads`` counts reads, ``serve.cache.coalesced``
  counts followers — the coalescing test asserts both).
* **admission** — an entry larger than a whole shard's budget is returned
  to the caller but never admitted (``serve.cache.oversized``); caching
  it would evict an entire shard for one self-evicting tenant.
* **etag invalidation** — keys embed the snapshot etag, so a republished
  snapshot can never get stale hits; :meth:`BlockCache.evict_stale`
  reclaims the dead bytes eagerly when the catalog manifest changes.

All methods are thread-safe; the asyncio server calls them from worker
threads, and the unit tests drive them with raw threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any, Callable, Hashable

from ..observe import registry

__all__ = ["BlockCache", "CacheStats"]

Key = Hashable
#: a loader returns (value, nbytes) — nbytes is what the entry costs
Loader = Callable[[], tuple[Any, int]]


class _Shard:
    __slots__ = ("lock", "entries", "loading", "bytes")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        # key -> (value, nbytes), in LRU order (last = most recent)
        self.entries: OrderedDict[Key, tuple[Any, int]] = OrderedDict()
        self.loading: dict[Key, Future] = {}
        self.bytes = 0


class CacheStats:
    """Point-in-time cache counters (mirrored into ``repro.observe``)."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.loads = 0
        self.evictions = 0
        self.oversized = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "loads": self.loads,
            "evictions": self.evictions,
            "oversized": self.oversized,
        }


class BlockCache:
    """Thread-safe sharded LRU cache keyed by ``(etag, gid)`` tuples."""

    def __init__(self, max_bytes: int, nshards: int = 8):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if nshards <= 0:
            raise ValueError(f"nshards must be positive, got {nshards}")
        self.max_bytes = int(max_bytes)
        self.nshards = int(nshards)
        self.shard_budget = max(1, self.max_bytes // self.nshards)
        self._shards = [_Shard() for _ in range(self.nshards)]
        self.stats = CacheStats()
        reg = registry()
        self._m_hits = reg.counter("serve.cache.hits")
        self._m_misses = reg.counter("serve.cache.misses")
        self._m_coalesced = reg.counter("serve.cache.coalesced")
        self._m_loads = reg.counter("serve.cache.loads")
        self._m_evictions = reg.counter("serve.cache.evictions")
        self._m_oversized = reg.counter("serve.cache.oversized")
        self._m_bytes = reg.gauge("serve.cache.bytes")

    # ------------------------------------------------------------------
    def _shard(self, key: Key) -> _Shard:
        return self._shards[hash(key) % self.nshards]

    @property
    def nbytes(self) -> int:
        """Current cached bytes across shards."""
        return sum(s.bytes for s in self._shards)

    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._shards)

    def __contains__(self, key: Key) -> bool:
        shard = self._shard(key)
        with shard.lock:
            return key in shard.entries

    # ------------------------------------------------------------------
    def get(self, key: Key, loader: Loader) -> Any:
        """The cached value for ``key``, loading it via ``loader`` on a
        miss.  Concurrent misses for one key perform one load."""
        shard = self._shard(key)
        leader = False
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is not None:
                shard.entries.move_to_end(key)
                self.stats.hits += 1
                self._m_hits.inc()
                return entry[0]
            fut = shard.loading.get(key)
            if fut is not None:
                self.stats.coalesced += 1
                self._m_coalesced.inc()
            else:
                fut = Future()
                shard.loading[key] = fut
                self.stats.misses += 1
                self._m_misses.inc()
                leader = True
        if not leader:
            return fut.result()

        try:
            self.stats.loads += 1
            self._m_loads.inc()
            value, nbytes = loader()
        except BaseException as exc:
            with shard.lock:
                shard.loading.pop(key, None)
            fut.set_exception(exc)
            raise
        with shard.lock:
            shard.loading.pop(key, None)
            if nbytes <= self.shard_budget:
                shard.entries[key] = (value, nbytes)
                shard.entries.move_to_end(key)
                shard.bytes += nbytes
                self._evict_locked(shard)
            else:
                self.stats.oversized += 1
                self._m_oversized.inc()
            self._m_bytes.set(self.nbytes)
        fut.set_result(value)
        return value

    def _evict_locked(self, shard: _Shard) -> None:
        while shard.bytes > self.shard_budget and len(shard.entries) > 1:
            _, (_, nbytes) = shard.entries.popitem(last=False)
            shard.bytes -= nbytes
            self.stats.evictions += 1
            self._m_evictions.inc()

    # ------------------------------------------------------------------
    def evict_stale(self, valid_etags: set[str]) -> int:
        """Drop entries whose key's etag is no longer live; returns the
        number evicted.  Called when the catalog manifest changes."""
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                stale = [
                    k
                    for k in shard.entries
                    if isinstance(k, tuple) and k and k[0] not in valid_etags
                ]
                for key in stale:
                    _, nbytes = shard.entries.pop(key)
                    shard.bytes -= nbytes
                    dropped += 1
                    self.stats.evictions += 1
                    self._m_evictions.inc()
        if dropped:
            self._m_bytes.set(self.nbytes)
        return dropped

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()
                shard.bytes = 0
        self._m_bytes.set(0)
