"""repro.serve — tessellation-as-a-service.

The paper's endgame is tessellation as a reusable analysis *product*: its
ParaView reader plugin serves the blocked tess format to one interactive
user.  This package is the many-users version — a read-optimized catalog
store over the same footer-indexed block files, an asyncio HTTP server
answering void / component / halo / density-profile / Minkowski queries
by region, step, and threshold, and the serving mechanics production
demands between them:

* :mod:`~repro.serve.store` — multi-snapshot catalog manifest with
  ETag-style content versioning over mmap'd, CRC-validated block files;
* :mod:`~repro.serve.cache` — sharded LRU block cache with a byte budget
  and per-key miss coalescing;
* :mod:`~repro.serve.batching` — same-block request batching onto a
  worker pool, with a bounded in-flight queue (503 + Retry-After
  backpressure);
* :mod:`~repro.serve.server` / :mod:`~repro.serve.protocol` — the
  asyncio server and its minimal HTTP/1.1 wire layer;
* :mod:`~repro.serve.client` — the async load generator CI drives.

Quickstart::

    repro-serve build /tmp/catalog --points 4000 --steps 2
    repro-serve serve /tmp/catalog --port 8070 &
    repro-serve load 127.0.0.1:8070 --requests 200 --concurrency 32

Per-request spans and ``serve.*`` metrics flow through
:mod:`repro.observe` (p50/p99 latency via
:class:`~repro.observe.QuantileReservoir`).
"""

from __future__ import annotations

from .batching import QueryBatcher, ServerBusy
from .cache import BlockCache, CacheStats
from .client import LoadReport, default_query_mix, run_load, wait_ready
from .server import ServeConfig, TessServer
from .store import CatalogError, CatalogStore, Snapshot, SnapshotInfo

__all__ = [
    "BlockCache",
    "CacheStats",
    "CatalogError",
    "CatalogStore",
    "LoadReport",
    "QueryBatcher",
    "ServeConfig",
    "ServerBusy",
    "Snapshot",
    "SnapshotInfo",
    "TessServer",
    "default_query_mix",
    "run_load",
    "wait_ready",
]
