"""Request batching and backpressure for the query server.

NumPy-heavy query kernels run on a thread pool; the event loop only
parses, routes, and frames.  Two mechanisms sit between them:

* **same-block batching** — queries are grouped by *batch key* (the
  snapshot etag plus the gid set they touch).  Arrivals within a short
  window ride one executor dispatch: the first query faults the blocks
  into the cache and the rest reuse them while the arrays are hot in
  LLC, instead of interleaving with unrelated work.  One batch is one
  ``serve.batch.dispatches``; ``serve.batch.size`` records occupancy.
* **bounded in-flight queue** — at most ``max_inflight`` queries may be
  queued-or-running.  Beyond that, :meth:`QueryBatcher.submit` raises
  :class:`ServerBusy` and the protocol layer answers **503 with
  Retry-After** — load-shedding at admission, before any memory or pool
  slot is committed, which is what keeps p99 bounded when offered load
  exceeds capacity.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Hashable

from ..observe import registry

__all__ = ["QueryBatcher", "ServerBusy"]


class ServerBusy(RuntimeError):
    """The in-flight queue is full; the client should retry after a
    short delay."""

    def __init__(self, inflight: int, limit: int, retry_after_s: float):
        super().__init__(
            f"{inflight} queries in flight (limit {limit}); retry after "
            f"{retry_after_s:.3f}s"
        )
        self.retry_after_s = retry_after_s


class _Job:
    __slots__ = ("fn", "future")

    def __init__(self, fn: Callable[[], Any], future: asyncio.Future):
        self.fn = fn
        self.future = future


class QueryBatcher:
    """Groups same-key jobs inside a window, runs batches on a pool."""

    def __init__(
        self,
        max_workers: int = 4,
        window_s: float = 0.002,
        max_inflight: int = 128,
        retry_after_s: float = 0.05,
    ):
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        self.window_s = float(window_s)
        self.max_inflight = int(max_inflight)
        self.retry_after_s = float(retry_after_s)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="serve-query"
        )
        self._pending: dict[Hashable, list[_Job]] = {}
        self._inflight = 0
        reg = registry()
        self._m_dispatches = reg.counter("serve.batch.dispatches")
        self._m_batched = reg.counter("serve.batch.jobs")
        self._m_size = reg.histogram("serve.batch.size")
        self._m_busy = reg.counter("serve.busy_rejections")
        self._m_inflight = reg.gauge("serve.inflight")

    @property
    def inflight(self) -> int:
        return self._inflight

    async def submit(self, batch_key: Hashable, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` on the pool, batched with same-key jobs; returns its
        result.  Raises :class:`ServerBusy` at the admission limit."""
        if self._inflight >= self.max_inflight:
            self._m_busy.inc()
            raise ServerBusy(
                self._inflight, self.max_inflight, self.retry_after_s
            )
        loop = asyncio.get_running_loop()
        job = _Job(fn, loop.create_future())
        self._inflight += 1
        self._m_inflight.set_max(self._inflight)
        queue = self._pending.get(batch_key)
        if queue is None:
            # First job for this key opens the window; it flushes the
            # whole group after window_s regardless of later arrivals.
            self._pending[batch_key] = [job]
            loop.call_later(self.window_s, self._flush, batch_key, loop)
        else:
            queue.append(job)
        return await job.future

    # ------------------------------------------------------------------
    def _flush(self, batch_key: Hashable, loop: asyncio.AbstractEventLoop) -> None:
        jobs = self._pending.pop(batch_key, [])
        if not jobs:
            return
        self._m_dispatches.inc()
        self._m_batched.inc(len(jobs))
        self._m_size.observe(len(jobs))
        self._executor.submit(self._run_batch, jobs, loop)

    def _run_batch(
        self, jobs: list[_Job], loop: asyncio.AbstractEventLoop
    ) -> None:
        for job in jobs:
            try:
                result = job.fn()
            except BaseException as exc:
                loop.call_soon_threadsafe(self._finish, job, None, exc)
            else:
                loop.call_soon_threadsafe(self._finish, job, result, None)

    def _finish(
        self, job: _Job, result: Any, exc: BaseException | None
    ) -> None:
        self._inflight -= 1
        if job.future.cancelled():
            return
        if exc is not None:
            job.future.set_exception(exc)
        else:
            job.future.set_result(result)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)
