"""The asyncio tessellation query server.

One event loop owns admission, routing, and framing; the NumPy-heavy
query kernels run on :class:`~repro.serve.batching.QueryBatcher`'s worker
pool against blocks faulted in through the sharded
:class:`~repro.serve.cache.BlockCache`.  The flow for ``POST /query``:

1. parse + validate the spec (400 on garbage — before any I/O),
2. refresh the catalog manifest (one ``stat``; on change, evict cache
   entries whose snapshot etag died),
3. resolve the query region to the gid set of intersecting blocks via
   the snapshot's extents index,
4. submit to the batcher keyed by ``(etag, gids)`` — overload is rejected
   *here* with 503 + Retry-After, before pool or cache memory is
   committed,
5. on a worker thread: pull each block through the cache (misses
   coalesce; one cold read per block however many queries want it) and
   run the :func:`repro.analysis.query.run_query` kernel,
6. frame the JSON result with the snapshot ``ETag``.

Every request is wrapped in a ``repro.observe`` span (``serve-request``,
visible in ``--trace`` Chrome traces next to the simulation's own spans)
and recorded in the registry: ``serve.requests{op=..,status=..}``
counters, a ``serve.request_ms`` quantile reservoir (p50/p99), and
per-op ``serve.request_ms_sum{op=..}`` histograms.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from ..analysis.query import QueryError, region_bounds, run_query
from ..diy.bounds import Bounds
from ..observe import registry, span
from .batching import QueryBatcher, ServerBusy
from .cache import BlockCache
from .protocol import (
    HttpRequest,
    HttpResponse,
    ProtocolError,
    error_response,
    json_response,
    read_request,
    render_response,
)
from .store import CatalogError, CatalogStore, Snapshot

__all__ = ["ServeConfig", "TessServer"]


@dataclass
class ServeConfig:
    """Tunables of one server instance (all have serving-grade defaults)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands on TessServer.port
    cache_bytes: int = 256 * 1024 * 1024
    cache_shards: int = 8
    workers: int = 4
    batch_window_s: float = 0.002
    max_inflight: int = 128
    retry_after_s: float = 0.05

    def __post_init__(self) -> None:
        if self.cache_bytes <= 0:
            raise ValueError(f"cache_bytes must be positive, got {self.cache_bytes}")
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")


class TessServer:
    """Serves one :class:`~repro.serve.store.CatalogStore` over HTTP."""

    def __init__(self, store: CatalogStore, config: ServeConfig | None = None):
        self.store = store
        self.config = config or ServeConfig()
        self.cache = BlockCache(
            self.config.cache_bytes, nshards=self.config.cache_shards
        )
        self.batcher = QueryBatcher(
            max_workers=self.config.workers,
            window_s=self.config.batch_window_s,
            max_inflight=self.config.max_inflight,
            retry_after_s=self.config.retry_after_s,
        )
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._started = time.monotonic()
        reg = registry()
        self._m_latency = reg.reservoir("serve.request_ms")
        self._m_connections = reg.counter("serve.connections")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.batcher.shutdown()
        self.store.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._m_connections.inc()
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(render_response(error_response(400, str(exc))))
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                writer.write(render_response(response))
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        op = "http"
        t0 = time.perf_counter()
        with span("serve-request", cat="serve", path=request.path):
            try:
                if request.path == "/healthz":
                    response = json_response(200, {"status": "ok"})
                elif request.path == "/catalog":
                    response = self._handle_catalog(request)
                elif request.path == "/metrics":
                    response = json_response(200, self.metrics_snapshot())
                elif request.path == "/query":
                    if request.method != "POST":
                        response = error_response(405, "POST /query")
                    else:
                        op, response = await self._handle_query(request)
                else:
                    response = error_response(
                        404, f"no route for {request.path}"
                    )
            except ProtocolError as exc:
                response = error_response(400, str(exc))
            except Exception as exc:  # noqa: BLE001 - fault barrier
                response = error_response(500, f"internal error: {exc}")
        ms = (time.perf_counter() - t0) * 1e3
        reg = registry()
        self._m_latency.observe(ms)
        reg.histogram("serve.request_ms_sum", op=op).observe(ms)
        reg.counter("serve.requests", op=op, status=response.status).inc()
        return response

    def _handle_catalog(self, request: HttpRequest) -> HttpResponse:
        if self.store.refresh():
            self.cache.evict_stale(self.store.etags())
        manifest = self.store.manifest()
        etag = f'"{manifest["etag"]}"'
        if request.headers.get("if-none-match") == etag:
            return HttpResponse(status=304, headers={"etag": etag})
        return json_response(200, manifest, headers={"etag": etag})

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _profile_gids(self, snapshot: Snapshot, spec: dict) -> list[int]:
        """Blocks a profile query needs: those intersecting the
        center±rmax box, or every block when the ball wraps a periodic
        boundary (minimum-image distances may then reach any block)."""
        domain = snapshot.domain
        center = np.asarray(spec.get("center", ()), dtype=float)
        rmax = float(spec.get("rmax", 0.0))
        if center.shape != (domain.dim,) or rmax <= 0:
            raise QueryError("profile queries require 'center' and 'rmax' > 0")
        lo, hi = domain.as_arrays()
        if np.any(center - rmax < lo) or np.any(center + rmax > hi):
            return snapshot.gids_for_region(None)
        ball = Bounds.from_arrays(center - rmax, center + rmax)
        return snapshot.gids_for_region(ball)

    async def _handle_query(
        self, request: HttpRequest
    ) -> tuple[str, HttpResponse]:
        spec = request.json()
        op = str(spec.get("op", "?"))
        if self.store.refresh():
            self.cache.evict_stale(self.store.etags())
        steps = self.store.steps()
        if not steps:
            return op, error_response(404, "catalog is empty")
        step = spec.get("step", steps[-1])
        if not isinstance(step, int):
            return op, error_response(400, f"step must be an integer, got {step!r}")
        try:
            snapshot = self.store.snapshot(step)
        except CatalogError as exc:
            return op, error_response(404, str(exc))

        try:
            if op == "profile":
                gids = self._profile_gids(snapshot, spec)
            else:
                region = region_bounds(spec.get("region"), snapshot.domain)
                gids = snapshot.gids_for_region(region)
        except QueryError as exc:
            return op, error_response(400, str(exc))

        etag = snapshot.etag
        domain = snapshot.domain

        def kernel() -> dict:
            blocks = [
                self.cache.get(
                    (etag, gid), lambda g=gid: snapshot.load_block(g)
                )
                for gid in gids
            ]
            return run_query(domain, blocks, spec)

        try:
            result = await self.batcher.submit((etag, tuple(gids)), kernel)
        except ServerBusy as exc:
            return op, error_response(
                503,
                "busy",
                headers={"retry-after": f"{exc.retry_after_s:.3f}"},
                retry_after_s=exc.retry_after_s,
            )
        except QueryError as exc:
            return op, error_response(400, str(exc))

        result["step"] = step
        result["etag"] = etag
        result["blocks"] = len(gids)
        return op, json_response(200, result, headers={"etag": f'"{etag}"'})

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Summary of the server's observe metrics (no raw samples)."""
        snap = registry().as_dict()
        out: dict[str, object] = {
            "uptime_s": time.monotonic() - self._started,
            "inflight": self.batcher.inflight,
            "cache": self.cache.stats.as_dict(),
            "cache_bytes": self.cache.nbytes,
            "latency_ms": {
                "count": self._m_latency.count,
                "p50": self._m_latency.percentile(50),
                "p90": self._m_latency.percentile(90),
                "p99": self._m_latency.percentile(99),
            },
            "counters": {
                k: v
                for k, v in snap["counters"].items()
                if k.startswith("serve.")
            },
            "histograms": {
                k: {kk: vv for kk, vv in v.items()}
                for k, v in snap["histograms"].items()
                if k.startswith("serve.")
            },
        }
        return out
