"""Read-optimized catalog store over the blocked tess format.

A catalog is a directory of published tess snapshot files plus a
``catalog.json`` manifest mapping simulation steps to files.  Both halves
reuse the crash-consistency machinery the write path already has:

* snapshot files are the atomic-publish block files of
  :mod:`repro.diy.mpi_io` (CRC'd footer index, temp-file + fsync +
  ``os.replace``), so a snapshot is either fully there or not at all;
* the manifest itself is published the same way (temp + fsync + replace),
  so readers never observe a half-written catalog.

**ETag-style content versioning**: every snapshot's identity is its
file's :attr:`~repro.diy.mpi_io.BlockFileReader.content_tag` — derived
from the footer CRC, which covers every block payload's CRC.  Republishing
a step with different contents yields a different etag; the block cache
keys on ``(etag, gid)``, so stale cached blocks can never be served for
the new snapshot and are evicted on the next manifest refresh
(:meth:`~repro.serve.cache.BlockCache.evict_stale`).  The manifest carries
each snapshot's etag, and the catalog's own etag digests all of them, so
a client can long-poll ``GET /catalog`` with ``If-None-Match``.

Block payloads are addressed through the footer index over an mmap'd
file (:meth:`~repro.diy.mpi_io.BlockFileReader.read_block_view`): a cold
read CRC-checks and decodes one payload's pages; block extents for
region->gid mapping come from a partial scan that never touches the
geometry arrays (:func:`repro.core.tess_io.scan_block_extents`).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass

from ..core.tess_io import block_from_payload, scan_block_extents
from ..diy.bounds import Bounds
from ..diy.mpi_io import BlockFileReader, CheckpointError

__all__ = ["SnapshotInfo", "Snapshot", "CatalogStore", "CatalogError"]

MANIFEST_NAME = "catalog.json"
_MANIFEST_VERSION = 1


class CatalogError(ValueError):
    """The catalog directory or a request against it is invalid; the
    message names the path or step that failed."""


@dataclass(frozen=True)
class SnapshotInfo:
    """One published snapshot as recorded in the manifest."""

    step: int
    path: str  # relative to the catalog root
    etag: str
    nblocks: int

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "path": self.path,
            "etag": self.etag,
            "nblocks": self.nblocks,
        }


class Snapshot:
    """An open snapshot: mmap'd reader plus its region index.

    Handles are cached by the store per ``(step, etag)`` and shared by
    concurrent readers — :class:`BlockFileReader` reads are positioned
    (no shared seek pointer) and the extents index is built once under a
    lock.
    """

    def __init__(self, info: SnapshotInfo, path: str):
        self.info = info
        self.reader = BlockFileReader(path)
        if self.reader.content_tag != info.etag:
            self.reader.close()
            raise CatalogError(
                f"{path}: content tag {self.reader.content_tag} does not "
                f"match manifest etag {info.etag} (torn republish?)"
            )
        self._lock = threading.Lock()
        self._extents: list[Bounds] | None = None
        self._domain: Bounds | None = None

    @property
    def etag(self) -> str:
        return self.info.etag

    @property
    def nblocks(self) -> int:
        return self.reader.nblocks

    def _index(self) -> tuple[list[Bounds], Bounds]:
        if self._extents is None:
            with self._lock:
                if self._extents is None:
                    self._extents, self._domain = scan_block_extents(
                        self.reader
                    )
        assert self._extents is not None and self._domain is not None
        return self._extents, self._domain

    @property
    def domain(self) -> Bounds:
        return self._index()[1]

    def gids_for_region(self, region: Bounds | None) -> list[int]:
        """Gids of blocks whose extents intersect ``region`` (all blocks
        for ``None``)."""
        extents, _ = self._index()
        if region is None:
            return list(range(len(extents)))
        return [g for g, ext in enumerate(extents) if ext.intersects(region)]

    def load_block(self, gid: int):
        """Cold-path loader: CRC-check, decode, and return
        ``(block, nbytes)`` — the shape :class:`~repro.serve.cache.BlockCache`
        loaders return.  ``nbytes`` is the decoded arrays' footprint, which
        is what actually occupies cache memory."""
        block, _ = block_from_payload(self.reader.read_block_view(gid))
        nbytes = sum(
            a.nbytes for a in block.to_arrays().values()
        )
        return block, nbytes

    def close(self) -> None:
        self.reader.close()


class CatalogStore:
    """Multi-snapshot catalog over a directory of tess block files."""

    def __init__(self, root: str | os.PathLike):
        self.root = os.fspath(root)
        self._lock = threading.Lock()
        self._snapshots: dict[int, SnapshotInfo] = {}
        self._handles: dict[tuple[int, str], Snapshot] = {}
        self._manifest_stamp: tuple[float, int] | None = None
        os.makedirs(self.root, exist_ok=True)
        self.refresh(force=True)

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def refresh(self, force: bool = False) -> bool:
        """Reload the manifest if it changed on disk; returns whether it
        did.  Cheap when unchanged (one ``stat``), so the server calls it
        per catalog-touching request."""
        try:
            st = os.stat(self._manifest_path)
            stamp = (st.st_mtime, st.st_size)
        except FileNotFoundError:
            stamp = None
        if not force and stamp == self._manifest_stamp:
            return False
        snapshots: dict[int, SnapshotInfo] = {}
        if stamp is not None:
            with open(self._manifest_path) as f:
                data = json.load(f)
            if data.get("version") != _MANIFEST_VERSION:
                raise CatalogError(
                    f"{self._manifest_path}: unsupported manifest version "
                    f"{data.get('version')}"
                )
            for rec in data.get("snapshots", []):
                info = SnapshotInfo(
                    step=int(rec["step"]),
                    path=str(rec["path"]),
                    etag=str(rec["etag"]),
                    nblocks=int(rec["nblocks"]),
                )
                snapshots[info.step] = info
        with self._lock:
            self._snapshots = snapshots
            self._manifest_stamp = stamp
            # Drop handles whose (step, etag) no longer matches the
            # manifest — a republished step gets a fresh mmap next access.
            live = {(i.step, i.etag) for i in snapshots.values()}
            for key in [k for k in self._handles if k not in live]:
                self._handles.pop(key).close()
        return True

    def _write_manifest(self) -> None:
        payload = {
            "version": _MANIFEST_VERSION,
            "snapshots": [
                self._snapshots[s].as_dict()
                for s in sorted(self._snapshots)
            ],
        }
        tmp = self._manifest_path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self._manifest_path)
        st = os.stat(self._manifest_path)
        self._manifest_stamp = (st.st_mtime, st.st_size)

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(self, step: int, tess) -> SnapshotInfo:
        """Write ``tess`` as the snapshot for ``step`` and commit it to
        the manifest.  Both writes are atomic; a republish of an existing
        step changes its etag (and thereby invalidates cached blocks)."""
        if step < 0:
            raise CatalogError(f"step must be >= 0, got {step}")
        rel = f"step-{step:06d}.tess"
        path = os.path.join(self.root, rel)
        tess.write(path)
        with BlockFileReader(path) as reader:
            info = SnapshotInfo(
                step=step,
                path=rel,
                etag=reader.content_tag,
                nblocks=reader.nblocks,
            )
        with self._lock:
            stale = self._snapshots.get(step)
            self._snapshots[step] = info
            if stale is not None:
                handle = self._handles.pop((step, stale.etag), None)
                if handle is not None:
                    handle.close()
            self._write_manifest()
        return info

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def steps(self) -> list[int]:
        with self._lock:
            return sorted(self._snapshots)

    def etags(self) -> set[str]:
        """Etags of every live snapshot (the cache's validity set)."""
        with self._lock:
            return {i.etag for i in self._snapshots.values()}

    def info(self, step: int) -> SnapshotInfo:
        with self._lock:
            try:
                return self._snapshots[step]
            except KeyError:
                raise CatalogError(
                    f"no snapshot for step {step}; catalog has "
                    f"{sorted(self._snapshots)}"
                ) from None

    def snapshot(self, step: int) -> Snapshot:
        """The (shared, cached) open handle for ``step``'s snapshot."""
        info = self.info(step)
        key = (step, info.etag)
        with self._lock:
            handle = self._handles.get(key)
            if handle is None:
                try:
                    handle = Snapshot(
                        info, os.path.join(self.root, info.path)
                    )
                except (OSError, CheckpointError) as exc:
                    raise CatalogError(
                        f"snapshot for step {step} unreadable: {exc}"
                    ) from exc
                self._handles[key] = handle
        return handle

    def manifest(self) -> dict:
        """JSON-able catalog listing plus the catalog-level etag."""
        with self._lock:
            snaps = [self._snapshots[s].as_dict() for s in sorted(self._snapshots)]
        digest = hashlib.sha256(
            json.dumps(snaps, sort_keys=True).encode()
        ).hexdigest()[:16]
        return {"etag": digest, "snapshots": snaps}

    def close(self) -> None:
        with self._lock:
            for handle in self._handles.values():
                handle.close()
            self._handles.clear()
