"""Wire protocol: a minimal HTTP/1.1 subset over asyncio streams.

Just enough HTTP for a JSON query service and its load generator —
request-line + headers + ``Content-Length`` bodies, keep-alive by
default, no chunked encoding, no dependencies.  Both the server and the
client speak through these helpers, so the framing logic exists once.

Endpoints (served by :mod:`repro.serve.server`):

``GET /healthz``
    Liveness probe; 200 with ``{"status": "ok"}``.
``GET /catalog``
    Manifest of published snapshots with per-snapshot etags.  Carries a
    catalog-level ``ETag`` header; honors ``If-None-Match`` with 304.
``GET /metrics``
    JSON snapshot of the server's ``serve.*`` observe metrics, including
    p50/p99 request-latency percentiles.
``POST /query``
    One JSON query spec (see :data:`repro.analysis.query.QUERY_OPS`).
    Responses carry the snapshot's ``ETag``.  An overloaded server
    answers 503 with a ``Retry-After`` header and
    ``{"error": "busy", ...}`` — the retryable-backpressure contract.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "ProtocolError",
    "read_request",
    "read_response",
    "render_request",
    "render_response",
    "json_response",
    "error_response",
]

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """Malformed HTTP framing; the connection should be closed."""


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        try:
            obj = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")
        if not isinstance(obj, dict):
            raise ProtocolError("request body must be a JSON object")
        return obj

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive") != "close"


@dataclass
class HttpResponse:
    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8")) if self.body else {}


async def _read_head(
    reader: asyncio.StreamReader,
) -> tuple[str, dict[str, str]] | None:
    """Read request/status line plus headers; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-headers")
    except asyncio.LimitOverrunError:
        raise ProtocolError(f"headers exceed {MAX_HEADER_BYTES} bytes")
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(f"headers exceed {MAX_HEADER_BYTES} bytes")
    lines = head.decode("latin-1").split("\r\n")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return lines[0], headers


async def _read_body(
    reader: asyncio.StreamReader, headers: dict[str, str]
) -> bytes:
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"content-length {length} out of bounds")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-body")


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request; ``None`` when the peer closed between requests."""
    head = await _read_head(reader)
    if head is None:
        return None
    line, headers = head
    parts = line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {line!r}")
    body = await _read_body(reader, headers)
    return HttpRequest(
        method=parts[0].upper(), path=parts[1], headers=headers, body=body
    )


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Parse one response (client side)."""
    head = await _read_head(reader)
    if head is None:
        raise ProtocolError("connection closed before response")
    line, headers = head
    parts = line.split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(f"malformed status line {line!r}")
    body = await _read_body(reader, headers)
    return HttpResponse(status=int(parts[1]), headers=headers, body=body)


def render_request(
    method: str,
    path: str,
    body: bytes = b"",
    headers: dict[str, str] | None = None,
) -> bytes:
    out = [f"{method} {path} HTTP/1.1"]
    merged = {"content-length": str(len(body)), **(headers or {})}
    out.extend(f"{k}: {v}" for k, v in merged.items())
    return ("\r\n".join(out) + "\r\n\r\n").encode("latin-1") + body


def render_response(resp: HttpResponse) -> bytes:
    reason = _REASONS.get(resp.status, "Unknown")
    out = [f"HTTP/1.1 {resp.status} {reason}"]
    merged = {
        "content-length": str(len(resp.body)),
        "content-type": "application/json",
        **resp.headers,
    }
    out.extend(f"{k}: {v}" for k, v in merged.items())
    return ("\r\n".join(out) + "\r\n\r\n").encode("latin-1") + resp.body


def json_response(
    status: int, payload: dict, headers: dict[str, str] | None = None
) -> HttpResponse:
    return HttpResponse(
        status=status,
        headers=dict(headers or {}),
        body=json.dumps(payload).encode("utf-8"),
    )


def error_response(
    status: int, message: str, headers: dict[str, str] | None = None, **extra
) -> HttpResponse:
    return json_response(status, {"error": message, **extra}, headers)
