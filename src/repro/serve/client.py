"""Async load-generator client for the tessellation query server.

Drives ``concurrency`` persistent keep-alive connections, each issuing
queries drawn round-robin from a query mix, and records per-request
latency client-side.  503 busy responses are honored as the protocol
intends — wait ``Retry-After``, retry, count it as a retry rather than an
error — so the load report separates *shed* load from *failed* load.
The final report (:func:`LoadReport.as_dict`) carries p50/p90/p99
latency, sustained QPS, status counts, and the server's own
``/metrics`` snapshot for cross-checking, and is what the CI service job
gates on.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

import numpy as np

from .protocol import (
    ProtocolError,
    read_response,
    render_request,
)

__all__ = ["LoadReport", "default_query_mix", "run_load", "wait_ready"]

#: retries per request before it counts as an error
MAX_RETRIES = 20


@dataclass
class LoadReport:
    """Client-side results of one load run."""

    latencies_ms: list[float] = field(default_factory=list)
    statuses: dict[int, int] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)
    retries: int = 0
    wall_s: float = 0.0
    concurrency: int = 0
    server_metrics: dict | None = None

    @property
    def requests(self) -> int:
        return len(self.latencies_ms)

    @property
    def qps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": len(self.errors),
            "error_messages": self.errors[:20],
            "retries": self.retries,
            "concurrency": self.concurrency,
            "wall_s": self.wall_s,
            "qps": self.qps,
            "p50_ms": self.percentile(50),
            "p90_ms": self.percentile(90),
            "p99_ms": self.percentile(99),
            "max_ms": max(self.latencies_ms) if self.latencies_ms else 0.0,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "server_metrics": self.server_metrics,
        }


def default_query_mix(box: float, steps: list[int]) -> list[dict]:
    """A representative query mix over ``steps`` in a ``box``-sized domain:
    whole-domain voids, region-restricted voids/components, halo lookups,
    density profiles, and Minkowski shapefinders."""
    half = box / 2.0
    mix: list[dict] = []
    for step in steps:
        mix.extend(
            [
                {"op": "voids", "step": step},
                {
                    "op": "voids",
                    "step": step,
                    "region": [[0, 0, 0], [half, half, half]],
                },
                {"op": "components", "step": step, "vmin": 0.0},
                {
                    "op": "halos",
                    "step": step,
                    "linking_fraction": 0.25,
                    "min_members": 4,
                },
                {
                    "op": "profile",
                    "step": step,
                    "center": [half, half, half],
                    "rmax": half / 2,
                    "nbins": 12,
                },
                {"op": "minkowski", "step": step, "top": 2},
            ]
        )
    return mix


async def _open(host: str, port: int):
    return await asyncio.open_connection(host, port)


async def wait_ready(host: str, port: int, timeout_s: float = 30.0) -> bool:
    """Poll ``GET /healthz`` until the server answers or time runs out."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            reader, writer = await _open(host, port)
            writer.write(render_request("GET", "/healthz"))
            await writer.drain()
            resp = await read_response(reader)
            writer.close()
            if resp.status == 200:
                return True
        except (ConnectionError, OSError, ProtocolError):
            pass
        await asyncio.sleep(0.1)
    return False


async def _worker(
    host: str,
    port: int,
    queries: list[dict],
    start_at: int,
    count: int,
    report: LoadReport,
    lock: asyncio.Lock,
) -> None:
    reader = writer = None
    idx = start_at
    done = 0
    while done < count:
        spec = queries[idx % len(queries)]
        idx += 1
        body = json.dumps(spec).encode()
        t0 = time.perf_counter()
        status = None
        last_error = None
        for _ in range(MAX_RETRIES):
            try:
                if writer is None:
                    reader, writer = await _open(host, port)
                writer.write(render_request("POST", "/query", body))
                await writer.drain()
                resp = await read_response(reader)
            except (ConnectionError, OSError, ProtocolError) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                if writer is not None:
                    writer.close()
                    reader = writer = None
                await asyncio.sleep(0.05)
                continue
            status = resp.status
            if status == 503:
                retry_after = float(resp.headers.get("retry-after", "0.05"))
                async with lock:
                    report.retries += 1
                await asyncio.sleep(retry_after)
                continue
            break
        ms = (time.perf_counter() - t0) * 1e3
        done += 1
        async with lock:
            if status is None:
                report.errors.append(last_error or "no response")
            else:
                report.statuses[status] = report.statuses.get(status, 0) + 1
                report.latencies_ms.append(ms)
                if status != 200:
                    body_head = resp.body[:200].decode("utf-8", "replace")
                    report.errors.append(f"status {status}: {body_head}")
    if writer is not None:
        writer.close()


async def _fetch_metrics(host: str, port: int) -> dict | None:
    try:
        reader, writer = await _open(host, port)
        writer.write(render_request("GET", "/metrics"))
        await writer.drain()
        resp = await read_response(reader)
        writer.close()
        return resp.json() if resp.status == 200 else None
    except (ConnectionError, OSError, ProtocolError):
        return None


async def run_load(
    host: str,
    port: int,
    queries: list[dict],
    requests: int,
    concurrency: int,
) -> LoadReport:
    """Fire ``requests`` queries over ``concurrency`` connections."""
    report = LoadReport(concurrency=concurrency)
    lock = asyncio.Lock()
    per = [requests // concurrency] * concurrency
    for i in range(requests % concurrency):
        per[i] += 1
    t0 = time.perf_counter()
    await asyncio.gather(
        *(
            _worker(host, port, queries, i * 7, per[i], report, lock)
            for i in range(concurrency)
            if per[i] > 0
        )
    )
    report.wall_s = time.perf_counter() - t0
    report.server_metrics = await _fetch_metrics(host, port)
    return report
