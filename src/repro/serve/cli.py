"""``repro-serve`` — build, serve, and load-test tessellation catalogs.

Three subcommands cover the service lifecycle end to end:

``repro-serve build ROOT``
    Build a fixture catalog: generate point sets (clustered per step so
    analysis queries return non-trivial features), tessellate, and
    publish one snapshot per step with etag versioning.
``repro-serve serve ROOT``
    Run the asyncio query server over a catalog directory.  ``--trace`` /
    ``--metrics`` write observe reports at shutdown (SIGTERM/SIGINT are
    handled gracefully), which is how the CI service job captures
    artifacts.
``repro-serve load HOST:PORT``
    Fire a concurrent load-generator against a running server and write a
    latency report; ``--p99-ms`` and ``--fail-on-errors`` turn it into an
    asserting e2e gate (nonzero exit on violation).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

import numpy as np

__all__ = ["main", "serve_main"]


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-serve",
        description="Tessellation-as-a-service: catalog build/serve/load.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    b = sub.add_parser("build", help="build a fixture catalog")
    b.add_argument("root", help="catalog directory (created if missing)")
    b.add_argument("--points", type=int, default=4000,
                   help="points per snapshot (default 4000)")
    b.add_argument("--blocks", type=int, default=4,
                   help="blocks per snapshot (default 4)")
    b.add_argument("--steps", type=int, default=2,
                   help="number of snapshots to publish (default 2)")
    b.add_argument("--box", type=float, default=16.0,
                   help="periodic box side (default 16)")
    b.add_argument("--seed", type=int, default=0, help="RNG seed")

    s = sub.add_parser("serve", help="run the query server")
    s.add_argument("root", help="catalog directory")
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=8070,
                   help="TCP port (0 = ephemeral, printed on startup)")
    s.add_argument("--cache-mb", type=float, default=256.0,
                   help="block cache byte budget (default 256 MiB)")
    s.add_argument("--shards", type=int, default=8,
                   help="cache shard count (default 8)")
    s.add_argument("--workers", type=int, default=4,
                   help="query worker threads (default 4)")
    s.add_argument("--window-ms", type=float, default=2.0,
                   help="batching window (default 2 ms)")
    s.add_argument("--max-inflight", type=int, default=128,
                   help="bounded in-flight queue; beyond it requests get "
                        "503 + Retry-After (default 128)")
    s.add_argument("--trace", default=None, metavar="OUT.json",
                   help="write a Chrome trace of request spans at shutdown")
    s.add_argument("--metrics", default=None, metavar="OUT.json",
                   help="write the observe metrics report at shutdown")

    c = sub.add_parser("load", help="run the load generator")
    c.add_argument("target", help="HOST:PORT of a running repro-serve")
    c.add_argument("--requests", type=int, default=200,
                   help="total requests (default 200)")
    c.add_argument("--concurrency", type=int, default=32,
                   help="in-flight connections (default 32)")
    c.add_argument("--wait-s", type=float, default=30.0,
                   help="max seconds to wait for the server to become "
                        "ready (default 30)")
    c.add_argument("--report", default=None, metavar="OUT.json",
                   help="write the latency report JSON here")
    c.add_argument("--p99-ms", type=float, default=None,
                   help="fail (exit 1) if client-side p99 exceeds this")
    c.add_argument("--fail-on-errors", action="store_true",
                   help="fail (exit 1) on any request error")
    return p


# ----------------------------------------------------------------------
# build
# ----------------------------------------------------------------------
def _clustered_points(
    rng: np.random.Generator, n: int, box: float
) -> np.ndarray:
    """Half background, half Gaussian clumps — gives the fixture catalog
    real voids and halos so every query op exercises its kernel."""
    n_bg = n // 2
    pts = [rng.uniform(0.0, box, size=(n_bg, 3))]
    remaining = n - n_bg
    nclumps = max(1, remaining // 200)
    centers = rng.uniform(0.0, box, size=(nclumps, 3))
    for i, center in enumerate(centers):
        m = remaining // nclumps if i < nclumps - 1 else remaining - (
            nclumps - 1
        ) * (remaining // nclumps)
        clump = center + rng.normal(scale=box / 40.0, size=(m, 3))
        pts.append(np.mod(clump, box))
    return np.concatenate(pts)


def _cmd_build(args) -> int:
    from ..core import tessellate
    from ..diy.bounds import Bounds
    from .store import CatalogStore

    store = CatalogStore(args.root)
    rng = np.random.default_rng(args.seed)
    domain = Bounds.cube(args.box)
    for step in range(args.steps):
        points = _clustered_points(rng, args.points, args.box)
        tess = tessellate(points, domain, nblocks=args.blocks)
        info = store.publish(step, tess)
        print(
            f"published step {info.step}: {info.nblocks} blocks, "
            f"etag {info.etag} -> {info.path}"
        )
    print(f"catalog ready: {args.root} ({args.steps} snapshot(s))")
    return 0


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
async def _serve(args) -> int:
    from .server import ServeConfig, TessServer
    from .store import CatalogStore

    store = CatalogStore(args.root)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_bytes=int(args.cache_mb * 1024 * 1024),
        cache_shards=args.shards,
        workers=args.workers,
        batch_window_s=args.window_ms / 1e3,
        max_inflight=args.max_inflight,
    )
    server = TessServer(store, config)
    await server.start()
    steps = store.steps()
    print(
        f"serving catalog {args.root} ({len(steps)} snapshot(s), steps "
        f"{steps}) on {args.host}:{server.port}",
        flush=True,
    )

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("shutting down...", flush=True)
    await server.close()
    return 0


def _cmd_serve(args) -> int:
    from .. import observe

    observing = args.trace is not None or args.metrics is not None
    if observing:
        observe.enable()
    try:
        return asyncio.run(_serve(args))
    finally:
        if observing:
            if args.trace is not None:
                nspans = observe.write_chrome_trace(args.trace)
                print(f"trace:   {args.trace} ({nspans} spans)")
            if args.metrics is not None:
                observe.write_metrics(args.metrics)
                print(f"metrics: {args.metrics}")
            observe.disable()


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
async def _load(args, host: str, port: int) -> int:
    from .client import default_query_mix, run_load, wait_ready
    from .protocol import read_response, render_request

    if not await wait_ready(host, port, timeout_s=args.wait_s):
        print(f"error: server at {host}:{port} never became ready",
              file=sys.stderr)
        return 1

    # Derive the query mix from the live catalog.
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(render_request("GET", "/catalog"))
    await writer.drain()
    resp = await read_response(reader)
    writer.close()
    catalog = resp.json()
    steps = [s["step"] for s in catalog.get("snapshots", [])]
    if not steps:
        print("error: catalog is empty", file=sys.stderr)
        return 1
    # The box size only shapes region/profile queries; any sane value
    # works, so probe one whole-domain profile-free mix from steps.
    queries = default_query_mix(16.0, steps)

    report = await run_load(
        host, port, queries, requests=args.requests,
        concurrency=args.concurrency,
    )
    summary = report.as_dict()
    if args.report:
        with open(args.report, "w") as f:
            json.dump(summary, f, indent=2, sort_keys=True)
    print(
        f"requests: {report.requests}  errors: {len(report.errors)}  "
        f"retries: {report.retries}  qps: {report.qps:.1f}"
    )
    print(
        f"latency ms: p50 {summary['p50_ms']:.2f}  "
        f"p90 {summary['p90_ms']:.2f}  p99 {summary['p99_ms']:.2f}  "
        f"max {summary['max_ms']:.2f}"
    )
    failed = False
    if args.fail_on_errors and report.errors:
        print(f"FAIL: {len(report.errors)} request error(s); first: "
              f"{report.errors[0]}", file=sys.stderr)
        failed = True
    if args.p99_ms is not None and summary["p99_ms"] > args.p99_ms:
        print(
            f"FAIL: p99 {summary['p99_ms']:.2f} ms exceeds bound "
            f"{args.p99_ms:.2f} ms",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _cmd_load(args) -> int:
    host, sep, port_s = args.target.rpartition(":")
    if not sep or not port_s.isdigit():
        print(f"error: target must be HOST:PORT, got {args.target!r}",
              file=sys.stderr)
        return 2
    return asyncio.run(_load(args, host or "127.0.0.1", int(port_s)))


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-serve``; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "build":
        return _cmd_build(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_load(args)


#: console-script alias (symmetry with repro.cli.tess_main/sim_main)
serve_main = main


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
