"""Multistream field detection (Shandarin, Habib & Heitmann 2012).

Paper §II-A cites the combination of tessellations with *multistream*
techniques, and the in situ framework (Figure 4) lists multistream
detection as a sibling tool.  The idea: dark-matter dynamics is a
fold-over of a 3D sheet in 6D phase space.  Tracking the tracer particles
from their Lagrangian lattice positions q to Eulerian positions x(q), the
number of streams at a point is the number of sheet folds covering it —
1 in single-stream (void) regions, 3+ inside collapsed structures.

Two diagnostics are implemented on the Lagrangian lattice:

* :func:`lagrangian_jacobian` — the determinant of dx/dq per lattice site
  (finite differences on the periodic lattice); a negative determinant
  means the local volume element has turned inside out at least once
  (shell crossing) — the per-particle multistream indicator;
* :func:`multistream_grid` — the full Eulerian stream count: the
  Lagrangian lattice is decomposed into tetrahedra (6 per cube), each
  mapped to Eulerian space, and every grid point counts the tetrahedra
  covering it.  Single-stream regions score 1; caustic interiors 3, 5, ...
"""

from __future__ import annotations

import numpy as np

from ..diy.bounds import Bounds, minimum_image

__all__ = ["lagrangian_jacobian", "fraction_multistream", "multistream_grid"]

# Six tetrahedra tiling the unit cube (Freudenthal/Kuhn decomposition),
# as corner indices into the (dx, dy, dz) binary corner ordering.
_CUBE_CORNERS = np.array(
    [[0, 0, 0], [0, 0, 1], [0, 1, 0], [0, 1, 1],
     [1, 0, 0], [1, 0, 1], [1, 1, 0], [1, 1, 1]], dtype=np.int64
)
_TETS = np.array(
    [[0, 1, 3, 7], [0, 1, 5, 7], [0, 2, 3, 7],
     [0, 2, 6, 7], [0, 4, 5, 7], [0, 4, 6, 7]],
    dtype=np.int64,
)


def _displacement_lattice(
    positions: np.ndarray, ids: np.ndarray, np_side: int, domain: Bounds
) -> np.ndarray:
    """Map particles back to the Lagrangian lattice; return x(q) unwrapped.

    Particle ids are assumed lattice-row-major (as produced by
    :func:`repro.hacc.initial_conditions.zeldovich_ics`).  The returned
    array has shape ``(np_side, np_side, np_side, 3)`` holding Eulerian
    positions continuous across the periodic seam (minimum-image relative
    to the lattice point).
    """
    pos = np.asarray(positions, dtype=float)
    pid = np.asarray(ids, dtype=np.int64)
    n = np_side**3
    if len(pos) != n:
        raise ValueError(
            f"expected {n} particles for a {np_side}^3 lattice, got {len(pos)}"
        )
    if sorted(pid.tolist()) != list(range(n)):
        raise ValueError("ids must be a permutation of 0..np^3-1 (lattice order)")
    spacing = domain.sizes / np_side
    lo, _ = domain.as_arrays()
    order = np.argsort(pid)
    x = pos[order].reshape(np_side, np_side, np_side, 3)
    qx, qy, qz = np.meshgrid(*[np.arange(np_side)] * 3, indexing="ij")
    q = lo + np.stack([qx, qy, qz], axis=-1) * spacing
    disp = minimum_image((x - q).reshape(-1, 3), domain).reshape(x.shape)
    return q + disp


def lagrangian_jacobian(
    positions: np.ndarray, ids: np.ndarray, np_side: int, domain: Bounds
) -> np.ndarray:
    """det(dx/dq) per lattice site via periodic central differences.

    Values near +1 mean unperturbed flow; values that have passed through
    zero to negative mark shell-crossed (multistream) matter.
    """
    x = _displacement_lattice(positions, ids, np_side, domain)
    spacing = domain.sizes / np_side
    grads = []
    for axis in range(3):
        fwd = np.roll(x, -1, axis=axis)
        bwd = np.roll(x, 1, axis=axis)
        d = minimum_image((fwd - bwd).reshape(-1, 3), domain).reshape(x.shape)
        grads.append(d / (2.0 * spacing[axis]))
    J = np.stack(grads, axis=-1)  # (..., 3 components of x, 3 of q)
    return np.linalg.det(J)


def fraction_multistream(jacobians: np.ndarray) -> float:
    """Fraction of lattice sites with a negative flow Jacobian."""
    j = np.asarray(jacobians, dtype=float)
    if j.size == 0:
        raise ValueError("empty Jacobian field")
    return float(np.mean(j < 0))


def multistream_grid(
    positions: np.ndarray,
    ids: np.ndarray,
    np_side: int,
    domain: Bounds,
    grid_size: int,
) -> np.ndarray:
    """Eulerian stream count on a ``grid_size^3`` mesh.

    The Lagrangian lattice is tiled with 6 tetrahedra per cell; each tet is
    mapped by the flow and every mesh point inside its Eulerian image adds
    one stream.  Counts are odd in well-resolved regions (1 = void /
    single-stream, 3+ = collapsed).
    """
    x = _displacement_lattice(positions, ids, np_side, domain)
    lo, _ = domain.as_arrays()
    sizes = domain.sizes
    cell = sizes / grid_size

    # Corner coordinates for every lattice cube, continuous across seams:
    # shift the rolled arrays so all 8 corners are near the base corner.
    corners = np.empty((np_side, np_side, np_side, 8, 3))
    base = x
    for c, (dx, dy, dz) in enumerate(_CUBE_CORNERS):
        arr = np.roll(np.roll(np.roll(x, -dx, 0), -dy, 1), -dz, 2)
        rel = minimum_image((arr - base).reshape(-1, 3), domain).reshape(x.shape)
        corners[..., c, :] = base + rel

    counts = np.zeros(grid_size**3, dtype=np.int64)
    tets = corners.reshape(-1, 8, 3)[:, _TETS, :]  # (ncubes, 6, 4, 3)
    tets = tets.reshape(-1, 4, 3)

    # Bounding boxes select candidate grid points per tetrahedron; the loop
    # is over tets but each body is a handful of numpy ops on a few points.
    for tet in tets:
        tlo = tet.min(axis=0)
        thi = tet.max(axis=0)
        rngs = []
        for a in range(3):
            i0 = int(np.floor((tlo[a] - lo[a]) / cell[a] - 0.5)) + 1
            i1 = int(np.ceil((thi[a] - lo[a]) / cell[a] - 0.5))
            if i1 < i0:
                rngs = None
                break
            rngs.append(np.arange(i0, i1 + 1))
        if rngs is None:
            continue
        gx, gy, gz = np.meshgrid(*rngs, indexing="ij")
        pts = lo + (np.stack([gx, gy, gz], axis=-1).reshape(-1, 3) + 0.5) * cell
        if len(pts) == 0:
            continue
        inside = _points_in_tet(pts, tet)
        if not inside.any():
            continue
        ij = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)[inside]
        ij = np.mod(ij, grid_size)
        flat = (ij[:, 0] * grid_size + ij[:, 1]) * grid_size + ij[:, 2]
        np.add.at(counts, flat, 1)
    return counts.reshape(grid_size, grid_size, grid_size)


def _points_in_tet(points: np.ndarray, tet: np.ndarray) -> np.ndarray:
    """Vectorized point-in-tetrahedron via barycentric coordinates."""
    a = tet[0]
    M = (tet[1:] - a).T  # (3, 3)
    det = np.linalg.det(M)
    if abs(det) < 1e-14:
        return np.zeros(len(points), dtype=bool)
    b = np.linalg.solve(M, (points - a).T).T
    eps = 1e-12
    return (
        (b[:, 0] >= -eps)
        & (b[:, 1] >= -eps)
        & (b[:, 2] >= -eps)
        & (b.sum(axis=1) <= 1.0 + eps)
    )
