"""Percolation statistics of the thresholded cell network (paper §III-D).

The paper lists "to study percolation theory" among the uses of the
Minkowski/component machinery: as the volume threshold rises, the void
network fragments, and the threshold at which the largest component stops
spanning the sample is the percolation transition — a cosmological
discriminant between models (Shandarin's excursion-set program, the
paper's [22]).

:func:`percolation_curve` sweeps a threshold range and reports, per
threshold, the kept-cell count, component count, and largest-component
fraction; :func:`percolation_threshold` locates the transition where the
largest component first drops below half the kept cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.tessellate import Tessellation
from .components import connected_components

__all__ = ["PercolationPoint", "percolation_curve", "percolation_threshold"]


@dataclass(frozen=True)
class PercolationPoint:
    """Network state at one volume threshold."""

    vmin: float
    kept_cells: int
    num_components: int
    largest_fraction: float  # largest component / kept cells (0 if none)

    @property
    def percolates(self) -> bool:
        """Heuristic spanning test: one component dominates a kept set of
        meaningful size.  Tiny surviving populations (a handful of cells in
        one component) do not count as a spanning network."""
        return self.kept_cells >= 10 and self.largest_fraction >= 0.5


def percolation_curve(
    tess: Tessellation, thresholds: np.ndarray | list[float]
) -> list[PercolationPoint]:
    """Evaluate the component structure across volume thresholds."""
    out: list[PercolationPoint] = []
    for vmin in np.asarray(thresholds, dtype=float):
        lab = connected_components(tess, vmin=float(vmin))
        kept = len(lab.site_ids)
        if kept == 0:
            out.append(PercolationPoint(float(vmin), 0, 0, 0.0))
            continue
        sizes = lab.sizes()
        out.append(
            PercolationPoint(
                vmin=float(vmin),
                kept_cells=kept,
                num_components=lab.num_components,
                largest_fraction=float(sizes.max()) / kept,
            )
        )
    return out


def percolation_threshold(
    tess: Tessellation,
    n_steps: int = 24,
    refine_iterations: int = 5,
) -> float:
    """Locate the volume threshold where the void network fragments.

    Coarse sweep over the volume range followed by bisection on the
    largest-fraction-crosses-1/2 criterion.  Returns the threshold (same
    units as cell volumes); if the network never percolates even at zero
    threshold the volume minimum is returned, and if it always percolates
    the maximum is returned.
    """
    v = tess.volumes()
    if len(v) == 0:
        raise ValueError("tessellation has no cells")
    lo, hi = float(v.min()), float(v.max())
    sweep = np.linspace(lo, hi, n_steps)
    curve = percolation_curve(tess, sweep)
    if not curve[0].percolates:
        return lo
    # First crossing: the percolation indicator can flicker in the sparse
    # tail, so bracket at the first percolating -> fragmented transition.
    a = b = None
    for prev, nxt in zip(curve[:-1], curve[1:]):
        if prev.percolates and not nxt.percolates:
            a, b = prev.vmin, nxt.vmin
            break
    if a is None:
        return hi
    for _ in range(refine_iterations):
        mid = 0.5 * (a + b)
        point = percolation_curve(tess, [mid])[0]
        if point.percolates:
            a = mid
        else:
            b = mid
    return 0.5 * (a + b)
