"""Continuous-field queries over a tessellation (paper §I's motivation).

"Meshes are valuable representations for point data because they convert a
sparse point cloud into a continuous field.  Such a field can be used to
interpolate across cells, compute cell statistics, and identify features."
This module is that continuous-field interface:

* :func:`sample_cells` — piecewise-constant Voronoi sampling: any query
  point takes the value (volume, density, or a custom per-cell array) of
  the cell that contains it, found via a periodic nearest-site query —
  exactly the Voronoi ownership relation;
* :func:`deposit_to_grid` — the cell-valued field averaged onto a regular
  mesh (one nearest-site query per mesh point), the bridge from the
  adaptive tessellation back to grid-based pipelines.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..core.tessellate import Tessellation

__all__ = ["sample_cells", "deposit_to_grid"]


def _site_values(tess: Tessellation, value) -> tuple[np.ndarray, np.ndarray]:
    sites = np.concatenate([b.sites for b in tess.blocks])
    if len(sites) == 0:
        raise ValueError("tessellation has no cells")
    if isinstance(value, str):
        vols = tess.volumes()
        if value == "volume":
            vals = vols
        elif value == "density":
            vals = 1.0 / vols
        else:
            raise ValueError(f"unknown value {value!r} (use 'volume'/'density')")
    else:
        vals = np.asarray(value, dtype=float)
        if len(vals) != len(sites):
            raise ValueError(
                f"custom values must have one entry per cell "
                f"({len(sites)}), got {len(vals)}"
            )
    return sites, vals


def sample_cells(
    tess: Tessellation, points: np.ndarray, value="density"
) -> np.ndarray:
    """Evaluate the piecewise-constant cell field at arbitrary points.

    ``value`` is ``"volume"``, ``"density"``, or an array with one entry
    per cell (ordered block-by-block, the same order as
    ``tess.volumes()``).  Query points may lie anywhere; they are wrapped
    into the periodic domain.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {pts.shape}")
    sites, vals = _site_values(tess, value)
    lo, _ = tess.domain.as_arrays()
    tree = cKDTree(sites - lo, boxsize=tess.domain.sizes)
    sizes = tess.domain.sizes
    q = np.mod(pts - lo, sizes)
    _, nearest = tree.query(q)
    return vals[nearest]


def deposit_to_grid(
    tess: Tessellation, grid_size: int, value="density"
) -> np.ndarray:
    """Sample the cell field at the centers of a ``grid_size^3`` mesh."""
    if grid_size < 1:
        raise ValueError(f"grid_size must be >= 1, got {grid_size}")
    lo, _ = tess.domain.as_arrays()
    axes = [
        lo[a] + (np.arange(grid_size) + 0.5) * tess.domain.sizes[a] / grid_size
        for a in range(3)
    ]
    gx, gy, gz = np.meshgrid(*axes, indexing="ij")
    pts = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
    return sample_cells(tess, pts, value=value).reshape(
        grid_size, grid_size, grid_size
    )
