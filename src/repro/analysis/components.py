"""Connected-component labeling of Voronoi cells (plugin filter #3).

Cells sharing a face and both passing the volume threshold belong to the
same component; components of large-volume cells *are* the voids (paper
Figure 9).  Face adjacency comes for free from the tess data model: every
face stores the global particle id of the site across it.

Two implementations:

* :func:`connected_components` — global union-find over an assembled
  tessellation (the postprocessing path);
* :func:`connected_components_distributed` — the in situ path: each rank
  labels its own block locally, boundary edges (faces whose neighbor cell
  lives on another rank) are gathered at the root, merged, and the
  relabeling broadcast — one collective round, independent of component
  diameter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.data_model import VoronoiBlock
from ..core.tessellate import Tessellation
from ..diy.comm import Communicator

__all__ = ["UnionFind", "ComponentLabeling", "connected_components",
           "connected_components_distributed"]


class UnionFind:
    """Union-find over arbitrary hashable keys with path compression."""

    def __init__(self) -> None:
        self._parent: dict = {}
        self._rank: dict = {}

    def add(self, x) -> None:
        """Register ``x`` as a singleton if unseen."""
        if x not in self._parent:
            self._parent[x] = x
            self._rank[x] = 0

    def find(self, x):
        """Root of ``x`` (must be registered)."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a, b) -> None:
        """Merge the sets containing ``a`` and ``b``."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1

    def __contains__(self, x) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def groups(self) -> dict:
        """Mapping root -> sorted member list."""
        out: dict = {}
        for x in self._parent:
            out.setdefault(self.find(x), []).append(x)
        for members in out.values():
            members.sort()
        return out


@dataclass
class ComponentLabeling:
    """Result of component labeling over thresholded cells.

    Attributes
    ----------
    site_ids:
        Global ids of the cells that passed the threshold, ascending.
    labels:
        Component index (0-based, dense) per entry of ``site_ids``.
    """

    site_ids: np.ndarray
    labels: np.ndarray

    @property
    def num_components(self) -> int:
        """Number of connected components."""
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def sizes(self) -> np.ndarray:
        """Cell count of each component, indexed by label."""
        return np.bincount(self.labels, minlength=self.num_components)

    def members(self, label: int) -> np.ndarray:
        """Site ids belonging to component ``label``."""
        return self.site_ids[self.labels == label]

    def label_of(self) -> dict[int, int]:
        """Mapping site id -> component label."""
        return dict(zip(self.site_ids.tolist(), self.labels.tolist()))


def _labeling_from_unionfind(uf: UnionFind) -> ComponentLabeling:
    groups = uf.groups()
    roots = sorted(groups)
    site_ids: list[int] = []
    labels: list[int] = []
    for label, root in enumerate(roots):
        for sid in groups[root]:
            site_ids.append(sid)
            labels.append(label)
    order = np.argsort(site_ids)
    return ComponentLabeling(
        site_ids=np.asarray(site_ids, dtype=np.int64)[order],
        labels=np.asarray(labels, dtype=np.int64)[order],
    )


def _block_edges(
    block: VoronoiBlock, kept: set[int]
) -> tuple[list[int], list[tuple[int, int]]]:
    """Kept cells of a block and their adjacency edges among kept cells."""
    nodes: list[int] = []
    edges: list[tuple[int, int]] = []
    for i in range(block.num_cells):
        sid = int(block.site_ids[i])
        if sid not in kept:
            continue
        nodes.append(sid)
        for nb in block.neighbors_of_cell(i):
            nb = int(nb)
            if nb >= 0 and nb in kept:
                edges.append((sid, nb))
    return nodes, edges


def connected_components(
    tess: Tessellation, vmin: float | None = None, vmax: float | None = None
) -> ComponentLabeling:
    """Label components of face-adjacent cells within the volume band."""
    from .threshold import volume_threshold_mask

    mask = volume_threshold_mask(tess, vmin=vmin, vmax=vmax)
    kept = set(tess.site_ids()[mask].tolist())

    uf = UnionFind()
    for block in tess.blocks:
        nodes, edges = _block_edges(block, kept)
        for sid in nodes:
            uf.add(sid)
        for a, b in edges:
            # The neighbor may live in another block; register it so the
            # union is recorded even before that block is visited.
            uf.add(b)
            uf.union(a, b)
    return _labeling_from_unionfind(uf)


def connected_components_distributed(
    comm: Communicator,
    block: VoronoiBlock,
    vmin: float | None = None,
    vmax: float | None = None,
) -> ComponentLabeling:
    """In situ labeling: local pass + one boundary merge at the root.

    Collective; every rank passes its own block and receives the *global*
    labeling (identical on all ranks).  Cross-block adjacency needs no
    geometry: a face's neighbor id either belongs to a local kept cell or
    to some other rank's cell, and the root resolves the union graph.
    """
    keep = np.ones(block.num_cells, dtype=bool)
    if vmin is not None:
        keep &= block.volumes >= vmin
    if vmax is not None:
        keep &= block.volumes <= vmax
    local_kept = set(block.site_ids[keep].tolist())

    # Local union-find and the boundary edge list.
    uf = UnionFind()
    boundary: list[tuple[int, int]] = []
    for i in np.flatnonzero(keep):
        sid = int(block.site_ids[i])
        uf.add(sid)
        for nb in block.neighbors_of_cell(int(i)):
            nb = int(nb)
            if nb < 0:
                continue
            if nb in local_kept:
                uf.add(nb)
                uf.union(sid, nb)
            else:
                # Might be a kept cell on another rank — defer to the root.
                boundary.append((sid, nb))

    local_edges = [(a, uf.find(a)) for a in local_kept]  # local label graph
    gathered_nodes = comm.gather(sorted(local_kept), root=0)
    gathered_local = comm.gather(local_edges, root=0)
    gathered_boundary = comm.gather(boundary, root=0)

    if comm.rank == 0:
        global_uf = UnionFind()
        all_kept: set[int] = set()
        for nodes in gathered_nodes:
            all_kept.update(nodes)
        for nodes in gathered_nodes:
            for sid in nodes:
                global_uf.add(sid)
        for edges in gathered_local:
            for a, root in edges:
                global_uf.add(root)
                global_uf.union(a, root)
        for edges in gathered_boundary:
            for a, b in edges:
                if b in all_kept:  # only join cells that actually survived
                    global_uf.union(a, b)
        labeling = _labeling_from_unionfind(global_uf)
    else:
        labeling = None
    return comm.bcast(labeling, root=0)
