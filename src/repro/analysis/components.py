"""Connected-component labeling of Voronoi cells (plugin filter #3).

Cells sharing a face and both passing the volume threshold belong to the
same component; components of large-volume cells *are* the voids (paper
Figure 9).  Face adjacency comes for free from the tess data model: every
face stores the global particle id of the site across it.

Two implementations per path:

* :func:`connected_components` — flat-array labeling over an assembled
  tessellation: edges come from the vectorized
  :meth:`~repro.core.data_model.VoronoiBlock.adjacency_edges` CSR masking
  and merge through :class:`ArrayUnionFind` (an int64 parent array with
  path halving) — no per-cell Python loop anywhere on the hot path.
* :func:`connected_components_distributed` — the in situ path: each rank
  labels its own block locally, boundary edges (faces whose neighbor cell
  lives on another rank) travel to the root as packed ``(src, dst)`` int64
  edge arrays through the tree gather, and the relabeling is broadcast —
  one collective round, independent of component diameter.

The original dict-based :class:`UnionFind` and the per-cell
:func:`connected_components_dict` survive as the **test oracle**: the
parity suite asserts the flat kernels produce identical partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import observe
from ..core.data_model import VoronoiBlock, isin_sorted
from ..core.tessellate import Tessellation
from ..diy.comm import Communicator

__all__ = ["UnionFind", "ArrayUnionFind", "ComponentLabeling",
           "connected_components", "connected_components_dict",
           "connected_components_distributed"]


class UnionFind:
    """Union-find over arbitrary hashable keys with path compression.

    The reference (oracle) implementation; production labeling runs on
    :class:`ArrayUnionFind`.
    """

    def __init__(self) -> None:
        self._parent: dict = {}
        self._rank: dict = {}

    def add(self, x) -> None:
        """Register ``x`` as a singleton if unseen."""
        if x not in self._parent:
            self._parent[x] = x
            self._rank[x] = 0

    def find(self, x):
        """Root of ``x`` (must be registered via :meth:`add` first)."""
        if x not in self._parent:
            raise KeyError(
                f"id {x!r} is not registered in this UnionFind; "
                f"call add({x!r}) before find/union"
            )
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a, b) -> None:
        """Merge the sets containing ``a`` and ``b``."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1

    def __contains__(self, x) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def groups(self) -> dict:
        """Mapping root -> sorted member list."""
        out: dict = {}
        for x in self._parent:
            out.setdefault(self.find(x), []).append(x)
        for members in out.values():
            members.sort()
        return out


class ArrayUnionFind:
    """Union-find over the dense index range ``[0, n)``.

    State is a single int64 parent array; parents only ever decrease, so
    the root of every merged set is its minimum member — labels derived
    from roots are deterministic and decomposition-invariant.  Bulk unions
    (:meth:`union_edges`) hook roots in vectorized rounds
    (Shiloach–Vishkin style: every non-minimal root with an incident edge
    hooks to its smallest root neighbor, then the forest is flattened), so
    the cost is a few array passes rather than one Python call per edge.
    """

    def __init__(self, n: int) -> None:
        self.parent = np.arange(int(n), dtype=np.int64)

    def __len__(self) -> int:
        return len(self.parent)

    def find(self, i: int) -> int:
        """Root of ``i``, with path halving."""
        p = self.parent
        i = int(i)
        while p[i] != i:
            p[i] = p[p[i]]  # path halving
            i = int(p[i])
        return i

    def find_many(self, idx: np.ndarray) -> np.ndarray:
        """Roots of ``idx`` (vectorized pointer jumping; compresses paths)."""
        idx = np.asarray(idx, dtype=np.int64)
        p = self.parent
        root = p[idx]
        while True:
            nxt = p[root]
            if np.array_equal(nxt, root):
                break
            root = nxt
        p[idx] = root  # full compression for the queried nodes
        return root

    def union(self, a: int, b: int) -> None:
        """Merge the sets containing ``a`` and ``b``."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)

    def union_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Merge across every edge ``(src[k], dst[k])`` in bulk."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src) != len(dst):
            raise ValueError("src and dst edge arrays must have equal length")
        p = self.parent
        while len(src):
            ra, rb = self.find_many(src), self.find_many(dst)
            live = ra != rb
            if not live.any():
                break
            src, dst = src[live], dst[live]
            ra, rb = ra[live], rb[live]
            # Hook the larger root of each live edge to the smallest
            # smaller root competing for it, then flatten the forest.
            np.minimum.at(p, np.maximum(ra, rb), np.minimum(ra, rb))
            self._flatten()

    def _flatten(self) -> None:
        p = self.parent
        while True:
            gp = p[p]
            if np.array_equal(gp, p):
                break
            np.copyto(p, gp)

    def labels(self) -> np.ndarray:
        """Dense component label per index, ordered by minimum member."""
        roots = self.find_many(np.arange(len(self.parent), dtype=np.int64))
        _, labels = np.unique(roots, return_inverse=True)
        return labels.astype(np.int64)


@dataclass
class ComponentLabeling:
    """Result of component labeling over thresholded cells.

    Attributes
    ----------
    site_ids:
        Global ids of the cells that passed the threshold, ascending.
    labels:
        Component index (0-based, dense) per entry of ``site_ids``.
    """

    site_ids: np.ndarray
    labels: np.ndarray

    @property
    def num_components(self) -> int:
        """Number of connected components."""
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def sizes(self) -> np.ndarray:
        """Cell count of each component, indexed by label."""
        return np.bincount(self.labels, minlength=self.num_components)

    def members(self, label: int) -> np.ndarray:
        """Site ids belonging to component ``label``."""
        return self.site_ids[self.labels == label]

    def label_of(self) -> dict[int, int]:
        """Mapping site id -> component label."""
        return dict(zip(self.site_ids.tolist(), self.labels.tolist()))


def _labeling_from_unionfind(uf: UnionFind) -> ComponentLabeling:
    groups = uf.groups()
    roots = sorted(groups)
    site_ids: list[int] = []
    labels: list[int] = []
    for label, root in enumerate(roots):
        for sid in groups[root]:
            site_ids.append(sid)
            labels.append(label)
    order = np.argsort(site_ids)
    return ComponentLabeling(
        site_ids=np.asarray(site_ids, dtype=np.int64)[order],
        labels=np.asarray(labels, dtype=np.int64)[order],
    )


def _block_edges(
    block: VoronoiBlock, kept: set[int]
) -> tuple[list[int], list[tuple[int, int]]]:
    """Kept cells of a block and their adjacency edges among kept cells.

    Per-cell oracle counterpart of
    :meth:`~repro.core.data_model.VoronoiBlock.adjacency_edges`.
    """
    nodes: list[int] = []
    edges: list[tuple[int, int]] = []
    for i in range(block.num_cells):
        sid = int(block.site_ids[i])
        if sid not in kept:
            continue
        nodes.append(sid)
        for nb in block.neighbors_of_cell(i):
            nb = int(nb)
            if nb >= 0 and nb in kept:
                edges.append((sid, nb))
    return nodes, edges


def _empty_labeling() -> ComponentLabeling:
    return ComponentLabeling(
        site_ids=np.empty(0, dtype=np.int64), labels=np.empty(0, dtype=np.int64)
    )


def connected_components(
    tess: Tessellation, vmin: float | None = None, vmax: float | None = None
) -> ComponentLabeling:
    """Label components of face-adjacent cells within the volume band.

    Flat-array path: one :meth:`adjacency_edges` call per block and one
    bulk :meth:`ArrayUnionFind.union_edges` per edge batch.
    """
    from .threshold import volume_threshold_mask

    with observe.span("components-flat", cat="analysis"):
        mask = volume_threshold_mask(tess, vmin=vmin, vmax=vmax)
        kept = np.unique(tess.site_ids()[mask].astype(np.int64, copy=False))
        if len(kept) == 0:
            return _empty_labeling()
        uf = ArrayUnionFind(len(kept))
        for block in tess.blocks:
            src, dst = block.adjacency_edges(kept, return_indices=True)
            if len(src):
                uf.union_edges(src, dst)
        return ComponentLabeling(site_ids=kept, labels=uf.labels())


def connected_components_dict(
    tess: Tessellation, vmin: float | None = None, vmax: float | None = None
) -> ComponentLabeling:
    """Per-cell dict-based labeling — the oracle for the flat kernels."""
    from .threshold import volume_threshold_mask

    mask = volume_threshold_mask(tess, vmin=vmin, vmax=vmax)
    kept = set(tess.site_ids()[mask].tolist())

    uf = UnionFind()
    for block in tess.blocks:
        nodes, edges = _block_edges(block, kept)
        for sid in nodes:
            uf.add(sid)
        for a, b in edges:
            # The neighbor may live in another block; register it so the
            # union is recorded even before that block is visited.
            uf.add(b)
            uf.union(a, b)
    return _labeling_from_unionfind(uf)


def connected_components_distributed(
    comm: Communicator,
    block: VoronoiBlock,
    vmin: float | None = None,
    vmax: float | None = None,
) -> ComponentLabeling:
    """In situ labeling: local flat pass + one boundary merge at the root.

    Collective; every rank passes its own block and receives the *global*
    labeling (identical on all ranks).  Cross-block adjacency needs no
    geometry: a face's neighbor id either belongs to a local kept cell or
    to some other rank's cell, and the root resolves the union graph.  The
    merge traffic is two packed int64 arrays per rank — the kept site ids
    and the ``(src, dst)`` edge rows (local root links plus unresolved
    boundary edges) — shipped through the tree gather; no Python tuple
    lists cross ranks.
    """
    with observe.span("components-local", rank=comm.rank, cat="analysis"):
        keep = np.ones(block.num_cells, dtype=bool)
        if vmin is not None:
            keep &= block.volumes >= vmin
        if vmax is not None:
            keep &= block.volumes <= vmax
        local_kept = np.unique(block.site_ids[keep].astype(np.int64, copy=False))

        # Every face of a kept cell, as (owner site id, neighbor site id).
        counts = np.diff(block.cell_face_offsets).astype(np.int64)
        src = np.repeat(block.site_ids.astype(np.int64, copy=False), counts)
        dst = block.face_neighbors.astype(np.int64, copy=False)
        fmask = np.repeat(keep, counts) & (dst >= 0)
        src, dst = src[fmask], dst[fmask]

        internal = isin_sorted(dst, local_kept)
        # Local labeling over this block's kept cells.
        uf = ArrayUnionFind(len(local_kept))
        uf.union_edges(
            np.searchsorted(local_kept, src[internal]),
            np.searchsorted(local_kept, dst[internal]),
        )
        if len(local_kept):
            roots = local_kept[
                uf.find_many(np.arange(len(local_kept), dtype=np.int64))
            ]
            local_links = np.stack([local_kept, roots], axis=1)
        else:
            local_links = np.empty((0, 2), dtype=np.int64)
        # Faces whose neighbor is not locally kept *might* be kept on
        # another rank — defer the decision to the root.
        boundary = np.stack([src[~internal], dst[~internal]], axis=1)
        edges = np.ascontiguousarray(
            np.concatenate([local_links, boundary]), dtype=np.int64
        )

    with observe.span("components-merge", rank=comm.rank, cat="analysis"):
        gathered_nodes = comm.gather(local_kept, root=0)
        gathered_edges = comm.gather(edges, root=0)

        if comm.rank == 0:
            all_kept = np.unique(np.concatenate(gathered_nodes))
            if len(all_kept) == 0:
                labeling = _empty_labeling()
            else:
                merged = np.concatenate(gathered_edges)
                # Only join cells that actually survived on some rank.
                merged = merged[isin_sorted(merged[:, 1], all_kept)]
                guf = ArrayUnionFind(len(all_kept))
                guf.union_edges(
                    np.searchsorted(all_kept, merged[:, 0]),
                    np.searchsorted(all_kept, merged[:, 1]),
                )
                labeling = ComponentLabeling(
                    site_ids=all_kept, labels=guf.labels()
                )
        else:
            labeling = None
        return comm.bcast(labeling, root=0)
