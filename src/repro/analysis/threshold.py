"""Volume / density threshold filtering (plugin filter #2, paper §III-D).

The characteristic cell-volume distribution is strongly skewed toward zero
(75% of cells in the smallest 10% of the volume range — Figure 8), so a
simple threshold dramatically reduces the cell set while retaining every
cell that contributes to a void.  These filters operate on an assembled
:class:`~repro.core.tessellate.Tessellation` and return flat masks aligned
with the concatenated cell order (block by block).
"""

from __future__ import annotations

import numpy as np

from ..core.tessellate import Tessellation

__all__ = ["volume_threshold_mask", "density_threshold_mask", "kept_site_ids"]


def volume_threshold_mask(
    tess: Tessellation, vmin: float | None = None, vmax: float | None = None
) -> np.ndarray:
    """Boolean keep-mask over all cells with ``vmin <= volume <= vmax``."""
    v = tess.volumes()
    keep = np.ones(len(v), dtype=bool)
    if vmin is not None:
        keep &= v >= vmin
    if vmax is not None:
        keep &= v <= vmax
    return keep


def density_threshold_mask(
    tess: Tessellation, dmin: float | None = None, dmax: float | None = None
) -> np.ndarray:
    """Keep-mask on unit-mass cell density ``1 / volume``.

    Low-density cells are void material; ``dmax`` keeps them (the dual of a
    ``vmin`` volume threshold).
    """
    v = tess.volumes()
    with np.errstate(divide="ignore"):
        d = np.where(v > 0, 1.0 / v, np.inf)
    keep = np.ones(len(v), dtype=bool)
    if dmin is not None:
        keep &= d >= dmin
    if dmax is not None:
        keep &= d <= dmax
    return keep


def kept_site_ids(tess: Tessellation, mask: np.ndarray) -> np.ndarray:
    """Site ids of the cells selected by ``mask``."""
    ids = tess.site_ids()
    if len(mask) != len(ids):
        raise ValueError(
            f"mask length {len(mask)} does not match cell count {len(ids)}"
        )
    return ids[mask]
