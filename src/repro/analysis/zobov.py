"""ZOBOV-style parameter-free void finding on the Voronoi cell graph.

Paper §II-A cites ZOBOV (Neyrinck 2008): a void finder with no free
parameters that starts from a tessellation-based density estimate.  The
algorithm, implemented here directly on tess output (cell densities
``1/volume`` and face adjacency):

1. **zones** — every cell joins the zone of its lowest-density reachable
   neighbor (steepest descent on the cell graph); each zone is the basin
   of one density minimum;
2. **zone joining** — zones are merged watershed-fashion in order of the
   density at which they first spill into a deeper neighbor; each zone's
   *significance* is the density ratio between its lowest saddle and its
   core minimum (ZOBOV's probability proxy).

Unlike the grid watershed (:mod:`repro.analysis.watershed`) this operates
on the adaptive cell graph, so it needs no grid resolution choice — the
"parameter-free" property the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.tessellate import Tessellation

__all__ = ["Zone", "ZobovResult", "zobov_voids"]


@dataclass(frozen=True)
class Zone:
    """One density basin of the cell graph."""

    core_cell: int  # site id of the density minimum
    core_density: float
    member_ids: np.ndarray  # site ids, sorted
    saddle_density: float  # lowest density at which it spills to a deeper zone

    @property
    def num_cells(self) -> int:
        return len(self.member_ids)

    @property
    def significance(self) -> float:
        """Saddle-to-core density ratio (ZOBOV's depth measure).

        Large values mark deep voids; ratios near 1 are shot-noise basins.
        ``inf`` for a zone that never spills (the global minimum's zone).
        """
        if not np.isfinite(self.saddle_density):
            return np.inf
        return self.saddle_density / self.core_density


@dataclass
class ZobovResult:
    """Zones ordered by descending significance."""

    zones: list[Zone] = field(default_factory=list)

    @property
    def num_zones(self) -> int:
        return len(self.zones)

    def significant(self, min_ratio: float = 2.0) -> list[Zone]:
        """Zones whose saddle/core density ratio exceeds ``min_ratio``."""
        return [z for z in self.zones if z.significance >= min_ratio]


def zobov_voids(tess: Tessellation) -> ZobovResult:
    """Run the zone decomposition on a tessellation.

    All complete cells participate; density is ``1 / volume`` (unit-mass
    particles, as in the paper).  Returns the zones with their cores,
    members, and spill (saddle) densities.
    """
    # Flatten the cell graph keyed by site id.
    site_ids: list[int] = []
    density: dict[int, float] = {}
    neighbors: dict[int, np.ndarray] = {}
    for block in tess.blocks:
        for i in range(block.num_cells):
            sid = int(block.site_ids[i])
            vol = float(block.volumes[i])
            if vol <= 0:
                raise ValueError(f"cell {sid} has nonpositive volume")
            site_ids.append(sid)
            density[sid] = 1.0 / vol
            nbs = block.neighbors_of_cell(i)
            neighbors[sid] = nbs[nbs >= 0]
    if not site_ids:
        return ZobovResult()
    known = set(site_ids)

    # 1. Steepest-descent zones.
    downhill: dict[int, int] = {}
    for sid in site_ids:
        best, best_d = sid, density[sid]
        for nb in neighbors[sid]:
            nb = int(nb)
            if nb in known and density[nb] < best_d:
                best, best_d = nb, density[nb]
        downhill[sid] = best

    def find_core(s: int) -> int:
        path = []
        while downhill[s] != s:
            path.append(s)
            s = downhill[s]
        for p in path:  # path compression
            downhill[p] = s
        return s

    zone_of: dict[int, int] = {sid: find_core(sid) for sid in site_ids}
    cores = sorted(set(zone_of.values()))

    # 2. Spill (saddle) density per zone by watershed flooding: process
    # cells in increasing density; when a cell first connects two flooded
    # groups, the group with the shallower core spills at this level —
    # possibly through a chain of intermediate shallow zones, which the
    # naive adjacent-zone rule would miss.
    saddle: dict[int, float] = {c: np.inf for c in cores}
    group_parent: dict[int, int] = {c: c for c in cores}
    group_deepest: dict[int, int] = {c: c for c in cores}

    def find_group(z: int) -> int:
        while group_parent[z] != z:
            group_parent[z] = group_parent[group_parent[z]]
            z = group_parent[z]
        return z

    processed: set[int] = set()
    for sid in sorted(site_ids, key=lambda s: density[s]):
        processed.add(sid)
        for nb in neighbors[sid]:
            nb = int(nb)
            if nb not in processed:
                continue
            ga = find_group(zone_of[sid])
            gb = find_group(zone_of[nb])
            if ga == gb:
                continue
            da = group_deepest[ga]
            db = group_deepest[gb]
            deeper, shallower = (ga, gb) if density[da] <= density[db] else (gb, ga)
            spilled = group_deepest[shallower]
            if not np.isfinite(saddle[spilled]):
                saddle[spilled] = density[sid]
            group_parent[shallower] = deeper
            # group_deepest[deeper] already holds the deeper core.

    members: dict[int, list[int]] = {c: [] for c in cores}
    for sid, zc in zone_of.items():
        members[zc].append(sid)

    zones = [
        Zone(
            core_cell=c,
            core_density=density[c],
            member_ids=np.asarray(sorted(members[c]), dtype=np.int64),
            saddle_density=float(saddle[c]),
        )
        for c in cores
    ]
    zones.sort(
        key=lambda z: -z.significance if np.isfinite(z.significance) else -np.inf
    )
    # Put the never-spilling (global-minimum) zone first.
    zones.sort(key=lambda z: 0 if not np.isfinite(z.significance) else 1)
    return ZobovResult(zones=zones)
