"""Query-shaped analysis entry points for the tessellation service.

Every function here answers one catalog query over a *subset* of a
snapshot's :class:`~repro.core.data_model.VoronoiBlock`\\ s — typically the
blocks a :class:`~repro.serve.store.CatalogStore` pulled out of the block
cache for the query's region — and returns a plain JSON-serializable dict,
so the serving layer never has to translate analysis objects onto the
wire.  The heavy lifting is delegated to the existing flat kernels
(:func:`~repro.analysis.voids.find_voids`,
:func:`~repro.analysis.components.connected_components`,
:func:`~repro.analysis.halos.fof_halos`,
:func:`~repro.analysis.minkowski.minkowski_functionals`), which makes the
service a thin projection of the library, not a second implementation.

Region semantics: a region is an axis-aligned box ``[[lo...], [hi...]]``
in domain coordinates.  Connectivity-based queries (voids, components,
Minkowski) are computed over every block *intersecting* the region and
then filtered to features touching it, so a feature straddling the region
boundary is reported as long as part of it is inside; features extending
beyond the loaded block set are truncated at its edge, which the protocol
surfaces via the ``blocks`` field of each response.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.data_model import VoronoiBlock
from ..core.tessellate import Tessellation
from ..core.timing import TessTimings
from ..diy.bounds import Bounds, minimum_image
from .components import connected_components
from .halos import fof_halos
from .voids import find_voids, volume_threshold_for_fraction

__all__ = [
    "QueryError",
    "QUERY_OPS",
    "region_bounds",
    "run_query",
    "query_voids",
    "query_components",
    "query_halos",
    "query_profile",
    "query_minkowski",
]


class QueryError(ValueError):
    """A query spec is malformed; the message is safe to return to the
    client verbatim."""


def region_bounds(
    region: Sequence[Sequence[float]] | None, domain: Bounds
) -> Bounds | None:
    """Validate a ``[[lo...], [hi...]]`` region against ``domain``.

    Returns ``None`` for a ``None`` region (whole domain).  Raises
    :class:`QueryError` on shape or ordering mistakes — the one place
    client-supplied geometry is checked.
    """
    if region is None:
        return None
    arr = np.asarray(region, dtype=float)
    if arr.shape != (2, domain.dim):
        raise QueryError(
            f"region must be [[lo]*{domain.dim}, [hi]*{domain.dim}], "
            f"got shape {arr.shape}"
        )
    if not np.all(arr[1] > arr[0]):
        raise QueryError(f"region hi must exceed lo on every axis: {region}")
    return Bounds.from_arrays(arr[0], arr[1]).clamped_to(domain)


def _tess(domain: Bounds, blocks: Sequence[VoronoiBlock]) -> Tessellation:
    return Tessellation(
        domain=domain, blocks=list(blocks), timings=TessTimings()
    )


def _sites_with_ids(
    blocks: Sequence[VoronoiBlock],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated (sites, site_ids) across blocks, deduplicated by id."""
    if not blocks:
        return np.empty((0, 3)), np.empty(0, dtype=np.int64)
    sites = np.concatenate([b.sites for b in blocks])
    ids = np.concatenate(
        [b.site_ids.astype(np.int64, copy=False) for b in blocks]
    )
    _, first = np.unique(ids, return_index=True)
    return sites[first], ids[first]


def _ids_in_region(
    blocks: Sequence[VoronoiBlock], region: Bounds | None
) -> np.ndarray | None:
    """Sorted site ids whose generating site lies inside ``region``."""
    if region is None:
        return None
    sites, ids = _sites_with_ids(blocks)
    if not len(ids):
        return np.empty(0, dtype=np.int64)
    return np.unique(ids[region.contains_closed(sites)])


def query_voids(
    domain: Bounds,
    blocks: Sequence[VoronoiBlock],
    vmin: float | None = None,
    vmin_fraction: float = 0.1,
    min_cells: int = 1,
    region: Bounds | None = None,
    top: int = 20,
) -> dict[str, Any]:
    """Void catalog (threshold + connected components) over ``blocks``."""
    tess = _tess(domain, blocks)
    if tess.num_cells == 0:
        return {"op": "voids", "num_voids": 0, "vmin": 0.0, "voids": []}
    if vmin is None:
        vmin = volume_threshold_for_fraction(tess, vmin_fraction)
    catalog = find_voids(tess, vmin=vmin, min_cells=min_cells)
    keep = catalog.voids
    region_ids = _ids_in_region(blocks, region)
    if region_ids is not None:
        keep = [
            v for v in keep if np.isin(v.site_ids, region_ids).any()
        ]
    return {
        "op": "voids",
        "vmin": float(vmin),
        "num_voids": len(keep),
        "total_volume": float(sum(v.volume for v in keep)),
        "voids": [
            {"volume": float(v.volume), "num_cells": int(v.num_cells)}
            for v in keep[:top]
        ],
    }


def query_components(
    domain: Bounds,
    blocks: Sequence[VoronoiBlock],
    vmin: float | None = None,
    vmax: float | None = None,
    region: Bounds | None = None,
    top: int = 20,
) -> dict[str, Any]:
    """Connected components of cells inside the volume band."""
    tess = _tess(domain, blocks)
    labeling = connected_components(tess, vmin=vmin, vmax=vmax)
    sizes = labeling.sizes()
    region_ids = _ids_in_region(blocks, region)
    if region_ids is not None:
        in_region = np.isin(labeling.site_ids, region_ids)
        labels = np.unique(labeling.labels[in_region])
        sizes = sizes[labels]
    order = np.argsort(sizes)[::-1]
    return {
        "op": "components",
        "num_components": int(len(sizes)),
        "num_cells": int(sizes.sum()),
        "largest": [int(sizes[i]) for i in order[:top]],
    }


def query_halos(
    domain: Bounds,
    blocks: Sequence[VoronoiBlock],
    linking_fraction: float = 0.2,
    min_members: int = 8,
    region: Bounds | None = None,
    top: int = 20,
) -> dict[str, Any]:
    """Friends-of-friends halos over the cells' generating sites.

    ``linking_fraction`` is the classic ``b`` — the linking length is
    ``b`` times the mean inter-site spacing of the loaded block set.
    """
    if not 0 < linking_fraction < 10:
        raise QueryError(
            f"linking_fraction must be in (0, 10), got {linking_fraction}"
        )
    sites, ids = _sites_with_ids(blocks)
    if not len(ids):
        return {"op": "halos", "num_halos": 0, "halos": []}
    spacing = (domain.volume / len(ids)) ** (1.0 / 3.0)
    catalog = fof_halos(
        sites,
        linking_fraction * spacing,
        domain=domain,
        min_members=min_members,
        ids=ids,
    )
    halos = catalog.halos
    if region is not None:
        halos = [
            h
            for h in halos
            if bool(region.contains_closed(h.center[None, :])[0])
        ]
    return {
        "op": "halos",
        "num_halos": len(halos),
        "linking_length": float(linking_fraction * spacing),
        "halos": [
            {"mass": int(h.mass), "center": [float(c) for c in h.center]}
            for h in halos[:top]
        ],
    }


def query_profile(
    domain: Bounds,
    blocks: Sequence[VoronoiBlock],
    center: Sequence[float],
    rmax: float,
    nbins: int = 16,
) -> dict[str, Any]:
    """Radial cell-density profile around ``center``.

    Density is the paper's tessellation estimate — one unit mass per cell
    over its Voronoi volume — so each shell's density is its cell count
    over its cells' summed volume.  Distances are periodic minimum-image.
    """
    ctr = np.asarray(center, dtype=float)
    if ctr.shape != (domain.dim,):
        raise QueryError(
            f"center must have {domain.dim} coordinates, got {list(center)!r}"
        )
    if rmax <= 0:
        raise QueryError(f"rmax must be positive, got {rmax}")
    if not 1 <= nbins <= 4096:
        raise QueryError(f"nbins must be in [1, 4096], got {nbins}")
    counts = np.zeros(nbins, dtype=np.int64)
    volsum = np.zeros(nbins)
    edges = np.linspace(0.0, rmax, nbins + 1)
    for block in blocks:
        if not block.num_cells:
            continue
        r = np.linalg.norm(
            minimum_image(block.sites - ctr, domain), axis=1
        )
        sel = r < rmax
        idx = np.minimum((r[sel] / rmax * nbins).astype(int), nbins - 1)
        np.add.at(counts, idx, 1)
        np.add.at(volsum, idx, block.volumes[sel])
    with np.errstate(divide="ignore", invalid="ignore"):
        density = np.where(volsum > 0, counts / volsum, 0.0)
    return {
        "op": "profile",
        "center": [float(c) for c in ctr],
        "r_edges": edges.tolist(),
        "counts": counts.tolist(),
        "density": density.tolist(),
    }


def query_minkowski(
    domain: Bounds,
    blocks: Sequence[VoronoiBlock],
    vmin: float | None = None,
    vmin_fraction: float = 0.1,
    region: Bounds | None = None,
    top: int = 8,
) -> dict[str, Any]:
    """Minkowski functionals / shapefinders of the largest voids."""
    tess = _tess(domain, blocks)
    if tess.num_cells == 0:
        return {"op": "minkowski", "num_voids": 0, "functionals": []}
    if vmin is None:
        vmin = volume_threshold_for_fraction(tess, vmin_fraction)
    catalog = find_voids(tess, vmin=vmin, compute_minkowski=True)
    keep = catalog.voids
    region_ids = _ids_in_region(blocks, region)
    if region_ids is not None:
        keep = [
            v for v in keep if np.isin(v.site_ids, region_ids).any()
        ]
    rows = []
    for v in keep[:top]:
        if v.minkowski is None:
            continue
        row = {
            k: (None if isinstance(f, float) and not np.isfinite(f) else f)
            for k, f in v.minkowski.as_row().items()
        }
        rows.append(row)
    return {
        "op": "minkowski",
        "vmin": float(vmin),
        "num_voids": len(keep),
        "functionals": rows,
    }


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
#: op name -> (handler, spec keys it accepts beyond op/step/region)
QUERY_OPS: dict[str, tuple[Any, frozenset[str]]] = {
    "voids": (query_voids, frozenset({"vmin", "vmin_fraction", "min_cells", "top"})),
    "components": (query_components, frozenset({"vmin", "vmax", "top"})),
    "halos": (
        query_halos,
        frozenset({"linking_fraction", "min_members", "top"}),
    ),
    "profile": (query_profile, frozenset({"center", "rmax", "nbins"})),
    "minkowski": (
        query_minkowski,
        frozenset({"vmin", "vmin_fraction", "top"}),
    ),
}

#: keys the dispatcher itself consumes
_COMMON_KEYS = frozenset({"op", "step", "region"})
#: ops whose handler takes a region= keyword
_REGION_OPS = frozenset({"voids", "components", "halos", "minkowski"})


def run_query(
    domain: Bounds, blocks: Sequence[VoronoiBlock], spec: dict[str, Any]
) -> dict[str, Any]:
    """Dispatch one validated query spec onto its handler.

    ``spec`` is the client's JSON object: ``op`` selects the handler,
    ``region`` (optional) restricts it spatially, and the remaining keys
    are per-op parameters.  Unknown ops or parameters raise
    :class:`QueryError` naming the offender, so a typo'd request fails
    with a 400, not a silent default.
    """
    op = spec.get("op")
    if op not in QUERY_OPS:
        raise QueryError(
            f"unknown op {op!r}; expected one of {sorted(QUERY_OPS)}"
        )
    handler, allowed = QUERY_OPS[op]
    extra = set(spec) - allowed - _COMMON_KEYS
    if extra:
        raise QueryError(f"unknown {op} parameters {sorted(extra)}")
    if op == "profile":
        if "center" not in spec or "rmax" not in spec:
            raise QueryError("profile queries require 'center' and 'rmax'")
        if spec.get("region") is not None:
            raise QueryError(
                "profile queries take 'center'/'rmax', not 'region'"
            )
    kwargs = {k: spec[k] for k in spec if k in allowed}
    try:
        if op in _REGION_OPS:
            kwargs["region"] = region_bounds(spec.get("region"), domain)
        return handler(domain, blocks, **kwargs)
    except QueryError:
        raise
    except (TypeError, ValueError) as exc:
        raise QueryError(f"bad {op} parameters: {exc}") from exc
