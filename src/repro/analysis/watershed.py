"""Watershed Void Finder (WVF; Platen, van de Weygaert & Jones 2007).

Paper §II-A: "The Watershed Void Finder attempts to locate voids by using
the DTFE algorithm to first reconstruct the density field and then connects
local minima at some density threshold.  The procedure is analogous to
filling a landscape with water, with the valleys acting as voids and the
ridges between valleys as filaments and walls."

This module implements that procedure on a periodic grid density field
(typically from :func:`repro.analysis.dtfe.dtfe_grid` or a CIC deposit):

1. find local minima under 26-connectivity (periodic);
2. flood in order of increasing density: each cell joins the basin of its
   steepest already-flooded neighbor; cells where distinct basins meet are
   ridge (watershed) cells;
3. optionally merge basins whose saddle density lies below a threshold —
   the WVF's cure for oversegmentation of a noisy field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .components import UnionFind

__all__ = ["WatershedResult", "watershed_voids"]

_NEIGHBOR_OFFSETS = np.array(
    [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if (dx, dy, dz) != (0, 0, 0)
    ],
    dtype=np.int64,
)


@dataclass
class WatershedResult:
    """Basin labeling of a density grid.

    Attributes
    ----------
    labels:
        Basin index per grid cell (shape of the input field); ridge cells
        carry the basin they were finally assigned to (steepest-descent).
    minima:
        ``(k, 3)`` integer grid coordinates of the basin minima.
    ridge_mask:
        Boolean grid marking watershed (inter-basin boundary) cells.
    """

    labels: np.ndarray
    minima: np.ndarray
    ridge_mask: np.ndarray

    @property
    def num_basins(self) -> int:
        """Number of distinct basins (voids)."""
        return len(self.minima)

    def basin_sizes(self) -> np.ndarray:
        """Cell count per basin label."""
        return np.bincount(self.labels.ravel(), minlength=self.num_basins)

    def basin_volumes(self, cell_volume: float) -> np.ndarray:
        """Physical volume per basin."""
        return self.basin_sizes() * cell_volume


def _neighbors_periodic(shape: tuple[int, int, int]):
    """Flat neighbor index table: (ncells, 26) under periodic wrapping."""
    nx, ny, nz = shape
    idx = np.arange(nx * ny * nz)
    x, rem = np.divmod(idx, ny * nz)
    y, z = np.divmod(rem, nz)
    out = np.empty((len(idx), 26), dtype=np.int64)
    for k, (dx, dy, dz) in enumerate(_NEIGHBOR_OFFSETS):
        out[:, k] = (
            ((x + dx) % nx) * ny * nz + ((y + dy) % ny) * nz + ((z + dz) % nz)
        )
    return out


def watershed_voids(
    density: np.ndarray,
    merge_threshold: float | None = None,
) -> WatershedResult:
    """Segment a periodic density grid into watershed basins (voids).

    Parameters
    ----------
    density:
        ``(n, n, n)`` (or any cuboid) density field; lower = emptier.
    merge_threshold:
        If given, adjacent basins whose connecting saddle density is below
        this value are merged (the WVF threshold step: ridges submerged at
        the threshold do not separate voids).

    Returns
    -------
    WatershedResult
    """
    field = np.asarray(density, dtype=float)
    if field.ndim != 3:
        raise ValueError(f"density must be 3D, got shape {field.shape}")
    shape = field.shape
    flat = field.ravel()
    n = flat.size
    neighbors = _neighbors_periodic(shape)

    order = np.argsort(flat, kind="stable")
    labels = np.full(n, -1, dtype=np.int64)
    ridge = np.zeros(n, dtype=bool)
    minima: list[int] = []
    # Saddle bookkeeping for the merge step: lowest density at which two
    # basins touch.
    saddles: dict[tuple[int, int], float] = {}

    for cell in order:
        nb = neighbors[cell]
        nb_labels = labels[nb]
        assigned = nb_labels[nb_labels >= 0]
        if len(assigned) == 0:
            labels[cell] = len(minima)  # new local minimum -> new basin
            minima.append(int(cell))
            continue
        uniq = np.unique(assigned)
        if len(uniq) == 1:
            labels[cell] = int(uniq[0])
            continue
        # Multiple basins meet here: a watershed ridge cell.  Assign to the
        # basin of the steepest (lowest-density) assigned neighbor.
        ridge[cell] = True
        flooded = nb[nb_labels >= 0]
        steepest = flooded[np.argmin(flat[flooded])]
        labels[cell] = int(labels[steepest])
        d = float(flat[cell])
        for i in range(len(uniq)):
            for j in range(i + 1, len(uniq)):
                key = (int(uniq[i]), int(uniq[j]))
                if key not in saddles:
                    saddles[key] = d

    if merge_threshold is not None:
        uf = UnionFind()
        for b in range(len(minima)):
            uf.add(b)
        for (a, b), saddle in saddles.items():
            if saddle < merge_threshold:
                uf.union(a, b)
        roots = sorted({uf.find(b) for b in range(len(minima))})
        remap = {root: i for i, root in enumerate(roots)}
        dense = np.array([remap[uf.find(b)] for b in range(len(minima))])
        labels = dense[labels]
        keep_min = {}
        for b in range(len(dense)):
            new = dense[b]
            old = minima[b]
            if new not in keep_min or flat[old] < flat[keep_min[new]]:
                keep_min[new] = old
        minima = [keep_min[i] for i in range(len(roots))]
        # Ridges interior to a merged basin are no longer watershed cells.
        nb_lab = labels[_as_flat_neighbors(neighbors)]
        ridge &= np.any(nb_lab != labels[:, None], axis=1)

    coords = np.stack(
        np.unravel_index(np.asarray(minima, dtype=np.int64), shape), axis=1
    )
    return WatershedResult(
        labels=labels.reshape(shape),
        minima=coords,
        ridge_mask=ridge.reshape(shape),
    )


def _as_flat_neighbors(neighbors: np.ndarray) -> np.ndarray:
    return neighbors
