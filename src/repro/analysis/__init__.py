"""Postprocessing analysis — the cosmology-tools plugin functionality.

Mirrors the four functions of the paper's ParaView plugin (Figure 7):
parallel reading of tess output (via :mod:`repro.core.tess_io`), threshold
filtering, connected-component labeling, and Minkowski functionals — plus
the void catalog built on top of them, summary statistics (volume and
density-contrast histograms with skewness/kurtosis), a friends-of-friends
halo finder, and the tessellation-based estimators the paper builds on or
proposes: DTFE density fields, watershed void finding, multistream
detection, and temporal feature tracking.
"""

from .components import (
    ArrayUnionFind,
    ComponentLabeling,
    UnionFind,
    connected_components,
    connected_components_dict,
    connected_components_distributed,
)
from .dtfe import dtfe_density, dtfe_grid, voronoi_density
from .field import deposit_to_grid, sample_cells
from .halos import Halo, HaloCatalog, fof_halos, fof_halos_distributed
from .minkowski import MinkowskiFunctionals, minkowski_functionals
from .percolation import (
    PercolationPoint,
    percolation_curve,
    percolation_threshold,
)
from .multistream import (
    fraction_multistream,
    lagrangian_jacobian,
    multistream_grid,
)
from .statistics import (
    Histogram,
    cell_density,
    density_contrast,
    histogram,
    volume_range_concentration,
)
from .threshold import density_threshold_mask, kept_site_ids, volume_threshold_mask
from .tracking import (
    FeatureEvent,
    FeatureTrack,
    FeatureTree,
    FeatureTreeBuilder,
    MergerTree,
    local_labeling,
    overlap_matrix,
    overlap_matrix_dict,
    track_components,
    track_components_distributed,
)
from .query import (
    QUERY_OPS,
    QueryError,
    query_components,
    query_halos,
    query_minkowski,
    query_profile,
    query_voids,
    region_bounds,
    run_query,
)
from .voids import (
    Void,
    VoidCatalog,
    find_voids,
    find_voids_distributed,
    volume_threshold_for_fraction,
)
from .render import ascii_render, slice_field, write_pgm
from .watershed import WatershedResult, watershed_voids
from .zobov import ZobovResult, Zone, zobov_voids

__all__ = [
    "ArrayUnionFind",
    "ComponentLabeling",
    "UnionFind",
    "connected_components",
    "connected_components_dict",
    "connected_components_distributed",
    "dtfe_density",
    "dtfe_grid",
    "deposit_to_grid",
    "sample_cells",
    "voronoi_density",
    "Halo",
    "HaloCatalog",
    "fof_halos",
    "fof_halos_distributed",
    "MinkowskiFunctionals",
    "minkowski_functionals",
    "PercolationPoint",
    "percolation_curve",
    "percolation_threshold",
    "fraction_multistream",
    "lagrangian_jacobian",
    "multistream_grid",
    "Histogram",
    "cell_density",
    "density_contrast",
    "histogram",
    "volume_range_concentration",
    "density_threshold_mask",
    "kept_site_ids",
    "volume_threshold_mask",
    "FeatureEvent",
    "FeatureTrack",
    "FeatureTree",
    "FeatureTreeBuilder",
    "MergerTree",
    "local_labeling",
    "overlap_matrix",
    "overlap_matrix_dict",
    "track_components",
    "track_components_distributed",
    "QUERY_OPS",
    "QueryError",
    "query_components",
    "query_halos",
    "query_minkowski",
    "query_profile",
    "query_voids",
    "region_bounds",
    "run_query",
    "Void",
    "VoidCatalog",
    "find_voids",
    "find_voids_distributed",
    "volume_threshold_for_fraction",
    "WatershedResult",
    "watershed_voids",
    "ascii_render",
    "slice_field",
    "write_pgm",
    "ZobovResult",
    "Zone",
    "zobov_voids",
]
