"""Summary statistics of tessellations (paper Figures 8 and 11).

Histograms of cell volume and of the cell density contrast

    delta = (d - mu_d) / mu_d ,   d = 1 / volume  (unit-mass particles),

with the skewness and (Pearson, non-excess) kurtosis the paper annotates on
each plot.  The paper tracks these moments over time as simple indicators
of the breakdown of perturbation theory: the early near-Gaussian field has
kurtosis ~3, and both moments grow as halos collapse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Histogram",
    "histogram",
    "cell_density",
    "density_contrast",
    "volume_range_concentration",
]


@dataclass(frozen=True)
class Histogram:
    """A binned distribution plus the moments the paper reports."""

    counts: np.ndarray
    edges: np.ndarray
    skewness: float
    kurtosis: float
    mean: float
    std: float
    n_samples: int
    n_clipped: int

    @property
    def bin_width(self) -> float:
        return float(self.edges[1] - self.edges[0])

    @property
    def centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def rows(self) -> list[tuple[float, int]]:
        """(bin center, count) pairs — the printable series of a figure."""
        return list(zip(self.centers.tolist(), self.counts.tolist()))


def _moments(values: np.ndarray) -> tuple[float, float, float, float]:
    mean = float(values.mean())
    std = float(values.std())
    if std == 0.0:
        return mean, std, 0.0, 0.0
    z = (values - mean) / std
    skew = float(np.mean(z**3))
    kurt = float(np.mean(z**4))  # Pearson convention: Gaussian -> 3
    return mean, std, skew, kurt


def histogram(
    values: np.ndarray,
    bins: int = 100,
    value_range: tuple[float, float] | None = None,
) -> Histogram:
    """Histogram with the paper's annotation set (100 bins by default).

    Moments are computed over *all* samples; the counts only cover
    ``value_range`` (the paper's Figure 8 clips the display range to
    [0.02, 2] while quoting global moments).
    """
    v = np.asarray(values, dtype=float)
    if len(v) == 0:
        raise ValueError("cannot histogram an empty sample")
    if value_range is None:
        value_range = (float(v.min()), float(v.max()))
    counts, edges = np.histogram(v, bins=bins, range=value_range)
    mean, std, skew, kurt = _moments(v)
    return Histogram(
        counts=counts,
        edges=edges,
        skewness=skew,
        kurtosis=kurt,
        mean=mean,
        std=std,
        n_samples=len(v),
        n_clipped=int(len(v) - counts.sum()),
    )


def cell_density(volumes: np.ndarray) -> np.ndarray:
    """Unit-mass cell density ``d = 1 / volume`` (paper §IV-D)."""
    v = np.asarray(volumes, dtype=float)
    if np.any(v <= 0):
        raise ValueError("cell volumes must be positive")
    return 1.0 / v


def density_contrast(volumes: np.ndarray) -> np.ndarray:
    """Density contrast ``delta = (d - mu_d)/mu_d`` from cell volumes."""
    d = cell_density(volumes)
    mu = d.mean()
    return (d - mu) / mu


def volume_range_concentration(
    volumes: np.ndarray, fraction_of_range: float = 0.1
) -> float:
    """Fraction of cells within the smallest ``fraction_of_range`` of the
    volume range (paper: 75% of cells in the smallest 10%)."""
    v = np.asarray(volumes, dtype=float)
    if len(v) == 0:
        raise ValueError("empty volume sample")
    lo, hi = float(v.min()), float(v.max())
    cut = lo + fraction_of_range * (hi - lo)
    return float(np.mean(v <= cut))
