"""Minkowski functionals of connected components (plugin filter #4).

The four basic functionals the paper computes (§III-D, citing SURFGEN
[Sheth et al. 2002]) for each connected component of Voronoi cells:

* **volume** V — sum of member cell volumes;
* **surface area** S — area of the component's boundary surface (faces
  whose neighbor cell is not in the component);
* **integrated mean curvature** C — for a polyhedral surface,
  ``C = (1/2) sum_e len_e * alpha_e`` over boundary edges, where
  ``alpha_e`` is the signed exterior dihedral angle (positive at convex
  edges, negative at concave ones);
* **Euler characteristic** chi = V - E + F of the boundary surface, with
  genus ``g = 1 - chi/2`` (per closed surface; summed over shells).

From these, the Sahni-Sathyaprakash-Shandarin *shapefinders*:
thickness ``T = 3V/S``, breadth ``B = S/C``, length ``L = C/(4 pi)``
(all equal to R for a sphere of radius R), used to classify voids,
filaments, and walls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.tessellate import Tessellation
from .components import ComponentLabeling

__all__ = ["MinkowskiFunctionals", "minkowski_functionals"]

_KEY_DECIMALS = 8


@dataclass(frozen=True)
class MinkowskiFunctionals:
    """Functionals and shapefinders of one connected component."""

    label: int
    num_cells: int
    volume: float
    surface_area: float
    mean_curvature: float
    euler_characteristic: int
    genus: float
    num_boundary_faces: int

    @property
    def thickness(self) -> float:
        """Shapefinder T = 3V/S."""
        return 3.0 * self.volume / self.surface_area if self.surface_area else np.nan

    @property
    def breadth(self) -> float:
        """Shapefinder B = S/C (NaN when the curvature is nonpositive)."""
        if self.mean_curvature <= 0:
            return np.nan
        return self.surface_area / self.mean_curvature

    @property
    def length(self) -> float:
        """Shapefinder L = C/(4 pi)."""
        if self.mean_curvature <= 0:
            return np.nan
        return self.mean_curvature / (4.0 * np.pi)

    def as_row(self) -> dict[str, float]:
        """Printable row for the plugin-style report."""
        return {
            "label": self.label,
            "cells": self.num_cells,
            "V": self.volume,
            "S": self.surface_area,
            "C": self.mean_curvature,
            "chi": self.euler_characteristic,
            "genus": self.genus,
            "T": self.thickness,
            "B": self.breadth,
            "L": self.length,
        }


def _vkey(coord: np.ndarray) -> tuple[float, ...]:
    return tuple(np.round(coord, _KEY_DECIMALS).tolist())


def minkowski_functionals(
    tess: Tessellation, labeling: ComponentLabeling
) -> list[MinkowskiFunctionals]:
    """Compute functionals for every component of ``labeling``.

    The boundary surface is assembled across blocks by keying Voronoi
    vertices on rounded coordinates — the same vertex appears bitwise (or
    near-bitwise) identically in adjacent blocks.
    """
    label_of = labeling.label_of()
    ncomp = labeling.num_components
    vol = np.zeros(ncomp)
    ncells = np.zeros(ncomp, dtype=np.int64)

    # Per-component boundary surface soup.
    faces: list[list[tuple[list[tuple[float, ...]], np.ndarray, np.ndarray]]] = [
        [] for _ in range(ncomp)
    ]  # (vertex keys, outward normal, face center)

    for block in tess.blocks:
        for i in range(block.num_cells):
            sid = int(block.site_ids[i])
            comp = label_of.get(sid)
            if comp is None:
                continue
            vol[comp] += float(block.volumes[i])
            ncells[comp] += 1
            neighbors = block.neighbors_of_cell(i)
            site = block.sites[i]
            for f_local, nb in zip(block.faces_of_cell(i), neighbors):
                nb = int(nb)
                if nb >= 0 and label_of.get(nb) == comp:
                    continue  # interior face
                pts = block.vertices[f_local]
                keys = [_vkey(p) for p in pts]
                nxt = np.roll(pts, -1, axis=0)
                normal = 0.5 * np.cross(pts, nxt).sum(axis=0)
                norm = np.linalg.norm(normal)
                if norm == 0.0:
                    continue  # degenerate sliver face
                normal /= norm
                center = pts.mean(axis=0)
                if float(normal @ (center - site)) < 0:
                    normal = -normal
                faces[comp].append((keys, normal, center))

    out: list[MinkowskiFunctionals] = []
    for comp in range(ncomp):
        s_area = 0.0
        vkeys: set[tuple[float, ...]] = set()
        # edge -> list of (face normal, face center)
        edges: dict[tuple, list[tuple[np.ndarray, np.ndarray]]] = {}
        edge_len: dict[tuple, float] = {}
        coords: dict[tuple[float, ...], np.ndarray] = {}

        for keys, normal, center in faces[comp]:
            pts = np.asarray(keys)
            nxt = np.roll(pts, -1, axis=0)
            area_vec = 0.5 * np.cross(pts, nxt).sum(axis=0)
            s_area += float(np.linalg.norm(area_vec))
            n = len(keys)
            for a in range(n):
                ka, kb = keys[a], keys[(a + 1) % n]
                vkeys.add(ka)
                coords[ka] = pts[a]
                ekey = (ka, kb) if ka <= kb else (kb, ka)
                edges.setdefault(ekey, []).append((normal, center))
                edge_len[ekey] = float(
                    np.linalg.norm(np.asarray(ka) - np.asarray(kb))
                )

        curvature = 0.0
        for ekey, shared in edges.items():
            if len(shared) != 2:
                continue  # non-manifold contact; no well-defined dihedral
            (n1, c1), (n2, c2) = shared
            cosang = float(np.clip(n1 @ n2, -1.0, 1.0))
            ang = float(np.arccos(cosang))
            mid = 0.5 * (np.asarray(ekey[0]) + np.asarray(ekey[1]))
            # Convex edge: the other face's center lies below this face's
            # plane (material bulges outward).
            convex = float(n1 @ (c2 - mid)) < 0.0
            curvature += 0.5 * edge_len[ekey] * (ang if convex else -ang)

        chi = len(vkeys) - len(edges) + len(faces[comp])
        out.append(
            MinkowskiFunctionals(
                label=comp,
                num_cells=int(ncells[comp]),
                volume=float(vol[comp]),
                surface_area=s_area,
                mean_curvature=curvature,
                euler_characteristic=int(chi),
                genus=1.0 - chi / 2.0,
                num_boundary_faces=len(faces[comp]),
            )
        )
    return out
