"""Friends-of-friends halo finder (a sibling in situ tool, paper Figure 4).

Halos are the high-density counterpart of voids: groups of particles whose
pairwise separations chain below a linking length ``b`` (in units of the
mean inter-particle spacing, conventionally b ~ 0.2).  The serial finder
uses a periodic KD-tree pair query plus an array union-find; the
distributed finder reuses tess's ghost-exchange machinery — linking is
local to owned + ghost particles, and group fragments that span ranks are
merged at the root through their shared global particle ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.spatial import cKDTree

from ..diy.bounds import Bounds, minimum_image
from ..diy.comm import Communicator
from ..diy.decomposition import Decomposition
from ..core.ghost import exchange_ghost_particles

__all__ = ["Halo", "HaloCatalog", "fof_halos", "fof_halos_distributed"]


@dataclass(frozen=True)
class Halo:
    """One friends-of-friends group."""

    members: np.ndarray  # global particle ids, sorted
    center: np.ndarray  # periodic-aware mean position, shape (3,)

    @property
    def mass(self) -> int:
        """Member count (unit-mass particles)."""
        return len(self.members)


@dataclass
class HaloCatalog:
    """All halos above the membership threshold, descending by mass."""

    linking_length: float
    min_members: int
    halos: list[Halo] = field(default_factory=list)

    @property
    def num_halos(self) -> int:
        return len(self.halos)

    def masses(self) -> np.ndarray:
        """Member counts, aligned with ``halos``."""
        return np.asarray([h.mass for h in self.halos], dtype=np.int64)

    def mass_function(self, bins: np.ndarray) -> np.ndarray:
        """Halo counts per mass bin (a crude multiplicity function)."""
        return np.histogram(self.masses(), bins=bins)[0]


class _ArrayUnionFind:
    """Index-based union-find with path halving (fast for dense indices)."""

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return int(x)

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)

    def labels(self) -> np.ndarray:
        """Root of every element (fully compressed)."""
        return np.asarray([self.find(i) for i in range(len(self.parent))])


def _link_pairs(
    positions: np.ndarray, linking_length: float, domain: Bounds | None
) -> np.ndarray:
    """All particle index pairs closer than the linking length."""
    if domain is not None:
        lo, _ = domain.as_arrays()
        tree = cKDTree(
            np.asarray(positions) - lo, boxsize=domain.sizes
        )  # periodic metric
    else:
        tree = cKDTree(positions)
    pairs = tree.query_pairs(r=linking_length, output_type="ndarray")
    return pairs


def _catalog_from_groups(
    groups: dict[int, list[int]],
    pos_by_id: dict[int, np.ndarray],
    domain: Bounds | None,
    linking_length: float,
    min_members: int,
) -> HaloCatalog:
    catalog = HaloCatalog(linking_length=linking_length, min_members=min_members)
    for members in groups.values():
        if len(members) < min_members:
            continue
        ids = np.asarray(sorted(members), dtype=np.int64)
        pts = np.asarray([pos_by_id[int(i)] for i in ids])
        ref = pts[0]
        if domain is not None:
            rel = minimum_image(pts - ref, domain)
            from ..diy.bounds import wrap_positions

            center = wrap_positions((ref + rel.mean(axis=0))[None, :], domain)[0]
        else:
            center = pts.mean(axis=0)
        catalog.halos.append(Halo(members=ids, center=center))
    catalog.halos.sort(key=lambda h: (-h.mass, int(h.members[0])))
    return catalog


def fof_halos(
    positions: np.ndarray,
    linking_length: float,
    domain: Bounds | None = None,
    min_members: int = 10,
    ids: np.ndarray | None = None,
) -> HaloCatalog:
    """Serial friends-of-friends over a global particle set.

    Parameters
    ----------
    positions:
        ``(n, 3)`` particle positions (inside ``domain`` if periodic).
    linking_length:
        Absolute linking length (multiply ``b`` by the mean spacing first).
    domain:
        Periodic domain; ``None`` for open boundaries.
    min_members:
        Minimum group size to report (the classic choice is 10-20).
    ids:
        Global particle ids (default ``arange``).
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {pos.shape}")
    if linking_length <= 0:
        raise ValueError("linking_length must be positive")
    pid = np.arange(len(pos), dtype=np.int64) if ids is None else np.asarray(ids)

    uf = _ArrayUnionFind(len(pos))
    for a, b in _link_pairs(pos, linking_length, domain):
        uf.union(int(a), int(b))
    labels = uf.labels()

    groups: dict[int, list[int]] = {}
    for i, root in enumerate(labels):
        groups.setdefault(int(root), []).append(int(pid[i]))
    pos_by_id = {int(pid[i]): pos[i] for i in range(len(pos))}
    return _catalog_from_groups(groups, pos_by_id, domain, linking_length, min_members)


def fof_halos_distributed(
    comm: Communicator,
    decomposition: Decomposition,
    positions: np.ndarray,
    ids: np.ndarray,
    linking_length: float,
    min_members: int = 10,
    gid: int | None = None,
) -> HaloCatalog:
    """Distributed FOF: local linking + root merge (collective).

    Each rank links its owned + ghost particles (ghost thickness = the
    linking length suffices: any cross-rank link has both endpoints within
    one linking length of the boundary).  Edges are expressed in global ids
    and merged at the root; the full catalog is broadcast back.
    """
    gid = comm.rank if gid is None else gid
    pos = np.asarray(positions, dtype=float)
    pid = np.asarray(ids, dtype=np.int64)

    ghost_pos, ghost_ids = exchange_ghost_particles(
        decomposition, comm, gid, pos, pid, ghost=1.001 * linking_length
    )
    all_pos = np.concatenate([pos, ghost_pos]) if len(ghost_pos) else pos
    all_ids = np.concatenate([pid, ghost_ids])

    # Local linking in the block's frame (non-periodic: ghosts already
    # carry translated periodic images).
    edges: list[tuple[int, int]] = []
    if len(all_pos) > 1:
        for a, b in _link_pairs(all_pos, linking_length, domain=None):
            edges.append((int(all_ids[a]), int(all_ids[b])))

    gathered_edges = comm.gather(edges, root=0)
    gathered_pos = comm.gather({int(i): p for i, p in zip(pid, pos)}, root=0)

    if comm.rank == 0:
        from .components import UnionFind

        uf = UnionFind()
        pos_by_id: dict[int, np.ndarray] = {}
        for d in gathered_pos:
            pos_by_id.update(d)
        for i in pos_by_id:
            uf.add(i)
        for rank_edges in gathered_edges:
            for a, b in rank_edges:
                uf.add(a)
                uf.add(b)
                uf.union(a, b)
        groups_all = uf.groups()
        # Keep only real particles (ghost ids duplicate real ones by design).
        groups = {
            root: [m for m in members if m in pos_by_id]
            for root, members in groups_all.items()
        }
        groups = {r: m for r, m in groups.items() if m}
        catalog = _catalog_from_groups(
            groups, pos_by_id, decomposition.domain, linking_length, min_members
        )
    else:
        catalog = None
    return comm.bcast(catalog, root=0)
