"""Minimal slice rendering — the visualization stand-in for Figures 1/7.

The paper views tessellations in ParaView; offline, the closest useful
artifact is a raster slice: sample a plane through the tessellation (each
pixel takes the value of the cell owning the nearest site, e.g. its volume
or component label) and write it as ASCII art or a binary PGM image.  Used
by examples and by the documentation to eyeball void structure without any
plotting dependency.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..core.tessellate import Tessellation

__all__ = ["slice_field", "ascii_render", "write_pgm"]


def slice_field(
    tess: Tessellation,
    axis: int = 2,
    coordinate: float | None = None,
    resolution: int = 64,
    value: str = "volume",
    labeling=None,
) -> np.ndarray:
    """Sample a planar slice of the tessellation.

    Each pixel is assigned the cell of its nearest site (exactly the
    Voronoi ownership relation), carrying that cell's ``value``:

    * ``"volume"`` — cell volume;
    * ``"density"`` — 1 / volume;
    * ``"component"`` — component label from ``labeling`` (pixels of
      unlabeled cells get -1).

    Returns a ``(resolution, resolution)`` float array.
    """
    if value not in ("volume", "density", "component"):
        raise ValueError(f"unknown value {value!r}")
    if value == "component" and labeling is None:
        raise ValueError("component rendering requires a labeling")
    if not 0 <= axis <= 2:
        raise ValueError(f"axis must be 0..2, got {axis}")

    sites = np.concatenate([b.sites for b in tess.blocks])
    ids = np.concatenate([b.site_ids for b in tess.blocks])
    vols = tess.volumes()
    if len(sites) == 0:
        raise ValueError("tessellation has no cells")

    lo, hi = tess.domain.as_arrays()
    coordinate = float(tess.domain.center[axis]) if coordinate is None else coordinate
    other = [a for a in range(3) if a != axis]

    u = np.linspace(lo[other[0]], hi[other[0]], resolution, endpoint=False)
    v = np.linspace(lo[other[1]], hi[other[1]], resolution, endpoint=False)
    gu, gv = np.meshgrid(u, v, indexing="ij")
    pts = np.empty((resolution * resolution, 3))
    pts[:, other[0]] = gu.ravel()
    pts[:, other[1]] = gv.ravel()
    pts[:, axis] = coordinate

    tree = cKDTree(sites - lo, boxsize=tess.domain.sizes)
    _, nearest = tree.query(pts - lo)

    if value == "volume":
        out = vols[nearest]
    elif value == "density":
        out = 1.0 / vols[nearest]
    else:
        label_of = labeling.label_of()
        out = np.asarray(
            [label_of.get(int(ids[i]), -1) for i in nearest], dtype=float
        )
    return out.reshape(resolution, resolution)


_RAMP = " .:-=+*#%@"


def ascii_render(field: np.ndarray, log_scale: bool = True) -> str:
    """Render a 2D field as ASCII art (dark = low, dense glyph = high)."""
    f = np.asarray(field, dtype=float)
    if f.ndim != 2:
        raise ValueError("ascii_render needs a 2D field")
    vals = f.copy()
    if log_scale:
        positive = vals[vals > 0]
        floor = positive.min() if len(positive) else 1.0
        vals = np.log10(np.maximum(vals, floor))
    vmin, vmax = float(vals.min()), float(vals.max())
    if vmax == vmin:
        idx = np.zeros_like(vals, dtype=int)
    else:
        idx = ((vals - vmin) / (vmax - vmin) * (len(_RAMP) - 1)).astype(int)
    return "\n".join("".join(_RAMP[i] for i in row) for row in idx)


def write_pgm(path: str, field: np.ndarray, log_scale: bool = True) -> None:
    """Write a 2D field as an 8-bit binary PGM image."""
    f = np.asarray(field, dtype=float)
    if f.ndim != 2:
        raise ValueError("write_pgm needs a 2D field")
    vals = f.copy()
    if log_scale:
        positive = vals[vals > 0]
        floor = positive.min() if len(positive) else 1.0
        vals = np.log10(np.maximum(vals, floor))
    vmin, vmax = float(vals.min()), float(vals.max())
    scaled = (
        np.zeros_like(vals)
        if vmax == vmin
        else (vals - vmin) / (vmax - vmin) * 255.0
    )
    img = scaled.astype(np.uint8)
    with open(path, "wb") as fh:
        fh.write(f"P5\n{img.shape[1]} {img.shape[0]}\n255\n".encode())
        fh.write(img.tobytes())
