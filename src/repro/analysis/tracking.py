"""Temporal tracking of connected components across time steps.

Paper §V: "We will also look to tracking temporal evolution of connected
components by using the feature tree method of Chen et al."  A feature
tree links features (here: voids) between consecutive tessellation outputs
by *overlap* — two components at successive steps correspond when they
share member cells.  Because tess cells are keyed by global particle ids,
overlap is exact set intersection: no geometric matching is needed.

The tracker classifies every transition between steps as continuation,
merge, split, birth, or death, and assembles per-void *tracks* through
time (following the largest-overlap parent/child at merges and splits).
"""

from __future__ import annotations

from dataclasses import dataclass, field


from .components import ComponentLabeling

__all__ = ["FeatureEvent", "FeatureTrack", "FeatureTree", "track_components"]


@dataclass(frozen=True)
class FeatureEvent:
    """One labeled transition between consecutive steps."""

    kind: str  # "continuation" | "merge" | "split" | "birth" | "death"
    step_from: int | None
    step_to: int | None
    labels_from: tuple[int, ...]
    labels_to: tuple[int, ...]
    shared_cells: int


@dataclass
class FeatureTrack:
    """A single feature followed through time (largest-overlap chain)."""

    steps: list[int] = field(default_factory=list)
    labels: list[int] = field(default_factory=list)
    sizes: list[int] = field(default_factory=list)

    @property
    def lifetime(self) -> int:
        """Number of steps the feature persists."""
        return len(self.steps)


@dataclass
class FeatureTree:
    """All events and tracks across a sequence of labelings."""

    steps: list[int]
    events: list[FeatureEvent]
    tracks: list[FeatureTrack]

    def events_at(self, step_to: int) -> list[FeatureEvent]:
        """Events arriving at a given step."""
        return [e for e in self.events if e.step_to == step_to]

    def counts(self) -> dict[str, int]:
        """Event counts by kind."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


def _overlap_matrix(
    a: ComponentLabeling, b: ComponentLabeling
) -> dict[tuple[int, int], int]:
    """Shared-cell counts between components of two labelings."""
    bmap = b.label_of()
    out: dict[tuple[int, int], int] = {}
    for sid, la in zip(a.site_ids.tolist(), a.labels.tolist()):
        lb = bmap.get(sid)
        if lb is not None:
            key = (int(la), int(lb))
            out[key] = out.get(key, 0) + 1
    return out


def track_components(
    labelings: dict[int, ComponentLabeling],
    min_overlap: int = 1,
) -> FeatureTree:
    """Build the feature tree over labelings keyed by step index.

    Parameters
    ----------
    labelings:
        Step -> component labeling (e.g. voids at each output step).
    min_overlap:
        Minimum shared cells for two components to be considered linked.
    """
    steps = sorted(labelings)
    if not steps:
        raise ValueError("no labelings supplied")
    events: list[FeatureEvent] = []

    # Track bookkeeping: active tracks keyed by (step, label) of their head.
    tracks: list[FeatureTrack] = []
    head: dict[int, FeatureTrack] = {}  # label at current step -> track

    first = labelings[steps[0]]
    for label in range(first.num_components):
        t = FeatureTrack(
            steps=[steps[0]], labels=[label], sizes=[int(first.sizes()[label])]
        )
        tracks.append(t)
        head[label] = t

    for prev_step, next_step in zip(steps[:-1], steps[1:]):
        a, b = labelings[prev_step], labelings[next_step]
        overlap = {
            k: v for k, v in _overlap_matrix(a, b).items() if v >= min_overlap
        }
        children: dict[int, list[tuple[int, int]]] = {}
        parents: dict[int, list[tuple[int, int]]] = {}
        for (la, lb), n in overlap.items():
            children.setdefault(la, []).append((lb, n))
            parents.setdefault(lb, []).append((la, n))

        # Events.
        for la in range(a.num_components):
            kids = children.get(la, [])
            if not kids:
                events.append(
                    FeatureEvent("death", prev_step, next_step, (la,), (), 0)
                )
            elif len(kids) > 1:
                events.append(
                    FeatureEvent(
                        "split",
                        prev_step,
                        next_step,
                        (la,),
                        tuple(sorted(l for l, _ in kids)),
                        sum(n for _, n in kids),
                    )
                )
        for lb in range(b.num_components):
            pars = parents.get(lb, [])
            if not pars:
                events.append(
                    FeatureEvent("birth", prev_step, next_step, (), (lb,), 0)
                )
            elif len(pars) > 1:
                events.append(
                    FeatureEvent(
                        "merge",
                        prev_step,
                        next_step,
                        tuple(sorted(l for l, _ in pars)),
                        (lb,),
                        sum(n for _, n in pars),
                    )
                )
            elif len(pars) == 1 and len(children.get(pars[0][0], [])) == 1:
                events.append(
                    FeatureEvent(
                        "continuation",
                        prev_step,
                        next_step,
                        (pars[0][0],),
                        (lb,),
                        pars[0][1],
                    )
                )

        # Extend tracks along the largest-overlap child of each head.
        new_head: dict[int, FeatureTrack] = {}
        sizes_b = b.sizes()
        claimed: set[int] = set()
        for la, track in head.items():
            kids = children.get(la, [])
            if not kids:
                continue  # track dies
            lb = max(kids, key=lambda kn: kn[1])[0]
            if lb in claimed:
                continue  # another parent claimed it (merge loser)
            claimed.add(lb)
            track.steps.append(next_step)
            track.labels.append(lb)
            track.sizes.append(int(sizes_b[lb]))
            new_head[lb] = track
        # Births (and merge losers' children) start fresh tracks.
        for lb in range(b.num_components):
            if lb not in new_head:
                t = FeatureTrack(
                    steps=[next_step], labels=[lb], sizes=[int(sizes_b[lb])]
                )
                tracks.append(t)
                new_head[lb] = t
        head = new_head

    return FeatureTree(steps=steps, events=events, tracks=tracks)
