"""Temporal tracking of connected components across time steps.

Paper §V: "We will also look to tracking temporal evolution of connected
components by using the feature tree method of Chen et al."  A feature
tree links features (here: voids) between consecutive tessellation outputs
by *overlap* — two components at successive steps correspond when they
share member cells.  Because tess cells are keyed by global particle ids,
overlap is exact set intersection: no geometric matching is needed.

This module is the production time-domain subsystem (DESIGN.md §14):

* :func:`overlap_matrix` — the flat overlap core: one
  :func:`~repro.core.data_model.index_in_sorted` join of the two
  labelings' site ids plus an ``np.add.at`` pair count — no per-cell
  Python loop.  :func:`overlap_matrix_dict` is the retained per-cell dict
  implementation, kept as the parity/bench oracle.
* :class:`FeatureTreeBuilder` — incremental, one labeling at a time, with
  a flat-array checkpointable state (:meth:`~FeatureTreeBuilder.state` /
  :meth:`~FeatureTreeBuilder.from_state`) so in situ tracking survives
  checkpoint/restart bit-identically.
* :func:`track_components` / :func:`track_components_distributed` — the
  postprocessing and in situ drivers.  The distributed path links
  *per-rank* labelings: each step's ``(site id, label)`` rows travel to
  the root through the tree gather (never any mesh geometry), the root
  advances the builder, and the finished tree is broadcast.
* :class:`MergerTree` — the stable on-disk form: flat arrays for the
  per-track label/size/volume histories and the event log, saved as a
  versioned ``.npz`` with a JSON meta record.

Transitions are classified as continuation, merge, split, birth, or
death, and tracks follow the largest-overlap chain.  At a merge the
surviving track is arbitrated by overlap count (ties to the smaller
label) — not by dict insertion order.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from .. import observe
from ..core.data_model import index_in_sorted, isin_sorted
from .components import ComponentLabeling

__all__ = [
    "FeatureEvent",
    "FeatureTrack",
    "FeatureTree",
    "FeatureTreeBuilder",
    "MergerTree",
    "overlap_matrix",
    "overlap_matrix_dict",
    "track_components",
    "track_components_distributed",
    "local_labeling",
    "gather_step_rows",
]

#: on-disk merger-tree format identifier (bump on incompatible changes)
MERGER_TREE_FORMAT = "repro-merger-tree-1"

_EVENT_KINDS = ("continuation", "merge", "split", "birth", "death")


@dataclass(frozen=True)
class FeatureEvent:
    """One labeled transition between consecutive steps."""

    kind: str  # "continuation" | "merge" | "split" | "birth" | "death"
    step_from: int | None
    step_to: int | None
    labels_from: tuple[int, ...]
    labels_to: tuple[int, ...]
    shared_cells: int


@dataclass
class FeatureTrack:
    """A single feature followed through time (largest-overlap chain).

    ``volumes`` is populated only when per-label volumes were supplied to
    the tracker (the merger-tree path); it is then aligned with ``steps``.
    """

    steps: list[int] = field(default_factory=list)
    labels: list[int] = field(default_factory=list)
    sizes: list[int] = field(default_factory=list)
    volumes: list[float] = field(default_factory=list)

    @property
    def lifetime(self) -> int:
        """Number of steps the feature persists."""
        return len(self.steps)


@dataclass
class FeatureTree:
    """All events and tracks across a sequence of labelings."""

    steps: list[int]
    events: list[FeatureEvent]
    tracks: list[FeatureTrack]

    def events_at(self, step_to: int) -> list[FeatureEvent]:
        """Events arriving at a given step."""
        return [e for e in self.events if e.step_to == step_to]

    def counts(self) -> dict[str, int]:
        """Event counts by kind."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


# ----------------------------------------------------------------------
# overlap kernels
# ----------------------------------------------------------------------
def overlap_matrix(
    a: ComponentLabeling, b: ComponentLabeling
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared-cell counts between components of two labelings (flat core).

    Returns aligned int64 arrays ``(labels_a, labels_b, counts)`` holding
    every component pair that shares at least one cell, ordered
    lexicographically by ``(label_a, label_b)``.  One
    :func:`~repro.core.data_model.index_in_sorted` join of the sorted site
    ids plus an ``np.add.at`` accumulation — no per-cell Python loop.
    """
    na, nb = a.num_components, b.num_components
    empty = np.empty(0, dtype=np.int64)
    if na == 0 or nb == 0:
        return empty, empty.copy(), empty.copy()
    pos, mask = index_in_sorted(
        np.asarray(a.site_ids, dtype=np.int64),
        np.asarray(b.site_ids, dtype=np.int64),
    )
    if not mask.any():
        return empty, empty.copy(), empty.copy()
    la = np.asarray(a.labels, dtype=np.int64)[mask]
    lb = np.asarray(b.labels, dtype=np.int64)[pos[mask]]
    key = la * np.int64(nb) + lb
    pairs, inverse = np.unique(key, return_inverse=True)
    counts = np.zeros(len(pairs), dtype=np.int64)
    np.add.at(counts, inverse, 1)
    return pairs // nb, pairs % nb, counts


def overlap_matrix_dict(
    a: ComponentLabeling, b: ComponentLabeling
) -> dict[tuple[int, int], int]:
    """Per-cell dict overlap counts — the parity and benchmark oracle."""
    bmap = b.label_of()
    out: dict[tuple[int, int], int] = {}
    for sid, la in zip(a.site_ids.tolist(), a.labels.tolist()):
        lb = bmap.get(sid)
        if lb is not None:
            key = (int(la), int(lb))
            out[key] = out.get(key, 0) + 1
    return out


# ----------------------------------------------------------------------
# incremental builder
# ----------------------------------------------------------------------
class FeatureTreeBuilder:
    """Incremental feature-tree assembly, one labeling per :meth:`push`.

    The builder is the single tracking engine behind
    :func:`track_components`, :func:`track_components_distributed`, and
    the in situ tracking tool.  Its complete state round-trips through
    flat numpy arrays (:meth:`state` / :meth:`from_state`) so an
    interrupted in situ run restores bit-identically from a checkpoint.

    ``kernel`` selects the overlap implementation: ``"flat"`` (production)
    or ``"dict"`` (the per-cell oracle) — both produce identical trees.
    """

    def __init__(self, min_overlap: int = 1, kernel: str = "flat") -> None:
        if min_overlap < 1:
            raise ValueError(f"min_overlap must be >= 1, got {min_overlap}")
        if kernel not in ("flat", "dict"):
            raise ValueError(f"unknown overlap kernel {kernel!r}")
        self.min_overlap = int(min_overlap)
        self.kernel = kernel
        self._steps: list[int] = []
        self._events: list[FeatureEvent] = []
        self._tracks: list[FeatureTrack] = []
        self._head: dict[int, int] = {}  # label at last step -> track index
        self._prev: ComponentLabeling | None = None
        self._with_volumes: bool | None = None

    @property
    def last_step(self) -> int | None:
        """Most recently pushed step (``None`` before the first push)."""
        return self._steps[-1] if self._steps else None

    # ------------------------------------------------------------------
    def push(
        self,
        step: int,
        labeling: ComponentLabeling,
        volumes: np.ndarray | None = None,
    ) -> None:
        """Link ``labeling`` (at ``step``) to the previously pushed one.

        ``volumes`` is an optional per-label volume array (length
        ``labeling.num_components``); once supplied it must be supplied on
        every push so track volume histories stay aligned.
        """
        step = int(step)
        if self._steps and step <= self._steps[-1]:
            raise ValueError(
                f"steps must be strictly increasing; got {step} after "
                f"{self._steps[-1]}"
            )
        with_volumes = volumes is not None
        if self._with_volumes is None:
            self._with_volumes = with_volumes
        elif self._with_volumes != with_volumes:
            raise ValueError(
                "per-label volumes must be supplied on every push or never"
            )
        if with_volumes and len(volumes) != labeling.num_components:
            raise ValueError(
                f"volumes has {len(volumes)} entries for "
                f"{labeling.num_components} components"
            )
        sizes = labeling.sizes()
        with observe.span("tracking-link", cat="analysis", step=step):
            if self._prev is None:
                new_head: dict[int, int] = {}
                for label in range(labeling.num_components):
                    new_head[label] = self._start_track(
                        step, label, sizes, volumes
                    )
                self._head = new_head
            else:
                self._link(step, labeling, sizes, volumes)
        self._steps.append(step)
        self._prev = labeling

    def tree(self) -> FeatureTree:
        """Snapshot of the accumulated feature tree."""
        return FeatureTree(
            steps=list(self._steps),
            events=list(self._events),
            tracks=list(self._tracks),
        )

    # ------------------------------------------------------------------
    def _start_track(
        self, step: int, label: int, sizes: np.ndarray, volumes
    ) -> int:
        track = FeatureTrack(
            steps=[step], labels=[int(label)], sizes=[int(sizes[label])]
        )
        if volumes is not None:
            track.volumes.append(float(volumes[label]))
        self._tracks.append(track)
        return len(self._tracks) - 1

    def _overlap(
        self, a: ComponentLabeling, b: ComponentLabeling
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self.kernel == "dict":
            matrix = overlap_matrix_dict(a, b)
            keys = sorted(matrix)  # (la, lb) lexicographic == flat order
            la = np.array([k[0] for k in keys], dtype=np.int64)
            lb = np.array([k[1] for k in keys], dtype=np.int64)
            n = np.array([matrix[k] for k in keys], dtype=np.int64)
        else:
            la, lb, n = overlap_matrix(a, b)
        keep = n >= self.min_overlap
        return la[keep], lb[keep], n[keep]

    def _link(
        self,
        step: int,
        b: ComponentLabeling,
        sizes_b: np.ndarray,
        volumes_b,
    ) -> None:
        a = self._prev
        prev_step = self._steps[-1]
        la, lb, n = self._overlap(a, b)
        na, nb = a.num_components, b.num_components
        kids_of = np.bincount(la, minlength=na)
        pars_of = np.bincount(lb, minlength=nb)
        shared_a = np.zeros(na, dtype=np.int64)
        np.add.at(shared_a, la, n)
        shared_b = np.zeros(nb, dtype=np.int64)
        np.add.at(shared_b, lb, n)
        # Links arrive sorted by (la, lb); group boundaries per la come
        # straight from searchsorted.  For per-lb groups, resort.
        a_bounds = np.searchsorted(la, np.arange(na + 1))
        order_b = np.lexsort((la, lb))
        b_bounds = np.searchsorted(lb[order_b], np.arange(nb + 1))

        counts_before = len(self._events)
        for x in range(na):
            k = int(kids_of[x])
            if k == 0:
                self._events.append(
                    FeatureEvent("death", prev_step, step, (x,), (), 0)
                )
            elif k > 1:
                kids = lb[a_bounds[x] : a_bounds[x + 1]]  # ascending lb
                self._events.append(
                    FeatureEvent(
                        "split",
                        prev_step,
                        step,
                        (x,),
                        tuple(int(v) for v in kids),
                        int(shared_a[x]),
                    )
                )
        for y in range(nb):
            p = int(pars_of[y])
            group = order_b[b_bounds[y] : b_bounds[y + 1]]  # ascending la
            if p == 0:
                self._events.append(
                    FeatureEvent("birth", prev_step, step, (), (y,), 0)
                )
            elif p > 1:
                self._events.append(
                    FeatureEvent(
                        "merge",
                        prev_step,
                        step,
                        tuple(int(v) for v in la[group]),
                        (y,),
                        int(shared_b[y]),
                    )
                )
            elif int(kids_of[la[group[0]]]) == 1:
                self._events.append(
                    FeatureEvent(
                        "continuation",
                        prev_step,
                        step,
                        (int(la[group[0]]),),
                        (y,),
                        int(n[group[0]]),
                    )
                )
        if observe.enabled():
            tallies: dict[str, int] = {}
            for e in self._events[counts_before:]:
                tallies[e.kind] = tallies.get(e.kind, 0) + 1
            reg = observe.registry()
            for kind, plural in (
                ("birth", "births"),
                ("death", "deaths"),
                ("merge", "merges"),
                ("split", "splits"),
            ):
                if tallies.get(kind):
                    reg.counter(f"tracking.{plural}").inc(tallies[kind])

        # Extend tracks.  Each parent nominates its largest-overlap child
        # (ties: smaller child label); a child nominated by several
        # parents is claimed by the largest-overlap parent (ties: smaller
        # parent label) — overlap arbitration, never dict insertion order.
        new_head: dict[int, int] = {}
        if len(la):
            order_best = np.lexsort((lb, -n, la))
            la_sorted = la[order_best]
            first = np.ones(len(la_sorted), dtype=bool)
            first[1:] = la_sorted[1:] != la_sorted[:-1]
            chosen = order_best[first]  # one link per parent
            cla, clb, cn = la[chosen], lb[chosen], n[chosen]
            order_claim = np.lexsort((cla, -cn, clb))
            clb_sorted = clb[order_claim]
            firstc = np.ones(len(clb_sorted), dtype=bool)
            firstc[1:] = clb_sorted[1:] != clb_sorted[:-1]
            for w in order_claim[firstc]:
                x, y = int(cla[w]), int(clb[w])
                ti = self._head[x]
                track = self._tracks[ti]
                track.steps.append(step)
                track.labels.append(y)
                track.sizes.append(int(sizes_b[y]))
                if volumes_b is not None:
                    track.volumes.append(float(volumes_b[y]))
                new_head[y] = ti
        # Births (and merge losers' children) start fresh tracks.
        for y in range(nb):
            if y not in new_head:
                new_head[y] = self._start_track(step, y, sizes_b, volumes_b)
        self._head = new_head

    # ------------------------------------------------------------------
    # checkpointable state
    # ------------------------------------------------------------------
    def state(self) -> dict[str, np.ndarray]:
        """Flat-array snapshot restoring bit-identically via
        :meth:`from_state` (int64/f8 only — safe to ``np.savez``)."""
        arrays = _pack_tree_arrays(self._steps, self._events, self._tracks)
        head = sorted(self._head.items())
        arrays["head_labels"] = np.array(
            [k for k, _ in head], dtype=np.int64
        )
        arrays["head_tracks"] = np.array(
            [v for _, v in head], dtype=np.int64
        )
        if self._prev is not None:
            arrays["prev_site_ids"] = np.asarray(
                self._prev.site_ids, dtype=np.int64
            )
            arrays["prev_labels"] = np.asarray(
                self._prev.labels, dtype=np.int64
            )
            prev_present = 1
        else:
            arrays["prev_site_ids"] = np.empty(0, dtype=np.int64)
            arrays["prev_labels"] = np.empty(0, dtype=np.int64)
            prev_present = 0
        wv = self._with_volumes
        arrays["flags"] = np.array(
            [
                self.min_overlap,
                0 if self.kernel == "flat" else 1,
                prev_present,
                -1 if wv is None else int(wv),
            ],
            dtype=np.int64,
        )
        return arrays

    @classmethod
    def from_state(cls, arrays: dict[str, np.ndarray]) -> "FeatureTreeBuilder":
        """Rebuild a builder from a :meth:`state` snapshot."""
        flags = np.asarray(arrays["flags"], dtype=np.int64)
        builder = cls(
            min_overlap=int(flags[0]),
            kernel="flat" if flags[1] == 0 else "dict",
        )
        steps, events, tracks = _unpack_tree_arrays(arrays)
        builder._steps = steps
        builder._events = events
        builder._tracks = tracks
        builder._head = {
            int(k): int(v)
            for k, v in zip(arrays["head_labels"], arrays["head_tracks"])
        }
        if flags[2]:
            builder._prev = ComponentLabeling(
                site_ids=np.asarray(arrays["prev_site_ids"], dtype=np.int64),
                labels=np.asarray(arrays["prev_labels"], dtype=np.int64),
            )
        builder._with_volumes = None if flags[3] < 0 else bool(flags[3])
        return builder


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def track_components(
    labelings: dict[int, ComponentLabeling],
    min_overlap: int = 1,
    volumes: dict[int, np.ndarray] | None = None,
    kernel: str = "flat",
) -> FeatureTree:
    """Build the feature tree over labelings keyed by step index.

    Parameters
    ----------
    labelings:
        Step -> component labeling (e.g. voids at each output step).
    min_overlap:
        Minimum shared cells for two components to be considered linked.
    volumes:
        Optional step -> per-label volume array; when given, tracks carry
        aligned volume histories (the merger-tree path).
    kernel:
        Overlap implementation: ``"flat"`` (production) or ``"dict"``
        (the retained per-cell oracle).  Trees are identical.
    """
    steps = sorted(labelings)
    if not steps:
        raise ValueError("no labelings supplied")
    builder = FeatureTreeBuilder(min_overlap=min_overlap, kernel=kernel)
    for step in steps:
        builder.push(
            step,
            labelings[step],
            volumes=None if volumes is None else volumes[step],
        )
    return builder.tree()


def local_labeling(
    labeling: ComponentLabeling, owned_ids: np.ndarray
) -> ComponentLabeling:
    """Restrict a global labeling to the rows whose site id is owned.

    The labels are kept *global* (not re-densified) so per-rank
    restrictions remain linkable by :func:`track_components_distributed`.
    """
    owned = np.unique(np.asarray(owned_ids, dtype=np.int64))
    mask = isin_sorted(
        np.asarray(labeling.site_ids, dtype=np.int64), owned
    )
    return ComponentLabeling(
        site_ids=np.asarray(labeling.site_ids, dtype=np.int64)[mask],
        labels=np.asarray(labeling.labels, dtype=np.int64)[mask],
    )


def gather_step_rows(
    comm,
    labeling: ComponentLabeling,
    cell_volumes: np.ndarray | None = None,
    root: int = 0,
) -> tuple[ComponentLabeling | None, np.ndarray | None]:
    """Gather per-rank ``(site id, label)`` rows into the root's global
    labeling (collective).

    Each rank contributes the rows of its *local* labeling (global label
    values, each cell owned by exactly one rank) as one packed int64
    array through the tree gather — no mesh geometry ever travels.  On
    the root the rows are merged in site-id order and, when
    ``cell_volumes`` (aligned with the local rows) is supplied, per-label
    volumes accumulate in that same order so the sums are bit-identical
    to a serial accumulation.  Non-root ranks return ``(None, None)``.
    """
    rows = np.ascontiguousarray(
        np.stack(
            [
                np.asarray(labeling.site_ids, dtype=np.int64),
                np.asarray(labeling.labels, dtype=np.int64),
            ],
            axis=1,
        )
        if len(labeling.site_ids)
        else np.empty((0, 2), dtype=np.int64)
    )
    gathered = comm.gather(rows, root=root)
    gathered_vols = None
    if cell_volumes is not None:
        if len(cell_volumes) != len(labeling.site_ids):
            raise ValueError(
                f"cell_volumes has {len(cell_volumes)} entries for "
                f"{len(labeling.site_ids)} labeled cells"
            )
        gathered_vols = comm.gather(
            np.ascontiguousarray(cell_volumes, dtype=np.float64), root=root
        )
    if comm.rank != root:
        return None, None
    merged = np.concatenate(gathered)
    order = np.argsort(merged[:, 0], kind="stable")
    sids = merged[order, 0]
    labels = merged[order, 1]
    if len(sids) > 1 and np.any(sids[1:] == sids[:-1]):
        dup = int(sids[np.flatnonzero(sids[1:] == sids[:-1])[0]])
        raise ValueError(
            f"site id {dup} labeled on more than one rank; per-rank "
            f"labelings must partition the kept cells"
        )
    glab = ComponentLabeling(site_ids=sids, labels=labels)
    comp_vol = None
    if gathered_vols is not None:
        vols = np.concatenate(gathered_vols)[order]
        comp_vol = np.zeros(glab.num_components)
        np.add.at(comp_vol, labels, vols)
    return glab, comp_vol


def track_components_distributed(
    comm,
    labelings: dict[int, ComponentLabeling],
    min_overlap: int = 1,
    cell_volumes: dict[int, np.ndarray] | None = None,
    kernel: str = "flat",
) -> FeatureTree:
    """Feature tree over *per-rank* labelings (collective).

    Every rank passes its own local restriction of each step's labeling
    (globally consistent labels — e.g. the output of
    :func:`~repro.analysis.components.connected_components_distributed`
    restricted via :func:`local_labeling`) and receives the identical
    global :class:`FeatureTree`.  Per step, only the packed
    ``(site id, label)`` int64 rows (plus optional per-cell volumes) move
    through the existing tree gather; no rank ever gathers mesh geometry,
    and the root advances one :class:`FeatureTreeBuilder` exactly as the
    serial oracle would on the reassembled labelings.
    """
    steps = sorted(labelings)
    ref = comm.bcast(steps, root=0)
    if ref != steps:
        raise ValueError(
            f"rank {comm.rank} has steps {steps}, rank 0 has {ref}; all "
            f"ranks must track the same step sequence"
        )
    if not steps:
        raise ValueError("no labelings supplied")
    builder = (
        FeatureTreeBuilder(min_overlap=min_overlap, kernel=kernel)
        if comm.rank == 0
        else None
    )
    for step in steps:
        with observe.span(
            "tracking-gather", rank=comm.rank, cat="analysis", step=step
        ):
            glab, comp_vol = gather_step_rows(
                comm,
                labelings[step],
                cell_volumes=None
                if cell_volumes is None
                else cell_volumes[step],
            )
        if comm.rank == 0:
            builder.push(step, glab, volumes=comp_vol)
    tree = builder.tree() if comm.rank == 0 else None
    return comm.bcast(tree, root=0)


# ----------------------------------------------------------------------
# merger-tree on-disk format
# ----------------------------------------------------------------------
def _pack_tree_arrays(
    steps: list[int],
    events: list[FeatureEvent],
    tracks: list[FeatureTrack],
) -> dict[str, np.ndarray]:
    ev_kinds = np.array(
        [_EVENT_KINDS.index(e.kind) for e in events], dtype=np.int64
    )
    ev_steps = np.array(
        [
            (
                -1 if e.step_from is None else e.step_from,
                -1 if e.step_to is None else e.step_to,
            )
            for e in events
        ],
        dtype=np.int64,
    ).reshape(len(events), 2)
    ev_from_offsets = np.cumsum(
        [0] + [len(e.labels_from) for e in events], dtype=np.int64
    )
    ev_from = np.array(
        [l for e in events for l in e.labels_from], dtype=np.int64
    )
    ev_to_offsets = np.cumsum(
        [0] + [len(e.labels_to) for e in events], dtype=np.int64
    )
    ev_to = np.array([l for e in events for l in e.labels_to], dtype=np.int64)
    ev_shared = np.array([e.shared_cells for e in events], dtype=np.int64)

    tr_offsets = np.cumsum(
        [0] + [len(t.steps) for t in tracks], dtype=np.int64
    )
    tr_steps = np.array(
        [s for t in tracks for s in t.steps], dtype=np.int64
    )
    tr_labels = np.array(
        [l for t in tracks for l in t.labels], dtype=np.int64
    )
    tr_sizes = np.array([s for t in tracks for s in t.sizes], dtype=np.int64)
    tr_volumes = np.array(
        [v for t in tracks for v in t.volumes], dtype=np.float64
    )
    return {
        "steps": np.asarray(steps, dtype=np.int64),
        "event_kinds": ev_kinds,
        "event_steps": ev_steps,
        "event_from_offsets": ev_from_offsets,
        "event_from_labels": ev_from,
        "event_to_offsets": ev_to_offsets,
        "event_to_labels": ev_to,
        "event_shared": ev_shared,
        "track_offsets": tr_offsets,
        "track_steps": tr_steps,
        "track_labels": tr_labels,
        "track_sizes": tr_sizes,
        "track_volumes": tr_volumes,
    }


def _unpack_tree_arrays(
    arrays: dict[str, np.ndarray],
) -> tuple[list[int], list[FeatureEvent], list[FeatureTrack]]:
    steps = [int(s) for s in arrays["steps"]]
    events: list[FeatureEvent] = []
    ev_steps = np.asarray(arrays["event_steps"], dtype=np.int64).reshape(-1, 2)
    fo = arrays["event_from_offsets"]
    to = arrays["event_to_offsets"]
    for i, code in enumerate(arrays["event_kinds"]):
        sf, st = int(ev_steps[i, 0]), int(ev_steps[i, 1])
        events.append(
            FeatureEvent(
                kind=_EVENT_KINDS[int(code)],
                step_from=None if sf < 0 else sf,
                step_to=None if st < 0 else st,
                labels_from=tuple(
                    int(v)
                    for v in arrays["event_from_labels"][fo[i] : fo[i + 1]]
                ),
                labels_to=tuple(
                    int(v)
                    for v in arrays["event_to_labels"][to[i] : to[i + 1]]
                ),
                shared_cells=int(arrays["event_shared"][i]),
            )
        )
    tracks: list[FeatureTrack] = []
    off = arrays["track_offsets"]
    has_volumes = len(arrays["track_volumes"]) > 0
    for i in range(len(off) - 1):
        lo, hi = int(off[i]), int(off[i + 1])
        tracks.append(
            FeatureTrack(
                steps=[int(v) for v in arrays["track_steps"][lo:hi]],
                labels=[int(v) for v in arrays["track_labels"][lo:hi]],
                sizes=[int(v) for v in arrays["track_sizes"][lo:hi]],
                volumes=[
                    float(v) for v in arrays["track_volumes"][lo:hi]
                ]
                if has_volumes
                else [],
            )
        )
    return steps, events, tracks


@dataclass
class MergerTree:
    """Merger-tree output in its stable on-disk form (flat arrays).

    Per-track step/label/size/volume histories plus the event log, all as
    int64/f8 arrays addressed by offsets — the exact layout written to
    disk by :meth:`save` (a versioned ``.npz`` with a JSON ``meta``
    record), so a load reproduces the saved tree bit for bit.
    """

    arrays: dict[str, np.ndarray]

    @classmethod
    def from_tree(cls, tree: FeatureTree) -> "MergerTree":
        """Pack a :class:`FeatureTree` into the on-disk layout."""
        return cls(arrays=_pack_tree_arrays(tree.steps, tree.events, tree.tracks))

    def to_tree(self) -> FeatureTree:
        """Unpack back into the in-memory :class:`FeatureTree`."""
        steps, events, tracks = _unpack_tree_arrays(self.arrays)
        return FeatureTree(steps=steps, events=events, tracks=tracks)

    @property
    def num_tracks(self) -> int:
        return len(self.arrays["track_offsets"]) - 1

    @property
    def num_events(self) -> int:
        return len(self.arrays["event_kinds"])

    @property
    def steps(self) -> np.ndarray:
        return self.arrays["steps"]

    def counts(self) -> dict[str, int]:
        """Event counts by kind."""
        out: dict[str, int] = {}
        for code in self.arrays["event_kinds"]:
            kind = _EVENT_KINDS[int(code)]
            out[kind] = out.get(kind, 0) + 1
        return out

    def save(self, path: str) -> None:
        """Write the tree as a versioned ``.npz``, atomically."""
        meta = json.dumps(
            {"format": MERGER_TREE_FORMAT, "num_tracks": self.num_tracks}
        )
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as f:
                np.savez(f, meta=np.array(meta), **self.arrays)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    @classmethod
    def load(cls, path: str) -> "MergerTree":
        """Read a tree written by :meth:`save`, validating the format."""
        with np.load(path) as data:
            meta = json.loads(str(data["meta"]))
            if meta.get("format") != MERGER_TREE_FORMAT:
                raise ValueError(
                    f"{path}: unknown merger-tree format "
                    f"{meta.get('format')!r} (expected {MERGER_TREE_FORMAT})"
                )
            arrays = {
                k: np.array(data[k]) for k in data.files if k != "meta"
            }
        return cls(arrays=arrays)
