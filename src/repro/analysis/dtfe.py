"""Delaunay Tessellation Field Estimator (DTFE; Schaap 2007).

The paper's background (§II-A) grounds its tessellation approach in the
DTFE family: ZOBOV and the Watershed Void Finder both start from a DTFE
density reconstruction.  The estimator assigns each particle the density

    rho_i = (1 + d) * m_i / V_star(i) ,   d = 3 (space dimension),

where ``V_star(i)`` is the volume of the particle's *contiguous Voronoi
star* — the union of Delaunay tetrahedra incident on it — and then
interpolates linearly inside every Delaunay tetrahedron, producing a
volume-weighted, adaptive-resolution continuous field.

Two estimators are provided:

* :func:`dtfe_density` — per-particle densities from the Delaunay star;
* :func:`dtfe_grid` — the field sampled on a regular grid by
  barycentric interpolation inside each tetrahedron (vectorized over grid
  points via the Delaunay ``find_simplex`` walk).

A Voronoi-based variant (:func:`voronoi_density`) uses tess cell volumes
directly (``rho_i = m_i / V_cell(i)``), the estimator the paper's §V
proposes attaching to particle outputs.
"""

from __future__ import annotations

import numpy as np

from ..diy.bounds import Bounds, wrap_positions
from ..geometry.delaunay import delaunay

__all__ = ["dtfe_density", "dtfe_grid", "voronoi_density"]


def _padded_periodic(points: np.ndarray, domain: Bounds, pad: float):
    """Replicate boundary particles across periodic seams.

    Returns (all_points, origin_index) where ``origin_index[i]`` maps each
    padded point back to its source particle.
    """
    pts = np.asarray(points, dtype=float)
    lo, hi = domain.as_arrays()
    sizes = domain.sizes
    images = [pts]
    origins = [np.arange(len(pts))]
    shifts = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                if (dx, dy, dz) != (0, 0, 0):
                    shifts.append(np.array([dx, dy, dz], dtype=float) * sizes)
    for shift in shifts:
        shifted = pts + shift
        near = np.all((shifted >= lo - pad) & (shifted <= hi + pad), axis=1)
        if near.any():
            images.append(shifted[near])
            origins.append(np.flatnonzero(near))
    return np.concatenate(images), np.concatenate(origins)


def dtfe_density(
    points: np.ndarray,
    domain: Bounds | None = None,
    masses: np.ndarray | None = None,
    pad_fraction: float = 0.25,
) -> np.ndarray:
    """Per-particle DTFE density estimates.

    Parameters
    ----------
    points:
        ``(n, 3)`` particle positions.
    domain:
        Periodic domain; when given, boundary particles are replicated
        across the seams (padding ``pad_fraction`` of the box) so every
        real particle has a complete Delaunay star.  Without a domain,
        hull-boundary particles receive NaN (their star is incomplete).
    masses:
        Particle masses (default 1).

    Returns
    -------
    numpy.ndarray
        Density per input particle.
    """
    if pad_fraction <= 0:
        raise ValueError(f"pad_fraction must be > 0, got {pad_fraction}")
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {pts.shape}")
    n = len(pts)
    m = np.ones(n) if masses is None else np.asarray(masses, dtype=float)
    if len(m) != n:
        raise ValueError("masses length mismatch")

    if domain is not None:
        pad = pad_fraction * float(domain.sizes.min())
        all_pts, origin = _padded_periodic(wrap_positions(pts, domain), domain, pad)
    else:
        all_pts, origin = pts, np.arange(n)

    mesh = delaunay(all_pts)
    star = mesh.vertex_star_volumes()

    # Star volume of each real particle, taken from its primary image.
    rho = np.full(n, np.nan)
    primary = star[:n]
    with np.errstate(divide="ignore"):
        rho = np.where(primary > 0, 4.0 * m / primary, np.nan)

    if domain is None:
        # Hull points have open stars; mark them invalid.
        from scipy.spatial import ConvexHull

        hull_pts = set(ConvexHull(pts).vertices.tolist())
        rho[list(hull_pts)] = np.nan
    return rho


def dtfe_grid(
    points: np.ndarray,
    domain: Bounds,
    grid_size: int,
    masses: np.ndarray | None = None,
    pad_fraction: float = 0.25,
) -> np.ndarray:
    """DTFE field sampled on a ``grid_size^3`` mesh over ``domain``.

    Linear (barycentric) interpolation of the per-particle densities inside
    each Delaunay tetrahedron, fully vectorized: one ``find_simplex`` query
    locates all grid points, and the barycentric weights come from the
    stored affine transforms.  ``pad_fraction`` sets the 27-image periodic
    padding as a fraction of the shortest box side (dense late-time boxes
    can shrink it; must stay positive so seam tetrahedra close).

    The padded point set is triangulated **once**: the same
    ``scipy.spatial.Delaunay`` provides the point-location walk, and its
    ``simplices``/``neighbors`` arrays are rewrapped as a
    :class:`~repro.geometry.delaunay.DelaunayMesh` for the star-volume
    densities (the one-triangulation sharing contract, DESIGN.md §11).
    """
    from scipy.spatial import Delaunay as SciDelaunay

    from ..geometry.delaunay import DelaunayMesh

    if pad_fraction <= 0:
        raise ValueError(f"pad_fraction must be > 0, got {pad_fraction}")
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    m = np.ones(n) if masses is None else np.asarray(masses, dtype=float)
    if len(m) != n:
        raise ValueError("masses length mismatch")

    pad = pad_fraction * float(domain.sizes.min())
    all_pts, origin = _padded_periodic(wrap_positions(pts, domain), domain, pad)

    tri = SciDelaunay(all_pts)
    mesh = DelaunayMesh(
        points=all_pts,
        tetrahedra=tri.simplices.astype(np.int64),
        neighbors=tri.neighbors.astype(np.int64),
    )
    primary = mesh.vertex_star_volumes()[:n]
    with np.errstate(divide="ignore"):
        rho = np.where(primary > 0, 4.0 * m / primary, np.nan)
    rho_all = rho[origin]

    lo, _ = domain.as_arrays()
    axes = [
        lo[a] + (np.arange(grid_size) + 0.5) * domain.sizes[a] / grid_size
        for a in range(3)
    ]
    gx, gy, gz = np.meshgrid(*axes, indexing="ij")
    q = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])

    simplex = tri.find_simplex(q)
    if np.any(simplex < 0):
        raise RuntimeError(
            "grid point outside the padded triangulation; increase padding"
        )
    X = tri.transform[simplex]
    b = np.einsum("ijk,ik->ij", X[:, :3], q - X[:, 3])
    bary = np.concatenate([b, 1.0 - b.sum(axis=1, keepdims=True)], axis=1)
    corner_rho = rho_all[tri.simplices[simplex]]
    field = np.einsum("ij,ij->i", bary, corner_rho)
    return field.reshape(grid_size, grid_size, grid_size)


def voronoi_density(tess) -> tuple[np.ndarray, np.ndarray]:
    """Per-particle density from tess cell volumes (paper §V proposal).

    Returns ``(site_ids, densities)`` with ``rho = 1 / V_cell`` for every
    complete cell — the per-particle density annotation the paper suggests
    appending to particle outputs to guide later sampling and structure
    detection.
    """
    vols = tess.volumes()
    if np.any(vols <= 0):
        raise ValueError("tessellation contains nonpositive cell volumes")
    return tess.site_ids(), 1.0 / vols
