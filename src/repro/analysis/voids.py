"""Void identification: threshold + connected components + shape metrics.

The paper's headline application (Figures 1 and 9): culling cells below a
minimum volume threshold partitions the survivors into connected components
that correspond to cosmological voids — irregular, possibly concave unions
of convex cells.  A ~10% volume threshold is the paper's recommended
starting point; at the paper's small scale it reveals roughly 7-10 distinct
voids.

Two entry points: :func:`find_voids` runs over an assembled
:class:`~repro.core.tessellate.Tessellation` (postprocessing), while
:func:`find_voids_distributed` is the in situ path — each rank passes its
own block, labeling uses the one-collective boundary merge, and per-void
volumes accumulate through an elementwise allreduce; no rank ever holds
the global mesh.  Both accumulate volumes with ``searchsorted`` +
``np.add.at`` over the labels — no per-void Python summation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import observe
from ..core.data_model import VoronoiBlock
from ..core.tessellate import Tessellation
from ..diy.comm import Communicator
from .components import (
    ComponentLabeling,
    connected_components,
    connected_components_distributed,
)
from .minkowski import MinkowskiFunctionals, minkowski_functionals

__all__ = ["Void", "VoidCatalog", "find_voids", "find_voids_distributed",
           "volume_threshold_for_fraction"]


@dataclass(frozen=True)
class Void:
    """One void: a connected component of large cells."""

    label: int
    site_ids: np.ndarray
    volume: float
    minkowski: MinkowskiFunctionals | None = None

    @property
    def num_cells(self) -> int:
        return len(self.site_ids)


@dataclass
class VoidCatalog:
    """All voids found at a given volume threshold."""

    vmin: float
    voids: list[Void] = field(default_factory=list)

    @property
    def num_voids(self) -> int:
        return len(self.voids)

    def total_volume(self) -> float:
        """Combined volume of all voids."""
        return float(sum(v.volume for v in self.voids))

    def largest(self) -> Void:
        """The void with the greatest volume."""
        if not self.voids:
            raise ValueError("catalog is empty")
        return max(self.voids, key=lambda v: v.volume)

    def sizes(self) -> np.ndarray:
        """Cell counts per void, descending."""
        return np.sort([v.num_cells for v in self.voids])[::-1]


def volume_threshold_for_fraction(
    tess: Tessellation, fraction_of_range: float = 0.1
) -> float:
    """The paper's '10% volume threshold': ``vmin = lo + f * (hi - lo)``.

    Cells below this are the small, uninteresting majority; everything that
    contributes to voids survives (paper §IV-B).
    """
    v = tess.volumes()
    if len(v) == 0:
        raise ValueError("tessellation has no cells")
    lo, hi = float(v.min()), float(v.max())
    return lo + fraction_of_range * (hi - lo)


def _component_volumes(
    labeling: ComponentLabeling, site_ids: np.ndarray, volumes: np.ndarray
) -> np.ndarray:
    """Summed cell volume per component label (vectorized accumulation).

    ``site_ids``/``volumes`` are aligned cell arrays covering (at least)
    every labeled site; cells absent from the labeling are ignored, so the
    same kernel serves the global and the per-block (distributed) case.
    """
    ncomp = labeling.num_components
    comp_vol = np.zeros(ncomp)
    if ncomp == 0 or len(site_ids) == 0:
        return comp_vol
    pos = np.searchsorted(labeling.site_ids, site_ids)
    pos[pos == len(labeling.site_ids)] = len(labeling.site_ids) - 1
    present = labeling.site_ids[pos] == site_ids
    np.add.at(comp_vol, labeling.labels[pos[present]], volumes[present])
    return comp_vol


def _catalog_from_labeling(
    labeling: ComponentLabeling,
    comp_vol: np.ndarray,
    vmin: float,
    min_cells: int,
    mink: list[MinkowskiFunctionals] | None = None,
) -> VoidCatalog:
    """Assemble the catalog from labels + per-component volumes."""
    catalog = VoidCatalog(vmin=float(vmin))
    ncomp = labeling.num_components
    if ncomp == 0:
        return catalog
    # Group member site ids by label in one stable sort; site_ids are
    # ascending, so each group comes out ascending too.
    order = np.argsort(labeling.labels, kind="stable")
    bounds = np.searchsorted(
        labeling.labels[order], np.arange(ncomp + 1), side="left"
    )
    for label in range(ncomp):
        members = labeling.site_ids[order[bounds[label] : bounds[label + 1]]]
        if len(members) < min_cells:
            continue
        catalog.voids.append(
            Void(
                label=label,
                site_ids=members,
                volume=float(comp_vol[label]),
                minkowski=mink[label] if mink is not None else None,
            )
        )
    catalog.voids.sort(key=lambda v: v.volume, reverse=True)
    return catalog


def find_voids(
    tess: Tessellation,
    vmin: float | None = None,
    min_cells: int = 1,
    compute_minkowski: bool = False,
) -> VoidCatalog:
    """Find voids as connected components of cells with volume >= vmin.

    Parameters
    ----------
    tess:
        The tessellation (typically of an evolved snapshot).
    vmin:
        Minimum cell volume; defaults to the paper's 10%-of-range rule.
    min_cells:
        Discard components smaller than this many cells.
    compute_minkowski:
        Attach Minkowski functionals / shapefinders per void (costs one
        boundary-surface assembly pass).
    """
    if vmin is None:
        vmin = volume_threshold_for_fraction(tess)

    with observe.span("find-voids", cat="analysis"):
        labeling = connected_components(tess, vmin=vmin)
        comp_vol = _component_volumes(
            labeling,
            tess.site_ids().astype(np.int64, copy=False),
            tess.volumes(),
        )

        mink: list[MinkowskiFunctionals] | None = None
        if compute_minkowski:
            mink = minkowski_functionals(tess, labeling)

        return _catalog_from_labeling(
            labeling, comp_vol, vmin, min_cells, mink=mink
        )


def find_voids_distributed(
    comm: Communicator,
    block: VoronoiBlock,
    vmin: float | None = None,
    vmin_fraction: float = 0.1,
    min_cells: int = 1,
) -> VoidCatalog:
    """In situ void finding over one block per rank (collective).

    Every rank passes its own :class:`VoronoiBlock` and receives the same
    global :class:`VoidCatalog`: labeling uses the one-collective boundary
    merge of :func:`connected_components_distributed`, the ``vmin``
    fraction rule reduces the global volume range, and per-void volumes
    are an elementwise vector allreduce of each rank's local
    contributions.  No rank ever gathers the global tessellation.
    """
    with observe.span("find-voids-distributed", rank=comm.rank, cat="analysis"):
        if vmin is None:
            lo = comm.allreduce(
                float(block.volumes.min()) if block.num_cells else np.inf,
                op=min,
            )
            hi = comm.allreduce(
                float(block.volumes.max()) if block.num_cells else -np.inf,
                op=max,
            )
            if not np.isfinite(lo):
                raise ValueError("tessellation has no cells")
            vmin = lo + vmin_fraction * (hi - lo)

        labeling = connected_components_distributed(comm, block, vmin=vmin)
        local = _component_volumes(
            labeling,
            block.site_ids.astype(np.int64, copy=False),
            block.volumes,
        )
        comp_vol = comm.allreduce(local) if comm.size > 1 else local
        return _catalog_from_labeling(labeling, comp_vol, vmin, min_cells)
