"""Void identification: threshold + connected components + shape metrics.

The paper's headline application (Figures 1 and 9): culling cells below a
minimum volume threshold partitions the survivors into connected components
that correspond to cosmological voids — irregular, possibly concave unions
of convex cells.  A ~10% volume threshold is the paper's recommended
starting point; at the paper's small scale it reveals roughly 7-10 distinct
voids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.tessellate import Tessellation
from .components import connected_components
from .minkowski import MinkowskiFunctionals, minkowski_functionals

__all__ = ["Void", "VoidCatalog", "find_voids", "volume_threshold_for_fraction"]


@dataclass(frozen=True)
class Void:
    """One void: a connected component of large cells."""

    label: int
    site_ids: np.ndarray
    volume: float
    minkowski: MinkowskiFunctionals | None = None

    @property
    def num_cells(self) -> int:
        return len(self.site_ids)


@dataclass
class VoidCatalog:
    """All voids found at a given volume threshold."""

    vmin: float
    voids: list[Void] = field(default_factory=list)

    @property
    def num_voids(self) -> int:
        return len(self.voids)

    def total_volume(self) -> float:
        """Combined volume of all voids."""
        return float(sum(v.volume for v in self.voids))

    def largest(self) -> Void:
        """The void with the greatest volume."""
        if not self.voids:
            raise ValueError("catalog is empty")
        return max(self.voids, key=lambda v: v.volume)

    def sizes(self) -> np.ndarray:
        """Cell counts per void, descending."""
        return np.sort([v.num_cells for v in self.voids])[::-1]


def volume_threshold_for_fraction(
    tess: Tessellation, fraction_of_range: float = 0.1
) -> float:
    """The paper's '10% volume threshold': ``vmin = lo + f * (hi - lo)``.

    Cells below this are the small, uninteresting majority; everything that
    contributes to voids survives (paper §IV-B).
    """
    v = tess.volumes()
    if len(v) == 0:
        raise ValueError("tessellation has no cells")
    lo, hi = float(v.min()), float(v.max())
    return lo + fraction_of_range * (hi - lo)


def find_voids(
    tess: Tessellation,
    vmin: float | None = None,
    min_cells: int = 1,
    compute_minkowski: bool = False,
) -> VoidCatalog:
    """Find voids as connected components of cells with volume >= vmin.

    Parameters
    ----------
    tess:
        The tessellation (typically of an evolved snapshot).
    vmin:
        Minimum cell volume; defaults to the paper's 10%-of-range rule.
    min_cells:
        Discard components smaller than this many cells.
    compute_minkowski:
        Attach Minkowski functionals / shapefinders per void (costs one
        boundary-surface assembly pass).
    """
    if vmin is None:
        vmin = volume_threshold_for_fraction(tess)

    labeling = connected_components(tess, vmin=vmin)
    vol_by_id = dict(zip(tess.site_ids().tolist(), tess.volumes().tolist()))

    mink: list[MinkowskiFunctionals] | None = None
    if compute_minkowski:
        mink = minkowski_functionals(tess, labeling)

    catalog = VoidCatalog(vmin=float(vmin))
    for label in range(labeling.num_components):
        members = labeling.members(label)
        if len(members) < min_cells:
            continue
        volume = float(sum(vol_by_id[int(s)] for s in members))
        catalog.voids.append(
            Void(
                label=label,
                site_ids=members,
                volume=volume,
                minkowski=mink[label] if mink is not None else None,
            )
        )
    catalog.voids.sort(key=lambda v: v.volume, reverse=True)
    return catalog
