"""Compact encoding of the tessellation data model (paper §III-C2).

The paper closes its data-model discussion noting that ~93% of the output
is mesh connectivity and that a more efficient polyhedral-grid structure
(Muigg et al. 2011) is under investigation.  This module supplies that
optimization axis:

* **float32 geometry** — vertices, sites, volumes, areas stored at single
  precision (the paper's own budget assumed 32-bit floats);
* **delta-coded face neighbors** — neighbor particle ids stored as
  zig-zag-encoded deltas from the owning cell's site id, which are small
  integers for spatially local ids and compress into variable-width bytes;
* **varint face-vertex indices** — the block vertex pool is ordered by
  first use, so face vertex cycles reference recent indices and delta code
  tightly.

:func:`compact_encode` / :func:`compact_decode` round-trip a
:class:`~repro.core.data_model.VoronoiBlock` exactly in structure, with
geometry quantized to float32.  The ablation benchmark
(``benchmarks/bench_ablation_compact.py``) measures the bytes/particle
against the standard encoding and the paper's ~450/~100 figures.
"""

from __future__ import annotations

import io
import struct

import numpy as np

from ..diy.bounds import Bounds
from .data_model import VoronoiBlock

__all__ = ["compact_encode", "compact_decode"]

_MAGIC = b"TCMP"
_VERSION = 1


def _zigzag(values: np.ndarray) -> np.ndarray:
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def _unzigzag(values: np.ndarray) -> np.ndarray:
    v = np.asarray(values, dtype=np.uint64)
    return ((v >> np.uint64(1)) ^ (~(v & np.uint64(1)) + np.uint64(1))).astype(
        np.int64
    )


def _write_varints(out: io.BytesIO, values: np.ndarray) -> None:
    """LEB128 varint stream, vectorized (no per-value Python loop)."""
    vals = np.asarray(values, dtype=np.uint64)
    n = len(vals)
    if n == 0:
        out.write(struct.pack("<QQ", 0, 0))
        return
    # Bytes needed per value (1..10); at most 10 shift rounds.
    bytes_per = np.ones(n, dtype=np.int64)
    t = vals >> np.uint64(7)
    while t.any():
        bytes_per += t > 0
        t >>= np.uint64(7)
    total = int(bytes_per.sum())
    buf = np.zeros(total, dtype=np.uint8)
    pos = np.concatenate([[0], np.cumsum(bytes_per[:-1])])

    t = vals.copy()
    active = np.arange(n)
    k = 0
    while len(active):
        byte = (t & np.uint64(0x7F)).astype(np.uint8)
        t >>= np.uint64(7)
        more = t != 0
        byte[more] |= 0x80
        buf[pos[active] + k] = byte
        active = active[more]
        t = t[more]
        k += 1
    out.write(struct.pack("<QQ", n, total))
    out.write(buf.tobytes())


def _read_varints(buf: io.BytesIO) -> np.ndarray:
    n, total = struct.unpack("<QQ", buf.read(16))
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    raw = np.frombuffer(buf.read(total), dtype=np.uint8)
    is_last = (raw & 0x80) == 0
    # Value id of each byte: increments after every terminating byte.
    value_id = np.concatenate([[0], np.cumsum(is_last[:-1])]).astype(np.int64)
    starts = np.concatenate([[0], np.flatnonzero(is_last)[:-1] + 1])
    within = np.arange(total) - starts[value_id]
    values = np.zeros(n, dtype=np.uint64)
    np.add.at(
        values,
        value_id,
        (raw & np.uint8(0x7F)).astype(np.uint64)
        << (np.uint64(7) * within.astype(np.uint64)),
    )
    return values


def compact_encode(block: VoronoiBlock) -> bytes:
    """Encode a block with float32 geometry and delta/varint connectivity."""
    out = io.BytesIO()
    out.write(_MAGIC)
    out.write(struct.pack("<I", _VERSION))
    out.write(struct.pack("<q", block.gid))
    lo, hi = block.extents.as_arrays()
    out.write(np.concatenate([lo, hi]).astype("<f8").tobytes())

    for arr in (block.vertices, block.sites):
        out.write(struct.pack("<Q", len(arr)))
        out.write(np.ascontiguousarray(arr, dtype="<f4").tobytes())
    for arr in (block.volumes, block.areas):
        out.write(np.ascontiguousarray(arr, dtype="<f4").tobytes())

    out.write(struct.pack("<Q", block.num_cells))
    _write_varints(out, block.site_ids.astype(np.uint64))
    _write_varints(
        out, np.diff(block.cell_face_offsets).astype(np.uint64)
    )
    _write_varints(out, np.diff(block.face_offsets).astype(np.uint64))

    # Neighbor ids as zig-zag deltas from the owning cell's site id.
    cells_of_faces = np.repeat(
        np.arange(block.num_cells), np.diff(block.cell_face_offsets)
    )
    owner_ids = block.site_ids[cells_of_faces]
    _write_varints(out, _zigzag(block.face_neighbors - owner_ids))

    # Face vertex indices as zig-zag deltas within each face cycle.
    fv = block.face_vertices.astype(np.int64)
    deltas = fv.copy()
    starts = block.face_offsets[:-1]
    deltas[1:] = fv[1:] - fv[:-1]
    deltas[starts] = fv[starts]  # absolute at each cycle start
    _write_varints(out, _zigzag(deltas))
    return out.getvalue()


def compact_decode(blob: bytes) -> VoronoiBlock:
    """Inverse of :func:`compact_encode` (geometry at float32 precision)."""
    buf = io.BytesIO(blob)
    if buf.read(4) != _MAGIC:
        raise ValueError("not a compact tess block")
    (version,) = struct.unpack("<I", buf.read(4))
    if version != _VERSION:
        raise ValueError(f"unsupported compact version {version}")
    (gid,) = struct.unpack("<q", buf.read(8))
    ext = np.frombuffer(buf.read(48), dtype="<f8")
    extents = Bounds.from_arrays(ext[:3], ext[3:])

    (nv,) = struct.unpack("<Q", buf.read(8))
    vertices = (
        np.frombuffer(buf.read(12 * nv), dtype="<f4").reshape(nv, 3).astype(float)
    )
    (nc1,) = struct.unpack("<Q", buf.read(8))
    sites = np.frombuffer(buf.read(12 * nc1), dtype="<f4").reshape(nc1, 3).astype(float)
    volumes = np.frombuffer(buf.read(4 * nc1), dtype="<f4").astype(float)
    areas = np.frombuffer(buf.read(4 * nc1), dtype="<f4").astype(float)

    (ncells,) = struct.unpack("<Q", buf.read(8))
    site_ids = _read_varints(buf).astype(np.int64)
    cell_counts = _read_varints(buf).astype(np.int64)
    face_lengths = _read_varints(buf).astype(np.int64)
    cell_face_offsets = np.concatenate([[0], np.cumsum(cell_counts)]).astype(np.int32)
    face_offsets = np.concatenate([[0], np.cumsum(face_lengths)]).astype(np.int32)

    nb_deltas = _unzigzag(_read_varints(buf))
    cells_of_faces = np.repeat(np.arange(ncells), cell_counts)
    face_neighbors = (site_ids[cells_of_faces] + nb_deltas).astype(np.int64)

    fv_deltas = _unzigzag(_read_varints(buf))
    # Segment-wise prefix sums: each face cycle starts with an absolute
    # index, so its values are the global cumsum minus the cumsum just
    # before the cycle started.
    cum = np.cumsum(fv_deltas)
    starts = face_offsets[:-1].astype(np.int64)
    before = np.where(starts > 0, cum[np.maximum(starts - 1, 0)], 0)
    before[starts == 0] = 0
    face_vertices = (cum - np.repeat(before, face_lengths)).astype(np.int32)

    return VoronoiBlock(
        gid=int(gid),
        extents=extents,
        vertices=vertices,
        face_vertices=face_vertices,
        face_offsets=face_offsets,
        face_neighbors=face_neighbors,
        cell_face_offsets=cell_face_offsets,
        sites=sites,
        site_ids=site_ids,
        volumes=volumes,
        areas=areas,
    )
