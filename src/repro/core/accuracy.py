"""Serial-vs-parallel accuracy comparison (paper Table I methodology).

The paper measures parallel accuracy by tessellating the same particles
serially (all in one block) and in parallel with varying ghost sizes and
block counts, then counting parallel cells that *match* a serial cell.
A cell matches when the serial version contains a cell for the same site id
with the same geometry; volume agreement within a tight relative tolerance
is the practical criterion (an insufficient ghost zone either deletes the
cell — it looks incomplete — or distorts its geometry, which the volume
catches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tessellate import Tessellation

__all__ = ["MatchResult", "match_tessellations"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of one accuracy comparison (one Table I row)."""

    cells_reference: int
    cells_parallel: int
    cells_matching: int

    @property
    def accuracy_percent(self) -> float:
        """Matching cells as a percentage of the reference cell count."""
        if self.cells_reference == 0:
            return 100.0
        return 100.0 * self.cells_matching / self.cells_reference


def match_tessellations(
    parallel: Tessellation,
    reference: Tessellation,
    vol_rtol: float = 1e-6,
) -> MatchResult:
    """Count parallel cells matching the serial reference.

    Parameters
    ----------
    parallel, reference:
        The tessellation under test and the single-block reference.
    vol_rtol:
        Relative volume tolerance for a match.

    Notes
    -----
    Duplicate site ids inside one tessellation are an algorithmic error (the
    ownership rule guarantees uniqueness) and raise ``ValueError``.
    """
    ref_ids = reference.site_ids()
    ref_vols = reference.volumes()
    if len(np.unique(ref_ids)) != len(ref_ids):
        raise ValueError("reference tessellation contains duplicate cells")
    par_ids = parallel.site_ids()
    par_vols = parallel.volumes()
    if len(np.unique(par_ids)) != len(par_ids):
        raise ValueError("parallel tessellation contains duplicate cells")

    ref_map = dict(zip(ref_ids.tolist(), ref_vols.tolist()))
    matching = 0
    for sid, vol in zip(par_ids.tolist(), par_vols.tolist()):
        ref_vol = ref_map.get(sid)
        if ref_vol is None:
            continue
        if abs(vol - ref_vol) <= vol_rtol * max(abs(ref_vol), 1e-300):
            matching += 1
    return MatchResult(
        cells_reference=len(ref_ids),
        cells_parallel=len(par_ids),
        cells_matching=matching,
    )
