"""Volume-threshold culling (paper §III-C steps 3c and 3e).

Two passes, exactly as in the paper:

1. **Early conservative cull** — before spending a convex hull on a cell,
   discard it if it *provably* cannot reach the minimum volume.  By the
   isodiametric inequality the ball maximizes volume at fixed diameter, so
   any cell whose max pairwise vertex distance is below the diameter of the
   sphere of volume ``vmin`` has volume < ``vmin``.  The paper phrases the
   keep-side of this test: keep cells whose vertex separation exceeds the
   circumscribing-sphere diameter of the threshold volume.
2. **Exact cull** — after volumes are computed, enforce
   ``vmin <= volume <= vmax``.

The characteristic volume distribution (paper Figure 8) is heavily skewed
toward zero — 75% of cells fall in the smallest 10% of the volume range —
so the early cull removes most cells cheaply when a threshold is active.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sphere_diameter_for_volume",
    "early_cull_mask",
    "passes_early_cull",
    "exact_cull_mask",
]


def sphere_diameter_for_volume(volume: float) -> float:
    """Diameter of the sphere with the given volume."""
    if volume < 0:
        raise ValueError(f"volume must be nonnegative, got {volume}")
    return 2.0 * (3.0 * volume / (4.0 * np.pi)) ** (1.0 / 3.0)


def passes_early_cull(max_vertex_separation: float, vmin: float | None) -> bool:
    """True if a cell with this diameter could still have volume >= vmin."""
    if vmin is None or vmin <= 0.0:
        return True
    return max_vertex_separation >= sphere_diameter_for_volume(vmin)


def early_cull_mask(max_separations: np.ndarray, vmin: float | None) -> np.ndarray:
    """Vectorized :func:`passes_early_cull` over many cells."""
    seps = np.asarray(max_separations, dtype=float)
    if vmin is None or vmin <= 0.0:
        return np.ones(len(seps), dtype=bool)
    return seps >= sphere_diameter_for_volume(vmin)


def exact_cull_mask(
    volumes: np.ndarray, vmin: float | None = None, vmax: float | None = None
) -> np.ndarray:
    """Keep-mask for exact volumes within ``[vmin, vmax]``."""
    v = np.asarray(volumes, dtype=float)
    keep = np.ones(len(v), dtype=bool)
    if vmin is not None:
        keep &= v >= vmin
    if vmax is not None:
        keep &= v <= vmax
    return keep
