"""tess file I/O: parallel write, full or subset read (paper §III-C2).

One tessellation is one DIY block file (see :mod:`repro.diy.mpi_io`): every
rank writes its :class:`~repro.core.data_model.VoronoiBlock` payload at an
exclusive-scan offset, and the footer indexes blocks by gid.  Each block's
payload also records the global domain so a reader needs nothing else.
"""

from __future__ import annotations

import numpy as np

from ..diy.bounds import Bounds
from ..diy.comm import Communicator, run_parallel
from ..diy.decomposition import Decomposition
from ..diy.mpi_io import BlockFileReader, pack_arrays, unpack_arrays, write_blocks
from .data_model import VoronoiBlock
from .timing import TessTimings

__all__ = [
    "write_tessellation",
    "write_tessellation_serial",
    "read_tessellation",
    "read_blocks",
    "block_from_payload",
    "scan_block_extents",
]


def _payload(block: VoronoiBlock, domain: Bounds) -> bytes:
    arrays = block.to_arrays()
    lo, hi = domain.as_arrays()
    arrays["domain"] = np.stack([lo, hi])
    return pack_arrays(arrays)


def block_from_payload(
    blob: bytes | memoryview,
) -> tuple[VoronoiBlock, Bounds]:
    """Decode one tess payload (bytes or an mmap view) into its block.

    Returns ``(block, domain)`` — every payload records the global domain,
    so a reader serving a single block needs nothing else from the file.
    """
    arrays = unpack_arrays(blob)
    dom = arrays.pop("domain")
    return VoronoiBlock.from_arrays(arrays), Bounds.from_arrays(dom[0], dom[1])


_block_from_payload = block_from_payload


def scan_block_extents(
    reader: BlockFileReader,
) -> tuple[list[Bounds], Bounds]:
    """Per-gid block extents plus the domain, without decoding geometry.

    Reads only the tiny ``extents``/``domain`` arrays out of each payload
    through the reader's mmap view (pages for the multi-megabyte mesh
    arrays are never touched), which is how the catalog store maps a query
    region onto the blocks that intersect it.
    """
    extents: list[Bounds] = []
    domain: Bounds | None = None
    for gid in range(reader.nblocks):
        arrays = unpack_arrays(
            reader.read_block_view(gid, verify=False),
            only={"extents", "domain"},
        )
        ext = arrays["extents"]
        extents.append(Bounds.from_arrays(ext[0], ext[1]))
        if domain is None:
            dom = arrays["domain"]
            domain = Bounds.from_arrays(dom[0], dom[1])
    if domain is None:
        raise ValueError(f"{reader.path}: file contains no blocks")
    return extents, domain


def write_tessellation(
    path: str,
    comm: Communicator,
    block: VoronoiBlock,
    decomposition: Decomposition,
) -> int:
    """Collective write of one block per rank; returns total file bytes."""
    blob = _payload(block, decomposition.domain)
    return write_blocks(
        path, comm, [(block.gid, blob)], nblocks_total=decomposition.nblocks
    )


def write_tessellation_serial(path: str, tess) -> int:
    """Write an assembled :class:`Tessellation` from a single caller."""

    def worker(comm: Communicator) -> int:
        blobs = [(b.gid, _payload(b, tess.domain)) for b in tess.blocks]
        return write_blocks(path, comm, blobs, nblocks_total=len(tess.blocks))

    return run_parallel(1, worker)[0]


def read_blocks(
    path: str, gids: list[int] | None = None
) -> tuple[list[VoronoiBlock], Bounds]:
    """Read selected blocks (default: all) and the recorded domain."""
    with BlockFileReader(path) as reader:
        wanted = list(range(reader.nblocks)) if gids is None else list(gids)
        blocks: list[VoronoiBlock] = []
        domain: Bounds | None = None
        for gid in wanted:
            block, dom = _block_from_payload(reader.read_block(gid))
            blocks.append(block)
            domain = dom
    if domain is None:
        raise ValueError(f"{path}: no blocks requested")
    return blocks, domain


def read_tessellation(path: str):
    """Read a whole tess file back into a :class:`Tessellation`."""
    from .tessellate import Tessellation

    blocks, domain = read_blocks(path)
    return Tessellation(domain=domain, blocks=blocks, timings=TessTimings())
