"""The parallel Voronoi tessellation — tess's main algorithm (paper Fig. 5).

The pipeline, per block:

1. exchange particles within the ghost-zone distance with (periodic)
   neighbors, bidirectionally (:mod:`repro.core.ghost`);
2. compute local Voronoi cells over owned + ghost particles, for owned
   sites only (which *is* the paper's duplicate resolution: each process
   keeps the cells sited at its original particles);
3. delete incomplete cells, early-cull cells provably below the volume
   threshold, order vertices into faces and compute exact volume and
   surface area, cull exactly;
4. optionally write all blocks to a single file in parallel.

Two entry points: :func:`tessellate_distributed` is the SPMD primitive used
in situ (call it from inside a parallel region with live particles);
:func:`tessellate` is the standalone mode, which decomposes a global point
set, launches the parallel region, and gathers a :class:`Tessellation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .. import observe
from ..diy.bounds import Bounds
from ..diy.comm import Communicator, run_parallel
from ..diy.decomposition import Decomposition
from ..geometry.voronoi_cells import voronoi_cells_clip
from ..geometry.voronoi_delaunay import DelaunayVoronoi
from ..geometry.voronoi_flat import FlatVoronoi
from ..geometry.voronoi_qhull import voronoi_cells_qhull
from .cell import VoronoiCell
from .culling import early_cull_mask, exact_cull_mask, passes_early_cull
from .data_model import VoronoiBlock, connectivity_index_dtype
from .ghost import exchange_ghost_particles
from .timing import PhaseTimer, TessTimings

__all__ = ["tessellate_block", "tessellate_distributed", "tessellate", "Tessellation"]

#: per-cell oracle backends (cross-validation; see DESIGN.md §11)
_BACKENDS = {"clip": voronoi_cells_clip, "qhull": voronoi_cells_qhull}
#: flat whole-block engines; "delaunay" is the production default,
#: "qhull" (FlatVoronoi over scipy Voronoi) is its first-line oracle
_FLAT_ENGINES = {"delaunay": DelaunayVoronoi, "qhull": FlatVoronoi}


def _observe_geometry(fv, n_owned: int) -> None:
    """Surface geometry counters so traces attribute compute time to
    mesh size (geom.* metrics; merged across ranks by the bridge)."""
    reg = observe.registry()
    reg.counter("geom.tets").inc(fv.num_tets)
    reg.counter("geom.finite_ridges").inc(fv.num_ridges)
    reg.counter("geom.complete_cells").inc(int(fv.complete[:n_owned].sum()))
    if fv.degenerate_ridges_dropped:
        reg.counter("geom.degenerate_ridges_dropped").inc(
            fv.degenerate_ridges_dropped
        )
    if fv.used_fallback:
        reg.counter("geom.degenerate_fallbacks").inc()


def _tessellate_block_flat(
    owned_positions: np.ndarray,
    owned_ids: np.ndarray,
    ghost_positions: np.ndarray,
    ghost_ids: np.ndarray,
    container: Bounds,
    gid: int,
    extents: Bounds,
    vmin: float | None,
    vmax: float | None,
    backend: str = "delaunay",
    region=None,
    region_radius: float = 0.0,
) -> VoronoiBlock:
    """Vectorized block tessellation (production flat path).

    ``backend`` picks the flat geometry engine: ``"delaunay"`` (the
    Delaunay-direct production engine) or ``"qhull"`` (FlatVoronoi over
    ``scipy.spatial.Voronoi``, retained as the cross-validation oracle).
    Semantically identical to :func:`tessellate_block` + ``from_cells``:
    the block vertex pool comes directly from the engine's global pool,
    already deduplicated.

    ``region`` (with ``region_radius``, the ghost thickness) refines
    completeness certification for irregular blocks — see
    :func:`_region_complete_mask`.
    """
    n_owned = len(owned_positions)
    all_points = (
        np.concatenate([owned_positions, np.atleast_2d(ghost_positions)])
        if len(ghost_positions)
        else owned_positions
    )
    local_to_global = np.concatenate(
        [np.asarray(owned_ids, dtype=np.int64), np.asarray(ghost_ids, dtype=np.int64)]
    )
    fv = _FLAT_ENGINES[backend](all_points, container)
    return _block_from_flat(
        fv, n_owned, all_points, local_to_global, gid, extents, vmin, vmax,
        region=region, region_radius=region_radius,
    )


def _region_complete_mask(fv, n_owned: int, region, radius: float) -> np.ndarray:
    """Completeness of owned cells against an irregular populated region.

    A cell is certifiably complete only if every vertex of every one of
    its ridges lies inside the region actually populated with particles.
    For a regular block that region is the ghost-grown core box — the
    engine's ``container`` — but a balanced block owns a *union of coarse
    cells*, and its ghost exchange only fills that union grown by the
    ghost radius.  The container (the bounding box grown by the ghost) is
    necessarily larger, so the engine's certificate alone would keep
    cells whose geometry leaks into unpopulated corners of the box.  This
    mask re-certifies each owned cell against ``region.within(vertices,
    radius)`` — exactly the point set the ghost targeting guaranteed.
    """
    vin = region.within(fv.vertices, radius)
    num_ridges = len(fv.ridge_offsets) - 1
    ridge_in = np.ones(num_ridges, dtype=bool)
    if num_ridges:
        lengths = np.diff(fv.ridge_offsets).astype(np.int64)
        np.logical_and.at(
            ridge_in,
            np.repeat(np.arange(num_ridges), lengths),
            vin[fv.ridge_flat],
        )
    counts = np.diff(fv.cell_ridges_offsets[: n_owned + 1]).astype(np.int64)
    end = int(fv.cell_ridges_offsets[n_owned])
    cell_in = np.ones(n_owned, dtype=bool)
    if end:
        np.logical_and.at(
            cell_in,
            np.repeat(np.arange(n_owned), counts),
            ridge_in[fv.cell_ridges_flat[:end]],
        )
    return cell_in


def _block_from_flat(
    fv,
    n_owned: int,
    all_points: np.ndarray,
    local_to_global: np.ndarray,
    gid: int,
    extents: Bounds,
    vmin: float | None,
    vmax: float | None,
    region=None,
    region_radius: float = 0.0,
) -> VoronoiBlock:
    """Assemble a :class:`VoronoiBlock` from a flat geometry engine.

    Shared by the production path and the dual mode
    (:func:`repro.core.delaunay_mode.dual_distributed`), which builds the
    engine itself so the one triangulation can serve both outputs.
    """
    if observe.enabled():
        _observe_geometry(fv, n_owned)

    keep = fv.complete[:n_owned].copy()
    if region is not None and keep.any():
        keep &= _region_complete_mask(fv, n_owned, region, region_radius)
    if vmin is not None and keep.any():
        # Step 3c: conservative early cull on the max vertex separation
        # (isodiametric bound) before the exact threshold — any cell it
        # removes fails the exact cull too, so results are unchanged.
        sites = np.flatnonzero(keep)
        keep[sites] = early_cull_mask(
            fv.max_vertex_separations(sites), vmin
        )
    if vmin is not None:
        keep &= fv.volumes[:n_owned] >= vmin
    if vmax is not None:
        keep &= fv.volumes[:n_owned] <= vmax
    kept = np.flatnonzero(keep)
    if len(kept) == 0:
        return VoronoiBlock.from_cells(gid, extents, [])

    # Ridge ids around each kept cell, concatenated in cell order.
    counts = (
        fv.cell_ridges_offsets[kept + 1] - fv.cell_ridges_offsets[kept]
    ).astype(np.int64)
    gather = _segment_gather(fv.cell_ridges_offsets[kept], counts)
    rids = fv.cell_ridges_flat[gather]
    cell_of_face = np.repeat(kept, counts)

    # Face cycles: concatenate each ridge's ordered vertex cycle.
    face_lengths = (fv.ridge_offsets[rids + 1] - fv.ridge_offsets[rids]).astype(
        np.int64
    )
    vgather = _segment_gather(fv.ridge_offsets[rids], face_lengths)
    face_vertices_global = fv.ridge_flat[vgather]

    # Neighbor site across each face, lifted to global particle ids.
    pair = fv.ridge_sites[rids]
    other = np.where(pair[:, 0] == cell_of_face, pair[:, 1], pair[:, 0])
    face_neighbors = local_to_global[other]

    # Compact the vertex pool to the vertices actually used.  Connectivity
    # indices stay int32 while they fit and widen to int64 beyond 2**31
    # entries (silent wraparound otherwise — see connectivity_index_dtype).
    used = np.unique(face_vertices_global)
    idx_dtype = connectivity_index_dtype(
        max(len(face_vertices_global), len(used))
    )
    face_vertices = np.searchsorted(used, face_vertices_global).astype(idx_dtype)

    face_offsets = np.concatenate([[0], np.cumsum(face_lengths)]).astype(idx_dtype)
    cell_face_offsets = np.concatenate([[0], np.cumsum(counts)]).astype(idx_dtype)

    return VoronoiBlock(
        gid=gid,
        extents=extents,
        vertices=fv.vertices[used],
        face_vertices=face_vertices,
        face_offsets=face_offsets,
        face_neighbors=face_neighbors.astype(np.int64),
        cell_face_offsets=cell_face_offsets,
        sites=all_points[kept],
        site_ids=local_to_global[kept],
        volumes=fv.volumes[kept],
        areas=fv.areas[kept],
    )


def _segment_gather(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Indices gathering CSR segments ``[starts[i], starts[i]+lengths[i])``."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out_starts = np.concatenate([[0], np.cumsum(lengths[:-1])])
    return (
        np.repeat(starts, lengths)
        + np.arange(total)
        - np.repeat(out_starts, lengths)
    )


def tessellate_block(
    owned_positions: np.ndarray,
    owned_ids: np.ndarray,
    ghost_positions: np.ndarray,
    ghost_ids: np.ndarray,
    container: Bounds,
    backend: str = "clip",
    vmin: float | None = None,
    vmax: float | None = None,
) -> list[VoronoiCell]:
    """Local tessellation of one block (steps 2-3 of the pipeline).

    ``container`` is the block's ghost-grown bounds; cells that touch it are
    incomplete and deleted.  Returns complete cells within the volume
    thresholds, with *global* neighbor ids.
    """
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(_BACKENDS)}"
        )
    owned_positions = np.atleast_2d(np.asarray(owned_positions, dtype=float))
    n_owned = len(owned_positions)
    if n_owned == 0:
        return []
    all_points = (
        np.concatenate([owned_positions, np.atleast_2d(ghost_positions)])
        if len(ghost_positions)
        else owned_positions
    )
    local_to_global = np.concatenate(
        [np.asarray(owned_ids, dtype=np.int64), np.asarray(ghost_ids, dtype=np.int64)]
    )

    geoms = _BACKENDS[backend](all_points, container, sites=np.arange(n_owned))

    cells: list[VoronoiCell] = []
    for geom in geoms:
        if not geom.complete or geom.polyhedron is None:
            continue  # step 3b: delete incomplete cells
        # Step 3c: conservative early cull before the exact metrics.
        if not passes_early_cull(
            geom.polyhedron.max_pairwise_vertex_distance(), vmin
        ):
            continue
        cell = VoronoiCell.from_geometry(
            geom,
            site_position=all_points[geom.site],
            local_to_global=local_to_global,
            global_site_id=int(local_to_global[geom.site]),
        )
        cells.append(cell)

    # Step 3e: exact volume thresholds.
    if cells and (vmin is not None or vmax is not None):
        keep = exact_cull_mask(
            np.asarray([c.volume for c in cells]), vmin=vmin, vmax=vmax
        )
        cells = [c for c, k in zip(cells, keep) if k]
    return cells


def tessellate_distributed(
    comm: Communicator,
    decomposition: Decomposition,
    positions: np.ndarray,
    ids: np.ndarray,
    ghost: float,
    backend: str = "delaunay",
    vmin: float | None = None,
    vmax: float | None = None,
    output_path: str | None = None,
    gid: int | None = None,
) -> tuple[VoronoiBlock, TessTimings, int]:
    """SPMD tessellation over already-distributed particles (in situ mode).

    Every rank calls this collectively with its owned particles; the rank's
    block is ``gid`` (default: its rank, the one-block-per-process layout).
    ``backend`` selects the geometry engine: ``"delaunay"`` (production)
    or ``"qhull"`` for the flat whole-block path, ``"clip"`` for the
    per-cell oracle.  Returns ``(block, timings, output_bytes)``;
    ``output_bytes`` is 0 when no ``output_path`` is given.
    """
    gid = comm.rank if gid is None else gid
    block_def = decomposition.block(gid)
    region = decomposition.block_region(gid)
    if region is not None and backend not in _FLAT_ENGINES:
        raise ValueError(
            "balanced (irregular) decompositions require a flat geometry "
            f"engine ({sorted(_FLAT_ENGINES)}), not {backend!r}"
        )
    timer = PhaseTimer(rank=comm.rank)
    stats0 = comm.stats.snapshot()

    with timer.phase("exchange"):
        ghost_pos, ghost_ids = exchange_ghost_particles(
            decomposition, comm, gid, positions, ids, ghost
        )

    with timer.phase("compute"):
        if backend in _FLAT_ENGINES:
            # Production path: fully vectorized flat-array assembly.
            block = _tessellate_block_flat(
                np.atleast_2d(np.asarray(positions, dtype=float)),
                ids,
                ghost_pos,
                ghost_ids,
                container=block_def.ghost_bounds(ghost),
                gid=gid,
                extents=block_def.core,
                vmin=vmin,
                vmax=vmax,
                backend=backend,
                region=region,
                region_radius=ghost,
            )
        else:
            cells = tessellate_block(
                positions,
                ids,
                ghost_pos,
                ghost_ids,
                container=block_def.ghost_bounds(ghost),
                backend=backend,
                vmin=vmin,
                vmax=vmax,
            )
            block = VoronoiBlock.from_cells(gid, block_def.core, cells)

    output_bytes = 0
    # The output phase is always entered (a ~0 s span when nothing is
    # written) so the canonical exchange/compute/output triple appears on
    # every traced run, matching the paper's Table II breakdown.
    with timer.phase("output"):
        if output_path is not None:
            from .tess_io import write_tessellation

            output_bytes = write_tessellation(
                output_path,
                comm,
                block,
                decomposition,
            )
    return block, _timings_with_comm(timer, comm, stats0), output_bytes


def _timings_with_comm(timer: PhaseTimer, comm: Communicator, stats0) -> TessTimings:
    """Three-phase timings plus this rank's communication counters."""
    timings = timer.timings
    delta = comm.stats.since(stats0)
    timings.comm_wait = delta.blocked_s
    timings.msgs_sent = delta.msgs_sent
    timings.msgs_recv = delta.msgs_recv
    timings.bytes_sent = delta.bytes_sent
    timings.bytes_recv = delta.bytes_recv
    timings.shm_msgs_sent = delta.shm_msgs_sent
    timings.shm_bytes_sent = delta.shm_bytes_sent
    timings.msgs_dropped = delta.msgs_dropped
    timings.msgs_delayed = delta.msgs_delayed
    if observe.enabled():
        observe.absorb_tess_timings(timings, comm.rank)
    return timings


@dataclass
class Tessellation:
    """A complete tessellation: all blocks plus run metadata."""

    domain: Bounds
    blocks: list[VoronoiBlock]
    timings: TessTimings = field(default_factory=TessTimings)
    output_bytes: int = 0
    #: load-balance record of standalone runs with a ``balance_threshold``
    #: (before/after max-over-mean imbalance and whether a re-split fired)
    balance: dict | None = None

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def num_cells(self) -> int:
        """Total kept cells across blocks."""
        return sum(b.num_cells for b in self.blocks)

    def volumes(self) -> np.ndarray:
        """All cell volumes, concatenated across blocks."""
        return (
            np.concatenate([b.volumes for b in self.blocks])
            if self.blocks
            else np.empty(0)
        )

    def areas(self) -> np.ndarray:
        """All cell surface areas."""
        return (
            np.concatenate([b.areas for b in self.blocks])
            if self.blocks
            else np.empty(0)
        )

    def site_ids(self) -> np.ndarray:
        """All generating-particle ids."""
        return (
            np.concatenate([b.site_ids for b in self.blocks])
            if self.blocks
            else np.empty(0, dtype=np.int64)
        )

    def total_volume(self) -> float:
        """Sum of kept cell volumes."""
        return float(self.volumes().sum())

    def cells(self) -> Iterator[VoronoiCell]:
        """Iterate all cells (rebuilt per block)."""
        for b in self.blocks:
            yield from b.cells()

    def write(self, path: str) -> int:
        """Serial write of all blocks to one tess file; returns file size."""
        from .tess_io import write_tessellation_serial

        return write_tessellation_serial(path, self)


def tessellate(
    points: np.ndarray,
    domain: Bounds,
    nblocks: int = 1,
    ghost: float | None = None,
    ids: np.ndarray | None = None,
    periodic: bool = True,
    backend: str = "delaunay",
    vmin: float | None = None,
    vmax: float | None = None,
    output_path: str | None = None,
    nranks: int | None = None,
    exec_backend: str = "thread",
    balance_threshold: float | None = None,
    balance_grid: int = 16,
) -> Tessellation:
    """Standalone-mode parallel tessellation of a global point set.

    Decomposes ``domain`` into ``nblocks`` blocks over ``nranks`` ranks
    (default one block per rank, the paper's configuration; fewer ranks
    assign several blocks per rank round-robin, DIY-style), exchanges
    ghosts of thickness ``ghost`` (default: 4 mean inter-particle
    spacings, following the paper's accuracy study), tessellates, and
    gathers the result.

    ``exec_backend`` selects the SPMD substrate: ``"thread"`` (default;
    deterministic, GIL-bound) or ``"process"`` (one OS process per rank,
    true hardware parallelism — see :func:`repro.diy.comm.run_parallel`).
    Results are bit-identical between the two.  ``backend`` remains the
    *geometry* backend (delaunay/qhull/clip).

    ``balance_threshold`` enables dynamic load balancing: if the regular
    decomposition's max/mean per-block particle count exceeds it, the
    domain is re-split along a space-filling curve into equal-load blocks
    (:mod:`repro.balance`) before the parallel region launches.  The
    coarse load grid has ``balance_grid`` cells per axis.  Analysis
    results are identical either way; only the work distribution changes.

    Parameters mirror the distributed primitive; see
    :func:`tessellate_distributed`.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {pts.shape}")
    if not np.all(domain.contains(pts)):
        raise ValueError("all points must lie inside the domain (wrap first)")
    pid = (
        np.arange(len(pts), dtype=np.int64)
        if ids is None
        else np.asarray(ids, dtype=np.int64)
    )
    if len(pid) != len(pts):
        raise ValueError("ids length must match points")
    if ghost is None:
        spacing = (domain.volume / max(len(pts), 1)) ** (1.0 / 3.0)
        ghost = 4.0 * spacing

    decomp = Decomposition.regular(domain, nblocks, periodic=periodic)
    balance_info = None
    if balance_threshold is not None and nblocks > 1:
        from ..balance import (
            compute_cell_counts,
            load_imbalance,
            publish_imbalance,
            rebalance_decomposition,
        )

        counts = np.bincount(decomp.locate(pts), minlength=decomp.nblocks)
        before = load_imbalance(counts)
        publish_imbalance(before)
        balance_info = {
            "threshold": balance_threshold,
            "max_over_mean_before": before["max_over_mean"],
            "max_over_mean_after": before["max_over_mean"],
            "rebalanced": False,
        }
        if before["max_over_mean"] > balance_threshold:
            if backend not in _FLAT_ENGINES:
                raise ValueError(
                    "balance_threshold requires a flat geometry engine "
                    f"({sorted(_FLAT_ENGINES)}), not {backend!r}"
                )
            hist = compute_cell_counts(pts, domain, balance_grid)
            decomp = rebalance_decomposition(
                domain, hist, nblocks, periodic=periodic
            )
            after = load_imbalance(
                np.bincount(decomp.locate(pts), minlength=nblocks)
            )
            publish_imbalance(after, prefix="balance.post")
            balance_info["max_over_mean_after"] = after["max_over_mean"]
            balance_info["rebalanced"] = True
    nranks = nblocks if nranks is None else nranks
    # Module-level workers + plain-data arguments: the whole task pickles,
    # so the process backend can lease persistent pool workers instead of
    # falling back to a fresh fork per call.
    worker = _single_block_worker if nranks == nblocks else _multi_block_worker
    results = run_parallel(
        nranks,
        worker,
        decomp,
        nranks,
        pts,
        pid,
        ghost,
        backend,
        vmin,
        vmax,
        output_path,
        backend=exec_backend,
    )
    blocks = sorted(
        (b for local_blocks, _, _ in results for b in local_blocks),
        key=lambda b: b.gid,
    )
    timings = TessTimings()
    for _, t, _ in results:
        timings = timings.max_with(t)
    return Tessellation(
        domain=domain,
        blocks=blocks,
        timings=timings,
        output_bytes=results[0][2],
        balance=balance_info,
    )


def _single_block_worker(
    comm: Communicator,
    decomp: Decomposition,
    nranks: int,
    pts: np.ndarray,
    pid: np.ndarray,
    ghost: float,
    backend: str,
    vmin: float | None,
    vmax: float | None,
    output_path: str | None,
):
    """Rank worker for the one-block-per-rank configuration (picklable)."""
    mine = decomp.locate(pts) == comm.rank
    block, timings, nbytes = tessellate_distributed(
        comm,
        decomp,
        pts[mine],
        pid[mine],
        ghost=ghost,
        backend=backend,
        vmin=vmin,
        vmax=vmax,
        output_path=output_path,
    )
    return [block], timings, nbytes


def _multi_block_worker(
    comm: Communicator,
    decomp: Decomposition,
    nranks: int,
    pts: np.ndarray,
    pid: np.ndarray,
    ghost: float,
    backend: str,
    vmin: float | None,
    vmax: float | None,
    output_path: str | None,
):
    """Rank worker handling several blocks per rank (round-robin,
    DIY-style).  Module-level and argument-driven so the task pickles and
    the persistent rank pool can serve it."""
    from ..diy.exchange import Assignment
    from .ghost import exchange_ghost_particles_multi

    assignment = Assignment(decomp.nblocks, nranks)
    owners = decomp.locate(pts)
    timer = PhaseTimer(rank=comm.rank)
    stats0 = comm.stats.snapshot()
    gids = assignment.gids_of(comm.rank)
    particles_by_gid = {
        gid: (pts[owners == gid], pid[owners == gid]) for gid in gids
    }
    with timer.phase("exchange"):
        ghosts = exchange_ghost_particles_multi(
            decomp, comm, assignment, particles_by_gid, ghost
        )
    local_blocks = []
    with timer.phase("compute"):
        for gid in gids:
            own_pos, own_ids = particles_by_gid[gid]
            gpos, gid_ids = ghosts[gid]
            block_def = decomp.block(gid)
            region = decomp.block_region(gid)
            if backend in _FLAT_ENGINES:
                block = _tessellate_block_flat(
                    np.atleast_2d(own_pos), own_ids, gpos, gid_ids,
                    container=block_def.ghost_bounds(ghost),
                    gid=gid, extents=block_def.core,
                    vmin=vmin, vmax=vmax, backend=backend,
                    region=region, region_radius=ghost,
                )
            else:
                if region is not None:
                    raise ValueError(
                        "balanced (irregular) decompositions require a flat "
                        f"geometry engine, not {backend!r}"
                    )
                cells = tessellate_block(
                    own_pos, own_ids, gpos, gid_ids,
                    container=block_def.ghost_bounds(ghost),
                    backend=backend, vmin=vmin, vmax=vmax,
                )
                block = VoronoiBlock.from_cells(gid, block_def.core, cells)
            local_blocks.append(block)
    nbytes = 0
    with timer.phase("output"):
        if output_path is not None:
            from ..diy.mpi_io import write_blocks
            from .tess_io import _payload

            blobs = [(b.gid, _payload(b, decomp.domain)) for b in local_blocks]
            nbytes = write_blocks(
                output_path, comm, blobs, nblocks_total=decomp.nblocks
            )
    return local_blocks, _timings_with_comm(timer, comm, stats0), nbytes
