"""Parallel Delaunay tetrahedralization — tess's dual output mode.

Paper §I: "In principle, similar methods can be applied to other
computational geometry problems such as Delaunay tetrahedralizations and
convex hulls."  (The production tess library did grow exactly this mode.)
The parallel scheme is the same as for Voronoi cells, with the dual
certification rule:

* exchange ghost particles, compute the local Delaunay over owned+ghost;
* a tetrahedron is **complete** when its circumsphere lies entirely inside
  the region whose particles the block has seen — the empty-circumsphere
  property is then certified against all unseen particles (this is the
  dual of the Voronoi security radius: the circumcenter is the dual
  Voronoi vertex);
* duplicates across blocks are resolved by ownership: a tet belongs to
  the block whose core contains its circumcenter (wrapped periodically),
  the dual of "keep cells sited at original particles".

The result is a global, duplicate-free tet soup keyed by global particle
ids, suitable for DTFE-style interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..diy.bounds import Bounds, wrap_positions
from ..diy.comm import Communicator, run_parallel
from ..diy.decomposition import Decomposition
from ..geometry.delaunay import circumcenters, delaunay
from .ghost import exchange_ghost_particles

__all__ = ["DelaunayBlock", "DistributedDelaunay", "delaunay_distributed",
           "dual_distributed", "tessellate_delaunay"]


@dataclass
class DelaunayBlock:
    """One block's owned tetrahedra.

    ``tetrahedra`` holds global particle ids (4 per row); ``vertices`` maps
    those ids' positions as this block saw them (periodic images already
    translated into the block frame).
    """

    gid: int
    tetrahedra: np.ndarray  # (m, 4) global ids
    circumcenters: np.ndarray  # (m, 3)
    volumes: np.ndarray  # (m,)

    @property
    def num_tetrahedra(self) -> int:
        return len(self.tetrahedra)


@dataclass
class DistributedDelaunay:
    """All blocks of a parallel Delaunay tessellation."""

    domain: Bounds
    blocks: list[DelaunayBlock]

    @property
    def num_tetrahedra(self) -> int:
        return sum(b.num_tetrahedra for b in self.blocks)

    def total_volume(self) -> float:
        """Sum of tet volumes (equals the box volume when complete)."""
        return float(sum(b.volumes.sum() for b in self.blocks))

    def all_tetrahedra(self) -> np.ndarray:
        """Concatenated (m, 4) global-id tet array, sorted canonically."""
        if not self.blocks:
            return np.empty((0, 4), dtype=np.int64)
        tets = np.concatenate([b.tetrahedra for b in self.blocks])
        tets = np.sort(tets, axis=1)
        order = np.lexsort(tets.T[::-1])
        return tets[order]


def delaunay_distributed(
    comm: Communicator,
    decomposition: Decomposition,
    positions: np.ndarray,
    ids: np.ndarray,
    ghost: float,
    gid: int | None = None,
) -> DelaunayBlock:
    """SPMD Delaunay over distributed particles (collective).

    Each rank returns the tetrahedra its block owns (circumcenter in the
    block core after periodic wrapping), certified complete via the
    circumsphere-in-seen-region rule.
    """
    gid = comm.rank if gid is None else gid
    block_def = decomposition.block(gid)

    ghost_pos, ghost_ids = exchange_ghost_particles(
        decomposition, comm, gid, positions, ids, ghost
    )
    own = np.atleast_2d(np.asarray(positions, dtype=float))
    all_pos = np.concatenate([own, ghost_pos]) if len(ghost_pos) else own
    all_ids = np.concatenate(
        [np.asarray(ids, dtype=np.int64), ghost_ids]
    )
    if len(all_pos) < 5:
        return DelaunayBlock(
            gid=gid,
            tetrahedra=np.empty((0, 4), dtype=np.int64),
            circumcenters=np.empty((0, 3)),
            volumes=np.empty(0),
        )

    mesh = delaunay(all_pos)
    return _block_from_mesh(
        mesh, all_ids, decomposition, block_def, ghost, gid
    )


def _block_from_mesh(
    mesh,
    all_ids: np.ndarray,
    decomposition: Decomposition,
    block_def,
    ghost: float,
    gid: int,
    centers: np.ndarray | None = None,
) -> DelaunayBlock:
    """Certify, own, and dedup one block's tetrahedra from its local mesh.

    ``centers`` may pass precomputed circumcenters of ``mesh``'s tets (the
    dual-mode sharing path reuses the Voronoi engine's vertex pool);
    otherwise they are computed here.
    """
    # Periodic ghost images make many points exactly cospherical/coplanar;
    # Qhull then emits zero-volume slivers whose circumcenter system is
    # singular.  They can never be owned tets (a true periodic Delaunay
    # has no degenerate cells at generic sites) — drop them up front.
    vols_all = mesh.volumes()
    positive = vols_all[vols_all > 0]
    if len(positive) == 0:
        return DelaunayBlock(
            gid=gid,
            tetrahedra=np.empty((0, 4), dtype=np.int64),
            circumcenters=np.empty((0, 3)),
            volumes=np.empty(0),
        )
    vol_floor = 1e-9 * max(float(np.median(positive)), 1e-300)
    solid = vols_all > vol_floor
    mesh = type(mesh)(
        points=mesh.points,
        tetrahedra=mesh.tetrahedra[solid],
        neighbors=mesh.neighbors[solid],
    )
    if centers is None:
        centers = circumcenters(mesh)
    else:
        centers = centers[solid]
    d = centers - mesh.points[mesh.tetrahedra[:, 0]]
    radii = np.sqrt(np.einsum("ij,ij->i", d, d))

    # Certification: circumsphere inside the seen region (core + ghost).
    seen = block_def.ghost_bounds(ghost)
    lo, hi = seen.as_arrays()
    margin = np.minimum(centers - lo, hi - centers).min(axis=1)
    certified = radii <= margin + 1e-12

    # Ownership: circumcenter (periodically wrapped) inside the block core.
    wrapped = wrap_positions(centers, decomposition.domain)
    owned = decomposition.locate(wrapped) == gid

    keep = np.flatnonzero(certified & owned)
    tet_ids = all_ids[mesh.tetrahedra[keep]]
    # A block can see a tetrahedron twice — once directly and once as a
    # periodic image inside its ghost halo (both wrap-own here).  The
    # sorted global-id tuple is the canonical key (with cells far smaller
    # than the box, one id quadruple is one tetrahedron).
    canonical = np.sort(tet_ids, axis=1)
    _, first = np.unique(canonical, axis=0, return_index=True)
    first.sort()
    keep = keep[first]
    return DelaunayBlock(
        gid=gid,
        tetrahedra=all_ids[mesh.tetrahedra[keep]],
        circumcenters=centers[keep],
        volumes=mesh.volumes()[keep],
    )


def dual_distributed(
    comm: Communicator,
    decomposition: Decomposition,
    positions: np.ndarray,
    ids: np.ndarray,
    ghost: float,
    vmin: float | None = None,
    vmax: float | None = None,
    gid: int | None = None,
):
    """Both tessellation outputs from **one** triangulation per block.

    The Delaunay-direct Voronoi engine keeps its triangulation
    (:attr:`~repro.geometry.voronoi_delaunay.DelaunayVoronoi.mesh`) and
    its circumcenter pool, so the dual output mode costs one qhull call
    and one ghost exchange instead of two of each — the
    one-triangulation-per-block sharing contract (DESIGN.md §11).

    Returns ``(voronoi_block, delaunay_block)`` for this rank's block.
    """
    from ..geometry.voronoi_delaunay import DelaunayVoronoi
    from .tessellate import _block_from_flat

    gid = comm.rank if gid is None else gid
    block_def = decomposition.block(gid)

    ghost_pos, ghost_ids = exchange_ghost_particles(
        decomposition, comm, gid, positions, ids, ghost
    )
    own = np.atleast_2d(np.asarray(positions, dtype=float))
    all_pos = np.concatenate([own, ghost_pos]) if len(ghost_pos) else own
    all_ids = np.concatenate([np.asarray(ids, dtype=np.int64), ghost_ids])

    dv = DelaunayVoronoi(all_pos, block_def.ghost_bounds(ghost))
    vblock = _block_from_flat(
        dv, len(own), all_pos, all_ids, gid, block_def.core, vmin, vmax
    )
    if dv.num_tets == 0:
        dblock = DelaunayBlock(
            gid=gid,
            tetrahedra=np.empty((0, 4), dtype=np.int64),
            circumcenters=np.empty((0, 3)),
            volumes=np.empty(0),
        )
    else:
        dblock = _block_from_mesh(
            dv.mesh, all_ids, decomposition, block_def, ghost, gid,
            centers=dv.tet_circumcenters,
        )
    return vblock, dblock


def tessellate_delaunay(
    points: np.ndarray,
    domain: Bounds,
    nblocks: int = 1,
    ghost: float | None = None,
    ids: np.ndarray | None = None,
) -> DistributedDelaunay:
    """Standalone parallel Delaunay tetrahedralization of a periodic box.

    Mirrors :func:`repro.core.tessellate.tessellate` for the dual problem.
    With a sufficient ghost the owned tets exactly tile the box: their
    volumes sum to the domain volume and the tet set is independent of the
    block count.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {pts.shape}")
    if not np.all(domain.contains(pts)):
        raise ValueError("all points must lie inside the domain (wrap first)")
    pid = (
        np.arange(len(pts), dtype=np.int64)
        if ids is None
        else np.asarray(ids, dtype=np.int64)
    )
    if ghost is None:
        spacing = (domain.volume / max(len(pts), 1)) ** (1.0 / 3.0)
        ghost = 4.0 * spacing
    decomp = Decomposition.regular(domain, nblocks, periodic=True)

    def worker(comm: Communicator) -> DelaunayBlock:
        mine = decomp.locate(pts) == comm.rank
        return delaunay_distributed(
            comm, decomp, pts[mine], pid[mine], ghost=ghost
        )

    blocks = run_parallel(nblocks, worker)
    return DistributedDelaunay(domain=domain, blocks=blocks)
