"""Phase timing for the tessellation (feeds Table II and Figure 10).

The paper itemizes tessellation time into particle exchange, local Voronoi
computation, and output; :class:`TessTimings` carries the same breakdown.
Across ranks the convention (as in the paper's tables) is to report the
maximum over ranks per phase — the critical-path time.

Two clocks are recorded per phase:

* **wall** (``time.perf_counter``) — elapsed real time.  In this
  reproduction ranks are Python threads sharing the GIL, so wall time on
  one rank includes time spent waiting for other ranks' bytecode and is
  *not* comparable to a distributed-memory run.
* **cpu** (``time.thread_time``) — CPU time consumed by this rank's thread
  only.  This is the faithful stand-in for per-rank time on a real MPI
  machine and is what the scaling benchmarks (Figure 10, Table II) report.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["TessTimings", "PhaseTimer"]

_PHASES = ("exchange", "compute", "output")


@dataclass
class TessTimings:
    """Seconds spent in each tessellation phase (wall and per-thread CPU)."""

    exchange: float = 0.0
    compute: float = 0.0
    output: float = 0.0
    exchange_cpu: float = 0.0
    compute_cpu: float = 0.0
    output_cpu: float = 0.0

    @property
    def total(self) -> float:
        """Wall-clock sum of the phases."""
        return self.exchange + self.compute + self.output

    @property
    def total_cpu(self) -> float:
        """Per-thread CPU sum of the phases (the scaling metric)."""
        return self.exchange_cpu + self.compute_cpu + self.output_cpu

    def max_with(self, other: "TessTimings") -> "TessTimings":
        """Per-phase maximum (reduction op for the cross-rank critical path)."""
        return TessTimings(
            **{
                f: max(getattr(self, f), getattr(other, f))
                for f in (
                    "exchange",
                    "compute",
                    "output",
                    "exchange_cpu",
                    "compute_cpu",
                    "output_cpu",
                )
            }
        )

    def as_row(self) -> dict[str, float]:
        """Dict form used by the benchmark tables."""
        return {
            "exchange_s": self.exchange_cpu,
            "compute_s": self.compute_cpu,
            "output_s": self.output_cpu,
            "tess_total_s": self.total_cpu,
            "wall_total_s": self.total,
        }


class PhaseTimer:
    """Accumulates wall and thread-CPU time into named phases."""

    def __init__(self) -> None:
        self.timings = TessTimings()

    @contextmanager
    def phase(self, name: str):
        """Context manager adding elapsed time to phase ``name``."""
        if name not in _PHASES:
            raise ValueError(f"unknown phase {name!r}; choose from {_PHASES}")
        w0 = time.perf_counter()
        c0 = time.thread_time()
        try:
            yield
        finally:
            setattr(
                self.timings, name, getattr(self.timings, name) + time.perf_counter() - w0
            )
            cpu_field = f"{name}_cpu"
            setattr(
                self.timings,
                cpu_field,
                getattr(self.timings, cpu_field) + time.thread_time() - c0,
            )
