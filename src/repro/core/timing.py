"""Phase timing for the tessellation (feeds Table II and Figure 10).

The paper itemizes tessellation time into particle exchange, local Voronoi
computation, and output; :class:`TessTimings` carries the same breakdown.
Across ranks the convention (as in the paper's tables) is to report the
maximum over ranks per phase — the critical-path time.

Two clocks are recorded per phase:

* **wall** (``time.perf_counter``) — elapsed real time.  On the default
  thread backend ranks share the GIL, so wall time on one rank includes
  time spent waiting for other ranks' bytecode and is *not* comparable to
  a distributed-memory run; on the process backend
  (``run_parallel(..., backend="process")``) ranks are OS processes and
  wall time is the honest scaling metric (see
  ``benchmarks/bench_backend_scaling.py``).
* **cpu** (``time.thread_time``) — CPU time consumed by this rank's thread
  only.  This is the faithful stand-in for per-rank time on a real MPI
  machine and is what the GIL-bound scaling benchmarks (Figure 10,
  Table II) report.

:class:`PhaseTimer` accepts arbitrary phase names (callers time whatever
stages they define); :attr:`PhaseTimer.timings` projects the canonical
``exchange``/``compute``/``output`` triple into a :class:`TessTimings` for
the paper's tables, and :meth:`PhaseTimer.as_dict` exposes every phase.

:class:`TessTimings` additionally carries communication-observability
counters (time blocked in recv/barrier, messages and bytes moved) filled in
by :func:`repro.core.tessellate.tessellate_distributed` from the
communicator's :class:`~repro.diy.comm.CommStats`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, fields

from ..observe import trace as _trace

__all__ = ["TessTimings", "PhaseTimer"]

_CORE_PHASES = ("exchange", "compute", "output")


@dataclass
class TessTimings:
    """Seconds spent in each tessellation phase (wall and per-thread CPU),
    plus per-rank communication counters."""

    exchange: float = 0.0
    compute: float = 0.0
    output: float = 0.0
    exchange_cpu: float = 0.0
    compute_cpu: float = 0.0
    output_cpu: float = 0.0
    #: wall-clock seconds blocked in recv/barrier (from CommStats)
    comm_wait: float = 0.0
    msgs_sent: int = 0
    msgs_recv: int = 0
    bytes_sent: int = 0
    bytes_recv: int = 0
    #: messages/bytes that traveled via shared-memory segments (nonzero only
    #: on the process backend; confirms the zero-copy transport was used)
    shm_msgs_sent: int = 0
    shm_bytes_sent: int = 0
    #: user p2p messages dropped/delayed by fault injection (repro.faults);
    #: nonzero only when an injector was armed during the run
    msgs_dropped: int = 0
    msgs_delayed: int = 0

    @property
    def total(self) -> float:
        """Wall-clock sum of the phases."""
        return self.exchange + self.compute + self.output

    @property
    def total_cpu(self) -> float:
        """Per-thread CPU sum of the phases (the scaling metric)."""
        return self.exchange_cpu + self.compute_cpu + self.output_cpu

    def max_with(self, other: "TessTimings") -> "TessTimings":
        """Per-field maximum (reduction op for the cross-rank critical path;
        for the message/byte counters this reports the busiest rank)."""
        return TessTimings(
            **{
                f.name: max(getattr(self, f.name), getattr(other, f.name))
                for f in fields(self)
            }
        )

    def as_row(self) -> dict[str, float]:
        """Dict form used by the benchmark tables."""
        return {
            "exchange_s": self.exchange_cpu,
            "compute_s": self.compute_cpu,
            "output_s": self.output_cpu,
            "tess_total_s": self.total_cpu,
            "wall_total_s": self.total,
        }

    def as_row_extended(self) -> dict[str, float]:
        """:meth:`as_row` plus the communication-observability columns."""
        row = self.as_row()
        row.update(
            comm_wait_s=self.comm_wait,
            msgs_sent=self.msgs_sent,
            msgs_recv=self.msgs_recv,
            bytes_sent=self.bytes_sent,
            bytes_recv=self.bytes_recv,
            shm_msgs_sent=self.shm_msgs_sent,
            shm_bytes_sent=self.shm_bytes_sent,
            msgs_dropped=self.msgs_dropped,
            msgs_delayed=self.msgs_delayed,
        )
        return row


class PhaseTimer:
    """Accumulates wall and thread-CPU time into dynamically named phases.

    Phases are **reentrant**: re-entering a phase name from a nested
    context is safe — only the outermost entry accumulates, so the wall
    clock is never double-counted (a nested span is already covered by
    its enclosing one).  A timer instance belongs to one rank/thread;
    nesting is tracked per instance, not per thread.

    With ``rank`` set, every completed phase additionally records a span
    into the tracing subsystem (:mod:`repro.observe.trace`) when tracing
    is enabled — this is how the tessellation's exchange/compute/output
    phases appear on the run timeline.  Nested entries *are* recorded as
    spans (they nest naturally on the trace track).
    """

    def __init__(self, rank: int | None = None) -> None:
        self._wall: dict[str, float] = {}
        self._cpu: dict[str, float] = {}
        self._active: dict[str, int] = {}
        self._rank = rank

    @contextmanager
    def phase(self, name: str):
        """Context manager adding elapsed time to phase ``name``.

        Any nonempty string names a phase; the canonical
        ``exchange``/``compute``/``output`` triple feeds
        :attr:`timings`, everything else is reachable via :meth:`wall`,
        :meth:`cpu`, and :meth:`as_dict`."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"phase name must be a nonempty string, got {name!r}")
        depth = self._active.get(name, 0)
        self._active[name] = depth + 1
        w0 = time.perf_counter()
        c0 = time.thread_time()
        try:
            yield
        finally:
            w1 = time.perf_counter()
            c1 = time.thread_time()
            self._active[name] = depth
            if depth == 0:
                # Outermost entry only: nested same-name entries are
                # already inside this interval (the reentrancy fix).
                self._wall[name] = self._wall.get(name, 0.0) + w1 - w0
                self._cpu[name] = self._cpu.get(name, 0.0) + c1 - c0
            if self._rank is not None and _trace.enabled():
                _trace.record(
                    name, self._rank, w0, w1, cpu=c1 - c0, cat="phase"
                )

    def wall(self, name: str) -> float:
        """Accumulated wall-clock seconds for phase ``name`` (0 if unseen)."""
        return self._wall.get(name, 0.0)

    def cpu(self, name: str) -> float:
        """Accumulated thread-CPU seconds for phase ``name`` (0 if unseen)."""
        return self._cpu.get(name, 0.0)

    @property
    def phase_names(self) -> tuple[str, ...]:
        """Phases recorded so far, in first-use order."""
        return tuple(self._wall)

    @property
    def timings(self) -> TessTimings:
        """The canonical three-phase view (the paper's Table II breakdown)."""
        t = TessTimings()
        for name in _CORE_PHASES:
            setattr(t, name, self._wall.get(name, 0.0))
            setattr(t, f"{name}_cpu", self._cpu.get(name, 0.0))
        return t

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Every recorded phase: ``{name: {"wall": s, "cpu": s}}``."""
        return {
            name: {"wall": self._wall[name], "cpu": self._cpu.get(name, 0.0)}
            for name in self._wall
        }
