"""The per-cell record produced by the parallel tessellation.

A :class:`VoronoiCell` is the tessellation-level view of one Voronoi cell:
geometry from the backend plus *global* identity — the generating particle's
simulation-wide id and, per face, the global id of the neighboring particle
(or a negative wall code).  Global ids are what make cells from different
blocks stitchable: connected-component labeling and accuracy comparison both
key on them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.voronoi_cells import VoronoiCellGeometry

__all__ = ["VoronoiCell"]


@dataclass
class VoronoiCell:
    """One complete Voronoi cell owned by some block.

    Attributes
    ----------
    site_id:
        Global id of the generating particle.
    site:
        Position of the generating particle, shape ``(3,)``.
    vertices:
        Cell vertex coordinates, shape ``(nv, 3)``.
    faces:
        Ordered vertex-index cycles, one per face.
    neighbor_ids:
        Per-face global particle id of the site across that face (negative
        wall codes only appear on incomplete cells, which tess deletes
        before building blocks).
    volume, area:
        Exact cell volume and surface area.
    """

    site_id: int
    site: np.ndarray
    vertices: np.ndarray
    faces: list[np.ndarray]
    neighbor_ids: np.ndarray
    volume: float
    area: float

    @classmethod
    def from_geometry(
        cls,
        geom: VoronoiCellGeometry,
        site_position: np.ndarray,
        local_to_global: np.ndarray,
        global_site_id: int,
    ) -> "VoronoiCell":
        """Lift a backend cell to global ids.

        ``local_to_global`` maps indices into the block's local point array
        (owned + ghost) to global particle ids.
        """
        poly = geom.polyhedron
        if poly is None:
            raise ValueError("cannot build a VoronoiCell from a degenerate geometry")
        neighbor_ids = np.where(
            poly.face_ids >= 0,
            local_to_global[np.clip(poly.face_ids, 0, None)],
            poly.face_ids,
        ).astype(np.int64)
        return cls(
            site_id=int(global_site_id),
            site=np.asarray(site_position, dtype=float),
            vertices=poly.vertices.copy(),
            faces=[np.asarray(f, dtype=np.int64) for f in poly.faces],
            neighbor_ids=neighbor_ids,
            volume=poly.volume(),
            area=poly.surface_area(),
        )

    @property
    def num_faces(self) -> int:
        """Number of faces."""
        return len(self.faces)

    @property
    def num_vertices(self) -> int:
        """Number of distinct vertices."""
        return len(self.vertices)

    @property
    def density(self) -> float:
        """Unit-mass density: reciprocal of the cell volume (paper eq. 2
        context: all particles have unit mass)."""
        return 1.0 / self.volume if self.volume > 0 else np.inf

    def real_neighbors(self) -> np.ndarray:
        """Global ids of neighboring particles (wall codes filtered out)."""
        return self.neighbor_ids[self.neighbor_ids >= 0]
