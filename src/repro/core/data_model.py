"""Block-level unstructured-mesh data model (paper §III-C2).

Each process maintains one :class:`VoronoiBlock` for the cells it owns.
Following the paper's data model, *vertices are listed once per block* and
integer indices connect vertices into faces and faces into cells:

* ``vertices``            (nv, 3) float64 — deduplicated block vertex pool
* ``face_vertices``       flat int32 — concatenated face vertex cycles
* ``face_offsets``        (nfaces + 1,) int32 — slice bounds per face
* ``face_neighbors``      (nfaces,) int64 — global particle id across each face
* ``cell_face_offsets``   (ncells + 1,) int32 — slice bounds per cell
* ``sites``               (ncells, 3) float64 — original particle locations
* ``site_ids``            (ncells,) int64
* ``volumes``/``areas``   (ncells,) float64

The byte accounting (:meth:`VoronoiBlock.size_report`) reproduces the
paper's observation that roughly 7% of the output is floating-point
geometry and 93% mesh connectivity, and its ~450 B/particle (full) vs
~100 B/particle (culled) totals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..diy.bounds import Bounds
from .cell import VoronoiCell

__all__ = ["VoronoiBlock", "BlockSizeReport", "connectivity_index_dtype",
           "index_in_sorted", "isin_sorted"]

#: connectivity arrays stay int32 while their values fit; beyond this the
#: assembly must widen (silent wraparound otherwise)
_INT32_LIMIT = np.iinfo(np.int32).max


def connectivity_index_dtype(max_value: int) -> np.dtype:
    """Narrowest safe dtype for connectivity indices up to ``max_value``.

    int32 keeps the paper's ~93%-connectivity byte budget small for every
    realistic block; blocks whose vertex pool or face-vertex count reaches
    2**31 entries widen to int64 instead of silently overflowing.
    """
    return np.dtype(np.int64 if max_value > _INT32_LIMIT else np.int32)


def isin_sorted(values: np.ndarray, sorted_unique: np.ndarray) -> np.ndarray:
    """Membership mask of ``values`` in a *sorted, unique* int64 array.

    One ``searchsorted`` pass — the vectorized replacement for per-element
    ``x in set`` checks on the analysis hot paths.
    """
    values = np.asarray(values)
    if len(sorted_unique) == 0:
        return np.zeros(len(values), dtype=bool)
    pos = np.searchsorted(sorted_unique, values)
    pos[pos == len(sorted_unique)] = len(sorted_unique) - 1
    return sorted_unique[pos] == values


def index_in_sorted(
    values: np.ndarray, sorted_unique: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Positions of ``values`` in a sorted, unique int64 array.

    Returns ``(pos, mask)``: ``pos[k]`` is the index of ``values[k]`` in
    ``sorted_unique`` wherever ``mask[k]`` is True (0 otherwise, safe for
    fancy indexing).  Particle ids are usually dense, so when the id span
    is comparable to the array length an O(1) inverse lookup table
    replaces the binary search — this is the membership kernel under the
    component-labeling hot path.
    """
    values = np.asarray(values, dtype=np.int64)
    sorted_unique = np.asarray(sorted_unique, dtype=np.int64)
    k = len(sorted_unique)
    if k == 0 or len(values) == 0:
        return (
            np.zeros(len(values), dtype=np.int64),
            np.zeros(len(values), dtype=bool),
        )
    lo = int(sorted_unique[0])
    span = int(sorted_unique[-1]) - lo + 1
    if span <= max(4 * k, 1 << 16):
        table = np.full(span, -1, dtype=np.int64)
        table[sorted_unique - lo] = np.arange(k, dtype=np.int64)
        pos = table[np.clip(values - lo, 0, span - 1)]
        mask = (values >= lo) & (values < lo + span) & (pos >= 0)
        pos[~mask] = 0
        return pos, mask
    pos = np.searchsorted(sorted_unique, values)
    pos[pos == k] = k - 1
    mask = sorted_unique[pos] == values
    pos[~mask] = 0
    return pos, mask


@dataclass(frozen=True)
class BlockSizeReport:
    """Byte breakdown of one block's serialized mesh."""

    geometry_bytes: int
    connectivity_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.geometry_bytes + self.connectivity_bytes

    @property
    def geometry_fraction(self) -> float:
        """Fraction of bytes holding floating-point geometry."""
        return self.geometry_bytes / self.total_bytes if self.total_bytes else 0.0


@dataclass
class VoronoiBlock:
    """All Voronoi cells owned by one block, in shared-vertex array form."""

    gid: int
    extents: Bounds
    vertices: np.ndarray
    face_vertices: np.ndarray
    face_offsets: np.ndarray
    face_neighbors: np.ndarray
    cell_face_offsets: np.ndarray
    sites: np.ndarray
    site_ids: np.ndarray
    volumes: np.ndarray
    areas: np.ndarray

    # ------------------------------------------------------------------
    @classmethod
    def from_cells(
        cls,
        gid: int,
        extents: Bounds,
        cells: list[VoronoiCell],
        dedup_decimals: int = 9,
    ) -> "VoronoiBlock":
        """Assemble a block, deduplicating vertices shared between cells.

        Vertices are merged by rounded coordinates (``dedup_decimals``); in
        HACC runs each Voronoi vertex is shared by ~5 cells, which this
        recovers without needing exact topology from the backends.
        """
        vert_index: dict[tuple[float, ...], int] = {}
        vertices: list[np.ndarray] = []
        face_vertices: list[int] = []
        face_offsets = [0]
        face_neighbors: list[int] = []
        cell_face_offsets = [0]

        for cell in cells:
            local_map = np.empty(len(cell.vertices), dtype=np.int64)
            rounded = np.round(cell.vertices, dedup_decimals)
            for i, key_arr in enumerate(rounded):
                key = tuple(key_arr)
                j = vert_index.get(key)
                if j is None:
                    j = len(vertices)
                    vertices.append(cell.vertices[i])
                    vert_index[key] = j
                local_map[i] = j
            for face, nb in zip(cell.faces, cell.neighbor_ids):
                face_vertices.extend(int(v) for v in local_map[face])
                face_offsets.append(len(face_vertices))
                face_neighbors.append(int(nb))
            cell_face_offsets.append(len(face_neighbors))

        idx_dtype = connectivity_index_dtype(
            max(len(face_vertices), len(vertices))
        )
        return cls(
            gid=gid,
            extents=extents,
            vertices=(
                np.asarray(vertices) if vertices else np.empty((0, 3))
            ),
            face_vertices=np.asarray(face_vertices, dtype=idx_dtype),
            face_offsets=np.asarray(face_offsets, dtype=idx_dtype),
            face_neighbors=np.asarray(face_neighbors, dtype=np.int64),
            cell_face_offsets=np.asarray(cell_face_offsets, dtype=idx_dtype),
            sites=(
                np.asarray([c.site for c in cells])
                if cells
                else np.empty((0, 3))
            ),
            site_ids=np.asarray([c.site_id for c in cells], dtype=np.int64),
            volumes=np.asarray([c.volume for c in cells]),
            areas=np.asarray([c.area for c in cells]),
        )

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self.site_ids)

    @property
    def num_faces(self) -> int:
        return len(self.face_neighbors)

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    def faces_of_cell(self, i: int) -> list[np.ndarray]:
        """Vertex-index cycles of cell ``i`` (into the block vertex pool)."""
        out = []
        for f in range(self.cell_face_offsets[i], self.cell_face_offsets[i + 1]):
            out.append(
                self.face_vertices[self.face_offsets[f] : self.face_offsets[f + 1]]
            )
        return out

    def neighbors_of_cell(self, i: int) -> np.ndarray:
        """Global neighbor ids of cell ``i``, one per face."""
        return self.face_neighbors[
            self.cell_face_offsets[i] : self.cell_face_offsets[i + 1]
        ]

    def adjacency_edges(
        self, kept_ids: np.ndarray, return_indices: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Face-adjacency edges among kept cells, as an ``(n, 2)`` array.

        ``kept_ids`` must be a sorted, unique int64 array of global site
        ids.  Returns one ``(cell site id, neighbor site id)`` row per
        face whose owning cell and across-face neighbor are both kept —
        computed by masking the CSR ``face_neighbors``/``cell_face_offsets``
        connectivity directly, with no per-cell loop.  The neighbor may
        live in another block; edges are directed (each shared face inside
        the block yields both orientations across the two cells' rows).

        With ``return_indices=True`` the result is a ``(src, dst)`` pair
        of index arrays into ``kept_ids`` instead of site-id rows, saving
        the caller's re-``searchsorted`` on the labeling hot path.  The
        owner side is resolved per *cell* before the CSR expansion, so the
        only face-sized binary search is the neighbor lookup.
        """
        kept = np.asarray(kept_ids, dtype=np.int64)
        sids = self.site_ids.astype(np.int64, copy=False)
        if len(kept) == 0 or self.num_cells == 0:
            if return_indices:
                empty = np.empty(0, dtype=np.int64)
                return empty, empty.copy()
            return np.empty((0, 2), dtype=np.int64)
        cell_pos, cell_in = index_in_sorted(sids, kept)
        counts = np.diff(self.cell_face_offsets).astype(np.int64)
        valid = np.repeat(cell_in, counts)
        dst = self.face_neighbors.astype(np.int64, copy=False)
        valid &= dst >= 0
        dst_pos, dst_in = index_in_sorted(dst[valid], kept)
        src_idx = np.repeat(cell_pos, counts)[valid][dst_in]
        dst_idx = dst_pos[dst_in]
        if return_indices:
            return src_idx, dst_idx
        return np.stack([kept[src_idx], kept[dst_idx]], axis=1)

    def cells(self) -> list[VoronoiCell]:
        """Rebuild per-cell records (copies; for analysis convenience)."""
        out = []
        for i in range(self.num_cells):
            faces_global = self.faces_of_cell(i)
            used = (
                np.unique(np.concatenate(faces_global))
                if faces_global
                else np.empty(0, np.int64)
            )
            remap = {int(v): j for j, v in enumerate(used)}
            faces = [
                np.asarray([remap[int(v)] for v in f], dtype=np.int64)
                for f in faces_global
            ]
            out.append(
                VoronoiCell(
                    site_id=int(self.site_ids[i]),
                    site=self.sites[i].copy(),
                    vertices=self.vertices[used].copy(),
                    faces=faces,
                    neighbor_ids=self.neighbors_of_cell(i).copy(),
                    volume=float(self.volumes[i]),
                    area=float(self.areas[i]),
                )
            )
        return out

    # ------------------------------------------------------------------
    # statistics used by the paper's data-model discussion
    # ------------------------------------------------------------------
    def faces_per_cell(self) -> float:
        """Mean faces per cell (paper: ~15 in HACC runs)."""
        return self.num_faces / self.num_cells if self.num_cells else 0.0

    def vertices_per_face(self) -> float:
        """Mean vertices per face (paper: ~5)."""
        return len(self.face_vertices) / self.num_faces if self.num_faces else 0.0

    def vertex_sharing(self) -> float:
        """Mean number of faces referencing each pooled vertex."""
        return len(self.face_vertices) / self.num_vertices if self.num_vertices else 0.0

    def size_report(self) -> BlockSizeReport:
        """Byte breakdown: float geometry vs integer connectivity."""
        geometry = (
            self.vertices.nbytes
            + self.sites.nbytes
            + self.volumes.nbytes
            + self.areas.nbytes
        )
        connectivity = (
            self.face_vertices.nbytes
            + self.face_offsets.nbytes
            + self.face_neighbors.nbytes
            + self.cell_face_offsets.nbytes
            + self.site_ids.nbytes
        )
        return BlockSizeReport(geometry, connectivity)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten to named arrays for :func:`repro.diy.mpi_io.pack_arrays`."""
        lo, hi = self.extents.as_arrays()
        return {
            "gid": np.asarray([self.gid], dtype=np.int64),
            "extents": np.stack([lo, hi]),
            "vertices": self.vertices,
            "face_vertices": self.face_vertices,
            "face_offsets": self.face_offsets,
            "face_neighbors": self.face_neighbors,
            "cell_face_offsets": self.cell_face_offsets,
            "sites": self.sites,
            "site_ids": self.site_ids,
            "volumes": self.volumes,
            "areas": self.areas,
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "VoronoiBlock":
        """Inverse of :meth:`to_arrays`."""
        ext = arrays["extents"]
        return cls(
            gid=int(arrays["gid"][0]),
            extents=Bounds.from_arrays(ext[0], ext[1]),
            vertices=arrays["vertices"],
            face_vertices=arrays["face_vertices"],
            face_offsets=arrays["face_offsets"],
            face_neighbors=arrays["face_neighbors"],
            cell_face_offsets=arrays["cell_face_offsets"],
            sites=arrays["sites"],
            site_ids=arrays["site_ids"],
            volumes=arrays["volumes"],
            areas=arrays["areas"],
        )
