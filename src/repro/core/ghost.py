"""Bidirectional ghost-zone particle exchange (paper §III-C1, Figure 6).

The first step of the parallel tessellation: every block sends each of its
particles within the ghost distance of a block boundary to every neighbor
whose ghost region needs it — including periodic boundary neighbors, with
coordinates translated to the other side of the domain — and receives the
neighbors' boundary particles in return.  The exchange is *targeted*: a
particle goes only to neighbors whose (wrap-translated) block box lies
within the ghost distance, not to all 26.

Payloads carry positions together with global particle ids so received
ghosts remain identifiable (duplicate resolution and neighbor labeling both
need the ids).

Received ghosts are deduplicated and sorted deterministically, so the
exchange yields bit-identical results on both execution backends of
:func:`repro.diy.comm.run_parallel` (thread ranks and process ranks); on
the process backend the position/id arrays ride the zero-copy
shared-memory transport once they exceed the inline threshold.
"""

from __future__ import annotations

import numpy as np

from ..diy.comm import Communicator
from ..diy.decomposition import Decomposition
from ..diy.exchange import Assignment, NeighborExchanger

__all__ = ["exchange_ghost_particles", "exchange_ghost_particles_multi"]


def _translate_particles(
    payload: tuple[np.ndarray, np.ndarray], translation: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    positions, ids = payload
    return positions + translation, ids


def _dedup_ghosts(
    positions: np.ndarray, ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Drop duplicate ``(rounded position, id)`` rows, keeping first arrivals.

    The id column stays int64 throughout: building a float key (the old
    ``np.unique`` row trick) silently collapses distinct ids above 2**53,
    exactly the production id spaces where collisions corrupt the ghost
    layer.  A lexsort over the quantized coordinates plus the exact id
    brings duplicates adjacent; the stable sort keeps the earliest
    original occurrence of each duplicate run, matching the old
    first-occurrence semantics bit-for-bit for small ids.
    """
    if len(ids) == 0:
        return positions, ids
    key = np.round(positions, 9)
    order = np.lexsort((key[:, 2], key[:, 1], key[:, 0], ids))
    sorted_key = key[order]
    sorted_ids = ids[order]
    dup = np.concatenate([
        [False],
        (sorted_ids[1:] == sorted_ids[:-1])
        & np.all(sorted_key[1:] == sorted_key[:-1], axis=1),
    ])
    unique_idx = np.sort(order[~dup])
    return positions[unique_idx], ids[unique_idx]


def exchange_ghost_particles(
    decomposition: Decomposition,
    comm: Communicator,
    gid: int,
    positions: np.ndarray,
    ids: np.ndarray,
    ghost: float,
    assignment: Assignment | None = None,
    dense: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Exchange boundary particles and return this block's ghosts.

    Collective over ``comm``.  Each rank calls with its own block ``gid``
    and locally owned particles; the return value is the concatenated ghost
    particles received from neighbors, with periodic images already
    translated into this block's frame.

    Parameters
    ----------
    decomposition:
        Global block layout (periodic links included if the domain is
        periodic).
    comm, gid:
        This rank's communicator and block id (one block per rank here; use
        the underlying :class:`NeighborExchanger` directly for multi-block
        ranks).
    positions, ids:
        Owned particle positions ``(n, 3)`` and global ids ``(n,)``.
    ghost:
        Ghost-zone thickness, in the same distance units as the domain.
        The paper recommends at least twice the typical cell size.
    dense:
        Force the dense alltoall delivery path instead of the default
        sparse exchange (which only messages ranks with queued particles);
        results are identical — the knob exists for validation and the
        communication benchmarks.

    Returns
    -------
    (ghost_positions, ghost_ids)
        Particles from neighboring blocks within this block's grown bounds.
    """
    if ghost < 0:
        raise ValueError(f"ghost must be nonnegative, got {ghost}")
    pos = np.asarray(positions, dtype=float)
    pid = np.asarray(ids, dtype=np.int64)
    if len(pos) != len(pid):
        raise ValueError("positions and ids length mismatch")

    exchanger = NeighborExchanger(
        decomposition, comm, assignment=assignment, transform=_translate_particles
    )

    if ghost > 0 and len(pos) > 0:
        for link, mask in decomposition.neighbors_near_points(gid, pos, ghost):
            if mask.any():
                exchanger.enqueue(gid, link, (pos[mask].copy(), pid[mask].copy()))

    inbox = exchanger.exchange(dense=dense)

    received = inbox.get(gid, [])
    if not received:
        return np.empty((0, 3)), np.empty(0, dtype=np.int64)
    ghost_pos = np.concatenate([p for _, (p, _) in received])
    ghost_ids = np.concatenate([i for _, (_, i) in received])

    # A particle can arrive through several links (e.g. a corner particle
    # reaching the same neighbor directly and through a periodic seam maps
    # to distinct images, but the same image can be delivered twice when
    # grids are tiny).  Deduplicate on (id, translated position).
    return _dedup_ghosts(ghost_pos, ghost_ids)


def exchange_ghost_particles_multi(
    decomposition: Decomposition,
    comm: Communicator,
    assignment: Assignment,
    particles_by_gid: dict[int, tuple[np.ndarray, np.ndarray]],
    ghost: float,
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Ghost exchange for ranks owning several blocks (one collective).

    ``particles_by_gid`` maps each locally owned block gid to its
    ``(positions, ids)``; the return maps each local gid to its received
    ghosts.  Semantically identical to calling
    :func:`exchange_ghost_particles` once per block, but a single
    collective round, so ranks with different block counts stay in step —
    the configuration DIY supports when blocks outnumber processes.
    """
    if ghost < 0:
        raise ValueError(f"ghost must be nonnegative, got {ghost}")
    local_gids = set(assignment.gids_of(comm.rank))
    if set(particles_by_gid) != local_gids:
        raise ValueError(
            f"rank {comm.rank} owns blocks {sorted(local_gids)} but got "
            f"particles for {sorted(particles_by_gid)}"
        )

    exchanger = NeighborExchanger(
        decomposition, comm, assignment=assignment, transform=_translate_particles
    )
    if ghost > 0:
        for gid, (pos, pid) in particles_by_gid.items():
            pos = np.asarray(pos, dtype=float)
            pid = np.asarray(pid, dtype=np.int64)
            if len(pos) == 0:
                continue
            for link, mask in decomposition.neighbors_near_points(gid, pos, ghost):
                if mask.any():
                    exchanger.enqueue(
                        gid, link, (pos[mask].copy(), pid[mask].copy())
                    )
    inbox = exchanger.exchange()

    out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for gid in sorted(local_gids):
        received = inbox.get(gid, [])
        if not received:
            out[gid] = (np.empty((0, 3)), np.empty(0, dtype=np.int64))
            continue
        gpos = np.concatenate([p for _, (p, _) in received])
        gids_arr = np.concatenate([i for _, (_, i) in received])
        out[gid] = _dedup_ghosts(gpos, gids_arr)
    return out
