"""Distributed convex hull — the third §I computational-geometry mode.

Paper §I names convex hulls alongside Voronoi and Delaunay tessellations
as problems the same parallelization strategy serves; §II-B reviews the
parallel convex-hull literature (Miller & Stout; Dehne et al.'s
coarse-grained 3D algorithm with O(n log n) local computation and one
communication phase).  The implementation here is exactly that
coarse-grained scheme:

1. every rank computes the hull of its local points (serial Quickhull —
   the mature local kernel, as tess always does);
2. only the local hull's *vertices* — the candidate set, typically
   O(n^(2/3)) of the input — are gathered;
3. the root computes the hull of the candidates and broadcasts it.

Correctness rests on the classic observation that a global hull vertex
must be a vertex of its owning rank's local hull.
"""

from __future__ import annotations

import numpy as np

from ..diy.comm import Communicator, run_parallel
from ..geometry.convex_hull import Hull, convex_hull

__all__ = ["convex_hull_distributed", "convex_hull_parallel"]


def convex_hull_distributed(
    comm: Communicator,
    positions: np.ndarray,
    backend: str = "native",
) -> Hull:
    """SPMD convex hull over distributed points (collective).

    Every rank passes its local points and receives the global hull, whose
    ``points`` array holds the gathered candidate points (so ``vertices``
    and ``simplices`` index into it consistently on every rank).

    Ranks with fewer than 4 points (or degenerate local sets) contribute
    all their points as candidates — they may still host global vertices.
    """
    pts = np.atleast_2d(np.asarray(positions, dtype=float))
    if pts.size and pts.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {pts.shape}")

    if len(pts) >= 4:
        try:
            local = convex_hull(pts, backend=backend)
            candidates = pts[local.vertices]
        except ValueError:  # degenerate local cloud: keep everything
            candidates = pts
    else:
        candidates = pts

    gathered = comm.gather(candidates, root=0)
    if comm.rank == 0:
        allpts = np.concatenate([g for g in gathered if len(g)])
        if len(allpts) < 4:
            raise ValueError("fewer than 4 points in total; hull is degenerate")
        hull = convex_hull(allpts, backend=backend)
    else:
        hull = None
    return comm.bcast(hull, root=0)


def convex_hull_parallel(
    points: np.ndarray, nranks: int = 1, backend: str = "native"
) -> Hull:
    """Standalone driver: scatter points block-cyclically, hull in parallel."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {pts.shape}")

    def worker(comm: Communicator) -> Hull:
        mine = pts[comm.rank :: comm.size]
        return convex_hull_distributed(comm, mine, backend=backend)

    return run_parallel(nranks, worker)[0]
