"""Automatic ghost-size determination (paper §V future work).

The paper: "improvements could be made to the algorithm itself, such [as]
determining the ghost size automatically" — instead of trusting the user's
estimate of the largest cell size.  The algorithm here iterates to a
*certified* tessellation:

1. tessellate with the current ghost size;
2. **certify** each complete cell with the security-radius criterion: a
   cell whose farthest vertex lies at distance ``r`` from its site cannot
   be affected by any site farther than ``2 r``; therefore, if the ball of
   radius ``2 r`` around the site lies inside the region whose particles
   the block has seen (its core grown by the ghost), the cell is provably
   exact regardless of unseen particles;
3. if any owned cell is incomplete or uncertified, grow the ghost
   (doubling) and repeat — all ranks agree on the decision through an
   allreduce, so the exchange stays collective.

The result carries the final ghost size and iteration count, and every
returned cell is certified — the correctness guarantee the fixed-ghost
algorithm only achieves when the user guesses well (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..diy.bounds import Bounds
from ..diy.comm import Communicator, run_parallel
from ..diy.decomposition import Decomposition
from .data_model import VoronoiBlock
from .tessellate import Tessellation, tessellate_distributed

__all__ = ["AutoGhostResult", "certify_block", "tessellate_auto_distributed",
           "tessellate_auto"]


@dataclass
class AutoGhostResult:
    """Outcome of one rank's auto-ghost tessellation."""

    block: VoronoiBlock
    ghost: float
    iterations: int
    certified: bool


def certify_block(
    block: VoronoiBlock, seen_region: Bounds
) -> np.ndarray:
    """Security-radius certification mask for a block's cells.

    ``seen_region`` is the volume whose particles participated in the
    local computation (block core grown by the ghost).  A cell passes when
    the ball of radius ``2 * max|v - site|`` around its site is contained
    in ``seen_region``.
    """
    if block.num_cells == 0:
        return np.zeros(0, dtype=bool)
    ok = np.empty(block.num_cells, dtype=bool)
    lo, hi = seen_region.as_arrays()
    for i in range(block.num_cells):
        faces = block.faces_of_cell(i)
        used = np.unique(np.concatenate(faces)) if faces else np.empty(0, np.int64)
        site = block.sites[i]
        if len(used) == 0:
            ok[i] = False
            continue
        d = block.vertices[used] - site
        r = float(np.sqrt(np.einsum("ij,ij->i", d, d).max()))
        margin = float(np.minimum(site - lo, hi - site).min())
        ok[i] = 2.0 * r <= margin + 1e-12
    return ok


def tessellate_auto_distributed(
    comm: Communicator,
    decomposition: Decomposition,
    positions: np.ndarray,
    ids: np.ndarray,
    initial_ghost: float,
    max_iterations: int = 8,
    backend: str = "qhull",
    vmin: float | None = None,
    vmax: float | None = None,
    gid: int | None = None,
) -> AutoGhostResult:
    """SPMD auto-ghost tessellation (collective).

    Starts at ``initial_ghost`` and doubles until every rank's every owned
    cell is complete and certified, or ``max_iterations`` is exhausted
    (the result then reports ``certified=False``).

    Growing the ghost beyond half the domain cannot add information in a
    periodic box (every particle is already seen), so the ghost is capped
    there and the final iteration accepts the outcome.
    """
    if initial_ghost <= 0:
        raise ValueError(f"initial_ghost must be positive, got {initial_ghost}")
    gid = comm.rank if gid is None else gid
    block_def = decomposition.block(gid)
    ghost_cap = float(decomposition.domain.sizes.min()) / 2.0

    ghost = min(initial_ghost, ghost_cap)
    n_owned = len(positions)
    block: VoronoiBlock | None = None
    for iteration in range(1, max_iterations + 1):
        # No thresholds during certification: a culled cell cannot be
        # checked.  Thresholds apply on the final pass below.
        block, _, _ = tessellate_distributed(
            comm, decomposition, positions, ids, ghost=ghost,
            backend=backend, gid=gid,
        )
        certified = certify_block(block, block_def.ghost_bounds(ghost))
        all_present = block.num_cells == n_owned
        local_ok = bool(all_present and certified.all())
        at_cap = ghost >= ghost_cap - 1e-12
        global_ok = bool(comm.allreduce(local_ok, op=lambda a, b: a and b))
        if global_ok or at_cap:
            break
        ghost = min(ghost * 2.0, ghost_cap)
    else:  # pragma: no cover - loop always breaks or exhausts via range
        pass

    if vmin is not None or vmax is not None:
        keep = np.ones(block.num_cells, dtype=bool)
        if vmin is not None:
            keep &= block.volumes >= vmin
        if vmax is not None:
            keep &= block.volumes <= vmax
        block = _filter_block(block, keep)

    return AutoGhostResult(
        block=block, ghost=ghost, iterations=iteration, certified=global_ok
    )


def _filter_block(block: VoronoiBlock, keep: np.ndarray) -> VoronoiBlock:
    """Rebuild a block containing only the cells selected by ``keep``."""
    cells = block.cells()
    return VoronoiBlock.from_cells(
        block.gid,
        block.extents,
        [c for c, k in zip(cells, keep) if k],
    )


def tessellate_auto(
    points: np.ndarray,
    domain: Bounds,
    nblocks: int = 1,
    initial_ghost: float | None = None,
    ids: np.ndarray | None = None,
    periodic: bool = True,
    backend: str = "qhull",
    max_iterations: int = 8,
) -> tuple[Tessellation, float, int]:
    """Standalone auto-ghost tessellation.

    Returns ``(tessellation, final_ghost, iterations)``.  Starts from a
    deliberately small ghost (half the mean inter-particle spacing unless
    given) and lets the certification loop find the sufficient size.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    pid = (
        np.arange(len(pts), dtype=np.int64)
        if ids is None
        else np.asarray(ids, dtype=np.int64)
    )
    if not periodic:
        # Without periodicity a deleted boundary cell is indistinguishable
        # from an insufficient-ghost casualty (both are incomplete), so the
        # convergence test has no fixed point.
        raise NotImplementedError(
            "automatic ghost sizing requires a periodic domain"
        )
    if initial_ghost is None:
        spacing = (domain.volume / max(len(pts), 1)) ** (1.0 / 3.0)
        initial_ghost = 0.5 * spacing
    decomp = Decomposition.regular(domain, nblocks, periodic=periodic)

    def worker(comm: Communicator) -> AutoGhostResult:
        mine = decomp.locate(pts) == comm.rank
        return tessellate_auto_distributed(
            comm, decomp, pts[mine], pid[mine],
            initial_ghost=initial_ghost, max_iterations=max_iterations,
            backend=backend,
        )

    results = run_parallel(nblocks, worker)
    tess = Tessellation(domain=domain, blocks=[r.block for r in results])
    return tess, results[0].ghost, max(r.iterations for r in results)
