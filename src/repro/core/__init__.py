"""tess — the paper's contribution: a parallel Voronoi tessellation library.

Standalone mode::

    from repro.core import tessellate
    tess = tessellate(points, domain, nblocks=8, ghost=4.0)

In situ mode (inside an SPMD region, with distributed particles)::

    block, timings, nbytes = tessellate_distributed(
        comm, decomposition, positions, ids, ghost=4.0, output_path="t.tess")
"""

from .accuracy import MatchResult, match_tessellations
from .auto_ghost import (
    AutoGhostResult,
    certify_block,
    tessellate_auto,
    tessellate_auto_distributed,
)
from .cell import VoronoiCell
from .compact import compact_decode, compact_encode
from .culling import (
    early_cull_mask,
    exact_cull_mask,
    passes_early_cull,
    sphere_diameter_for_volume,
)
from .data_model import BlockSizeReport, VoronoiBlock
from .delaunay_mode import (
    DelaunayBlock,
    DistributedDelaunay,
    delaunay_distributed,
    tessellate_delaunay,
)
from .ghost import exchange_ghost_particles, exchange_ghost_particles_multi
from .hull_mode import convex_hull_distributed, convex_hull_parallel
from .tess_io import read_tessellation, write_tessellation
from .tessellate import (
    Tessellation,
    tessellate,
    tessellate_block,
    tessellate_distributed,
)
from .timing import PhaseTimer, TessTimings

__all__ = [
    "MatchResult",
    "match_tessellations",
    "AutoGhostResult",
    "certify_block",
    "tessellate_auto",
    "tessellate_auto_distributed",
    "VoronoiCell",
    "compact_encode",
    "compact_decode",
    "early_cull_mask",
    "exact_cull_mask",
    "passes_early_cull",
    "sphere_diameter_for_volume",
    "BlockSizeReport",
    "VoronoiBlock",
    "DelaunayBlock",
    "DistributedDelaunay",
    "delaunay_distributed",
    "tessellate_delaunay",
    "exchange_ghost_particles",
    "exchange_ghost_particles_multi",
    "convex_hull_distributed",
    "convex_hull_parallel",
    "read_tessellation",
    "write_tessellation",
    "Tessellation",
    "tessellate",
    "tessellate_block",
    "tessellate_distributed",
    "PhaseTimer",
    "TessTimings",
]
