"""repro — reproduction of *Meshing the Universe* (Peterka et al., SC 2012).

A production-quality Python implementation of the paper's full stack:

* :mod:`repro.diy` — data-parallel substrate (block decomposition, thread
  SPMD communicator, neighborhood exchange, blocked parallel I/O);
* :mod:`repro.hacc` — HACC-style particle-mesh N-body cosmology simulation;
* :mod:`repro.geometry` — computational-geometry kernels (convex hulls,
  Voronoi/Delaunay backends);
* :mod:`repro.core` — **tess**, the paper's contribution: parallel in situ
  Voronoi tessellation;
* :mod:`repro.analysis` — postprocessing: thresholding, connected components,
  Minkowski functionals, void and halo catalogs, summary statistics;
* :mod:`repro.insitu` — the in situ cosmology-tools framework coupling
  simulation and analysis.

Quickstart::

    import numpy as np
    from repro import Bounds, tessellate

    rng = np.random.default_rng(1)
    points = rng.uniform(0.0, 32.0, size=(2000, 3))
    tess = tessellate(points, Bounds.cube(32.0), nblocks=4, ghost=4.0)
    print(tess.num_cells, tess.total_volume())
"""

from __future__ import annotations

__version__ = "1.0.0"

from .diy import Bounds, run_parallel

__all__ = ["Bounds", "run_parallel", "__version__"]


def __getattr__(name: str):  # lazy public API to keep import light
    if name in {"tessellate", "tessellate_points", "Tessellation"}:
        from . import core

        return getattr(core, name)
    if name in {"HACCSimulation", "SimulationConfig"}:
        from . import hacc

        return getattr(hacc, name)
    if name in {"CosmologyToolsFramework", "FrameworkConfig"}:
        from . import insitu

        return getattr(insitu, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
