"""Deterministic, seeded fault injection for the SPMD runtime.

Long campaigns *will* lose ranks mid-run (HACC treats checkpoint/restart as
a first-class capability for exactly this reason), so the fault-tolerance
path needs to be exercisable on demand, deterministically, in tests and CI.
This module provides that harness: a :class:`FaultSpec` describes which
faults to inject, :func:`install` arms a process-wide :class:`FaultInjector`,
and the runtime consults it at three seams:

* **rank death** — :meth:`FaultInjector.on_step` is called by
  :meth:`repro.hacc.simulation.HACCSimulation.step` at the start of every
  step; when the (rank, step) matches the spec the rank dies, either by
  raising :class:`RankKilledError` (thread backend) or via ``os._exit``
  (process backend — a hard crash the parent must detect by exit-code
  polling, see :mod:`repro.diy.process_backend`);
* **message faults** — :meth:`FaultInjector.on_send` is consulted by
  :meth:`repro.diy.comm.Communicator.send` for user point-to-point traffic
  and can drop a message or delay it, driven by a per-rank seeded RNG so
  two runs with the same spec inject identical faults.  Internal collective
  traffic is never faulted (a dropped tree edge would deadlock every rank
  by construction, which is not an interesting failure mode to test);
* **torn checkpoint writes** — :meth:`FaultInjector.torn_write` is
  consulted by :func:`repro.diy.mpi_io.write_blocks`; when armed, the rank
  writes only a fraction of its first payload into the *temp* file and then
  crashes, simulating a rank lost mid-checkpoint.  The crash-consistent
  write protocol guarantees the previous checkpoint survives.

Both execution backends see the same injector: threads share the module
global, and forked rank processes inherit it.

The injector is process-global state; tests must pair :func:`install` with
:func:`clear` (``try/finally``) so faults never leak across tests.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "RankKilledError",
    "TornWriteError",
    "install",
    "clear",
    "active",
]


class RankKilledError(RuntimeError):
    """Raised (thread backend) when fault injection kills a rank."""


class TornWriteError(RuntimeError):
    """Raised (thread backend) when fault injection tears a block write."""


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of the faults to inject (all seeded).

    ``kill_rank``/``kill_step`` name the rank that dies and the 1-based
    step at whose *start* it dies (i.e. after ``kill_step - 1`` completed
    steps).  ``kill_mode`` is ``"raise"`` (thread backend: raise
    :class:`RankKilledError`) or ``"exit"`` (process backend: hard
    ``os._exit`` — no teardown, no result, exactly like a crashed node).

    ``drop_rate``/``delay_rate`` fault user point-to-point sends with the
    given probabilities (delayed messages sleep ``delay_s`` before
    delivery); draws come from a per-rank ``default_rng([seed, rank])``
    stream, so the same spec injects the same faults in the same order.

    ``tear_rank``/``tear_step`` arm a torn checkpoint write: during the
    collective block write that rank writes only ``tear_fraction`` of its
    first payload, then crashes per ``tear_mode`` (same values as
    ``kill_mode``).  ``tear_step=None`` tears the next write regardless of
    step (for tests that write checkpoints outside a stepping loop).
    """

    seed: int = 0
    kill_rank: int | None = None
    kill_step: int | None = None
    kill_mode: str = "raise"
    kill_exitcode: int = 87
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.0
    tear_rank: int | None = None
    tear_step: int | None = None
    tear_fraction: float = 0.5
    tear_mode: str = "raise"

    def __post_init__(self) -> None:
        for mode in (self.kill_mode, self.tear_mode):
            if mode not in ("raise", "exit"):
                raise ValueError(f"fault mode must be 'raise' or 'exit', got {mode!r}")
        if not 0.0 <= self.drop_rate + self.delay_rate <= 1.0:
            raise ValueError("drop_rate + delay_rate must be within [0, 1]")
        if not 0.0 <= self.tear_fraction < 1.0:
            raise ValueError(
                f"tear_fraction must be in [0, 1), got {self.tear_fraction}"
            )


class FaultInjector:
    """Runtime state for one armed :class:`FaultSpec` (see module docs)."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._lock = threading.Lock()
        self._rngs: dict[int, np.random.Generator] = {}
        self._steps: dict[int, int] = {}  # rank -> step currently executing
        #: messages dropped / delayed so far on this process (observability)
        self.dropped = 0
        self.delayed = 0

    # ------------------------------------------------------------------
    def _rng(self, rank: int) -> np.random.Generator:
        with self._lock:
            rng = self._rngs.get(rank)
            if rng is None:
                rng = self._rngs[rank] = np.random.default_rng([self.spec.seed, rank])
            return rng

    def _die(self, exc: BaseException, mode: str) -> None:
        if mode == "exit":
            # A hard crash: no Python teardown, no result pipe message.  The
            # parent must notice via exit-code polling, exactly as a real
            # cluster scheduler notices a dead node.
            os._exit(self.spec.kill_exitcode)
        raise exc

    # ------------------------------------------------------------------
    # seams consulted by the runtime
    # ------------------------------------------------------------------
    def on_step(self, rank: int, step: int) -> None:
        """Called at the start of executing 1-based ``step`` on ``rank``."""
        self._steps[rank] = step
        s = self.spec
        if s.kill_rank == rank and s.kill_step == step:
            self._die(
                RankKilledError(
                    f"fault injection killed rank {rank} at step {step}"
                ),
                s.kill_mode,
            )

    def on_send(self, rank: int, dest: int, tag: int) -> str | float | None:
        """Fault decision for a user p2p send.

        Returns ``"drop"``, a delay in seconds, or ``None`` (deliver
        normally).  Deterministic given the spec seed and the per-rank
        send order.
        """
        s = self.spec
        if s.drop_rate <= 0.0 and s.delay_rate <= 0.0:
            return None
        u = float(self._rng(rank).random())
        if u < s.drop_rate:
            self.dropped += 1
            return "drop"
        if u < s.drop_rate + s.delay_rate:
            self.delayed += 1
            return s.delay_s
        return None

    def torn_write(self, rank: int) -> float | None:
        """Fraction of the first payload to write before crashing, or None."""
        s = self.spec
        if s.tear_rank != rank:
            return None
        if s.tear_step is not None and self._steps.get(rank) != s.tear_step:
            return None
        return s.tear_fraction

    def crash_write(self, rank: int) -> None:
        """Crash the rank mid-write (called after the partial write)."""
        self._die(
            TornWriteError(
                f"fault injection tore a block write on rank {rank} "
                f"(step {self._steps.get(rank)})"
            ),
            self.spec.tear_mode,
        )


_active: FaultInjector | None = None


def install(spec: FaultSpec) -> FaultInjector:
    """Arm ``spec`` process-wide; returns the injector (pair with :func:`clear`)."""
    global _active
    _active = FaultInjector(spec)
    return _active


def clear() -> None:
    """Disarm fault injection."""
    global _active
    _active = None


def active() -> FaultInjector | None:
    """The armed injector, or ``None``."""
    return _active
