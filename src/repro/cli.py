"""Command-line interface: standalone tess runs and coupled simulations.

Mirrors the paper's two operating modes as console commands:

``repro-tess``
    Standalone mode — tessellate a point set from a ``.npy`` file (or a
    generated test cloud), write the blocked tess file, and print summary
    statistics.  The Python equivalent of Qhull's command-line programs
    wrapped in tess's parallel driver.

``repro-sim``
    In situ mode — run the HACC-style simulation with analysis tools from
    a JSON input deck (simulation parameters plus the framework's tools
    section, as in paper Figure 4's configuration file).

Both are also importable (:func:`tess_main`, :func:`sim_main`) and
installed as console scripts.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

__all__ = ["tess_main", "sim_main"]


def _build_tess_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-tess",
        description="Standalone parallel Voronoi tessellation (tess).",
    )
    p.add_argument("points", nargs="?", help=".npy file of (n, 3) positions")
    p.add_argument("--random", type=int, default=None, metavar="N",
                   help="generate N random points instead of reading a file")
    p.add_argument("--box", type=float, default=None,
                   help="periodic box side (default: max coordinate, rounded up)")
    p.add_argument("--blocks", type=int, default=1, help="block/rank count")
    p.add_argument("--ghost", type=float, default=None,
                   help="ghost-zone size (default: 4 mean spacings)")
    p.add_argument("--backend", choices=("delaunay", "qhull", "clip"),
                   default="delaunay",
                   help="geometry backend (delaunay: Delaunay-direct flat "
                        "engine; qhull: scipy Voronoi flat engine; clip: "
                        "per-cell halfspace clipping)")
    p.add_argument("--exec-backend", choices=("thread", "process"),
                   default="thread", dest="exec_backend",
                   help="SPMD execution backend: thread (default; GIL-bound) "
                        "or process (one OS process per rank)")
    p.add_argument("--ranks", type=int, default=None,
                   help="rank count (default: one rank per block)")
    p.add_argument("--vmin", type=float, default=None, help="minimum cell volume")
    p.add_argument("--vmax", type=float, default=None, help="maximum cell volume")
    p.add_argument("--balance-threshold", type=float, default=None,
                   metavar="R", dest="balance_threshold",
                   help="rebalance the decomposition along a space-filling "
                        "curve when the max/mean per-block particle count "
                        "exceeds R (e.g. 1.5); results are identical, only "
                        "the work distribution changes")
    p.add_argument("--no-periodic", action="store_true",
                   help="treat the domain as bounded (boundary cells deleted)")
    p.add_argument("--voids", action="store_true",
                   help="run the flat void finder on the result (threshold + "
                        "connected components) and print the catalog summary")
    p.add_argument("--voids-vmin-fraction", type=float, default=0.1,
                   metavar="F",
                   help="void threshold as a fraction of the cell-volume "
                        "range (default: 0.1, the paper's rule)")
    p.add_argument("-o", "--output", default=None, help="tess output file")
    p.add_argument("--seed", type=int, default=0, help="seed for --random")
    _add_observe_args(p)
    return p


def _add_observe_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="record per-rank spans and write a Chrome trace-event "
                        "JSON (load in Perfetto or chrome://tracing)")
    p.add_argument("--metrics", default=None, metavar="OUT.json",
                   help="write a machine-readable run-metrics report "
                        "(span summary, counters, memory high-water marks)")


def _observe_start(args) -> bool:
    """Enable tracing/metrics if either output flag was given."""
    if args.trace is None and args.metrics is None:
        return False
    from . import observe

    observe.enable()
    return True


def _observe_finish(args) -> None:
    """Write the requested trace/metrics files and print where they went."""
    from . import observe

    if args.trace is not None:
        nspans = observe.write_chrome_trace(args.trace)
        print(f"trace:         {args.trace} ({nspans} spans)")
    if args.metrics is not None:
        observe.write_metrics(args.metrics)
        print(f"metrics:       {args.metrics}")
    dropped = observe.dropped_events()
    if dropped:
        print(f"warning: trace ring buffers dropped {dropped} events "
              f"(raise capacity via repro.observe.enable)", file=sys.stderr)
    observe.disable()


def _release_pool(args) -> None:
    """Release persistent rank-pool workers at the end of a CLI run.

    The pool amortizes fork cost across the run's parallel regions; once
    the command is done its workers (and their shm segments) should not
    outlive the visible work.  An ``atexit`` hook would release them anyway
    — this just does it at the natural end of the run."""
    if getattr(args, "exec_backend", None) == "process":
        from .diy.process_backend import shutdown_pool

        shutdown_pool()


def tess_main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-tess``; returns a process exit code."""
    args = _build_tess_parser().parse_args(argv)

    from .diy.bounds import Bounds
    from .core import tessellate

    if (args.points is None) == (args.random is None):
        print("error: supply exactly one of POINTS or --random N", file=sys.stderr)
        return 2
    if args.random is not None:
        rng = np.random.default_rng(args.seed)
        box = args.box or 16.0
        points = rng.uniform(0.0, box, size=(args.random, 3))
    else:
        points = np.load(args.points)
        if points.ndim != 2 or points.shape[1] != 3:
            print(f"error: {args.points} is not an (n, 3) array", file=sys.stderr)
            return 2
        box = args.box or float(np.ceil(points.max() + 1e-9))

    observing = _observe_start(args)
    domain = Bounds.cube(box)
    tess = tessellate(
        points,
        domain,
        nblocks=args.blocks,
        ghost=args.ghost,
        periodic=not args.no_periodic,
        backend=args.backend,
        vmin=args.vmin,
        vmax=args.vmax,
        output_path=args.output,
        nranks=args.ranks,
        exec_backend=args.exec_backend,
        balance_threshold=args.balance_threshold,
    )
    vols = tess.volumes()
    print(f"points:        {len(points)}")
    print(f"blocks:        {tess.num_blocks}")
    if tess.balance is not None:
        b = tess.balance
        state = "rebalanced" if b["rebalanced"] else "kept static"
        print(f"balance:       {state}, max/mean "
              f"{b['max_over_mean_before']:.3g} -> "
              f"{b['max_over_mean_after']:.3g} "
              f"(threshold {b['threshold']:.3g})")
    print(f"cells kept:    {tess.num_cells}")
    if tess.num_cells:
        print(f"volume range:  [{vols.min():.6g}, {vols.max():.6g}]")
        print(f"total volume:  {tess.total_volume():.6g} (box {domain.volume:.6g})")
    t = tess.timings
    print(
        f"cpu seconds:   exchange {t.exchange_cpu:.4f}  compute "
        f"{t.compute_cpu:.3f}  output {t.output_cpu:.4f}"
    )
    if args.voids and tess.num_cells:
        from .analysis.voids import find_voids, volume_threshold_for_fraction

        vmin = volume_threshold_for_fraction(tess, args.voids_vmin_fraction)
        catalog = find_voids(tess, vmin=vmin)
        top = ", ".join(f"{v.volume:.4g}" for v in catalog.voids[:3])
        print(f"voids:         {catalog.num_voids} at vmin={catalog.vmin:.6g}"
              + (f" (largest volumes: {top})" if catalog.num_voids else ""))
    if args.output:
        print(f"wrote:         {args.output} ({tess.output_bytes} bytes)")
    if observing:
        _observe_finish(args)
    _release_pool(args)
    return 0


def _build_sim_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-sim",
        description="Run the N-body simulation with in situ analysis tools.",
    )
    p.add_argument("deck", help="JSON input deck (simulation + tools sections)")
    p.add_argument("--ranks", type=int, default=1, help="rank count")
    p.add_argument("--exec-backend", choices=("thread", "process"),
                   default="thread", dest="exec_backend",
                   help="SPMD execution backend: thread (default; GIL-bound) "
                        "or process (one OS process per rank)")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="write a crash-consistent checkpoint every N steps "
                        "(0 disables checkpointing)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="checkpoint directory (default: <deck>.ckpts)")
    p.add_argument("--resume", action="store_true",
                   help="restart from the newest valid checkpoint in the "
                        "checkpoint directory, skipping completed analysis")
    p.add_argument("--balance-threshold", type=float, default=None,
                   metavar="R", dest="balance_threshold",
                   help="dynamic load balancing: re-split the domain along "
                        "a space-filling curve whenever the max/mean "
                        "per-rank particle count exceeds R after migration "
                        "(overrides the deck's balance_threshold)")
    p.add_argument("--fault-kill", default=None, metavar="RANK:STEP",
                   help="fault injection: kill RANK when it enters STEP "
                        "(process exit under --exec-backend process, raised "
                        "exception under thread)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the fault-injection RNG")
    _add_observe_args(p)
    return p


def sim_main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-sim``; returns a process exit code."""
    args = _build_sim_parser().parse_args(argv)

    from .hacc import SimulationConfig
    from .insitu import run_simulation_with_tools

    with open(args.deck) as f:
        deck = json.load(f)
    sim_spec = deck.get("simulation", {})
    tools_spec = {"tools": deck.get("tools", [])}
    if not tools_spec["tools"]:
        print("error: deck has no 'tools' section", file=sys.stderr)
        return 2

    fields = SimulationConfig.__dataclass_fields__  # type: ignore[attr-defined]
    known = {f.name for f in fields.values()}
    extra = set(sim_spec) - known
    if extra:
        print(f"error: unknown simulation keys {sorted(extra)}", file=sys.stderr)
        return 2
    cfg = SimulationConfig(**sim_spec)

    ckpt_dir = args.checkpoint_dir
    if ckpt_dir is None and (args.checkpoint_every > 0 or args.resume):
        ckpt_dir = args.deck + ".ckpts"

    if args.fault_kill is not None:
        from . import faults

        try:
            rank_s, step_s = args.fault_kill.split(":")
            kill_rank, kill_step = int(rank_s), int(step_s)
        except ValueError:
            print("error: --fault-kill expects RANK:STEP", file=sys.stderr)
            return 2
        faults.install(faults.FaultSpec(
            seed=args.fault_seed,
            kill_rank=kill_rank,
            kill_step=kill_step,
            kill_mode="exit" if args.exec_backend == "process" else "raise",
        ))

    observing = _observe_start(args)
    print(
        f"simulating {cfg.np_side}^3 particles, {cfg.nsteps} steps, "
        f"{args.ranks} rank(s)..."
    )
    try:
        results = run_simulation_with_tools(
            cfg, tools_spec, nranks=args.ranks, backend=args.exec_backend,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            balance_threshold=args.balance_threshold,
        )
    except Exception as exc:  # noqa: BLE001 - report the crash, exit nonzero
        print(f"error: simulation failed: {exc}", file=sys.stderr)
        if ckpt_dir is not None:
            print(f"rerun with --resume to restart from {ckpt_dir}",
                  file=sys.stderr)
        return 1
    finally:
        if args.fault_kill is not None:
            from . import faults

            faults.clear()
    if results.resumed_step >= 0:
        print(f"resumed from checkpoint at step {results.resumed_step}")
    if results.rebalances:
        print(f"rebalanced domain {results.rebalances} time(s)")
    for tool, per_step in results.items():
        for step, result in sorted(per_step.items()):
            print(f"[{tool} @ step {step}] {_describe(result)}")
    if observing:
        _observe_finish(args)
    _release_pool(args)
    return 0


def _describe(result) -> str:
    import numpy as np

    from .analysis.halos import HaloCatalog
    from .analysis.statistics import Histogram
    from .analysis.tracking import MergerTree
    from .analysis.voids import VoidCatalog
    from .core.tessellate import Tessellation

    if isinstance(result, MergerTree):
        counts = result.counts()
        events = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return (
            f"merger tree: {result.num_tracks} tracks over "
            f"{len(result.steps)} steps ({events or 'no events'})"
        )
    if isinstance(result, np.ndarray):
        finite = result[np.isfinite(result)]
        lo = f"{finite.min():.4g}" if finite.size else "nan"
        hi = f"{finite.max():.4g}" if finite.size else "nan"
        return f"grid {'x'.join(str(s) for s in result.shape)} range [{lo}, {hi}]"
    if isinstance(result, Tessellation):
        return f"{result.num_cells} cells, total volume {result.total_volume():.4g}"
    if isinstance(result, HaloCatalog):
        masses = result.masses()
        top = masses[:3].tolist() if result.num_halos else []
        return f"{result.num_halos} halos, largest {top}"
    if isinstance(result, VoidCatalog):
        return f"{result.num_voids} voids at vmin={result.vmin:.4g}"
    if isinstance(result, Histogram):
        return (
            f"histogram n={result.n_samples} skew={result.skewness:.2f} "
            f"kurt={result.kurtosis:.2f}"
        )
    if isinstance(result, dict):
        return "{" + ", ".join(f"{k}: {_describe(v)}" for k, v in result.items()) + "}"
    return repr(result)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(tess_main())
