"""Shim for environments without the `wheel` package (offline legacy install).

`pip install -e . --no-build-isolation --no-use-pep517` uses this; normal
online environments can use the pyproject.toml metadata directly.
"""
from setuptools import setup

setup()
