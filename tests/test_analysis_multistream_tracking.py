"""Tests for multistream detection and temporal feature tracking."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.analysis.components import ComponentLabeling
from repro.analysis.multistream import (
    fraction_multistream,
    lagrangian_jacobian,
    multistream_grid,
)
from repro.analysis.tracking import track_components


def lattice(np_side, box):
    spacing = box / np_side
    q = np.mgrid[0:np_side, 0:np_side, 0:np_side].reshape(3, -1).T
    return (q + 0.0) * spacing


class TestLagrangianJacobian:
    def test_unperturbed_lattice_jacobian_one(self):
        box, n = 8.0, 8
        pos = lattice(n, box)
        ids = np.arange(n**3)
        J = lagrangian_jacobian(pos, ids, n, Bounds.cube(box))
        np.testing.assert_allclose(J, 1.0, atol=1e-12)

    def test_uniform_compression(self):
        """x = q * 0.5 (about each lattice point's own origin) halves each
        axis derivative: small sinusoidal compression changes det < 1."""
        box, n = 8.0, 8
        q = lattice(n, box)
        # Sinusoidal displacement along x (single-stream amplitude).
        amp = 0.1
        pos = q.copy()
        pos[:, 0] = (q[:, 0] + amp * np.sin(2 * np.pi * q[:, 0] / box)) % box
        J = lagrangian_jacobian(pos, np.arange(n**3), n, Bounds.cube(box))
        assert np.all(J > 0)  # no shell crossing at this amplitude
        assert J.min() < 1.0 < J.max()  # compression and expansion regions

    def test_shell_crossing_detected(self):
        """A large-amplitude fold flips the Jacobian sign somewhere."""
        box, n = 8.0, 16
        q = lattice(n, box)
        # Caustic threshold is amp * 2 pi / box > 1 (plus finite-difference
        # smoothing of ~0.97), i.e. amp > ~1.31 here.
        amp = 2.0
        pos = q.copy()
        pos[:, 0] = (q[:, 0] + amp * np.sin(2 * np.pi * q[:, 0] / box)) % box
        J = lagrangian_jacobian(pos, np.arange(n**3), n, Bounds.cube(box))
        assert fraction_multistream(J) > 0.0

    def test_id_permutation_invariance(self):
        box, n = 6.0, 6
        pos = lattice(n, box)
        rng = np.random.default_rng(0)
        perm = rng.permutation(n**3)
        J = lagrangian_jacobian(pos[perm], perm, n, Bounds.cube(box))
        np.testing.assert_allclose(J, 1.0, atol=1e-12)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            lagrangian_jacobian(np.zeros((7, 3)), np.arange(7), 2, Bounds.cube(1.0))
        with pytest.raises(ValueError):
            lagrangian_jacobian(
                np.zeros((8, 3)), np.arange(8) + 1, 2, Bounds.cube(1.0)
            )
        with pytest.raises(ValueError):
            fraction_multistream(np.empty(0))

    def test_evolved_simulation_has_multistream_regions(self):
        from repro.hacc import SimulationConfig, run_simulation

        cfg = SimulationConfig(np_side=16, nsteps=30, seed=2)
        final = run_simulation(cfg)
        pos = final.positions * cfg.cell_size
        J = lagrangian_jacobian(pos, final.ids, 16, cfg.domain())
        frac = fraction_multistream(J)
        assert 0.02 < frac < 0.9  # collapsed regions exist, not everything


class TestMultistreamGrid:
    def test_unperturbed_lattice_single_stream(self):
        box, n = 4.0, 4
        # Anisotropic sub-cell shift keeps every grid sample strictly
        # inside one tetrahedron (a symmetric shift would park samples on
        # shared tet faces/diagonals and overcount).
        shift = np.array([0.37, 0.23, 0.11]) * box / n
        pos = (lattice(n, box) + shift) % box
        counts = multistream_grid(
            pos, np.arange(n**3), n, Bounds.cube(box), grid_size=4
        )
        assert counts.shape == (4, 4, 4)
        np.testing.assert_array_equal(counts, 1)

    def test_fold_produces_three_streams(self):
        box, n = 8.0, 16
        q = lattice(n, box)
        pos = q.copy()
        pos[:, 0] = (q[:, 0] + 1.5 * np.sin(2 * np.pi * q[:, 0] / box)) % box
        counts = multistream_grid(
            pos, np.arange(n**3), n, Bounds.cube(box), grid_size=8
        )
        assert counts.max() >= 3  # caustic interior
        assert counts.min() >= 1  # the sheet still covers everything

    def test_mean_stream_count_is_one(self):
        """The sheet covers space exactly once on average (volume is
        conserved in Lagrangian coordinates)."""
        box, n = 8.0, 8
        q = lattice(n, box)
        rng = np.random.default_rng(3)
        pos = (q + rng.normal(0, 0.1, q.shape)) % box
        counts = multistream_grid(
            pos, np.arange(n**3), n, Bounds.cube(box), grid_size=8
        )
        assert counts.mean() == pytest.approx(1.0, abs=0.1)


class TestFeatureTracking:
    def _labeling(self, groups):
        """groups: list of member-id tuples."""
        site_ids, labels = [], []
        for lbl, members in enumerate(groups):
            for m in members:
                site_ids.append(m)
                labels.append(lbl)
        order = np.argsort(site_ids)
        return ComponentLabeling(
            site_ids=np.asarray(site_ids)[order], labels=np.asarray(labels)[order]
        )

    def test_continuation(self):
        l0 = self._labeling([(1, 2, 3), (10, 11)])
        l1 = self._labeling([(1, 2, 3, 4), (10, 11, 12)])
        tree = track_components({0: l0, 1: l1})
        counts = tree.counts()
        assert counts.get("continuation") == 2
        assert not counts.get("merge") and not counts.get("split")
        assert len(tree.tracks) == 2
        assert all(t.lifetime == 2 for t in tree.tracks)

    def test_merge(self):
        l0 = self._labeling([(1, 2), (3, 4)])
        l1 = self._labeling([(1, 2, 3, 4)])
        tree = track_components({0: l0, 1: l1})
        assert tree.counts().get("merge") == 1
        # One track survives the merge; the loser's track ends.
        alive = [t for t in tree.tracks if 1 in t.steps]
        assert len(alive) == 1

    def test_split(self):
        l0 = self._labeling([(1, 2, 3, 4)])
        l1 = self._labeling([(1, 2), (3, 4)])
        tree = track_components({0: l0, 1: l1})
        assert tree.counts().get("split") == 1
        # Both children exist as tracks at step 1 (one continues the
        # parent, one is freshly started).
        heads = [t for t in tree.tracks if t.steps[-1] == 1]
        assert len(heads) == 2

    def test_birth_and_death(self):
        l0 = self._labeling([(1, 2)])
        l1 = self._labeling([(7, 8)])
        tree = track_components({0: l0, 1: l1})
        counts = tree.counts()
        assert counts.get("birth") == 1
        assert counts.get("death") == 1

    def test_min_overlap_filter(self):
        l0 = self._labeling([(1, 2, 3, 4, 5)])
        l1 = self._labeling([(5, 6, 7, 8)])  # overlap of exactly 1 cell
        strict = track_components({0: l0, 1: l1}, min_overlap=2)
        loose = track_components({0: l0, 1: l1}, min_overlap=1)
        assert strict.counts().get("death") == 1
        assert loose.counts().get("continuation") == 1

    def test_track_sizes_recorded(self):
        l0 = self._labeling([(1, 2, 3)])
        l1 = self._labeling([(1, 2, 3, 4, 5)])
        tree = track_components({0: l0, 1: l1})
        t = tree.tracks[0]
        assert t.sizes == [3, 5]

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            track_components({})

    def test_multi_step_chain(self):
        seq = {
            s: self._labeling([tuple(range(s, s + 5))]) for s in range(4)
        }
        tree = track_components(seq)
        assert len(tree.tracks) == 1
        assert tree.tracks[0].lifetime == 4

    def test_void_growth_in_simulation(self):
        """End-to-end: voids tracked across tessellation outputs."""
        from repro.hacc import SimulationConfig
        from repro.insitu import run_simulation_with_tools
        from repro.analysis import connected_components

        cfg = SimulationConfig(np_side=12, nsteps=30, seed=4)
        results = run_simulation_with_tools(
            cfg,
            {"tools": [{"tool": "tessellation", "every": 10,
                        "params": {"ghost": 4.0}}]},
            nranks=2,
        )
        labelings = {}
        for step, tess in results["tessellation"].items():
            v = tess.volumes()
            vmin = float(np.quantile(v, 0.8))
            labelings[step] = connected_components(tess, vmin=vmin)
        tree = track_components(labelings, min_overlap=1)
        assert tree.steps == sorted(results["tessellation"])
        assert len(tree.tracks) >= 1
        # At least one feature persists across multiple outputs.
        assert max(t.lifetime for t in tree.tracks) >= 2
