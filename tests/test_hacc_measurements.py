"""Tests for the power spectrum measurement."""

import numpy as np
import pytest

from repro.hacc import (
    LCDM,
    LinearPowerSpectrum,
    SimulationConfig,
    measure_power_spectrum,
    zeldovich_ics,
)


class TestMeasurementBasics:
    def test_random_points_are_shot_noise(self):
        """A Poisson sample has P(k) = box^3/N; after subtraction ~0."""
        rng = np.random.default_rng(0)
        box, n = 64.0, 20000
        pos = rng.uniform(0, box, size=(n, 3))
        m = measure_power_spectrum(pos, box, ng=32, subtract_shot_noise=False)
        assert np.nanmedian(m.power) == pytest.approx(box**3 / n, rel=0.25)
        m2 = measure_power_spectrum(pos, box, ng=32)
        assert abs(np.nanmedian(m2.power)) < 0.5 * m.shot_noise

    def test_single_mode_recovered(self):
        """Particles modulated by one plane wave put power at that k only."""
        rng = np.random.default_rng(1)
        box, ng = 32.0, 32
        n = 200_000
        x = rng.uniform(0, box, size=(n, 3))
        # Rejection-sample a 1 + A cos(k1 x) density along x.
        k1 = 2 * np.pi * 4 / box
        keep = rng.uniform(0, 2.0, n) < 1.0 + 0.8 * np.cos(k1 * x[:, 0])
        pos = x[keep]
        m = measure_power_spectrum(pos, box, ng=ng, nbins=20)
        peak_bin = int(np.nanargmax(m.power))
        assert m.k[peak_bin] == pytest.approx(k1, rel=0.25)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            measure_power_spectrum(np.zeros((3, 2)), 10.0, 8)
        with pytest.raises(ValueError):
            measure_power_spectrum(np.empty((0, 3)), 10.0, 8)

    def test_rows(self):
        rng = np.random.default_rng(2)
        m = measure_power_spectrum(rng.uniform(0, 16, (2000, 3)), 16.0, 16)
        rows = m.rows()
        assert len(rows) == len(m.k)
        assert all(len(r) == 3 for r in rows)


class TestAgainstLinearTheory:
    def test_initial_conditions_match_input_spectrum(self):
        """The Zel'dovich ICs must carry the linear P(k, a_init) imprint."""
        cosmo = LCDM()
        box = 64.0
        np_side = 32
        a0 = 0.05
        ics = zeldovich_ics(np_side, cosmo, a_init=a0, box=box, seed=3)
        pos = ics.positions * (box / np_side)
        # Lattice ICs carry no Poisson shot noise (grid pre-initial
        # conditions suppress discreteness), so do not subtract it.
        m = measure_power_spectrum(
            pos, box, ng=32, nbins=10, subtract_shot_noise=False
        )
        linear = LinearPowerSpectrum(cosmo)
        # Compare on intermediate scales: large-scale bins hold too few
        # modes (cosmic variance), small scales hit mesh artifacts.
        for i in range(3, 7):
            expect = linear(m.k[i], a=a0)
            assert m.power[i] == pytest.approx(expect, rel=0.6)

    def test_growth_boosts_power(self):
        """Power grows between early and late snapshots, more on small
        scales (nonlinear growth)."""
        cfg = SimulationConfig(np_side=16, nsteps=30, seed=4)
        from repro.hacc import HACCSimulation

        sim = HACCSimulation(cfg)
        early = sim.local.positions.copy() * cfg.cell_size
        sim.run()
        late = sim.local.positions * cfg.cell_size
        m0 = measure_power_spectrum(early, cfg.box_size, 16, nbins=6)
        m1 = measure_power_spectrum(late, cfg.box_size, 16, nbins=6)
        valid = np.isfinite(m0.power) & np.isfinite(m1.power) & (m0.power > 0)
        assert np.all(m1.power[valid] > m0.power[valid])
