"""Tests for the command-line interfaces."""

import json
import os

import numpy as np

from repro.cli import sim_main, tess_main


class TestTessCLI:
    def test_random_points_run(self, capsys):
        rc = tess_main(["--random", "300", "--box", "8", "--blocks", "2",
                        "--ghost", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells kept:    300" in out
        assert "total volume:  512" in out

    def test_npy_input_and_output(self, tmp_path, capsys):
        pts = np.random.default_rng(0).uniform(0, 6, size=(200, 3))
        npy = tmp_path / "pts.npy"
        np.save(npy, pts)
        out_file = tmp_path / "out.tess"
        rc = tess_main([str(npy), "--box", "6", "--ghost", "2.5",
                        "-o", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        from repro.core import read_tessellation

        assert read_tessellation(str(out_file)).num_cells == 200

    def test_requires_exactly_one_source(self, capsys):
        assert tess_main([]) == 2
        npy_and_random = ["somefile.npy", "--random", "10"]
        assert tess_main(npy_and_random) == 2

    def test_bad_npy_shape(self, tmp_path):
        npy = tmp_path / "bad.npy"
        np.save(npy, np.zeros((10, 2)))
        assert tess_main([str(npy)]) == 2

    def test_vmin_culling(self, capsys):
        rc = tess_main(["--random", "400", "--box", "8", "--vmin", "1.5",
                        "--ghost", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        kept = int(out.split("cells kept:")[1].split()[0])
        assert 0 < kept < 400

    def test_nonperiodic_flag(self, capsys):
        rc = tess_main(["--random", "300", "--box", "8", "--no-periodic",
                        "--ghost", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        kept = int(out.split("cells kept:")[1].split()[0])
        assert kept < 300  # boundary cells deleted

    def test_balance_threshold_rebalances_clustered_input(
        self, tmp_path, capsys
    ):
        from repro.balance import clustered_points

        pts = clustered_points(600, 8.0, seed=14)
        npy = tmp_path / "clustered.npy"
        np.save(npy, pts)
        rc = tess_main([str(npy), "--box", "8", "--blocks", "4",
                        "--ghost", "4", "--balance-threshold", "1.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "balance:       rebalanced" in out
        assert "cells kept:    600" in out
        assert "total volume:  512" in out

    def test_voids_flag(self, capsys):
        rc = tess_main(["--random", "400", "--box", "8", "--ghost", "3",
                        "--voids"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "voids:" in out
        nvoids = int(out.split("voids:")[1].split()[0])
        assert nvoids >= 1


class TestSimCLI:
    def _deck(self, tmp_path, tools, sim=None):
        deck = {"simulation": sim or {"np_side": 8, "nsteps": 4},
                "tools": tools}
        path = tmp_path / "deck.json"
        path.write_text(json.dumps(deck))
        return str(path)

    def test_full_run(self, tmp_path, capsys):
        deck = self._deck(
            tmp_path,
            [{"tool": "tessellation", "params": {"ghost": 3.5}},
             {"tool": "void_finder", "params": {"min_cells": 2}}],
        )
        rc = sim_main([deck, "--ranks", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[tessellation @ step 4] 512 cells" in out
        assert "voids at vmin=" in out

    def test_empty_tools_rejected(self, tmp_path):
        deck = self._deck(tmp_path, [])
        assert sim_main([deck]) == 2

    def test_unknown_simulation_key(self, tmp_path):
        deck = self._deck(
            tmp_path,
            [{"tool": "statistics"}],
            sim={"np_side": 8, "nsteps": 2, "warp_factor": 9},
        )
        assert sim_main([deck]) == 2

    def test_statistics_description(self, tmp_path, capsys):
        deck = self._deck(tmp_path, [{"tool": "statistics"}])
        rc = sim_main([deck])
        assert rc == 0
        assert "histogram n=" in capsys.readouterr().out

    def test_balance_threshold_flag(self, tmp_path, capsys):
        deck = self._deck(
            tmp_path,
            [{"tool": "statistics", "every": 2}],
            sim={"np_side": 8, "nsteps": 2, "seed": 5},
        )
        rc = sim_main([deck, "--ranks", "2", "--balance-threshold", "1.001"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rebalanced domain" in out
        assert "histogram n=512" in out

    def test_kill_and_resume_cycle(self, tmp_path, capsys):
        """--fault-kill crashes the run after its checkpoints are on disk;
        --resume finishes it, skipping the already-analyzed steps."""
        deck = self._deck(
            tmp_path,
            [{"tool": "statistics", "every": 2}],
            sim={"np_side": 8, "nsteps": 6, "seed": 7},
        )
        ckpt = str(tmp_path / "ckpts")
        common = [deck, "--ranks", "2", "--checkpoint-every", "2",
                  "--checkpoint-dir", ckpt]
        rc = sim_main(common + ["--fault-kill", "1:5"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "rank 1" in err and "--resume" in err
        assert sorted(os.listdir(ckpt)) == [
            "ckpt-000002.ckpt", "ckpt-000004.ckpt"
        ]
        rc = sim_main(common + ["--resume"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint at step 4" in out
        # Steps 2 and 4 were analyzed before the crash; only 6 re-fires.
        assert "@ step 6" in out and "@ step 4" not in out

    def test_bad_fault_kill_spec(self, tmp_path):
        deck = self._deck(tmp_path, [{"tool": "statistics"}])
        assert sim_main([deck, "--fault-kill", "nonsense"]) == 2
