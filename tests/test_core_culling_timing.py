"""Tests for culling rules and phase timing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.culling import (
    early_cull_mask,
    exact_cull_mask,
    passes_early_cull,
    sphere_diameter_for_volume,
)
from repro.core.timing import PhaseTimer, TessTimings


class TestSphereDiameter:
    def test_unit_sphere(self):
        # Volume 4/3 pi -> radius 1 -> diameter 2.
        assert sphere_diameter_for_volume(4.0 * np.pi / 3.0) == pytest.approx(2.0)

    def test_zero(self):
        assert sphere_diameter_for_volume(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sphere_diameter_for_volume(-1.0)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_inverse_relationship(self, v):
        d = sphere_diameter_for_volume(v)
        assert (np.pi / 6.0) * d**3 == pytest.approx(v, rel=1e-9)


class TestEarlyCull:
    def test_no_threshold_keeps_all(self):
        assert passes_early_cull(0.0, None)
        assert passes_early_cull(0.0, 0.0)
        np.testing.assert_array_equal(
            early_cull_mask(np.array([0.0, 1.0]), None), [True, True]
        )

    def test_small_cell_culled(self):
        vmin = 1.0
        d = sphere_diameter_for_volume(vmin)
        assert not passes_early_cull(0.9 * d, vmin)
        assert passes_early_cull(1.1 * d, vmin)

    def test_conservative_no_false_culls(self):
        """A cell culled early must genuinely be below the volume threshold.

        By the isodiametric inequality vol <= (pi/6) diameter^3, so culling
        at diameter < d(vmin) can never remove a cell with vol >= vmin.
        """
        rng = np.random.default_rng(0)
        for _ in range(200):
            vol = float(rng.uniform(0.01, 10.0))
            vmin = float(rng.uniform(0.01, 10.0))
            # Max possible diameter consistent with this volume is unknown,
            # but the minimum is the sphere diameter.
            diam_min = sphere_diameter_for_volume(vol)
            if vol >= vmin:
                assert passes_early_cull(diam_min, vmin)

    def test_vectorized_matches_scalar(self):
        seps = np.linspace(0.0, 3.0, 50)
        mask = early_cull_mask(seps, 1.0)
        for s, m in zip(seps, mask):
            assert passes_early_cull(float(s), 1.0) == bool(m)


class TestExactCull:
    def test_min_only(self):
        v = np.array([0.5, 1.0, 2.0])
        np.testing.assert_array_equal(exact_cull_mask(v, vmin=1.0), [False, True, True])

    def test_max_only(self):
        v = np.array([0.5, 1.0, 2.0])
        np.testing.assert_array_equal(exact_cull_mask(v, vmax=1.0), [True, True, False])

    def test_band(self):
        v = np.array([0.5, 1.0, 2.0])
        np.testing.assert_array_equal(
            exact_cull_mask(v, vmin=0.75, vmax=1.5), [False, True, False]
        )

    def test_no_thresholds(self):
        assert exact_cull_mask(np.array([1.0, 2.0])).all()


class TestTimings:
    def test_phases_accumulate(self):
        t = PhaseTimer()
        with t.phase("compute"):
            sum(range(10000))
        with t.phase("compute"):
            sum(range(10000))
        assert t.timings.compute > 0
        assert t.timings.compute_cpu > 0
        assert t.timings.exchange == 0

    def test_arbitrary_phase_names_accepted(self):
        t = PhaseTimer()
        with t.phase("halo_merge"):
            sum(range(1000))
        assert t.wall("halo_merge") > 0
        assert "halo_merge" in t.phase_names
        assert "halo_merge" in t.as_dict()
        # Non-canonical phases don't leak into the paper's three-phase view.
        assert t.timings.total == 0.0

    def test_invalid_phase_name_rejected(self):
        t = PhaseTimer()
        for bad in ("", None, 3):
            with pytest.raises(ValueError):
                with t.phase(bad):
                    pass

    def test_extended_row_adds_comm_columns(self):
        t = TessTimings(compute_cpu=2.0, comm_wait=0.5, msgs_sent=7, bytes_recv=64)
        row = t.as_row()
        assert sorted(row) == [
            "compute_s", "exchange_s", "output_s", "tess_total_s", "wall_total_s",
        ]
        ext = t.as_row_extended()
        assert ext["comm_wait_s"] == 0.5
        assert ext["msgs_sent"] == 7
        assert ext["bytes_recv"] == 64
        assert all(ext[k] == row[k] for k in row)

    def test_max_with_covers_comm_counters(self):
        a = TessTimings(comm_wait=0.2, msgs_sent=3, bytes_sent=10)
        b = TessTimings(comm_wait=0.1, msgs_sent=9, bytes_sent=4)
        m = a.max_with(b)
        assert (m.comm_wait, m.msgs_sent, m.bytes_sent) == (0.2, 9, 10)

    def test_total(self):
        t = TessTimings(exchange=1.0, compute=2.0, output=3.0)
        assert t.total == 6.0
        assert t.total_cpu == 0.0

    def test_max_with(self):
        a = TessTimings(exchange=1.0, compute=5.0, output=0.0, compute_cpu=4.0)
        b = TessTimings(exchange=2.0, compute=1.0, output=3.0, compute_cpu=2.0)
        m = a.max_with(b)
        assert (m.exchange, m.compute, m.output, m.compute_cpu) == (2.0, 5.0, 3.0, 4.0)

    def test_as_row_uses_cpu(self):
        t = TessTimings(compute=10.0, compute_cpu=2.0)
        row = t.as_row()
        assert row["compute_s"] == 2.0
        assert row["wall_total_s"] == 10.0
