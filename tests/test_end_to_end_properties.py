"""End-to-end property tests: invariances of the full parallel pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diy.bounds import Bounds, wrap_positions
from repro.core import match_tessellations, tessellate


def poisson(n, size, seed):
    return np.random.default_rng(seed).uniform(0, size, size=(n, 3))


class TestTessellationInvariances:
    def test_rigid_translation_invariance(self):
        """Translating all points (mod box) permutes nothing physical:
        every cell keeps its volume and neighbor set."""
        size = 10.0
        domain = Bounds.cube(size)
        pts = poisson(400, size, 0)
        shift = np.array([3.7, -1.2, 8.9])
        shifted = wrap_positions(pts + shift, domain)

        a = tessellate(pts, domain, nblocks=4, ghost=4.0)
        b = tessellate(shifted, domain, nblocks=4, ghost=4.0)
        assert b.num_cells == a.num_cells == 400
        va = dict(zip(a.site_ids().tolist(), a.volumes().tolist()))
        vb = dict(zip(b.site_ids().tolist(), b.volumes().tolist()))
        for sid in va:
            assert vb[sid] == pytest.approx(va[sid], rel=1e-9)

    def test_id_relabeling_equivariance(self):
        """Permuting particle ids permutes cell identity and nothing else."""
        size = 8.0
        domain = Bounds.cube(size)
        pts = poisson(250, size, 1)
        rng = np.random.default_rng(2)
        perm = rng.permutation(250).astype(np.int64)

        a = tessellate(pts, domain, nblocks=2, ghost=3.5)
        b = tessellate(pts, domain, nblocks=2, ghost=3.5, ids=perm)
        va = dict(zip(a.site_ids().tolist(), a.volumes().tolist()))
        vb = dict(zip(b.site_ids().tolist(), b.volumes().tolist()))
        for original, renamed in enumerate(perm):
            assert vb[int(renamed)] == pytest.approx(va[original], rel=1e-12)

    def test_point_order_invariance(self):
        size = 8.0
        domain = Bounds.cube(size)
        pts = poisson(250, size, 3)
        rng = np.random.default_rng(4)
        order = rng.permutation(250)
        a = tessellate(pts, domain, nblocks=2, ghost=3.5)
        b = tessellate(
            pts[order], domain, nblocks=2, ghost=3.5,
            ids=np.arange(250)[order],
        )
        m = match_tessellations(b, a)
        assert m.accuracy_percent == 100.0

    @settings(max_examples=6, deadline=None)
    @given(
        st.integers(min_value=0, max_value=100),
        st.sampled_from([1, 2, 4, 8]),
    )
    def test_partition_and_uniqueness_property(self, seed, nblocks):
        size = 9.0
        domain = Bounds.cube(size)
        n = 150 + 10 * (seed % 7)
        pts = poisson(n, size, seed)
        tess = tessellate(pts, domain, nblocks=nblocks, ghost=4.0)
        assert tess.num_cells == n
        assert len(np.unique(tess.site_ids())) == n
        assert tess.total_volume() == pytest.approx(domain.volume, rel=1e-8)

    def test_scale_equivariance(self):
        """Scaling the box and points scales volumes by the cube factor."""
        pts = poisson(200, 5.0, 5)
        a = tessellate(pts, Bounds.cube(5.0), nblocks=2, ghost=2.5)
        k = 3.0
        b = tessellate(pts * k, Bounds.cube(5.0 * k), nblocks=2, ghost=2.5 * k)
        va = a.volumes()[np.argsort(a.site_ids())]
        vb = b.volumes()[np.argsort(b.site_ids())]
        np.testing.assert_allclose(vb, va * k**3, rtol=1e-9)

    def test_axis_permutation_equivariance(self):
        pts = poisson(220, 7.0, 6)
        domain = Bounds.cube(7.0)
        a = tessellate(pts, domain, nblocks=1, ghost=3.0)
        b = tessellate(pts[:, [2, 0, 1]], domain, nblocks=1, ghost=3.0)
        va = a.volumes()[np.argsort(a.site_ids())]
        vb = b.volumes()[np.argsort(b.site_ids())]
        np.testing.assert_allclose(vb, va, rtol=1e-9)
