"""Tests for CIC mesh transfers and the spectral Poisson solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hacc.mesh import cic_deposit, cic_gather, density_contrast
from repro.hacc.poisson import accelerations_from_delta, gravitational_potential


class TestCICDeposit:
    def test_mass_conservation(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 16, size=(500, 3))
        mesh = cic_deposit(pos, 16)
        assert mesh.sum() == pytest.approx(500.0)

    def test_particle_at_cell_center(self):
        mesh = cic_deposit(np.array([[2.0, 3.0, 4.0]]), 8)
        assert mesh[2, 3, 4] == pytest.approx(1.0)
        assert mesh.sum() == pytest.approx(1.0)

    def test_particle_between_cells(self):
        mesh = cic_deposit(np.array([[2.5, 3.0, 4.0]]), 8)
        assert mesh[2, 3, 4] == pytest.approx(0.5)
        assert mesh[3, 3, 4] == pytest.approx(0.5)

    def test_periodic_wrap(self):
        mesh = cic_deposit(np.array([[7.5, 0.0, 0.0]]), 8)
        assert mesh[7, 0, 0] == pytest.approx(0.5)
        assert mesh[0, 0, 0] == pytest.approx(0.5)

    def test_negative_position_wraps(self):
        mesh = cic_deposit(np.array([[-0.5, 1.0, 1.0]]), 8)
        assert mesh[7, 1, 1] == pytest.approx(0.5)
        assert mesh[0, 1, 1] == pytest.approx(0.5)

    def test_weighted_deposit(self):
        mesh = cic_deposit(np.array([[1.0, 1.0, 1.0]]), 4, weights=np.array([3.0]))
        assert mesh[1, 1, 1] == pytest.approx(3.0)

    def test_mismatched_weights(self):
        with pytest.raises(ValueError):
            cic_deposit(np.zeros((2, 3)), 4, weights=np.ones(3))

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            cic_deposit(np.zeros((5, 2)), 4)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=4, max_value=24),
    )
    def test_mass_conserved_property(self, seed, ng):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        pos = rng.uniform(-ng, 2 * ng, size=(n, 3))  # includes out-of-box
        mesh = cic_deposit(pos, ng)
        assert mesh.sum() == pytest.approx(n, rel=1e-9)
        assert np.all(mesh >= 0)


class TestCICGather:
    def test_constant_field(self):
        field = np.full((8, 8, 8), 3.5)
        pos = np.random.default_rng(1).uniform(0, 8, size=(100, 3))
        np.testing.assert_allclose(cic_gather(field, pos), 3.5)

    def test_linear_field_interpolated_exactly(self):
        # CIC reproduces linear functions exactly away from the wrap seam.
        ng = 16
        x = np.arange(ng, dtype=float)
        field = np.broadcast_to(x[:, None, None], (ng, ng, ng)).copy()
        pos = np.column_stack(
            [
                np.linspace(2.0, 12.0, 50),
                np.full(50, 5.0),
                np.full(50, 7.0),
            ]
        )
        np.testing.assert_allclose(cic_gather(field, pos), pos[:, 0], atol=1e-12)

    def test_vector_field(self):
        ng = 4
        field = np.zeros((ng, ng, ng, 3))
        field[..., 0] = 1.0
        field[..., 2] = 2.0
        out = cic_gather(field, np.array([[1.5, 2.5, 3.5]]))
        np.testing.assert_allclose(out, [[1.0, 0.0, 2.0]])

    def test_adjointness(self):
        """<deposit(p), f> == <1_p, gather(f, p)> — CIC is self-adjoint."""
        rng = np.random.default_rng(2)
        ng = 8
        pos = rng.uniform(0, ng, size=(40, 3))
        f = rng.normal(size=(ng, ng, ng))
        lhs = float((cic_deposit(pos, ng) * f).sum())
        rhs = float(cic_gather(f, pos).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_non_cubic_rejected(self):
        with pytest.raises(ValueError):
            cic_gather(np.zeros((4, 4, 5)), np.zeros((1, 3)))


class TestDensityContrast:
    def test_uniform_gives_zero(self):
        np.testing.assert_allclose(density_contrast(np.ones((4, 4, 4))), 0.0)

    def test_mean_is_zero(self):
        rng = np.random.default_rng(3)
        mesh = rng.uniform(0.1, 2.0, size=(6, 6, 6))
        assert density_contrast(mesh).mean() == pytest.approx(0.0, abs=1e-12)

    def test_empty_mesh_rejected(self):
        with pytest.raises(ValueError):
            density_contrast(np.zeros((4, 4, 4)))


class TestPoisson:
    def test_single_mode_analytic(self):
        """laplacian(phi) = delta for one Fourier mode has phi = -delta/k^2."""
        ng = 32
        kx = 2 * np.pi * 3 / ng  # mode m=3 in grid units
        x = np.arange(ng)
        delta = np.cos(kx * x)[:, None, None] * np.ones((1, ng, ng))
        phi = gravitational_potential(delta, prefactor=1.0)
        expect = -np.cos(kx * x) / kx**2
        np.testing.assert_allclose(phi[:, 0, 0], expect, atol=1e-10)

    def test_acceleration_is_minus_gradient(self):
        ng = 32
        m = 2
        kx = 2 * np.pi * m / ng
        x = np.arange(ng)
        delta = np.cos(kx * x)[:, None, None] * np.ones((1, ng, ng))
        g = accelerations_from_delta(delta, prefactor=1.0)
        # phi = -cos(kx x)/k^2, g = -dphi/dx = -sin(kx x)/k.
        np.testing.assert_allclose(g[:, 0, 0, 0], -np.sin(kx * x) / kx, atol=1e-10)
        np.testing.assert_allclose(g[..., 1], 0.0, atol=1e-12)
        np.testing.assert_allclose(g[..., 2], 0.0, atol=1e-12)

    def test_mean_mode_dropped(self):
        phi = gravitational_potential(np.full((8, 8, 8), 5.0), prefactor=1.0)
        np.testing.assert_allclose(phi, 0.0, atol=1e-12)

    def test_prefactor_linear(self):
        rng = np.random.default_rng(4)
        delta = rng.normal(size=(8, 8, 8))
        delta -= delta.mean()
        p1 = gravitational_potential(delta, prefactor=1.0)
        p2 = gravitational_potential(delta, prefactor=2.5)
        np.testing.assert_allclose(p2, 2.5 * p1, atol=1e-12)

    def test_point_mass_attracts(self):
        """Particles around an overdensity accelerate toward it."""
        ng = 16
        delta = np.zeros((ng, ng, ng))
        delta[8, 8, 8] = 100.0
        delta -= delta.mean()
        g = accelerations_from_delta(delta, prefactor=1.0)
        # Immediately +x of the mass the acceleration points in -x (cells
        # farther out show spectral ringing from the single-cell source).
        assert g[9, 8, 8, 0] < 0
        assert g[7, 8, 8, 0] > 0

    def test_deconvolve_amplifies_small_scales(self):
        ng = 16
        rng = np.random.default_rng(5)
        delta = rng.normal(size=(ng, ng, ng))
        delta -= delta.mean()
        g0 = accelerations_from_delta(delta, 1.0, deconvolve=False)
        g1 = accelerations_from_delta(delta, 1.0, deconvolve=True)
        assert np.abs(g1).mean() > np.abs(g0).mean()

    def test_non_cubic_rejected(self):
        with pytest.raises(ValueError):
            gravitational_potential(np.zeros((4, 4, 5)), 1.0)
        with pytest.raises(ValueError):
            accelerations_from_delta(np.zeros((4, 5, 4)), 1.0)
