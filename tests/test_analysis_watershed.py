"""Tests for the Watershed Void Finder."""

import numpy as np
import pytest

from repro.analysis.watershed import watershed_voids


def two_well_field(n=16, centers=((4, 4, 4), (12, 12, 12)), depth=1.0):
    """A density field with two Gaussian depressions separated by a ridge."""
    x = np.arange(n)
    gx, gy, gz = np.meshgrid(x, x, x, indexing="ij")
    field = np.ones((n, n, n))
    for c in centers:
        r2 = (gx - c[0]) ** 2 + (gy - c[1]) ** 2 + (gz - c[2]) ** 2
        field -= depth * np.exp(-r2 / 8.0)
    return field


class TestWatershedBasics:
    def test_single_minimum_single_basin(self):
        field = two_well_field(centers=((8, 8, 8),))
        res = watershed_voids(field)
        assert res.num_basins == 1
        assert res.basin_sizes().sum() == field.size
        np.testing.assert_array_equal(res.minima[0], [8, 8, 8])

    def test_two_wells_two_basins(self):
        field = two_well_field()
        res = watershed_voids(field)
        assert res.num_basins == 2
        sizes = res.basin_sizes()
        assert sizes.sum() == field.size
        # The wells are symmetric: basins are near-equal.
        assert abs(sizes[0] - sizes[1]) < 0.2 * field.size

    def test_minima_located_at_well_centers(self):
        field = two_well_field()
        res = watershed_voids(field)
        found = {tuple(m) for m in res.minima}
        assert found == {(4, 4, 4), (12, 12, 12)}

    def test_ridge_between_basins(self):
        field = two_well_field()
        res = watershed_voids(field)
        assert res.ridge_mask.any()
        # Ridge cells sit where labels change — all ridge cells have a
        # differently-labeled neighbor.
        labels = res.labels
        ridge_coords = np.argwhere(res.ridge_mask)
        n = labels.shape[0]
        for x, y, z in ridge_coords[:20]:
            neigh = labels[
                np.ix_(
                    [(x - 1) % n, x, (x + 1) % n],
                    [(y - 1) % n, y, (y + 1) % n],
                    [(z - 1) % n, z, (z + 1) % n],
                )
            ]
            assert len(np.unique(neigh)) > 1

    def test_labels_cover_all_cells(self):
        rng = np.random.default_rng(0)
        field = rng.uniform(size=(10, 10, 10))
        res = watershed_voids(field)
        assert np.all(res.labels >= 0)
        assert res.basin_sizes().sum() == 1000

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError):
            watershed_voids(np.zeros((4, 4)))

    def test_basin_volumes(self):
        field = two_well_field()
        res = watershed_voids(field)
        vols = res.basin_volumes(cell_volume=0.5)
        np.testing.assert_allclose(vols, res.basin_sizes() * 0.5)


class TestMerging:
    def test_partial_merge_three_wells(self):
        """Basins divided by a submerged saddle merge; a real wall survives.

        Wells A and B are close (their saddle sits well below the mean
        density); well C is separated by a high ridge.  A threshold between
        the two saddle heights must join exactly A and B — the WVF rule
        that a 'wall' below the threshold does not separate voids.
        """
        n = 16
        x = np.arange(n)
        gx, gy, gz = np.meshgrid(x, x, x, indexing="ij")
        field = np.ones((n, n, n))
        for c in ((4, 4, 4), (8, 8, 8), (13, 13, 13)):
            r2 = (gx - c[0]) ** 2 + (gy - c[1]) ** 2 + (gz - c[2]) ** 2
            field -= np.exp(-r2 / 10.0)
        raw = watershed_voids(field)
        assert raw.num_basins == 3
        saddle_ab = field[6, 6, 6]  # between A and B, deeply submerged
        merged = watershed_voids(field, merge_threshold=float(saddle_ab) + 0.1)
        assert merged.num_basins == 2
        assert merged.labels[4, 4, 4] == merged.labels[8, 8, 8]
        assert merged.labels[13, 13, 13] != merged.labels[4, 4, 4]

    def test_merge_threshold_above_ridge_joins_everything(self):
        field = two_well_field()
        res = watershed_voids(field, merge_threshold=2.0)
        assert res.num_basins == 1

    def test_merge_threshold_below_all_saddles_is_noop(self):
        field = two_well_field()
        raw = watershed_voids(field)
        kept = watershed_voids(field, merge_threshold=-10.0)
        assert kept.num_basins == raw.num_basins

    def test_merged_minimum_is_deepest(self):
        field = two_well_field(depth=1.0)
        # Make one well slightly deeper.
        field[4, 4, 4] -= 0.1
        res = watershed_voids(field, merge_threshold=2.0)
        assert res.num_basins == 1
        np.testing.assert_array_equal(res.minima[0], [4, 4, 4])


class TestOnSimulationDensity:
    def test_voids_in_evolved_snapshot(self):
        """End-to-end: CIC density of an evolved run segments into basins."""
        from repro.hacc import SimulationConfig, run_simulation
        from repro.hacc.mesh import cic_deposit

        cfg = SimulationConfig(np_side=16, nsteps=30, seed=5)
        final = run_simulation(cfg)
        density = cic_deposit(final.positions, 16)
        # Smooth a little to suppress shot noise (top-hat via FFT).
        k = np.fft.fftfreq(16)
        kk = np.sqrt(
            k[:, None, None] ** 2 + k[None, :, None] ** 2
            + np.fft.rfftfreq(16)[None, None, :] ** 2
        )
        smooth = np.fft.irfftn(
            np.fft.rfftn(density) * np.exp(-((kk * 16 / 4) ** 2)), s=density.shape,
            axes=(0, 1, 2),
        )
        res = watershed_voids(smooth, merge_threshold=float(np.median(smooth)))
        assert 1 <= res.num_basins < 50
        assert res.basin_sizes().sum() == 16**3
