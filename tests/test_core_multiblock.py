"""Tests for multi-block-per-rank tessellation (blocks > ranks)."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.diy.comm import run_parallel
from repro.diy.decomposition import Decomposition
from repro.diy.exchange import Assignment
from repro.core import match_tessellations, read_tessellation, tessellate
from repro.core.ghost import (
    exchange_ghost_particles,
    exchange_ghost_particles_multi,
)


class TestMultiGhostExchange:
    def test_matches_per_block_exchange(self):
        """One rank holding all blocks must see the same ghosts the
        one-block-per-rank configuration delivers."""
        domain = Bounds.cube(8.0)
        decomp = Decomposition.regular(domain, 4, periodic=True)
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 8, size=(400, 3))
        ids = np.arange(400, dtype=np.int64)
        owners = decomp.locate(pts)

        def per_rank(comm):
            mine = owners == comm.rank
            return exchange_ghost_particles(
                decomp, comm, comm.rank, pts[mine], ids[mine], ghost=2.0
            )

        reference = run_parallel(4, per_rank)

        def serial(comm):
            assignment = Assignment(4, 1)
            by_gid = {g: (pts[owners == g], ids[owners == g]) for g in range(4)}
            return exchange_ghost_particles_multi(
                decomp, comm, assignment, by_gid, ghost=2.0
            )

        combined = run_parallel(1, serial)[0]
        for gid in range(4):
            ref_pos, ref_ids = reference[gid]
            got_pos, got_ids = combined[gid]
            order_a = np.lexsort((ref_ids, *ref_pos.T))
            order_b = np.lexsort((got_ids, *got_pos.T))
            np.testing.assert_array_equal(got_ids[order_b], ref_ids[order_a])
            np.testing.assert_allclose(got_pos[order_b], ref_pos[order_a])

    def test_wrong_gid_coverage_rejected(self):
        domain = Bounds.cube(4.0)
        decomp = Decomposition.regular(domain, 2, periodic=True)

        def worker(comm):
            assignment = Assignment(2, 1)
            return exchange_ghost_particles_multi(
                decomp, comm, assignment,
                {0: (np.empty((0, 3)), np.empty(0, dtype=np.int64))},  # gid 1 missing
                ghost=1.0,
            )

        with pytest.raises(Exception):
            run_parallel(1, worker)


class TestMultiBlockTessellate:
    @pytest.mark.parametrize("nblocks,nranks", [(4, 1), (4, 2), (8, 3)])
    def test_matches_one_block_per_rank(self, nblocks, nranks):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 10, size=(700, 3))
        domain = Bounds.cube(10.0)
        reference = tessellate(pts, domain, nblocks=nblocks, ghost=3.5)
        multi = tessellate(
            pts, domain, nblocks=nblocks, ghost=3.5, nranks=nranks
        )
        assert multi.num_blocks == nblocks
        assert [b.gid for b in multi.blocks] == list(range(nblocks))
        m = match_tessellations(multi, reference)
        assert m.cells_matching == m.cells_reference == 700

    def test_clip_backend_multiblock(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 8, size=(250, 3))
        domain = Bounds.cube(8.0)
        multi = tessellate(
            pts, domain, nblocks=4, ghost=3.0, nranks=2, backend="clip"
        )
        reference = tessellate(pts, domain, nblocks=4, ghost=3.0)
        m = match_tessellations(multi, reference)
        assert m.accuracy_percent == 100.0

    def test_output_written_from_multiblock_ranks(self, tmp_path):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 8, size=(300, 3))
        path = str(tmp_path / "multi.tess")
        tess = tessellate(
            pts, Bounds.cube(8.0), nblocks=6, ghost=3.0, nranks=2,
            output_path=path,
        )
        assert tess.output_bytes > 0
        back = read_tessellation(path)
        assert back.num_blocks == 6
        assert back.num_cells == tess.num_cells

    def test_volume_threshold_multiblock(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 10, size=(500, 3))
        domain = Bounds.cube(10.0)
        full = tessellate(pts, domain, nblocks=4, ghost=3.5, nranks=2)
        vmin = float(np.quantile(full.volumes(), 0.5))
        culled = tessellate(
            pts, domain, nblocks=4, ghost=3.5, nranks=2, vmin=vmin
        )
        assert np.all(culled.volumes() >= vmin)
        expect = set(full.site_ids()[full.volumes() >= vmin].tolist())
        assert set(culled.site_ids().tolist()) == expect

    def test_serial_mode_with_many_blocks_partitions(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 10, size=(400, 3))
        tess = tessellate(
            pts, Bounds.cube(10.0), nblocks=8, ghost=4.0, nranks=1
        )
        assert tess.num_cells == 400
        assert tess.total_volume() == pytest.approx(1000.0, rel=1e-9)
