"""Tests for the Voronoi backends (clip vs qhull) and Delaunay duality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diy.bounds import Bounds
from repro.geometry import voronoi_cells
from repro.geometry.delaunay import circumcenters, circumradii, delaunay
from repro.geometry.voronoi_cells import voronoi_cells_clip
from repro.geometry.voronoi_qhull import voronoi_cells_qhull


def grid_points(n: int, size: float, jitter: float, seed: int = 0) -> np.ndarray:
    """n^3 points on a jittered grid in [0, size)^3 — the HACC IC layout."""
    rng = np.random.default_rng(seed)
    spacing = size / n
    base = (np.mgrid[0:n, 0:n, 0:n].reshape(3, -1).T + 0.5) * spacing
    return base + rng.uniform(-jitter, jitter, size=base.shape) * spacing


class TestClipBackendBasics:
    def test_two_sites_split_box(self):
        box = Bounds.cube(2.0)
        pts = np.array([[0.5, 1.0, 1.0], [1.5, 1.0, 1.0]])
        cells = voronoi_cells_clip(pts, box)
        assert len(cells) == 2
        for c in cells:
            assert not c.complete  # both touch the box walls
            assert c.volume == pytest.approx(4.0)  # half the 2^3 box each
        # The shared bisector face references the other site.
        assert 1 in cells[0].neighbors
        assert 0 in cells[1].neighbors

    def test_volumes_partition_box(self):
        box = Bounds.cube(10.0)
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 10, size=(40, 3))
        cells = voronoi_cells_clip(pts, box)
        assert sum(c.volume for c in cells) == pytest.approx(box.volume, rel=1e-8)

    def test_sites_inside_own_cells(self):
        box = Bounds.cube(5.0)
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 5, size=(30, 3))
        for c in voronoi_cells_clip(pts, box):
            assert c.polyhedron.contains(pts[c.site], rel_eps=1e-7)

    def test_interior_cells_complete(self):
        pts = grid_points(5, 10.0, jitter=0.2, seed=3)
        box = Bounds.cube(10.0)
        cells = voronoi_cells_clip(pts, box)
        complete = [c for c in cells if c.complete]
        # Interior 3^3 sites (of 5^3) should all be complete.
        assert len(complete) >= 27
        for c in complete:
            assert not c.polyhedron.wall_face_mask().any()

    def test_sites_subset(self):
        box = Bounds.cube(5.0)
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 5, size=(30, 3))
        subset = np.array([3, 17, 29])
        cells = voronoi_cells_clip(pts, box, sites=subset)
        assert [c.site for c in cells] == [3, 17, 29]

    def test_coincident_sites_degenerate(self):
        box = Bounds.cube(2.0)
        pts = np.array([[1.0, 1.0, 1.0], [1.0, 1.0, 1.0], [0.5, 0.5, 0.5]])
        cells = voronoi_cells_clip(pts, box)
        assert not cells[0].complete and cells[0].polyhedron is None
        assert cells[0].volume == 0.0

    def test_empty_points(self):
        assert voronoi_cells_clip(np.empty((0, 3)), Bounds.cube(1.0)) == []

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            voronoi_cells_clip(np.zeros((5, 2)), Bounds.cube(1.0))

    def test_single_site_is_box(self):
        box = Bounds.cube(3.0)
        cells = voronoi_cells_clip(np.array([[1.0, 1.0, 1.0]]), box)
        assert cells[0].volume == pytest.approx(27.0)
        assert not cells[0].complete

    def test_neighbor_symmetry(self):
        box = Bounds.cube(8.0)
        rng = np.random.default_rng(8)
        pts = rng.uniform(0, 8, size=(60, 3))
        cells = voronoi_cells_clip(pts, box)
        by_site = {c.site: c for c in cells}
        for c in cells:
            for nb in c.neighbors:
                assert c.site in by_site[int(nb)].neighbors


class TestQhullBackend:
    def test_bounded_cells_match_regions(self):
        pts = grid_points(4, 8.0, jitter=0.25, seed=5)
        box = Bounds.cube(8.0)
        cells = voronoi_cells_qhull(pts, box)
        assert len(cells) == len(pts)
        complete = [c for c in cells if c.complete]
        assert complete  # jittered grid has interior bounded cells
        for c in complete:
            c.polyhedron.validate()
            assert c.polyhedron.contains(pts[c.site], rel_eps=1e-7)

    def test_few_points_all_incomplete(self):
        box = Bounds.cube(2.0)
        cells = voronoi_cells_qhull(np.random.default_rng(0).uniform(0, 2, (4, 3)), box)
        assert all(not c.complete for c in cells)

    def test_dispatch(self):
        pts = grid_points(3, 6.0, jitter=0.2, seed=6)
        box = Bounds.cube(6.0)
        a = voronoi_cells(pts, box, backend="clip")
        b = voronoi_cells(pts, box, backend="qhull")
        assert len(a) == len(b) == len(pts)
        with pytest.raises(ValueError):
            voronoi_cells(pts, box, backend="nope")


class TestBackendAgreement:
    """The two backends must produce identical complete cells."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_complete_cell_volumes_match(self, seed):
        pts = grid_points(6, 12.0, jitter=0.3, seed=seed)
        box = Bounds.cube(12.0)
        clip = {c.site: c for c in voronoi_cells_clip(pts, box)}
        qh = {c.site: c for c in voronoi_cells_qhull(pts, box)}
        both = [s for s in clip if clip[s].complete and qh[s].complete]
        assert len(both) >= 4**3  # the deep interior
        for s in both:
            assert clip[s].volume == pytest.approx(qh[s].volume, rel=1e-7)
            assert clip[s].surface_area == pytest.approx(
                qh[s].surface_area, rel=1e-7
            )
            assert set(map(int, clip[s].neighbors)) == set(map(int, qh[s].neighbors))

    def test_complete_in_clip_implies_qhull_bounded(self):
        pts = grid_points(5, 10.0, jitter=0.25, seed=7)
        box = Bounds.cube(10.0)
        clip = {c.site: c for c in voronoi_cells_clip(pts, box)}
        qh = {c.site: c for c in voronoi_cells_qhull(pts, box)}
        for s, c in clip.items():
            if c.complete:
                assert qh[s].polyhedron is not None


class TestPaperCellStatistics:
    """Paper §III-C2: evolved-universe cells average ~15 faces and ~5
    vertices per face.  A Poisson (random) point process is the standard
    model for which those numbers are known analytically (15.54 faces/cell);
    our backends must land close."""

    def test_average_faces_per_cell(self):
        rng = np.random.default_rng(12)
        pts = rng.uniform(0, 10, size=(600, 3))
        box = Bounds.cube(10.0)
        cells = [c for c in voronoi_cells_clip(pts, box) if c.complete]
        assert len(cells) > 100
        faces = np.mean([c.polyhedron.num_faces for c in cells])
        assert 13.0 < faces < 17.5  # Poisson-Voronoi expectation 15.54

    def test_average_vertices_per_face(self):
        rng = np.random.default_rng(13)
        pts = rng.uniform(0, 10, size=(600, 3))
        box = Bounds.cube(10.0)
        cells = [c for c in voronoi_cells_clip(pts, box) if c.complete]
        vpf = np.mean(
            [len(f) for c in cells for f in c.polyhedron.faces]
        )
        assert 4.5 < vpf < 6.0  # Poisson-Voronoi expectation ~5.23


class TestDelaunayDuality:
    def test_circumcenters_are_voronoi_vertices(self):
        pts = grid_points(4, 8.0, jitter=0.3, seed=9)
        box = Bounds.cube(8.0)
        mesh = delaunay(pts)
        centers = circumcenters(mesh)
        cells = [c for c in voronoi_cells_clip(pts, box) if c.complete]
        # Every vertex of a complete Voronoi cell is some circumcenter.
        some = cells[: min(10, len(cells))]
        for c in some:
            for v in c.polyhedron.vertices:
                d = np.linalg.norm(centers - v, axis=1)
                assert d.min() < 1e-6

    def test_circumradius_equidistance(self):
        pts = np.random.default_rng(10).uniform(0, 5, size=(50, 3))
        mesh = delaunay(pts)
        centers = circumcenters(mesh)
        radii = circumradii(mesh)
        for t in range(0, mesh.num_tetrahedra, 7):
            for k in range(4):
                d = np.linalg.norm(pts[mesh.tetrahedra[t, k]] - centers[t])
                assert d == pytest.approx(radii[t], rel=1e-6)

    def test_delaunay_volume_fills_hull(self):
        pts = np.random.default_rng(11).uniform(0, 4, size=(80, 3))
        mesh = delaunay(pts)
        from repro.geometry.convex_hull import convex_hull

        hull = convex_hull(pts, backend="qhull")
        assert mesh.volumes().sum() == pytest.approx(hull.volume(), rel=1e-9)

    def test_star_volumes_positive(self):
        pts = np.random.default_rng(14).uniform(0, 4, size=(60, 3))
        mesh = delaunay(pts)
        sv = mesh.vertex_star_volumes()
        assert np.all(sv > 0)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_partition_property(seed):
    """Voronoi cells always partition the container volume exactly."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 60))
    box = Bounds.cube(7.0)
    pts = rng.uniform(0, 7.0, size=(n, 3))
    cells = voronoi_cells_clip(pts, box)
    assert sum(c.volume for c in cells) == pytest.approx(box.volume, rel=1e-7)
