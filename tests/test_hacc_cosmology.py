"""Tests for the ΛCDM background and linear power spectrum."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hacc.cosmology import LCDM, PLANCK_LIKE
from repro.hacc.power_spectrum import (
    LinearPowerSpectrum,
    transfer_bbks,
    transfer_eisenstein_hu,
)


class TestBackground:
    def test_e_of_a_today(self):
        assert PLANCK_LIKE.e_of_a(1.0) == pytest.approx(1.0)

    def test_e_of_a_matter_domination(self):
        c = LCDM()
        a = 1e-3
        assert c.e_of_a(a) == pytest.approx(np.sqrt(c.omega_m) * a**-1.5, rel=1e-3)

    def test_hubble_today(self):
        assert PLANCK_LIKE.hubble(1.0) == pytest.approx(100 * PLANCK_LIKE.h)

    def test_flatness(self):
        c = LCDM(omega_m=0.3)
        assert c.omega_l == pytest.approx(0.7)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LCDM(omega_m=0.0)
        with pytest.raises(ValueError):
            LCDM(omega_b=0.5, omega_m=0.3)
        with pytest.raises(ValueError):
            LCDM(h=-1.0)

    def test_a_z_roundtrip(self):
        assert LCDM.a_of_z(LCDM.z_of_a(0.25)) == pytest.approx(0.25)
        assert LCDM.a_of_z(0.0) == 1.0


class TestGrowth:
    def test_normalized_today(self):
        assert PLANCK_LIKE.growth_factor(1.0) == pytest.approx(1.0, rel=1e-6)

    def test_matter_dominated_growth_linear_in_a(self):
        c = LCDM()
        # Deep in matter domination D(a) ∝ a.
        r = c.growth_factor(0.02) / c.growth_factor(0.01)
        assert r == pytest.approx(2.0, rel=1e-2)

    def test_lambda_suppression(self):
        # With dark energy, growth by a=1 lags the EdS D=a line.
        c = LCDM(omega_m=0.3)
        assert c.growth_factor(0.5) > 0.5

    def test_monotonic(self):
        a = np.linspace(0.01, 1.0, 200)
        d = PLANCK_LIKE.growth_factor(a)
        assert np.all(np.diff(d) > 0)

    def test_growth_rate_limits(self):
        c = LCDM(omega_m=0.3)
        assert c.growth_rate(0.01) == pytest.approx(1.0, rel=1e-2)  # EdS: f = 1
        # Today, f ≈ omega_m(a)^0.55 ≈ 0.51 for omega_m = 0.3.
        assert c.growth_rate(1.0) == pytest.approx(0.3**0.55, rel=0.05)

    def test_positive_a_required(self):
        with pytest.raises(ValueError):
            PLANCK_LIKE.growth_factor(0.0)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.01, max_value=1.0))
    def test_growth_between_zero_and_one(self, a):
        d = PLANCK_LIKE.growth_factor(a)
        assert 0.0 < d <= 1.0 + 1e-9


class TestTransferFunctions:
    @pytest.mark.parametrize("tf", [transfer_bbks, transfer_eisenstein_hu])
    def test_large_scale_limit(self, tf):
        k = np.array([1e-5])
        assert tf(k, PLANCK_LIKE)[0] == pytest.approx(1.0, abs=2e-2)

    @pytest.mark.parametrize("tf", [transfer_bbks, transfer_eisenstein_hu])
    def test_monotone_decreasing(self, tf):
        k = np.logspace(-4, 2, 300)
        t = tf(k, PLANCK_LIKE)
        assert np.all(np.diff(t) <= 1e-12)
        assert np.all(t > 0)

    def test_small_scale_suppression(self):
        t = transfer_eisenstein_hu(np.array([10.0]), PLANCK_LIKE)[0]
        assert t < 1e-2

    def test_backends_agree_roughly(self):
        k = np.logspace(-3, 1, 50)
        a = transfer_bbks(k, PLANCK_LIKE)
        b = transfer_eisenstein_hu(k, PLANCK_LIKE)
        # Same shape within tens of percent across the relevant range.
        assert np.all(np.abs(np.log(a / b)) < 0.5)


class TestPowerSpectrum:
    def test_sigma8_normalization(self):
        p = LinearPowerSpectrum(PLANCK_LIKE)
        assert p.sigma_r(8.0) == pytest.approx(PLANCK_LIKE.sigma8, rel=1e-4)

    def test_growth_scaling(self):
        p = LinearPowerSpectrum(PLANCK_LIKE)
        k = 0.1
        d = PLANCK_LIKE.growth_factor(0.5)
        assert p(k, a=0.5) == pytest.approx(p(k, a=1.0) * d * d, rel=1e-10)

    def test_zero_k_is_zero(self):
        p = LinearPowerSpectrum(PLANCK_LIKE)
        assert p(0.0) == 0.0

    def test_large_scale_slope_is_ns(self):
        p = LinearPowerSpectrum(PLANCK_LIKE)
        k1, k2 = 1e-4, 2e-4
        slope = np.log(p(k2) / p(k1)) / np.log(k2 / k1)
        assert slope == pytest.approx(PLANCK_LIKE.ns, rel=1e-2)

    def test_sigma_decreases_with_radius(self):
        p = LinearPowerSpectrum(PLANCK_LIKE)
        assert p.sigma_r(4.0) > p.sigma_r(8.0) > p.sigma_r(16.0)

    def test_unknown_transfer(self):
        with pytest.raises(ValueError):
            LinearPowerSpectrum(PLANCK_LIKE, transfer="nope")

    def test_bbks_backend_normalizes_too(self):
        p = LinearPowerSpectrum(PLANCK_LIKE, transfer="bbks")
        assert p.sigma_r(8.0) == pytest.approx(PLANCK_LIKE.sigma8, rel=1e-4)
