"""Failure-injection tests: deadlocks, corrupted files, hostile inputs."""

import os
import struct

import numpy as np
import pytest

import repro.diy.comm as comm_mod
from repro.diy.comm import ParallelError, run_parallel
from repro.diy.mpi_io import BlockFileReader, pack_arrays, write_blocks


class TestDeadlockDetection:
    def test_recv_without_sender_times_out(self, monkeypatch):
        """A matched receive that can never complete must raise, not hang."""
        monkeypatch.setattr(comm_mod, "_DEFAULT_TIMEOUT", 0.2)

        def worker(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=42)  # rank 0 never sends

        with pytest.raises(ParallelError) as exc:
            run_parallel(2, worker)
        assert isinstance(exc.value.original, TimeoutError)
        assert "deadlock" in str(exc.value.original)

    def test_mismatched_collectives_detected(self, monkeypatch):
        """One rank skipping a collective wedges its peers — detected."""
        monkeypatch.setattr(comm_mod, "_DEFAULT_TIMEOUT", 0.2)

        def worker(comm):
            if comm.rank == 0:
                return None  # skips the bcast entirely
            return comm.bcast(None, root=0)  # blocks on the missing root

        with pytest.raises(ParallelError):
            run_parallel(2, worker)


class TestCorruptedBlockFiles:
    def _write(self, path):
        def f(comm):
            blocks = [(0, pack_arrays({"x": np.arange(5.0)}))]
            return write_blocks(path, comm, blocks, nblocks_total=1)

        return run_parallel(1, f)[0]

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "t.diy")
        self._write(path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(Exception):
            with BlockFileReader(path) as r:
                r.read_block(0)

    def test_corrupted_footer_offset(self, tmp_path):
        path = str(tmp_path / "f.diy")
        self._write(path)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size - 8)
            fh.write(struct.pack("<Q", size * 10))  # absurd footer pointer
        with pytest.raises(Exception):
            BlockFileReader(path)

    def test_corrupted_payload_detected_by_crc(self, tmp_path):
        from repro.diy.mpi_io import CheckpointError

        path = str(tmp_path / "p.diy")
        self._write(path)
        with open(path, "r+b") as fh:
            fh.seek(20)  # inside the payload
            fh.write(b"\xff" * 8)
        with BlockFileReader(path) as r:
            with pytest.raises(CheckpointError, match="CRC"):
                r.read_block(0)
            # verify=False still hands back the raw bytes for forensics.
            assert isinstance(r.read_block(0, verify=False), bytes)

    def test_corrupted_footer_crc_rejected(self, tmp_path):
        from repro.diy.mpi_io import CheckpointError

        path = str(tmp_path / "fc.diy")
        self._write(path)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size - 20)  # inside the footer index
            fh.write(b"\xff\xff")
        with pytest.raises(CheckpointError, match="footer"):
            BlockFileReader(path)

    def test_torn_tmp_file_never_replaces_checkpoint(self, tmp_path):
        """A write torn mid-stream leaves only a .tmp orphan; the published
        file (if any) is untouched and still validates."""
        from repro import faults
        from repro.diy.mpi_io import CheckpointError

        path = str(tmp_path / "t.diy")
        self._write(path)
        before = open(path, "rb").read()
        faults.install(faults.FaultSpec(tear_rank=0, tear_step=None))
        try:
            # nranks=1 runs serially, so the fault surfaces unwrapped.
            with pytest.raises(faults.TornWriteError):
                self._write(path)
        finally:
            faults.clear()
        assert open(path, "rb").read() == before
        with BlockFileReader(path) as r:  # still fully valid
            assert r.nblocks == 1
        # The torn partial write is quarantined in the temp file.
        with pytest.raises(CheckpointError):
            BlockFileReader(path + ".tmp")


class TestHostileGeometryInputs:
    def test_all_identical_points(self):
        from repro.diy.bounds import Bounds
        from repro.core import tessellate

        pts = np.full((10, 3), 2.0)
        tess = tessellate(pts, Bounds.cube(4.0), nblocks=1, ghost=1.0)
        assert tess.num_cells == 0  # every cell degenerate or unbounded

    def test_collinear_points_no_crash(self):
        from repro.diy.bounds import Bounds
        from repro.core import tessellate

        pts = np.column_stack(
            [np.linspace(0.5, 3.5, 20), np.full(20, 2.0), np.full(20, 2.0)]
        )
        tess = tessellate(pts, Bounds.cube(4.0), nblocks=1, ghost=1.0)
        assert tess.num_cells == 0  # degenerate configuration, no cells

    def test_single_point(self):
        from repro.diy.bounds import Bounds
        from repro.core import tessellate

        tess = tessellate(
            np.array([[1.0, 1.0, 1.0]]), Bounds.cube(2.0), nblocks=1, ghost=0.5
        )
        assert tess.num_cells == 0

    def test_grid_points_exact_degeneracy(self):
        """A perfect lattice (maximally cospherical) must not crash."""
        from repro.diy.bounds import Bounds
        from repro.core import tessellate

        n = 6
        g = (np.mgrid[0:n, 0:n, 0:n].reshape(3, -1).T + 0.5).astype(float)
        tess = tessellate(g, Bounds.cube(float(n)), nblocks=2, ghost=2.0)
        # Lattice cells are unit cubes.
        assert tess.num_cells > 0
        np.testing.assert_allclose(tess.volumes(), 1.0, rtol=1e-6)

    def test_extreme_aspect_point_cloud(self):
        """A near-planar slab has cells taller than any reasonable fixed
        ghost guess; the auto-ghost loop grows to the half-box cap and
        recovers the full periodic partition."""
        from repro.diy.bounds import Bounds
        from repro.core import tessellate
        from repro.core.auto_ghost import tessellate_auto

        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 10, size=(200, 3))
        pts[:, 2] = rng.uniform(4.9, 5.1, size=200)  # nearly planar slab
        # Fixed insufficient ghost: vertical neighbors (periodic images
        # 4.9 away) are unseen, so most cells are incomplete and deleted.
        fixed = tessellate(pts, Bounds.cube(10.0), nblocks=1, ghost=4.0)
        assert fixed.num_cells < 200
        auto, ghost, _ = tessellate_auto(
            pts, Bounds.cube(10.0), nblocks=1, initial_ghost=2.0
        )
        assert ghost == pytest.approx(5.0)  # grew to the half-box cap
        assert auto.num_cells == 200
        # Cell diameters here approach the box size — past the paper's
        # design envelope (block size ~10x cell size) — so residual
        # boundary error survives even at the ghost cap.
        assert auto.total_volume() == pytest.approx(1000.0, rel=1e-3)
